#include "storage/temp_index.h"

#include <vector>

#include <gtest/gtest.h>

#include "storage/skew.h"
#include "storage/wisconsin.h"

namespace dbs3 {
namespace {

Fragment MakeFragment(std::initializer_list<int64_t> keys) {
  Fragment f;
  int64_t payload = 0;
  for (int64_t k : keys) {
    f.tuples.push_back(Tuple({Value(k), Value(payload++)}));
  }
  return f;
}

TEST(TempIndexTest, FindsAllMatches) {
  const Fragment f = MakeFragment({1, 2, 2, 3, 2});
  TempIndex index(f, 0);
  EXPECT_EQ(index.Lookup(Value(int64_t{1})).size(), 1u);
  const std::vector<uint32_t> twos = index.Lookup(Value(int64_t{2}));
  ASSERT_EQ(twos.size(), 3u);
  for (uint32_t i : twos) EXPECT_EQ(f.tuples[i].at(0).AsInt(), 2);
}

TEST(TempIndexTest, MissReturnsEmpty) {
  const Fragment f = MakeFragment({1, 2, 3});
  TempIndex index(f, 0);
  EXPECT_TRUE(index.Lookup(Value(int64_t{99})).empty());
}

TEST(TempIndexTest, EmptyFragment) {
  const Fragment f;
  TempIndex index(f, 0);
  EXPECT_EQ(index.distinct_keys(), 0u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{1})).empty());
}

TEST(TempIndexTest, DistinctKeysCounted) {
  const Fragment f = MakeFragment({5, 5, 6, 7, 7, 7});
  TempIndex index(f, 0);
  EXPECT_EQ(index.distinct_keys(), 3u);
}

TEST(TempIndexTest, IndexesChosenColumn) {
  Fragment f;
  f.tuples.push_back(Tuple({Value(int64_t{1}), Value(int64_t{100})}));
  f.tuples.push_back(Tuple({Value(int64_t{2}), Value(int64_t{100})}));
  TempIndex index(f, 1);
  EXPECT_EQ(index.Lookup(Value(int64_t{100})).size(), 2u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{1})).empty());
}

TEST(TempIndexTest, StringKeys) {
  Fragment f;
  f.tuples.push_back(Tuple({Value(std::string("paris"))}));
  f.tuples.push_back(Tuple({Value(std::string("cannes"))}));
  f.tuples.push_back(Tuple({Value(std::string("paris"))}));
  TempIndex index(f, 0);
  EXPECT_EQ(index.Lookup(Value(std::string("paris"))).size(), 2u);
  EXPECT_EQ(index.Lookup(Value(std::string("lyon"))).size(), 0u);
}

/// Collects a Probe range into a vector so it can be compared against
/// Lookup and a reference scan.
std::vector<uint32_t> Collect(const TempIndex::MatchRange& range) {
  std::vector<uint32_t> out;
  for (uint32_t i : range) out.push_back(i);
  return out;
}

/// Probe (iterator range), ProbeHashed (caller-supplied hash), and Lookup
/// (materializing) must agree with a reference scan — matches in ascending
/// tuple order — for every key of a duplicate-heavy Wisconsin column.
TEST(TempIndexTest, ProbeMatchesLookupAndScanOnWisconsin) {
  WisconsinOptions options;
  options.cardinality = 4'000;
  options.degree = 4;
  auto rel = GenerateWisconsin("wisc", options);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();

  // Column 5 is "twenty": values 0..19, ~50 duplicates per key and
  // fragment, which exercises long bucket chains.
  const size_t kTwenty = 5;
  for (size_t frag = 0; frag < rel.value()->degree(); ++frag) {
    const Fragment& f = rel.value()->fragment(frag);
    TempIndex index(f, kTwenty);
    for (int64_t key = 0; key <= 20; ++key) {  // 20 itself is a miss.
      const Value probe_key(key);
      std::vector<uint32_t> scan;
      for (uint32_t i = 0; i < f.tuples.size(); ++i) {
        if (f.tuples[i].at(kTwenty).AsInt() == key) scan.push_back(i);
      }
      EXPECT_EQ(Collect(index.Probe(probe_key)), scan) << "key " << key;
      EXPECT_EQ(Collect(index.ProbeHashed(probe_key.Hash(), probe_key)),
                scan)
          << "key " << key;
      EXPECT_EQ(index.Lookup(probe_key), scan) << "key " << key;
      EXPECT_EQ(index.Probe(probe_key).empty(), scan.empty())
          << "key " << key;
    }
    EXPECT_EQ(index.distinct_keys(), 20u) << "fragment " << frag;
  }
}

/// Same equivalence under Zipf-skewed fragment cardinalities: the largest
/// fragment concentrates most of the tuples, producing very uneven chain
/// lengths.
TEST(TempIndexTest, ProbeMatchesScanOnSkewedFragments) {
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 8;
  spec.theta = 0.8;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  for (size_t frag = 0; frag < db.value().a->degree(); ++frag) {
    const Fragment& f = db.value().a->fragment(frag);
    TempIndex index(f, 0);
    size_t scanned_distinct = 0;
    // Fragment i of A holds keys congruent to i modulo the degree, drawn
    // from B's key domain.
    for (int64_t key = static_cast<int64_t>(frag);
         key < static_cast<int64_t>(spec.b_cardinality);
         key += static_cast<int64_t>(spec.degree)) {
      const Value probe_key(key);
      std::vector<uint32_t> scan;
      for (uint32_t i = 0; i < f.tuples.size(); ++i) {
        if (f.tuples[i].at(0).AsInt() == key) scan.push_back(i);
      }
      if (!scan.empty()) ++scanned_distinct;
      EXPECT_EQ(Collect(index.Probe(probe_key)), scan)
          << "fragment " << frag << " key " << key;
    }
    EXPECT_EQ(index.distinct_keys(), scanned_distinct)
        << "fragment " << frag;
  }
}

TEST(TempIndexTest, AgreesWithScanOnLargeFragment) {
  Fragment f;
  for (int64_t k = 0; k < 5'000; ++k) {
    f.tuples.push_back(Tuple({Value(k % 137), Value(k)}));
  }
  TempIndex index(f, 0);
  for (int64_t key = 0; key < 137; ++key) {
    size_t scan_count = 0;
    for (const Tuple& t : f.tuples) {
      if (t.at(0).AsInt() == key) ++scan_count;
    }
    EXPECT_EQ(index.Lookup(Value(key)).size(), scan_count) << "key " << key;
  }
}

}  // namespace
}  // namespace dbs3

#include "storage/temp_index.h"

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

Fragment MakeFragment(std::initializer_list<int64_t> keys) {
  Fragment f;
  int64_t payload = 0;
  for (int64_t k : keys) {
    f.tuples.push_back(Tuple({Value(k), Value(payload++)}));
  }
  return f;
}

TEST(TempIndexTest, FindsAllMatches) {
  const Fragment f = MakeFragment({1, 2, 2, 3, 2});
  TempIndex index(f, 0);
  EXPECT_EQ(index.Lookup(Value(int64_t{1})).size(), 1u);
  const std::vector<uint32_t> twos = index.Lookup(Value(int64_t{2}));
  ASSERT_EQ(twos.size(), 3u);
  for (uint32_t i : twos) EXPECT_EQ(f.tuples[i].at(0).AsInt(), 2);
}

TEST(TempIndexTest, MissReturnsEmpty) {
  const Fragment f = MakeFragment({1, 2, 3});
  TempIndex index(f, 0);
  EXPECT_TRUE(index.Lookup(Value(int64_t{99})).empty());
}

TEST(TempIndexTest, EmptyFragment) {
  const Fragment f;
  TempIndex index(f, 0);
  EXPECT_EQ(index.distinct_keys(), 0u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{1})).empty());
}

TEST(TempIndexTest, DistinctKeysCounted) {
  const Fragment f = MakeFragment({5, 5, 6, 7, 7, 7});
  TempIndex index(f, 0);
  EXPECT_EQ(index.distinct_keys(), 3u);
}

TEST(TempIndexTest, IndexesChosenColumn) {
  Fragment f;
  f.tuples.push_back(Tuple({Value(int64_t{1}), Value(int64_t{100})}));
  f.tuples.push_back(Tuple({Value(int64_t{2}), Value(int64_t{100})}));
  TempIndex index(f, 1);
  EXPECT_EQ(index.Lookup(Value(int64_t{100})).size(), 2u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{1})).empty());
}

TEST(TempIndexTest, StringKeys) {
  Fragment f;
  f.tuples.push_back(Tuple({Value(std::string("paris"))}));
  f.tuples.push_back(Tuple({Value(std::string("cannes"))}));
  f.tuples.push_back(Tuple({Value(std::string("paris"))}));
  TempIndex index(f, 0);
  EXPECT_EQ(index.Lookup(Value(std::string("paris"))).size(), 2u);
  EXPECT_EQ(index.Lookup(Value(std::string("lyon"))).size(), 0u);
}

TEST(TempIndexTest, AgreesWithScanOnLargeFragment) {
  Fragment f;
  for (int64_t k = 0; k < 5'000; ++k) {
    f.tuples.push_back(Tuple({Value(k % 137), Value(k)}));
  }
  TempIndex index(f, 0);
  for (int64_t key = 0; key < 137; ++key) {
    size_t scan_count = 0;
    for (const Tuple& t : f.tuples) {
      if (t.at(0).AsInt() == key) ++scan_count;
    }
    EXPECT_EQ(index.Lookup(Value(key)).size(), scan_count) << "key " << key;
  }
}

}  // namespace
}  // namespace dbs3

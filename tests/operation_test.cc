#include "engine/operation.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "engine/operator_logic.h"

namespace dbs3 {
namespace {

/// Counts activations per instance; emits nothing.
class CountingLogic : public OperatorLogic {
 public:
  explicit CountingLogic(size_t instances) : counts_(instances) {
    for (auto& c : counts_) c = std::make_unique<std::atomic<uint64_t>>(0);
  }

  void OnTrigger(size_t instance, Emitter*) override {
    counts_[instance]->fetch_add(1);
  }
  void OnData(size_t instance, Tuple, Emitter*) override {
    counts_[instance]->fetch_add(1);
  }
  std::string name() const override { return "counting"; }

  uint64_t count(size_t i) const { return counts_[i]->load(); }
  uint64_t total() const {
    uint64_t t = 0;
    for (const auto& c : counts_) t += c->load();
    return t;
  }

 private:
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> counts_;
};

/// Emits one tuple per trigger, to exercise the output path.
class EmittingLogic : public OperatorLogic {
 public:
  void OnTrigger(size_t instance, Emitter* out) override {
    out->Emit(instance, Tuple({Value(static_cast<int64_t>(instance))}));
  }
  std::string name() const override { return "emitting"; }
};

OperationConfig MakeConfig(size_t instances, size_t threads) {
  OperationConfig config;
  config.name = "test-op";
  config.num_instances = instances;
  config.num_threads = threads;
  config.cache_size = 2;
  return config;
}

TEST(OperationTest, ProcessesEveryTriggerExactlyOnce) {
  CountingLogic logic(8);
  Operation op(MakeConfig(8, 3), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (size_t i = 0; i < 8; ++i) op.PushTrigger(i);
  op.ProducerDone();
  op.Join();
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(logic.count(i), 1u);
  const OperationStats stats = op.stats();
  EXPECT_EQ(std::accumulate(stats.per_thread_processed.begin(),
                            stats.per_thread_processed.end(), 0ull),
            8ull);
}

TEST(OperationTest, ProcessesDataFromAllProducers) {
  CountingLogic logic(4);
  Operation op(MakeConfig(4, 2), &logic, DataOutput{});
  op.AddProducer();
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 100; ++k) {
    op.PushData(static_cast<size_t>(k) % 4, Tuple({Value(k)}));
  }
  op.ProducerDone();
  for (int64_t k = 0; k < 60; ++k) {
    op.PushData(static_cast<size_t>(k) % 4, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(logic.total(), 160u);
  EXPECT_EQ(logic.count(0), 25u + 15u);  // k % 4 == 0 from both batches.
}

TEST(OperationTest, ThreadsShareQueuesForLoadBalance) {
  // All work lands in instance 1, whose main owner gets stuck on a blocker
  // activation. The remaining activations can only complete if the *other*
  // thread consumes them from a queue that is not its main queue — the
  // DBS3 decoupling of threads from instances.
  class BlockingLogic : public OperatorLogic {
   public:
    void OnData(size_t, Tuple t, Emitter*) override {
      if (t.at(0).AsInt() == -1) {
        // The blocker: hold this thread until everything else is done.
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return released_; });
      } else {
        processed_.fetch_add(1);
      }
    }
    std::string name() const override { return "blocking"; }

    void Release() {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
      cv_.notify_all();
    }
    uint64_t processed() const { return processed_.load(); }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool released_ = false;
    std::atomic<uint64_t> processed_{0};
  };

  BlockingLogic logic;
  OperationConfig config = MakeConfig(2, 2);
  config.cache_size = 1;  // The blocker must not batch with real work.
  Operation op(config, &logic, DataOutput{});
  op.AddProducer();
  constexpr uint64_t kItems = 200;
  // Blocker first, then real work — all into instance 1.
  op.PushData(1, Tuple({Value(int64_t{-1})}));
  for (uint64_t k = 0; k < kItems; ++k) {
    op.PushData(1, Tuple({Value(static_cast<int64_t>(k))}));
  }
  op.ProducerDone();
  op.Start();
  // Every non-blocker item must complete while one thread is stuck — only
  // possible because the free thread consumes instance 1's queue even
  // though it is not its main queue.
  while (logic.processed() < kItems) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  logic.Release();
  op.Join();
  EXPECT_EQ(logic.processed(), kItems);
  const OperationStats stats = op.stats();
  EXPECT_GT(stats.per_thread_processed[0], 0u);
  EXPECT_GT(stats.per_thread_processed[1], 0u);
}

TEST(OperationTest, EmitsRouteToConsumerSameInstance) {
  CountingLogic consumer_logic(4);
  Operation consumer(MakeConfig(4, 2), &consumer_logic, DataOutput{});
  EmittingLogic producer_logic;
  DataOutput output;
  output.consumer = &consumer;
  output.route = DataOutput::Route::kSameInstance;
  Operation producer(MakeConfig(4, 2), &producer_logic, output);

  producer.AddProducer();
  consumer.AddProducer();
  producer.Start();
  consumer.Start();
  for (size_t i = 0; i < 4; ++i) producer.PushTrigger(i);
  producer.ProducerDone();
  producer.Join();
  consumer.ProducerDone();
  consumer.Join();
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(consumer_logic.count(i), 1u);
  EXPECT_EQ(producer.stats().emitted, 4u);
}

TEST(OperationTest, EmitsRouteByColumn) {
  CountingLogic consumer_logic(4);
  Operation consumer(MakeConfig(4, 1), &consumer_logic, DataOutput{});
  EmittingLogic producer_logic;  // Emits tuple [instance].
  DataOutput output;
  output.consumer = &consumer;
  output.route = DataOutput::Route::kByColumn;
  output.column = 0;
  output.partitioner = Partitioner(PartitionKind::kModulo, 4);
  Operation producer(MakeConfig(8, 2), &producer_logic, output);

  producer.AddProducer();
  consumer.AddProducer();
  producer.Start();
  consumer.Start();
  for (size_t i = 0; i < 8; ++i) producer.PushTrigger(i);
  producer.ProducerDone();
  producer.Join();
  consumer.ProducerDone();
  consumer.Join();
  // Producer instances 0..7 emit values 0..7, which route mod 4: each
  // consumer instance receives exactly two.
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(consumer_logic.count(i), 2u);
}

TEST(OperationTest, LptConsumesExpensiveQueuesFirst) {
  // Single thread, LPT order: instance 2 (highest estimate) drains first.
  class OrderRecorder : public OperatorLogic {
   public:
    void OnData(size_t instance, Tuple, Emitter*) override {
      order.push_back(instance);
    }
    std::string name() const override { return "recorder"; }
    std::vector<size_t> order;
  };
  OrderRecorder logic;
  OperationConfig config = MakeConfig(3, 1);
  config.strategy = Strategy::kLpt;
  config.cost_estimates = {1.0, 2.0, 9.0};
  config.cache_size = 1;
  Operation op(config, &logic, DataOutput{});
  op.AddProducer();
  // Queue everything before starting, so consumption order is pure LPT.
  op.PushData(0, Tuple({Value(int64_t{0})}));
  op.PushData(1, Tuple({Value(int64_t{1})}));
  op.PushData(2, Tuple({Value(int64_t{2})}));
  op.ProducerDone();
  op.Start();
  op.Join();
  ASSERT_EQ(logic.order.size(), 3u);
  EXPECT_EQ(logic.order[0], 2u);
  EXPECT_EQ(logic.order[1], 1u);
  EXPECT_EQ(logic.order[2], 0u);
}

TEST(OperationTest, StatsCountPerInstance) {
  CountingLogic logic(3);
  Operation op(MakeConfig(3, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 30; ++k) op.PushData(2, Tuple({Value(k)}));
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  EXPECT_EQ(stats.per_instance_processed[0], 0u);
  EXPECT_EQ(stats.per_instance_processed[2], 30u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_EQ(stats.name, "test-op");
}

TEST(OperationTest, TerminalOperationDiscardsEmissions) {
  // No output edge: emitted tuples are counted and dropped, not a crash.
  EmittingLogic logic;
  Operation op(MakeConfig(4, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (size_t i = 0; i < 4; ++i) op.PushTrigger(i);
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(op.stats().emitted, 4u);
}

TEST(OperationTest, ContentionCountersConsistent) {
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 500; ++k) {
    op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  EXPECT_GT(stats.queue_acquisitions, 500u);  // Pushes + pops at least.
  EXPECT_LE(stats.queue_contended, stats.queue_acquisitions);
}

TEST(OperationTest, ChunkedPushCountsTuplesNotActivations) {
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  TupleChunk chunk;
  for (int64_t k = 0; k < 10; ++k) chunk.push_back(Tuple({Value(k)}));
  op.PushDataChunk(0, std::move(chunk));
  op.PushData(1, Tuple({Value(int64_t{99})}));
  op.ProducerDone();
  op.Join();
  // The default OnDataBatch loops OnData: every tuple is seen once.
  EXPECT_EQ(logic.count(0), 10u);
  EXPECT_EQ(logic.count(1), 1u);
  const OperationStats stats = op.stats();
  // Processed counters are tuple-denominated; the activation counter shows
  // the 10-tuple chunk was one unit of queue traffic.
  EXPECT_EQ(stats.per_instance_processed[0], 10u);
  EXPECT_EQ(stats.per_instance_processed[1], 1u);
  EXPECT_EQ(stats.activations, 2u);
}

/// Emits `count` tuples [instance, k] per trigger, to drive the chunked
/// emitter path.
class BurstLogic : public OperatorLogic {
 public:
  explicit BurstLogic(int64_t count) : count_(count) {}
  void OnTrigger(size_t instance, Emitter* out) override {
    for (int64_t k = 0; k < count_; ++k) {
      out->Emit(instance,
                Tuple({Value(static_cast<int64_t>(instance)), Value(k)}));
    }
  }
  std::string name() const override { return "burst"; }

 private:
  int64_t count_;
};

/// Runs burst -> counting with the given producer chunk_size and returns
/// {consumer tuples processed, consumer activations processed}.
std::pair<uint64_t, uint64_t> RunBurstPipeline(size_t chunk_size,
                                               size_t consumer_capacity = 0) {
  CountingLogic consumer_logic(4);
  OperationConfig consumer_config = MakeConfig(4, 2);
  consumer_config.queue_capacity = consumer_capacity;
  Operation consumer(consumer_config, &consumer_logic, DataOutput{});
  BurstLogic producer_logic(250);
  DataOutput output;
  output.consumer = &consumer;
  output.route = DataOutput::Route::kSameInstance;
  OperationConfig producer_config = MakeConfig(4, 2);
  producer_config.chunk_size = chunk_size;
  Operation producer(producer_config, &producer_logic, output);

  producer.AddProducer();
  consumer.AddProducer();
  producer.Start();
  consumer.Start();
  for (size_t i = 0; i < 4; ++i) producer.PushTrigger(i);
  producer.ProducerDone();
  producer.Join();
  consumer.ProducerDone();
  consumer.Join();
  EXPECT_EQ(consumer_logic.total(), 1'000u);
  const OperationStats stats = consumer.stats();
  uint64_t tuples = 0;
  for (uint64_t c : stats.per_instance_processed) tuples += c;
  return {tuples, stats.activations};
}

TEST(OperationTest, ChunkSizeOneMatchesPerTupleActivations) {
  const auto [tuples, activations] = RunBurstPipeline(/*chunk_size=*/1);
  EXPECT_EQ(tuples, 1'000u);
  EXPECT_EQ(activations, 1'000u);  // Paper-faithful: one tuple, one queue op.
}

TEST(OperationTest, ChunkedEmitterAmortizesActivations) {
  const auto [tuples, activations] = RunBurstPipeline(/*chunk_size=*/50);
  EXPECT_EQ(tuples, 1'000u);
  // 250 tuples per producer instance at chunk 50 = 5 chunks per instance.
  EXPECT_EQ(activations, 20u);
}

TEST(OperationTest, ChunkClampedToConsumerQueueCapacity) {
  // chunk_size 64 against capacity-8 consumer queues: the emitter splits
  // chunks at 8 tuples, so the pipeline completes and every activation fits
  // the bound.
  const auto [tuples, activations] =
      RunBurstPipeline(/*chunk_size=*/64, /*consumer_capacity=*/8);
  EXPECT_EQ(tuples, 1'000u);
  // 250 per instance in 8-tuple chunks: 31 full + 1 residual, x4 instances.
  EXPECT_EQ(activations, 128u);
}

TEST(OperationTest, ResidualChunkFlushedOnProducerExit) {
  // 3 tuples with chunk_size 100: nothing ever fills a chunk, so delivery
  // relies on the producer-exit flush.
  CountingLogic consumer_logic(1);
  Operation consumer(MakeConfig(1, 1), &consumer_logic, DataOutput{});
  BurstLogic producer_logic(3);
  DataOutput output;
  output.consumer = &consumer;
  OperationConfig producer_config = MakeConfig(1, 1);
  producer_config.chunk_size = 100;
  Operation producer(producer_config, &producer_logic, output);
  producer.AddProducer();
  consumer.AddProducer();
  producer.Start();
  consumer.Start();
  producer.PushTrigger(0);
  producer.ProducerDone();
  producer.Join();
  consumer.ProducerDone();
  consumer.Join();
  EXPECT_EQ(consumer_logic.total(), 3u);
  EXPECT_EQ(consumer.stats().activations, 1u);  // One residual chunk.
}

TEST(OperationTest, PushNotifyStressSingleThreadBoundedQueue) {
  // Regression stress for the lost-wakeup race: PushData's pending_
  // increment and notify must pair with wait_mu_, or a single worker that
  // just evaluated its wait predicate can sleep through the last
  // activation while the producer blocks on the full bounded queue —
  // deadlocking the pipeline. Many short rounds maximize the window.
  for (int round = 0; round < 200; ++round) {
    CountingLogic logic(1);
    OperationConfig config = MakeConfig(1, 1);
    config.cache_size = 1;
    config.queue_capacity = 1;
    Operation op(config, &logic, DataOutput{});
    op.AddProducer();
    op.Start();
    for (int64_t k = 0; k < 50; ++k) {
      op.PushData(0, Tuple({Value(k)}));
    }
    op.ProducerDone();
    op.Join();
    ASSERT_EQ(logic.total(), 50u) << "round " << round;
  }
}

TEST(OperationTest, DestructorWithoutJoinReleasesWorkers) {
  // Regression for a lost wakeup in ~Operation: the producers_done_ store
  // and notify were unpaired with wait_mu_, so a worker that had just
  // evaluated its wait predicate could sleep through the shutdown signal
  // and hang the destructor's Join forever. Many short rounds under TSan
  // maximize the window between the predicate check and the wait.
  for (int round = 0; round < 200; ++round) {
    CountingLogic logic(2);
    OperationConfig config = MakeConfig(2, 2);
    config.cache_size = 1;
    Operation op(config, &logic, DataOutput{});
    op.AddProducer();
    op.Start();
    for (int64_t k = 0; k < 8; ++k) {
      op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
    }
    // No ProducerDone, no Join: the destructor must shut the pool down.
  }
}

TEST(OperationTest, DroppedUnitsCountedOnClosedQueues) {
  // Pushes racing a shutdown used to vanish with only a log line. They must
  // be counted, tuple-denominated (a chunk counts its tuples).
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 1), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  op.PushData(0, Tuple({Value(int64_t{1})}));
  op.ProducerDone();  // Closes the queues.
  op.Join();
  op.PushData(0, Tuple({Value(int64_t{2})}));   // Dropped: 1 unit.
  op.PushTrigger(1);                            // Dropped: 1 unit.
  TupleChunk chunk;
  for (int64_t k = 0; k < 5; ++k) chunk.push_back(Tuple({Value(k)}));
  op.PushDataChunk(1, std::move(chunk));        // Dropped: 5 units.
  const OperationStats stats = op.stats();
  EXPECT_EQ(stats.dropped, 7u);
  EXPECT_EQ(logic.total(), 1u);  // Only the pre-close push was processed.
}

TEST(OperationTest, NothingDroppedOnCleanShutdown) {
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 100; ++k) {
    op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(op.stats().dropped, 0u);
}

TEST(OperationTest, BusyTimeAccountingConsistent) {
  // busy_seconds is the sum of per-thread processing time; the old
  // wall-clock span survives separately as wall_span_seconds. Each
  // thread's busy share is bounded by the operation's span, and busy+idle
  // per thread never exceeds it either (lifetime <= span by definition).
  CountingLogic logic(4);
  Operation op(MakeConfig(4, 3), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 2'000; ++k) {
    op.PushData(static_cast<size_t>(k) % 4, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  ASSERT_EQ(stats.per_thread_busy_seconds.size(), 3u);
  ASSERT_EQ(stats.per_thread_idle_seconds.size(), 3u);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GT(stats.wall_span_seconds, 0.0);
  double sum = 0.0;
  const double slack = 1e-4;  // Clock-read granularity.
  for (size_t t = 0; t < 3; ++t) {
    const double busy = stats.per_thread_busy_seconds[t];
    const double idle = stats.per_thread_idle_seconds[t];
    EXPECT_GE(busy, 0.0);
    EXPECT_GE(idle, 0.0);
    EXPECT_LE(busy, stats.wall_span_seconds + slack);
    EXPECT_LE(busy + idle, stats.wall_span_seconds + slack);
    sum += busy;
  }
  EXPECT_NEAR(stats.busy_seconds, sum, 1e-9);
  // With 3 threads the summed processing time may legitimately exceed the
  // span; it must never exceed threads * span.
  EXPECT_LE(stats.busy_seconds, 3.0 * stats.wall_span_seconds + slack);
}

TEST(OperationTest, QueueAcquisitionSplitCountsEveryBatch) {
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 2), &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 300; ++k) {
    op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  const uint64_t batches =
      stats.main_queue_acquisitions + stats.secondary_queue_acquisitions;
  // Every activation arrives in some acquired batch of >= 1 activation.
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, stats.activations);
  EXPECT_EQ(stats.activations, 300u);
}

TEST(OperationTest, PeakQueueUnitsSeesPreloadedBacklog) {
  CountingLogic logic(2);
  Operation op(MakeConfig(2, 1), &logic, DataOutput{});
  op.AddProducer();
  // Everything queued on instance 0 before any worker runs: the high-water
  // mark must see the full backlog.
  for (int64_t k = 0; k < 40; ++k) op.PushData(0, Tuple({Value(k)}));
  op.ProducerDone();
  op.Start();
  op.Join();
  EXPECT_EQ(op.stats().peak_queue_units, 40u);
}

TEST(OperationTest, TracerRecordsSpansCoveringAllUnits) {
  ActivationTracer tracer;
  CountingLogic logic(2);
  OperationConfig config = MakeConfig(2, 2);
  config.tracer = &tracer;
  Operation op(config, &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  for (int64_t k = 0; k < 64; ++k) {
    op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  const std::vector<uint64_t> units = tracer.UnitsPerInstance("test-op");
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0] + units[1], 64u);
  // The tracer-side busy time and the stats-side busy time measure the
  // same spans, so they agree to clock granularity.
  const std::vector<double> traced = tracer.BusySecondsPerThread("test-op");
  const OperationStats stats = op.stats();
  double traced_sum = 0.0;
  for (double s : traced) traced_sum += s;
  EXPECT_NEAR(traced_sum, stats.busy_seconds, 1e-3);
}

TEST(OperationTest, BoundedQueuesApplyBackpressure) {
  CountingLogic logic(2);
  OperationConfig config = MakeConfig(2, 1);
  config.queue_capacity = 4;
  Operation op(config, &logic, DataOutput{});
  op.AddProducer();
  op.Start();
  // 1000 pushes through capacity-4 queues must all complete (consumer
  // drains concurrently).
  for (int64_t k = 0; k < 1'000; ++k) {
    op.PushData(static_cast<size_t>(k) % 2, Tuple({Value(k)}));
  }
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(logic.total(), 1'000u);
}

}  // namespace
}  // namespace dbs3

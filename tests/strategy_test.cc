#include "engine/strategy.h"

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(StrategyTest, Names) {
  EXPECT_STREQ(StrategyName(Strategy::kRandom), "Random");
  EXPECT_STREQ(StrategyName(Strategy::kLpt), "LPT");
}

TEST(StrategyTest, RandomOrderIsIdentity) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kRandom, {3.0, 1.0, 2.0}, 3);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(StrategyTest, LptOrdersByDecreasingEstimate) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {1.0, 5.0, 3.0, 4.0}, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 3, 2, 0}));
}

TEST(StrategyTest, LptWithoutEstimatesIsIdentity) {
  const std::vector<uint32_t> order = QueueVisitOrder(Strategy::kLpt, {}, 3);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(StrategyTest, LptStableOnTies) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {2.0, 2.0, 2.0, 9.0}, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{3, 0, 1, 2}));
}

TEST(StrategyTest, ShortEstimateVectorTreatsMissingAsZero) {
  // More queues than estimates: the un-estimated queues sort last.
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {1.0, 2.0}, 4);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

TEST(StrategyTest, PermutationCoversAllQueues) {
  for (size_t n : {1ul, 7ul, 200ul}) {
    std::vector<double> estimates(n);
    for (size_t i = 0; i < n; ++i) estimates[i] = static_cast<double>(i % 13);
    const std::vector<uint32_t> order =
        QueueVisitOrder(Strategy::kLpt, estimates, n);
    std::vector<bool> seen(n, false);
    for (uint32_t q : order) {
      ASSERT_LT(q, n);
      EXPECT_FALSE(seen[q]);
      seen[q] = true;
    }
  }
}

}  // namespace
}  // namespace dbs3

#include "engine/strategy.h"

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(StrategyTest, Names) {
  EXPECT_STREQ(StrategyName(Strategy::kRandom), "Random");
  EXPECT_STREQ(StrategyName(Strategy::kLpt), "LPT");
}

TEST(StrategyTest, RandomOrderIsIdentity) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kRandom, {3.0, 1.0, 2.0}, 3);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(StrategyTest, LptOrdersByDecreasingEstimate) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {1.0, 5.0, 3.0, 4.0}, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 3, 2, 0}));
}

TEST(StrategyTest, LptWithoutEstimatesIsIdentity) {
  const std::vector<uint32_t> order = QueueVisitOrder(Strategy::kLpt, {}, 3);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(StrategyTest, LptStableOnTies) {
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {2.0, 2.0, 2.0, 9.0}, 4);
  EXPECT_EQ(order, (std::vector<uint32_t>{3, 0, 1, 2}));
}

TEST(StrategyTest, ShortEstimateVectorTreatsMissingAsZero) {
  // More queues than estimates: the un-estimated queues sort last.
  const std::vector<uint32_t> order =
      QueueVisitOrder(Strategy::kLpt, {1.0, 2.0}, 4);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

TEST(StrategyTest, LiveLptOrdersByLiveUnitsNotEstimates) {
  // Queue 0 had the largest estimate but is drained; queue 2 backs up. The
  // live order must follow the live load, not the stale estimate.
  const std::vector<uint32_t> order =
      LiveLptOrder(/*live_units=*/{0, 3, 50}, /*estimates=*/{9.0, 2.0, 1.0},
                   /*start=*/0);
  EXPECT_EQ(order, (std::vector<uint32_t>{2, 1, 0}));
}

TEST(StrategyTest, LiveLptBreaksTiesByEstimate) {
  // Equal live load: fall back to the static LPT order.
  const std::vector<uint32_t> order =
      LiveLptOrder({5, 5, 5}, {1.0, 7.0, 3.0}, /*start=*/0);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 0}));
}

TEST(StrategyTest, LiveLptRotatesFullTiesByStart) {
  // All queues identical: the rotated scan start spreads concurrent
  // stealers over the queues instead of herding them onto queue 0.
  EXPECT_EQ(LiveLptOrder({4, 4, 4, 4}, {}, 0),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(LiveLptOrder({4, 4, 4, 4}, {}, 2),
            (std::vector<uint32_t>{2, 3, 0, 1}));
  EXPECT_EQ(LiveLptOrder({4, 4, 4, 4}, {}, 5),
            (std::vector<uint32_t>{1, 2, 3, 0}));
}

TEST(StrategyTest, LiveLptEmptyQueuesSortLast) {
  // Empty queues trail everything, so a scan that pops the first non-empty
  // entry doubles as a full fallback sweep.
  const std::vector<uint32_t> order =
      LiveLptOrder({0, 1, 0, 2}, {5.0, 1.0, 4.0, 1.0}, /*start=*/0);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 1u);
  // The two empties keep estimate order among themselves.
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 2u);
}

TEST(StrategyTest, LiveLptIsPermutation) {
  for (size_t start : {0ul, 3ul, 11ul}) {
    std::vector<size_t> live(17);
    std::vector<double> estimates(17);
    for (size_t i = 0; i < live.size(); ++i) {
      live[i] = i % 5;
      estimates[i] = static_cast<double>(i % 3);
    }
    const std::vector<uint32_t> order = LiveLptOrder(live, estimates, start);
    std::vector<bool> seen(live.size(), false);
    ASSERT_EQ(order.size(), live.size());
    for (uint32_t q : order) {
      ASSERT_LT(q, live.size());
      EXPECT_FALSE(seen[q]);
      seen[q] = true;
    }
  }
}

TEST(StrategyTest, PermutationCoversAllQueues) {
  for (size_t n : {1ul, 7ul, 200ul}) {
    std::vector<double> estimates(n);
    for (size_t i = 0; i < n; ++i) estimates[i] = static_cast<double>(i % 13);
    const std::vector<uint32_t> order =
        QueueVisitOrder(Strategy::kLpt, estimates, n);
    std::vector<bool> seen(n, false);
    for (uint32_t q : order) {
      ASSERT_LT(q, n);
      EXPECT_FALSE(seen[q]);
      seen[q] = true;
    }
  }
}

}  // namespace
}  // namespace dbs3

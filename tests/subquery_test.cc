#include "sched/subquery.h"

#include <numeric>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(SubqueryTreeTest, RootDetection) {
  SubqueryTree tree;
  const size_t a = tree.AddNode("a", 1.0);
  const size_t b = tree.AddNode("b", 1.0);
  ASSERT_TRUE(tree.AddChild(a, b).ok());
  auto root = tree.Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), a);
}

TEST(SubqueryTreeTest, MultipleRootsRejected) {
  SubqueryTree tree;
  tree.AddNode("a", 1.0);
  tree.AddNode("b", 1.0);
  EXPECT_FALSE(tree.Root().ok());
}

TEST(SubqueryTreeTest, DoubleParentRejected) {
  SubqueryTree tree;
  const size_t a = tree.AddNode("a", 1.0);
  const size_t b = tree.AddNode("b", 1.0);
  const size_t c = tree.AddNode("c", 1.0);
  ASSERT_TRUE(tree.AddChild(a, c).ok());
  EXPECT_EQ(tree.AddChild(b, c).code(), StatusCode::kFailedPrecondition);
}

TEST(SubqueryTreeTest, SubtreeComplexitySums) {
  SubqueryTree tree;
  const size_t root = tree.AddNode("root", 5.0);
  const size_t left = tree.AddNode("left", 3.0);
  const size_t leaf = tree.AddNode("leaf", 2.0);
  ASSERT_TRUE(tree.AddChild(root, left).ok());
  ASSERT_TRUE(tree.AddChild(left, leaf).ok());
  EXPECT_DOUBLE_EQ(tree.SubtreeComplexity(root), 10.0);
  EXPECT_DOUBLE_EQ(tree.SubtreeComplexity(left), 5.0);
  EXPECT_DOUBLE_EQ(tree.SubtreeComplexity(leaf), 2.0);
}

TEST(SubqueryTreeTest, PaperFigure5Equations) {
  // The paper's example (Figure 5, step 2): Sq5 is the root with children
  // Sq3 and Sq4; Sq3 has children Sq1 and Sq2. The solved system is
  //   N5 = N
  //   N3 + N4 = N5,  (T1+T2+T3)/N3 = T4/N4
  //   N1 + N2 = N3,  T1/N1 = T2/N2.
  SubqueryTree tree;
  const size_t sq1 = tree.AddNode("Sq1", 10.0);
  const size_t sq2 = tree.AddNode("Sq2", 30.0);
  const size_t sq3 = tree.AddNode("Sq3", 20.0);
  const size_t sq4 = tree.AddNode("Sq4", 40.0);
  const size_t sq5 = tree.AddNode("Sq5", 15.0);
  ASSERT_TRUE(tree.AddChild(sq5, sq3).ok());
  ASSERT_TRUE(tree.AddChild(sq5, sq4).ok());
  ASSERT_TRUE(tree.AddChild(sq3, sq1).ok());
  ASSERT_TRUE(tree.AddChild(sq3, sq2).ok());

  const double n = 50.0;
  auto threads = tree.SolveThreadAllocation(n);
  ASSERT_TRUE(threads.ok());
  const std::vector<double>& t = threads.value();

  EXPECT_DOUBLE_EQ(t[sq5], n);                      // N5 = N.
  EXPECT_NEAR(t[sq3] + t[sq4], t[sq5], 1e-9);       // N3 + N4 = N5.
  // (T1+T2+T3)/N3 = T4/N4.
  EXPECT_NEAR((10.0 + 30.0 + 20.0) / t[sq3], 40.0 / t[sq4], 1e-9);
  EXPECT_NEAR(t[sq1] + t[sq2], t[sq3], 1e-9);       // N1 + N2 = N3.
  EXPECT_NEAR(10.0 / t[sq1], 30.0 / t[sq2], 1e-9);  // T1/N1 = T2/N2.
}

TEST(SubqueryTreeTest, SingleNodeGetsEverything) {
  SubqueryTree tree;
  const size_t only = tree.AddNode("only", 7.0);
  auto threads = tree.SolveThreadAllocation(12.0);
  ASSERT_TRUE(threads.ok());
  EXPECT_DOUBLE_EQ(threads.value()[only], 12.0);
}

TEST(SubqueryTreeTest, ZeroThreadsRejected) {
  SubqueryTree tree;
  tree.AddNode("only", 7.0);
  EXPECT_FALSE(tree.SolveThreadAllocation(0.0).ok());
}

TEST(SplitChainThreadsTest, ProportionalToComplexity) {
  const std::vector<size_t> t = SplitChainThreads({10.0, 30.0}, 8);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], 2u);
  EXPECT_EQ(t[1], 6u);
}

TEST(SplitChainThreadsTest, SumsToTotal) {
  for (size_t total : {3ul, 7ul, 20ul, 100ul}) {
    const std::vector<size_t> t =
        SplitChainThreads({1.0, 2.0, 3.5}, total);
    EXPECT_EQ(std::accumulate(t.begin(), t.end(), 0ul),
              std::max(total, t.size()));
  }
}

TEST(SplitChainThreadsTest, EveryOperatorGetsAtLeastOne) {
  const std::vector<size_t> t =
      SplitChainThreads({0.0001, 1000.0, 0.0001}, 10);
  for (size_t v : t) EXPECT_GE(v, 1u);
  EXPECT_EQ(std::accumulate(t.begin(), t.end(), 0ul), 10ul);
}

TEST(SplitChainThreadsTest, MoreOperatorsThanThreads) {
  const std::vector<size_t> t = SplitChainThreads({1.0, 1.0, 1.0, 1.0}, 2);
  for (size_t v : t) EXPECT_EQ(v, 1u);  // Floor of one each.
}

TEST(SplitChainThreadsTest, ZeroComplexitySpreadEvenly) {
  const std::vector<size_t> t = SplitChainThreads({0.0, 0.0}, 6);
  EXPECT_EQ(t[0], 3u);
  EXPECT_EQ(t[1], 3u);
}

TEST(SplitChainThreadsTest, EmptyChain) {
  EXPECT_TRUE(SplitChainThreads({}, 5).empty());
}

}  // namespace
}  // namespace dbs3

#include "model/analysis.h"

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace dbs3 {
namespace {

TEST(ModelTest, ProfileFromCosts) {
  const OperationProfile p = ProfileFromCosts({1.0, 2.0, 3.0, 6.0});
  EXPECT_EQ(p.activations, 4u);
  EXPECT_DOUBLE_EQ(p.mean_cost, 3.0);
  EXPECT_DOUBLE_EQ(p.max_cost, 6.0);
  EXPECT_DOUBLE_EQ(p.TotalWork(), 12.0);
}

TEST(ModelTest, EmptyProfile) {
  const OperationProfile p = ProfileFromCosts({});
  EXPECT_EQ(p.activations, 0u);
  EXPECT_EQ(p.TotalWork(), 0.0);
  EXPECT_EQ(NMax(p), 0.0);
}

TEST(ModelTest, TIdealDividesWork) {
  const OperationProfile p = ProfileFromCosts({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(TIdeal(p, 1), 8.0);
  EXPECT_DOUBLE_EQ(TIdeal(p, 4), 2.0);
}

TEST(ModelTest, TWorstEquationTwo) {
  // Tworst = (a*P - Pmax)/n + Pmax.
  const OperationProfile p = ProfileFromCosts({1.0, 1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(TWorst(p, 2), (8.0 - 5.0) / 2.0 + 5.0);
  // With one thread, worst == ideal == total.
  EXPECT_DOUBLE_EQ(TWorst(p, 1), 8.0);
  EXPECT_DOUBLE_EQ(TIdeal(p, 1), 8.0);
}

TEST(ModelTest, OverheadBoundEquationThree) {
  // v <= (Pmax/P) * (n-1) / a.
  const OperationProfile p = ProfileFromCosts({1.0, 1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(OverheadBound(p, 3), (5.0 / 2.0) * 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(OverheadBound(p, 1), 0.0);
}

TEST(ModelTest, WorstConsistentWithOverheadBound) {
  // Tworst <= (1 + v) * Tideal must hold by construction.
  const OperationProfile p = ProfileFromCosts({1, 2, 3, 4, 5, 6, 7, 20});
  for (size_t n : {1ul, 2ul, 4ul, 8ul}) {
    EXPECT_LE(TWorst(p, n), (1.0 + OverheadBound(p, n)) * TIdeal(p, n) + 1e-9)
        << "n = " << n;
  }
}

TEST(ModelTest, NMaxIsWorkOverMax) {
  const OperationProfile p = ProfileFromCosts({1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(NMax(p), 4.0 / 2.0);
}

TEST(ModelTest, PredictedSpeedupLinearThenCapped) {
  // 100 equal activations of cost 1: linear until the processor count.
  std::vector<double> costs(100, 1.0);
  const OperationProfile p = ProfileFromCosts(costs);
  EXPECT_DOUBLE_EQ(PredictedSpeedup(p, 10, 70), 10.0);
  EXPECT_DOUBLE_EQ(PredictedSpeedup(p, 70, 70), 70.0);
  EXPECT_DOUBLE_EQ(PredictedSpeedup(p, 100, 70), 70.0);
}

TEST(ModelTest, PredictedSpeedupCappedByLongestActivation) {
  // Pmax = 10 out of total 20: speedup can never exceed 2.
  const OperationProfile p = ProfileFromCosts({10.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(PredictedSpeedup(p, 64, 64), 2.0);
  EXPECT_DOUBLE_EQ(PredictedSpeedup(p, 1, 64), 1.0);
}

TEST(ModelTest, ZipfProfileMatchesPaperAnchors) {
  // Section 5.5 footnote: Zipf = 1 over 200 buckets -> Pmax = 34 P, and
  // with 70 threads over 20,000 activations v = 0.117.
  const OperationProfile p = ZipfProfile(1000.0, 200, 1.0);
  EXPECT_NEAR(p.max_cost / p.mean_cost, 34.0, 0.5);

  OperationProfile pipelined = p;
  pipelined.activations = 20'000;
  pipelined.mean_cost = 1000.0 / 20'000.0;
  // Keep the same Pmax/P ratio by scaling max_cost accordingly.
  pipelined.max_cost = 34.0 * pipelined.mean_cost;
  EXPECT_NEAR(OverheadBound(pipelined, 70), 0.117, 0.005);
}

TEST(ModelTest, NMaxAnchorsFromFigure15) {
  // nmax = a*P/Pmax = 200/(Pmax/P): 6 at Zipf 1, 19 at 0.6, 40 at 0.4.
  EXPECT_NEAR(NMax(ZipfProfile(1.0, 200, 1.0)), 6.0, 0.3);
  EXPECT_NEAR(NMax(ZipfProfile(1.0, 200, 0.6)), 19.0, 1.0);
  EXPECT_NEAR(NMax(ZipfProfile(1.0, 200, 0.4)), 40.0, 2.0);
}

TEST(ModelTest, ZipfProfilePreservesTotalWork) {
  for (double theta : {0.0, 0.5, 1.0}) {
    const OperationProfile p = ZipfProfile(500.0, 64, theta);
    EXPECT_NEAR(p.TotalWork(), 500.0, 1e-6) << "theta " << theta;
  }
}

/// Property sweep: Tideal <= Tworst, and the overhead bound shrinks as
/// activations multiply (the paper's pipelined-absorbs-skew argument).
class ModelPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(ModelPropertyTest, BoundsOrdered) {
  const auto [theta, n] = GetParam();
  const OperationProfile coarse = ZipfProfile(100.0, 200, theta);
  const OperationProfile fine = ZipfProfile(100.0, 20'000, theta);
  EXPECT_LE(TIdeal(coarse, n), TWorst(coarse, n) + 1e-12);
  EXPECT_LE(TIdeal(fine, n), TWorst(fine, n) + 1e-12);
  // More activations => smaller worst-case overhead at equal skew.
  EXPECT_LE(OverheadBound(fine, n), OverheadBound(coarse, n) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndThreads, ModelPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.4, 0.8, 1.0),
                       ::testing::Values(1ul, 10ul, 70ul)));

}  // namespace
}  // namespace dbs3

// Tests of the observability layer: the metrics registry (including its
// thread-safety contract, exercised under the CI TSan job), the background
// sampler, and the activation tracer's Chrome trace_event output.

#include "common/metrics.h"

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"

namespace dbs3 {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndSnapshot) {
  MetricsRegistry registry;
  registry.counter("a")->Add(3);
  registry.counter("a")->Add(4);
  registry.counter("b")->Add(1);
  registry.gauge("g")->Set(-7);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("a"), 7u);
  EXPECT_EQ(snap.counters.at("b"), 1u);
  EXPECT_EQ(snap.gauges.at("g"), -7);
  EXPECT_NE(snap.ToString().find("a 7"), std::string::npos);
}

TEST(MetricsRegistryTest, CounterPointersAreStableAcrossGrowth) {
  MetricsRegistry registry;
  MetricCounter* first = registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler-" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("first"), first);
  first->Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("first"), 1u);
}

TEST(MetricsRegistryTest, ProbesAreSampledIntoSeries) {
  MetricsRegistry registry;
  int64_t depth = 5;
  registry.RegisterProbe("q", [&] { return depth; });
  registry.SamplePass();
  depth = 2;
  registry.SamplePass();
  depth = 9;
  registry.SamplePass();
  const SeriesStats s = registry.Snapshot().series.at("q");
  EXPECT_EQ(s.samples, 3u);
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 9);
  EXPECT_EQ(s.last, 9);
  EXPECT_DOUBLE_EQ(s.mean(), (5.0 + 2.0 + 9.0) / 3.0);
}

TEST(MetricsRegistryTest, ClearProbesKeepsSampledSeries) {
  // The executor clears probes once the operations they point into are
  // about to die, but the collected series must survive into the snapshot.
  MetricsRegistry registry;
  registry.RegisterProbe("q", [] { return int64_t{4}; });
  registry.SamplePass();
  registry.ClearProbes();
  registry.SamplePass();  // Must not call the cleared probe.
  const SeriesStats s = registry.Snapshot().series.at("q");
  EXPECT_EQ(s.samples, 1u);
  EXPECT_EQ(s.last, 4);
}

TEST(MetricsRegistryTest, ConcurrentWritersAndSamplerAreRaceFree) {
  // The TSan contract of the whole layer: writer threads hammering counters
  // and gauges while a sampler thread runs probe passes and snapshots.
  MetricsRegistry registry;
  std::atomic<int64_t> live{0};
  registry.RegisterProbe("live", [&] { return live.load(); });
  MetricsSampler sampler(&registry, std::chrono::microseconds(50));
  sampler.Start();

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5'000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &live, w] {
      MetricCounter* own = registry.counter("w" + std::to_string(w));
      MetricCounter* shared = registry.counter("shared");
      for (int i = 0; i < kPerWriter; ++i) {
        own->Add(1);
        shared->Add(1);
        live.fetch_add(1);
        registry.gauge("last_writer")->Set(w);
      }
    });
  }
  for (auto& t : writers) t.join();
  sampler.Stop();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(snap.counters.at("w" + std::to_string(w)),
              static_cast<uint64_t>(kPerWriter));
  }
}

TEST(MetricsSamplerTest, StartStopAreIdempotent) {
  MetricsRegistry registry;
  registry.RegisterProbe("p", [] { return int64_t{1}; });
  MetricsSampler sampler(&registry, std::chrono::microseconds(100));
  sampler.Stop();  // Stop before start: no-op.
  sampler.Start();
  sampler.Start();  // Second start: no second thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.Stop();
  sampler.Stop();
  const uint64_t samples = registry.Snapshot().series.at("p").samples;
  EXPECT_GE(samples, 1u);
  // Restart works after a stop.
  sampler.Start();
  sampler.Stop();
  EXPECT_GE(registry.Snapshot().series.at("p").samples, samples);
}

TEST(MetricsSamplerTest, ConcurrentStartStopNeverLeaksTheLoop) {
  // Regression test: Start() used to race Stop()'s join window — a Start
  // that slipped in between Stop's stop_=true and its join() reset the
  // stop flag under the old loop, leaving a sampler thread running forever
  // and the next Stop() hung. Two threads hammering Start/Stop must
  // terminate, and after the final Stop no further samples may appear.
  MetricsRegistry registry;
  registry.RegisterProbe("p", [] { return int64_t{1}; });
  MetricsSampler sampler(&registry, std::chrono::microseconds(20));

  std::atomic<bool> go{false};
  std::thread starter([&] {
    while (!go.load()) {
    }
    for (int i = 0; i < 200; ++i) sampler.Start();
  });
  std::thread stopper([&] {
    while (!go.load()) {
    }
    for (int i = 0; i < 200; ++i) sampler.Stop();
  });
  go.store(true);
  starter.join();
  stopper.join();

  sampler.Stop();  // Whatever the interleaving left behind, shut it down.
  const uint64_t settled = registry.Snapshot().series.at("p").samples;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(registry.Snapshot().series.at("p").samples, settled)
      << "a sampler loop survived Stop()";
}

/// Minimal JSON well-formedness walker: validates balanced braces/brackets,
/// string escapes, and that top-level content is one object. Not a parser —
/// just enough to catch emission bugs (unescaped quotes, trailing commas
/// are caught structurally below).
bool JsonWellFormed(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        prev_significant = c;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        if (prev_significant == ',') return false;  // Trailing comma.
        stack.pop_back();
        prev_significant = c;
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        if (prev_significant == ',') return false;
        stack.pop_back();
        prev_significant = c;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_significant = c;
        }
    }
  }
  return stack.empty() && !in_string;
}

TEST(ActivationTracerTest, ChromeJsonIsWellFormed) {
  ActivationTracer tracer;
  const auto origin = tracer.origin();
  TraceBuffer* b0 = tracer.AddBuffer("scan \"weird\\name\"", 0);
  TraceBuffer* b1 = tracer.AddBuffer("join", 3);
  using std::chrono::microseconds;
  b0->Record(0, origin + microseconds(10), origin + microseconds(25), 4, 1);
  b0->Record(1, origin + microseconds(30), origin + microseconds(31), 1, 1);
  b1->Record(7, origin + microseconds(5), origin + microseconds(500), 64, 8);
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The escaped operation name round-trips without breaking the JSON.
  EXPECT_NE(json.find("scan \\\"weird\\\\name\\\""), std::string::npos);
}

TEST(ActivationTracerTest, EmptyTracerStillEmitsValidJson) {
  ActivationTracer tracer;
  const std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST(ActivationTracerTest, AggregatesBusyTimeAndUnits) {
  ActivationTracer tracer;
  const auto origin = tracer.origin();
  TraceBuffer* t0 = tracer.AddBuffer("op", 0);
  TraceBuffer* t1 = tracer.AddBuffer("op", 1);
  tracer.AddBuffer("other", 0)->Record(0, origin, origin, 100, 1);
  using std::chrono::microseconds;
  t0->Record(0, origin, origin + microseconds(1000), 10, 2);
  t0->Record(2, origin + microseconds(2000), origin + microseconds(2500), 5,
             1);
  t1->Record(2, origin + microseconds(100), origin + microseconds(600), 7, 1);

  const std::vector<double> busy = tracer.BusySecondsPerThread("op");
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_NEAR(busy[0], 1.5e-3, 1e-12);
  EXPECT_NEAR(busy[1], 0.5e-3, 1e-12);

  const std::vector<uint64_t> units = tracer.UnitsPerInstance("op");
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], 10u);
  EXPECT_EQ(units[1], 0u);
  EXPECT_EQ(units[2], 12u);  // 5 from thread 0 + 7 from thread 1.
}

TEST(ActivationTracerTest, ConcurrentAddBufferIsRaceFree) {
  // Worker threads create their buffers concurrently on startup; buffer
  // creation must serialize while the returned buffers stay single-writer.
  ActivationTracer tracer;
  const auto origin = tracer.origin();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, origin, t] {
      TraceBuffer* buffer =
          tracer.AddBuffer("op" + std::to_string(t % 2),
                           static_cast<uint32_t>(t));
      for (int i = 0; i < 1'000; ++i) {
        buffer->Record(static_cast<uint32_t>(i % 4), origin, origin, 1, 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (uint64_t u : tracer.UnitsPerInstance("op0")) total += u;
  for (uint64_t u : tracer.UnitsPerInstance("op1")) total += u;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 1'000u);
  EXPECT_TRUE(JsonWellFormed(tracer.ToChromeJson()));
}

}  // namespace
}  // namespace dbs3

#include "engine/blocking_operators.h"

#include <mutex>

#include <gtest/gtest.h>

#include "common/memory_quota.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/executor.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

class CapturingEmitter : public Emitter {
 public:
  void Emit(size_t producer_instance, Tuple tuple) override {
    std::lock_guard<std::mutex> lock(mu_);
    emitted_.emplace_back(producer_instance, std::move(tuple));
  }
  std::vector<std::pair<size_t, Tuple>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(emitted_);
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<size_t, Tuple>> emitted_;
};

Tuple Row(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }

TEST(GroupByLogicTest, CountSumMinMax) {
  GroupByLogic group(
      0, {{AggKind::kCount, 0}, {AggKind::kSum, 1}, {AggKind::kMin, 1},
          {AggKind::kMax, 1}});
  ASSERT_TRUE(group.Prepare(1).ok());
  group.OnData(0, Row(1, 10), nullptr);
  group.OnData(0, Row(1, 30), nullptr);
  group.OnData(0, Row(2, -5), nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 2u);  // Groups 1 and 2 (map order: ascending).
  const Tuple& g1 = rows[0].second;
  EXPECT_EQ(g1.at(0).AsInt(), 1);
  EXPECT_EQ(g1.at(1).AsInt(), 2);   // count
  EXPECT_EQ(g1.at(2).AsInt(), 40);  // sum
  EXPECT_EQ(g1.at(3).AsInt(), 10);  // min
  EXPECT_EQ(g1.at(4).AsInt(), 30);  // max
  const Tuple& g2 = rows[1].second;
  EXPECT_EQ(g2.at(0).AsInt(), 2);
  EXPECT_EQ(g2.at(1).AsInt(), 1);
  EXPECT_EQ(g2.at(2).AsInt(), -5);
  EXPECT_EQ(g2.at(3).AsInt(), -5);
  EXPECT_EQ(g2.at(4).AsInt(), -5);
}

TEST(GroupByLogicTest, InstancesIsolated) {
  GroupByLogic group(0, {{AggKind::kCount, 0}});
  ASSERT_TRUE(group.Prepare(2).ok());
  group.OnData(0, Row(7, 0), nullptr);
  group.OnData(1, Row(7, 0), nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  group.OnFinish(1, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 2u);  // One group per instance (no merge).
  EXPECT_EQ(rows[0].first, 0u);
  EXPECT_EQ(rows[1].first, 1u);
}

TEST(GroupByLogicTest, FinishTwiceEmitsNothingSecondTime) {
  GroupByLogic group(0, {{AggKind::kCount, 0}});
  ASSERT_TRUE(group.Prepare(1).ok());
  group.OnData(0, Row(1, 1), nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  EXPECT_EQ(out.take().size(), 1u);
  group.OnFinish(0, &out);
  EXPECT_TRUE(out.take().empty());
}

TEST(GroupByLogicTest, MinMaxOverStringOnlyColumnEmitsSentinelNotZero) {
  // Group 1's aggregate column never holds an int: min/max must emit the
  // empty-string sentinel (ranked above every int in Value's total order),
  // not a fabricated 0. Sum stays 0 — an empty sum is genuinely zero.
  GroupByLogic group(
      0, {{AggKind::kMin, 1}, {AggKind::kMax, 1}, {AggKind::kSum, 1}});
  ASSERT_TRUE(group.Prepare(1).ok());
  group.OnData(0, Tuple({Value(int64_t{1}), Value(std::string("x"))}),
               nullptr);
  group.OnData(0, Tuple({Value(int64_t{1}), Value(std::string("y"))}),
               nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 1u);
  const Tuple& g = rows[0].second;
  EXPECT_EQ(g.at(1).AsString(), "");  // min sentinel
  EXPECT_EQ(g.at(2).AsString(), "");  // max sentinel
  EXPECT_EQ(g.at(3).AsInt(), 0);      // sum of no ints
}

TEST(GroupByLogicTest, MinMaxIgnoreStringCellsWhenIntsExist) {
  // Mixed column: the strings are skipped, the extrema come from the ints
  // alone (previously a leading string cell left min/max pinned at 0).
  GroupByLogic group(0, {{AggKind::kMin, 1}, {AggKind::kMax, 1}});
  ASSERT_TRUE(group.Prepare(1).ok());
  group.OnData(0, Tuple({Value(int64_t{1}), Value(std::string("noise"))}),
               nullptr);
  group.OnData(0, Tuple({Value(int64_t{1}), Value(int64_t{42})}), nullptr);
  group.OnData(0, Tuple({Value(int64_t{1}), Value(int64_t{17})}), nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second.at(1).AsInt(), 17);
  EXPECT_EQ(rows[0].second.at(2).AsInt(), 42);
}

TEST(SortLogicTest, OverBudgetFailsWithResourceExhausted) {
  MemoryQuota quota(2);
  SortLogic sort(0, SortOrder::kAscending);
  ExecResources resources;
  resources.quota = &quota;
  sort.BindExecution(resources);
  ASSERT_TRUE(sort.Prepare(1).ok());
  sort.OnData(0, Row(3, 0), nullptr);
  sort.OnData(0, Row(1, 1), nullptr);
  sort.OnData(0, Row(2, 2), nullptr);  // Third row: over budget.
  EXPECT_EQ(sort.error().code(), StatusCode::kResourceExhausted);
  CapturingEmitter out;
  sort.OnFinish(0, &out);
  EXPECT_TRUE(out.take().empty());  // A failed sort emits nothing.
  EXPECT_EQ(quota.used(), 0u);      // Buffered rows were released.
}

TEST(GroupByLogicTest, StringGroupKeys) {
  GroupByLogic group(0, {{AggKind::kSum, 1}});
  ASSERT_TRUE(group.Prepare(1).ok());
  group.OnData(0, Tuple({Value(std::string("paris")), Value(int64_t{2})}),
               nullptr);
  group.OnData(0, Tuple({Value(std::string("paris")), Value(int64_t{3})}),
               nullptr);
  group.OnData(0, Tuple({Value(std::string("lyon")), Value(int64_t{1})}),
               nullptr);
  CapturingEmitter out;
  group.OnFinish(0, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 2u);
  // Value ordering puts ints before strings; both keys are strings sorted
  // lexicographically: lyon then paris.
  EXPECT_EQ(rows[0].second.at(0).AsString(), "lyon");
  EXPECT_EQ(rows[1].second.at(0).AsString(), "paris");
  EXPECT_EQ(rows[1].second.at(1).AsInt(), 5);
}

TEST(SortLogicTest, AscendingAndDescending) {
  for (SortOrder order : {SortOrder::kAscending, SortOrder::kDescending}) {
    SortLogic sort(0, order);
    ASSERT_TRUE(sort.Prepare(1).ok());
    sort.OnData(0, Row(3, 0), nullptr);
    sort.OnData(0, Row(1, 1), nullptr);
    sort.OnData(0, Row(2, 2), nullptr);
    CapturingEmitter out;
    sort.OnFinish(0, &out);
    auto rows = out.take();
    ASSERT_EQ(rows.size(), 3u);
    if (order == SortOrder::kAscending) {
      EXPECT_EQ(rows[0].second.at(0).AsInt(), 1);
      EXPECT_EQ(rows[2].second.at(0).AsInt(), 3);
    } else {
      EXPECT_EQ(rows[0].second.at(0).AsInt(), 3);
      EXPECT_EQ(rows[2].second.at(0).AsInt(), 1);
    }
  }
}

TEST(SortLogicTest, StableOnEqualKeys) {
  SortLogic sort(0, SortOrder::kAscending);
  ASSERT_TRUE(sort.Prepare(1).ok());
  sort.OnData(0, Row(1, 100), nullptr);
  sort.OnData(0, Row(1, 200), nullptr);
  CapturingEmitter out;
  sort.OnFinish(0, &out);
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second.at(1).AsInt(), 100);  // Arrival order kept.
  EXPECT_EQ(rows[1].second.at(1).AsInt(), 200);
}

std::unique_ptr<Relation> InnerRelation() {
  auto r = std::make_unique<Relation>(
      "inner", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, 2));
  for (int64_t k : {0, 2, 4, 1}) {
    EXPECT_TRUE(r->Insert(Tuple({Value(k), Value(k)})).ok());
  }
  return r;
}

TEST(SemiJoinTest, EmitsProbeOnMatch) {
  auto inner = InnerRelation();
  PipelinedSemiJoinLogic semi(inner.get(), 0, 0, /*anti=*/false);
  ASSERT_TRUE(semi.Prepare(2).ok());
  CapturingEmitter out;
  semi.OnData(0, Row(2, 99), &out);   // 2 is in fragment 0.
  semi.OnData(0, Row(6, 99), &out);   // 6 is not.
  semi.OnData(1, Row(1, 99), &out);   // 1 is in fragment 1.
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 2u);
  // Probe tuples pass through unchanged (no inner columns).
  EXPECT_EQ(rows[0].second.at(0).AsInt(), 2);
  EXPECT_EQ(rows[0].second.at(1).AsInt(), 99);
  EXPECT_EQ(rows[1].second.at(0).AsInt(), 1);
}

TEST(SemiJoinTest, AntiJoinInverts) {
  auto inner = InnerRelation();
  PipelinedSemiJoinLogic anti(inner.get(), 0, 0, /*anti=*/true);
  ASSERT_TRUE(anti.Prepare(2).ok());
  EXPECT_EQ(anti.name(), "anti-join");
  CapturingEmitter out;
  anti.OnData(0, Row(2, 0), &out);  // Match -> suppressed.
  anti.OnData(0, Row(6, 0), &out);  // No match -> emitted.
  auto rows = out.take();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second.at(0).AsInt(), 6);
}

TEST(BlockingInPlanTest, GroupByThroughExecutor) {
  // End-to-end: scan -> repartition-by-key -> group-by -> store on the real
  // engine, exercising the OnFinish flush between Join and downstream
  // close.
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 10;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  Relation* a = db.relation("A").value();

  Relation result("counts",
                  Schema({{"key", ValueType::kInt64},
                          {"cnt", ValueType::kInt64}}),
                  0, Partitioner(PartitionKind::kHash, 10));
  Plan plan;
  const size_t scan =
      plan.AddNode("scan", ActivationMode::kTriggered, 10,
                   std::make_unique<FilterLogic>(a, MatchAll()));
  const size_t group = plan.AddNode(
      "group", ActivationMode::kPipelined, 10,
      std::make_unique<GroupByLogic>(
          0, std::vector<AggSpec>{{AggKind::kCount, 0}}));
  const size_t store = plan.AddNode(
      "store", ActivationMode::kPipelined, 10,
      std::make_unique<StoreLogic>(&result));
  ASSERT_TRUE(plan.ConnectByColumn(scan, group, 0,
                                   Partitioner(PartitionKind::kHash, 10))
                  .ok());
  ASSERT_TRUE(plan.ConnectSameInstance(group, store).ok());
  for (size_t i = 0; i < plan.num_nodes(); ++i) plan.params(i).threads = 2;

  Executor executor;
  auto run = executor.Run(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // 100 distinct keys (B's key set), counts summing to 1000.
  EXPECT_EQ(result.cardinality(), 100u);
  int64_t total = 0;
  for (const Tuple& t : result.Scan()) total += t.at(1).AsInt();
  EXPECT_EQ(total, 1'000);
}

}  // namespace
}  // namespace dbs3

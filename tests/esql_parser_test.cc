#include "esql/parser.h"

#include <gtest/gtest.h>

#include "esql/lexer.h"

namespace dbs3 {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a, b1 FROM r WHERE x <= -5 AND s = 'hi';");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_EQ(t[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[2].kind, Token::Kind::kSymbol);
  EXPECT_EQ(t[2].text, ",");
  // "<=" lexes as one symbol.
  bool saw_le = false, saw_neg = false, saw_str = false;
  for (const Token& tok : t) {
    if (tok.kind == Token::Kind::kSymbol && tok.text == "<=") saw_le = true;
    if (tok.kind == Token::Kind::kInt && tok.value == -5) saw_neg = true;
    if (tok.kind == Token::Kind::kString && tok.text == "hi") saw_str = true;
  }
  EXPECT_TRUE(saw_le);
  EXPECT_TRUE(saw_neg);
  EXPECT_TRUE(saw_str);
  EXPECT_EQ(t.back().kind, Token::Kind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(ParserTest, MinimalSelect) {
  auto q = ParseEsql("SELECT * FROM residents");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().items.size(), 1u);
  EXPECT_EQ(q.value().items[0].kind, SelectItem::Kind::kStar);
  EXPECT_EQ(q.value().from, "residents");
  EXPECT_TRUE(q.value().joins.empty());
  EXPECT_TRUE(q.value().where.empty());
}

TEST(ParserTest, FullQuery) {
  auto q = ParseEsql(
      "select r.city, count(*) as n, sum(r.income) "
      "from residents join cities on residents.city = cities.name "
      "where r.age >= 18 and cities.country = 'FR' "
      "group by city order by n desc;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const EsqlQuery& query = q.value();
  ASSERT_EQ(query.items.size(), 3u);
  EXPECT_EQ(query.items[0].kind, SelectItem::Kind::kColumn);
  EXPECT_EQ(query.items[0].column.relation, "r");
  EXPECT_EQ(query.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_TRUE(query.items[1].count_star);
  EXPECT_EQ(query.items[1].alias, "n");
  EXPECT_EQ(query.items[2].aggregate, AggKind::kSum);
  ASSERT_EQ(query.joins.size(), 1u);
  EXPECT_EQ(query.joins[0].relation, "cities");
  EXPECT_EQ(query.joins[0].left.ToString(), "residents.city");
  EXPECT_EQ(query.joins[0].right.ToString(), "cities.name");
  ASSERT_EQ(query.where.size(), 2u);
  EXPECT_EQ(query.where[0].op, Comparison::Op::kGe);
  EXPECT_EQ(query.where[0].literal.AsInt(), 18);
  EXPECT_EQ(query.where[1].literal.AsString(), "FR");
  ASSERT_TRUE(query.group_by.has_value());
  EXPECT_EQ(query.group_by->column, "city");
  ASSERT_TRUE(query.order_by.has_value());
  EXPECT_EQ(query.order_by->order, SortOrder::kDescending);
}

TEST(ParserTest, OperatorsAllParse) {
  struct Case {
    const char* text;
    Comparison::Op op;
  };
  const Case cases[] = {
      {"=", Comparison::Op::kEq},  {"<>", Comparison::Op::kNe},
      {"!=", Comparison::Op::kNe}, {"<", Comparison::Op::kLt},
      {"<=", Comparison::Op::kLe}, {">", Comparison::Op::kGt},
      {">=", Comparison::Op::kGe},
  };
  for (const Case& c : cases) {
    auto q = ParseEsql(std::string("SELECT * FROM r WHERE x ") + c.text +
                       " 3");
    ASSERT_TRUE(q.ok()) << c.text;
    EXPECT_EQ(q.value().where[0].op, c.op) << c.text;
  }
}

TEST(ParserTest, ErrorsNamePositionAndExpectation) {
  auto missing_from = ParseEsql("SELECT *");
  ASSERT_FALSE(missing_from.ok());
  EXPECT_NE(missing_from.status().message().find("FROM"), std::string::npos);

  auto bad_agg = ParseEsql("SELECT SUM(*) FROM r");
  ASSERT_FALSE(bad_agg.ok());
  EXPECT_NE(bad_agg.status().message().find("COUNT"), std::string::npos);

  auto trailing = ParseEsql("SELECT * FROM r garbage garbage");
  EXPECT_FALSE(trailing.ok());

  auto no_literal = ParseEsql("SELECT * FROM r WHERE a = b");
  ASSERT_FALSE(no_literal.ok());
  EXPECT_NE(no_literal.status().message().find("literal"),
            std::string::npos);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto q = ParseEsql("sElEcT a FrOm r OrDeR bY a AsC");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().order_by.has_value());
}

TEST(ParserTest, IdentifiersKeepCase) {
  auto q = ParseEsql("SELECT MyCol FROM MyRel");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().items[0].column.column, "MyCol");
  EXPECT_EQ(q.value().from, "MyRel");
}

TEST(ParserTest, ToStringRoundTripsStructure) {
  const std::string text =
      "SELECT city, count(*) AS n FROM residents JOIN cities ON city = "
      "name WHERE age >= 18 GROUP BY city ORDER BY n DESC";
  auto q = ParseEsql(text);
  ASSERT_TRUE(q.ok());
  // Re-parse the rendering; structure must survive.
  auto q2 = ParseEsql(q.value().ToString());
  ASSERT_TRUE(q2.ok()) << q.value().ToString();
  EXPECT_EQ(q2.value().ToString(), q.value().ToString());
}

TEST(ParserTest, AggregatesWithoutParensAreColumns) {
  // "count" used as a plain identifier still works as a column name.
  auto q = ParseEsql("SELECT count FROM r");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().items[0].kind, SelectItem::Kind::kColumn);
  EXPECT_EQ(q.value().items[0].column.column, "count");
}

}  // namespace
}  // namespace dbs3

#include "storage/partitioner.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(PartitionerTest, ModuloRoutesByResidue) {
  Partitioner p(PartitionKind::kModulo, 8);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{0})), 0u);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{7})), 7u);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{8})), 0u);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{13})), 5u);
}

TEST(PartitionerTest, ModuloHandlesNegativeKeys) {
  Partitioner p(PartitionKind::kModulo, 8);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{-1})), 7u);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{-8})), 0u);
  EXPECT_EQ(p.FragmentOf(Value(int64_t{-13})), 3u);
}

TEST(PartitionerTest, ModuloStringFallsBackToHash) {
  Partitioner p(PartitionKind::kModulo, 8);
  const size_t f = p.FragmentOf(Value(std::string("paris")));
  EXPECT_LT(f, 8u);
  EXPECT_EQ(f, p.FragmentOf(Value(std::string("paris"))));
}

TEST(PartitionerTest, EqualityAndToString) {
  Partitioner a(PartitionKind::kHash, 4);
  Partitioner b(PartitionKind::kHash, 4);
  Partitioner c(PartitionKind::kModulo, 4);
  Partitioner d(PartitionKind::kHash, 8);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_EQ(a.ToString(), "hash(4)");
  EXPECT_EQ(c.ToString(), "modulo(4)");
}

/// Property sweep: every key routes inside [0, degree) and identically on
/// repeated calls, for both kinds and several degrees.
class PartitionerPropertyTest
    : public ::testing::TestWithParam<std::tuple<PartitionKind, size_t>> {};

TEST_P(PartitionerPropertyTest, RoutesInRangeAndDeterministically) {
  const auto [kind, degree] = GetParam();
  Partitioner p(kind, degree);
  EXPECT_EQ(p.degree(), degree);
  for (int64_t key = -500; key < 500; ++key) {
    const size_t f = p.FragmentOf(Value(key));
    EXPECT_LT(f, degree);
    EXPECT_EQ(f, p.FragmentOf(Value(key)));
  }
}

TEST_P(PartitionerPropertyTest, CoPartitionedRelationsAgree) {
  // Two partitioners with equal kind and degree route every key the same
  // way — the precondition for IdealJoin.
  const auto [kind, degree] = GetParam();
  Partitioner a(kind, degree), b(kind, degree);
  for (int64_t key = 0; key < 1000; key += 7) {
    EXPECT_EQ(a.FragmentOf(Value(key)), b.FragmentOf(Value(key)));
  }
}

TEST_P(PartitionerPropertyTest, SpreadIsBalancedOnSequentialKeys) {
  const auto [kind, degree] = GetParam();
  Partitioner p(kind, degree);
  std::vector<size_t> counts(degree, 0);
  const size_t keys = degree * 1000;
  for (size_t k = 0; k < keys; ++k) {
    ++counts[p.FragmentOf(Value(static_cast<int64_t>(k)))];
  }
  const double expected = static_cast<double>(keys) / degree;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDegrees, PartitionerPropertyTest,
    ::testing::Combine(::testing::Values(PartitionKind::kHash,
                                         PartitionKind::kModulo),
                       ::testing::Values(1ul, 2ul, 16ul, 200ul)));

}  // namespace
}  // namespace dbs3

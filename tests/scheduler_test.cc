#include "sched/scheduler.h"

#include <numeric>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "engine/operators.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

struct TestPlan {
  std::unique_ptr<Relation> a;
  std::unique_ptr<Relation> b;
  std::unique_ptr<Relation> result;
  Plan plan;
};

/// Builds an AssocJoin-shaped plan over a skewed pair.
TestPlan MakeAssocPlan(double theta, size_t degree = 20) {
  TestPlan tp;
  SkewSpec spec;
  spec.a_cardinality = 20'000;
  spec.b_cardinality = 2'000;
  spec.degree = degree;
  spec.theta = theta;
  auto db = BuildSkewedDatabase(spec);
  EXPECT_TRUE(db.ok());
  tp.a = std::move(db.value().a);
  tp.b = std::move(db.value().b);
  tp.result = std::make_unique<Relation>(
      "Res", Schema::Concat(tp.b->schema(), tp.a->schema()), 0,
      Partitioner(PartitionKind::kModulo, degree));
  const size_t transmit =
      tp.plan.AddNode("transmit", ActivationMode::kTriggered, degree,
                      std::make_unique<TransmitLogic>(tp.b.get()));
  const size_t join = tp.plan.AddNode(
      "join", ActivationMode::kPipelined, degree,
      std::make_unique<PipelinedJoinLogic>(tp.a.get(), 0, 0,
                                           JoinAlgorithm::kNestedLoop));
  const size_t store =
      tp.plan.AddNode("store", ActivationMode::kPipelined, degree,
                      std::make_unique<StoreLogic>(tp.result.get()));
  EXPECT_TRUE(
      tp.plan.ConnectByColumn(transmit, join, 0, tp.a->partitioner()).ok());
  EXPECT_TRUE(tp.plan.ConnectSameInstance(join, store).ok());
  return tp;
}

TEST(SchedulerTest, FixedThreadCountDistributedByComplexity) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.total_threads = 10;
  options.processors = 64;
  auto report = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().total_threads, 10u);
  const size_t sum = std::accumulate(report.value().threads.begin(),
                                     report.value().threads.end(), 0ul);
  EXPECT_EQ(sum, 10u);
  // The nested-loop join dominates the complexity and gets the most
  // threads.
  EXPECT_GT(report.value().threads[1], report.value().threads[0]);
  EXPECT_GT(report.value().threads[1], report.value().threads[2]);
  // The decisions land in the plan params.
  EXPECT_EQ(tp.plan.params(1).threads, report.value().threads[1]);
}

TEST(SchedulerTest, DerivedThreadCountGrowsWithComplexity) {
  TestPlan small = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.processors = 64;
  options.startup_cost = 50'000.0;
  auto small_report = ScheduleQuery(small.plan, CostModel{}, options);
  ASSERT_TRUE(small_report.ok());

  // Same shape, 4x the data: more threads chosen (step 1: n* grows as
  // sqrt of the work).
  SkewSpec spec;
  spec.a_cardinality = 80'000;
  spec.b_cardinality = 8'000;
  spec.degree = 20;
  TestPlan big = MakeAssocPlan(0.0);
  // Rebuild with larger relations.
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  big.a = std::move(db.value().a);
  big.b = std::move(db.value().b);
  Plan plan;
  const size_t transmit =
      plan.AddNode("transmit", ActivationMode::kTriggered, 20,
                   std::make_unique<TransmitLogic>(big.b.get()));
  const size_t join = plan.AddNode(
      "join", ActivationMode::kPipelined, 20,
      std::make_unique<PipelinedJoinLogic>(big.a.get(), 0, 0,
                                           JoinAlgorithm::kNestedLoop));
  ASSERT_TRUE(
      plan.ConnectByColumn(transmit, join, 0, big.a->partitioner()).ok());
  auto big_report = ScheduleQuery(plan, CostModel{}, options);
  ASSERT_TRUE(big_report.ok());
  EXPECT_GT(big_report.value().total_threads,
            small_report.value().total_threads);
  EXPECT_GT(big_report.value().total_work,
            small_report.value().total_work * 3.0);
}

TEST(SchedulerTest, ThreadCountCappedByProcessors) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.total_threads = 1'000;
  options.processors = 8;
  auto report = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().total_threads, 8u);
}

TEST(SchedulerTest, ThreadsPerNodeCappedByInstances) {
  // Degree of partitioning must be >= degree of parallelism (the paper's
  // invariant): a 4-fragment plan cannot get more than 4 threads per node.
  TestPlan tp = MakeAssocPlan(0.0, /*degree=*/4);
  ScheduleOptions options;
  options.total_threads = 32;
  options.processors = 64;
  auto report = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  for (size_t t : report.value().threads) EXPECT_LE(t, 4u);
}

TEST(SchedulerTest, UtilizationReducesThreads) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.processors = 64;
  options.startup_cost = 10'000.0;
  auto full = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(full.ok());
  options.utilization = 0.5;
  auto half = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(half.ok());
  EXPECT_LT(half.value().total_threads, full.value().total_threads);
}

TEST(SchedulerTest, SkewedTriggeredNodeGetsLpt) {
  TestPlan skewed = MakeAssocPlan(1.0);
  ScheduleOptions options;
  options.total_threads = 8;
  options.processors = 16;
  auto report = ScheduleQuery(skewed.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  // The transmit node is triggered over Zipf(1)-skewed B'? No — B' is
  // uniform; the *join estimates* are skewed but the join is pipelined, so
  // it stays Random; transmit over uniform fragments stays Random too.
  EXPECT_EQ(report.value().strategies[0], Strategy::kRandom);
  EXPECT_EQ(report.value().strategies[1], Strategy::kRandom);

  // A triggered join over the skewed A does get LPT.
  TestPlan tp = MakeAssocPlan(1.0);
  Plan ideal;
  auto result = std::make_unique<Relation>(
      "Res", Schema::Concat(tp.a->schema(), tp.b->schema()), 0,
      Partitioner(PartitionKind::kModulo, 20));
  const size_t join = ideal.AddNode(
      "join", ActivationMode::kTriggered, 20,
      std::make_unique<TriggeredJoinLogic>(tp.a.get(), 0, tp.b.get(), 0,
                                           JoinAlgorithm::kNestedLoop));
  const size_t store =
      ideal.AddNode("store", ActivationMode::kPipelined, 20,
                    std::make_unique<StoreLogic>(result.get()));
  ASSERT_TRUE(ideal.ConnectSameInstance(join, store).ok());
  auto ideal_report = ScheduleQuery(ideal, CostModel{}, options);
  ASSERT_TRUE(ideal_report.ok());
  EXPECT_EQ(ideal_report.value().strategies[0], Strategy::kLpt);
  // LPT ordering keys land in the plan.
  EXPECT_FALSE(ideal.params(0).cost_estimates.empty());
}

TEST(SchedulerTest, UnskewedTriggeredNodeStaysRandom) {
  TestPlan tp = MakeAssocPlan(0.0);
  Plan ideal;
  auto result = std::make_unique<Relation>(
      "Res", Schema::Concat(tp.a->schema(), tp.b->schema()), 0,
      Partitioner(PartitionKind::kModulo, 20));
  const size_t join = ideal.AddNode(
      "join", ActivationMode::kTriggered, 20,
      std::make_unique<TriggeredJoinLogic>(tp.a.get(), 0, tp.b.get(), 0,
                                           JoinAlgorithm::kNestedLoop));
  const size_t store =
      ideal.AddNode("store", ActivationMode::kPipelined, 20,
                    std::make_unique<StoreLogic>(result.get()));
  ASSERT_TRUE(ideal.ConnectSameInstance(join, store).ok());
  ScheduleOptions options;
  options.total_threads = 8;
  options.processors = 16;
  auto report = ScheduleQuery(ideal, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().strategies[0], Strategy::kRandom);
}

TEST(SchedulerTest, ForceStrategyOverridesStepFour) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.total_threads = 4;
  options.processors = 8;
  options.force_strategy = Strategy::kLpt;
  auto report = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  for (Strategy s : report.value().strategies) {
    EXPECT_EQ(s, Strategy::kLpt);
  }
}

TEST(SchedulerTest, RejectsBadOptions) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.processors = 0;
  EXPECT_FALSE(ScheduleQuery(tp.plan, CostModel{}, options).ok());
  options.processors = 4;
  options.utilization = 0.0;
  EXPECT_FALSE(ScheduleQuery(tp.plan, CostModel{}, options).ok());
  options.utilization = 2.0;
  EXPECT_FALSE(ScheduleQuery(tp.plan, CostModel{}, options).ok());
}

TEST(SchedulerTest, ReportToStringMentionsEveryNode) {
  TestPlan tp = MakeAssocPlan(0.0);
  ScheduleOptions options;
  options.total_threads = 4;
  options.processors = 8;
  auto report = ScheduleQuery(tp.plan, CostModel{}, options);
  ASSERT_TRUE(report.ok());
  const std::string text = report.value().ToString();
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("node 2"), std::string::npos);
}

}  // namespace
}  // namespace dbs3

#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(StatsTest, EmptySummaryIsZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(StatsTest, SingleValue) {
  const Summary s = Summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.sum, 3.5);
}

TEST(StatsTest, KnownSample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // Classic population-stddev example.
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(StatsTest, NegativeValues) {
  const Summary s = Summarize({-5.0, 5.0});
  EXPECT_EQ(s.min, -5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 5.0);
}

TEST(FitLineTest, ExactLineRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit f = FitLine(x, y);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.intercept, -7.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLineTest, HorizontalLine) {
  const LinearFit f = FitLine({0, 1, 2, 3}, {4, 4, 4, 4});
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 4.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);  // Perfect fit of a constant.
}

TEST(FitLineTest, NoisyLineApproximates) {
  std::vector<double> x, y;
  // Alternate +1/-1 noise around y = 3x + 1.
  for (int i = 0; i < 40; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 1.0 + (i % 2 == 0 ? 1.0 : -1.0));
  }
  const LinearFit f = FitLine(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.02);
  EXPECT_GT(f.r2, 0.99);
}

TEST(FitLineTest, DegenerateVerticalInputGivesZeroFit) {
  const LinearFit f = FitLine({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(f.slope, 0.0);
  EXPECT_EQ(f.intercept, 0.0);
}

TEST(FitLineTest, TwoPoints) {
  const LinearFit f = FitLine({0, 10}, {5, 25});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
}

}  // namespace
}  // namespace dbs3

// Property tests: the simulated executions respect the analytical envelope
// of Section 4.1 — Tideal <= elapsed <= Tworst (within scheduling
// tolerance) — across the skew x parallelism grid, with LPT.

#include <tuple>

#include <gtest/gtest.h>

#include "model/analysis.h"
#include "sim/machine.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

class SimModelAgreementTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(SimModelAgreementTest, IdealJoinWithinAnalyticalEnvelope) {
  const auto [theta, threads] = GetParam();
  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 50'000;
  spec.b_cardinality = 5'000;
  spec.degree = 100;
  spec.theta = theta;
  spec.threads = threads;
  spec.strategy = Strategy::kLpt;
  auto plan = BuildIdealJoinSim(spec, costs);
  ASSERT_TRUE(plan.ok());
  // Bare machine: no init costs, so the envelope is exact.
  SimMachineConfig config;
  config.processors = 128;
  SimMachine machine(config);
  auto result = machine.Run(plan.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto profile = JoinProfile(spec, costs, /*pipelined=*/false);
  ASSERT_TRUE(profile.ok());
  const size_t n = plan.value().ops[0].threads;
  const double tideal = TIdeal(profile.value(), n);
  const double tworst = TWorst(profile.value(), n);
  EXPECT_GE(result.value().elapsed, tideal * (1.0 - 1e-9))
      << "theta=" << theta << " threads=" << threads;
  EXPECT_LE(result.value().elapsed, tworst * (1.0 + 1e-9))
      << "theta=" << theta << " threads=" << threads;
  // And never below the longest activation.
  EXPECT_GE(result.value().elapsed,
            profile.value().max_cost * (1.0 - 1e-9));
}

TEST_P(SimModelAgreementTest, AssocJoinCloseToIdealTime) {
  const auto [theta, threads] = GetParam();
  if (threads < 2) GTEST_SKIP() << "AssocJoin needs two pools";
  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 50'000;
  spec.b_cardinality = 5'000;
  spec.degree = 100;
  spec.theta = theta;
  spec.threads = threads;
  auto plan = BuildAssocJoinSim(spec, costs);
  ASSERT_TRUE(plan.ok());
  SimMachineConfig config;
  config.processors = 128;
  SimMachine machine(config);
  auto result = machine.Run(plan.value());
  ASSERT_TRUE(result.ok());

  // The paper's core claim: pipelined operations absorb skew. The measured
  // time never exceeds the join pool's Tworst by more than the pipeline
  // warm-up slack.
  auto profile = JoinProfile(spec, costs, /*pipelined=*/true);
  ASSERT_TRUE(profile.ok());
  const size_t join_threads = plan.value().ops[1].threads;
  const double tworst = TWorst(profile.value(), join_threads);
  EXPECT_LE(result.value().elapsed, tworst * 1.20)
      << "theta=" << theta << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(
    SkewByThreads, SimModelAgreementTest,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.6, 0.9, 1.0),
                       ::testing::Values(1ul, 4ul, 10ul, 40ul)));

/// The monotone property behind Figure 15: adding threads never makes a
/// triggered LPT execution slower (on a bare machine with enough
/// processors).
TEST(SimMonotonicityTest, MoreThreadsNeverSlowerUnderLpt) {
  SimCosts costs;
  double prev = 1e30;
  for (size_t threads : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 20'000;
    spec.b_cardinality = 2'000;
    spec.degree = 64;
    spec.theta = 0.8;
    spec.threads = threads;
    spec.strategy = Strategy::kLpt;
    auto plan = BuildIdealJoinSim(spec, costs);
    ASSERT_TRUE(plan.ok());
    SimMachineConfig config;
    config.processors = 64;
    SimMachine machine(config);
    auto result = machine.Run(plan.value());
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().elapsed, prev * (1.0 + 1e-9))
        << "threads=" << threads;
    prev = result.value().elapsed;
  }
}

/// The plateau property: past nmax, adding threads gains nothing.
TEST(SimMonotonicityTest, PlateauAtNMax) {
  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 20'000;
  spec.b_cardinality = 2'000;
  spec.degree = 64;
  spec.theta = 1.0;
  spec.strategy = Strategy::kLpt;
  auto profile = JoinProfile(spec, costs, /*pipelined=*/false);
  ASSERT_TRUE(profile.ok());
  const double nmax = NMax(profile.value());
  // Run with double nmax and with 64 threads: same elapsed (the longest
  // activation bounds both).
  double elapsed[2];
  int i = 0;
  for (size_t threads :
       {static_cast<size_t>(2 * nmax), static_cast<size_t>(64)}) {
    spec.threads = threads;
    auto plan = BuildIdealJoinSim(spec, costs);
    ASSERT_TRUE(plan.ok());
    SimMachineConfig config;
    config.processors = 128;
    SimMachine machine(config);
    auto result = machine.Run(plan.value());
    ASSERT_TRUE(result.ok());
    elapsed[i++] = result.value().elapsed;
  }
  EXPECT_NEAR(elapsed[0], elapsed[1], elapsed[0] * 0.02);
  EXPECT_NEAR(elapsed[0], profile.value().max_cost,
              profile.value().max_cost * 0.05);
}

}  // namespace
}  // namespace dbs3

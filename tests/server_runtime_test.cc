// Tests of the concurrent query runtime: worker pool, admission control
// (priority, shedding, memory budget), cooperative cancellation and
// deadlines, and the Database::Submit facade over the real engine.

#include "server/query_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "esql/planner.h"
#include "server/shared/shared_query.h"
#include "server/worker_pool.h"

namespace dbs3 {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// One-shot flag two threads meet on (tests only need set + spin-wait).
struct Latch {
  std::atomic<bool> flag{false};
  void Set() { flag.store(true); }
  void Await() const {
    while (!flag.load()) std::this_thread::sleep_for(milliseconds(1));
  }
};

/// A body that parks its driver until released — the tool for making
/// admission-queue states deterministic.
QueryBody Blocker(Latch* started, Latch* release) {
  return [started, release](QueryEnv&) -> Result<QueryResult> {
    started->Set();
    release->Await();
    return QueryResult{};
  };
}

TEST(WorkerPoolTest, RunsDispatchedTasks) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> ran{0};
  Latch done;
  for (int i = 0; i < 16; ++i) {
    pool.Dispatch([&ran, &done] {
      if (ran.fetch_add(1) + 1 == 16) done.Set();
    });
  }
  done.Await();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.tasks_dispatched(), 16u);
}

TEST(QueryRuntimeTest, SubmitRunsBodyAndTakeIsOneShot) {
  QueryRuntime runtime;
  QuerySpec spec;
  spec.body = [](QueryEnv&) -> Result<QueryResult> {
    QueryResult out;
    out.detail = "ran";
    return out;
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  EXPECT_GT(handle.id(), 0u);
  auto taken = handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().detail, "ran");
  EXPECT_TRUE(handle.done());
  // One-shot: the result was moved out.
  EXPECT_EQ(handle.Take().status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryRuntimeTest, PriorityOrdersTheAdmissionQueue) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;  // One driver => strict ordering.
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::mutex order_mu;
  std::vector<int> order;
  auto recorder = [&order_mu, &order](int tag) {
    return [&order_mu, &order, tag](QueryEnv&) -> Result<QueryResult> {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
      return QueryResult{};
    };
  };
  QuerySpec low;
  low.body = recorder(0);
  low.priority = 0;
  QuerySpec high;
  high.body = recorder(5);
  high.priority = 5;
  QueryHandle low_handle = runtime.Submit(std::move(low));
  QueryHandle high_handle = runtime.Submit(std::move(high));

  release.Set();
  ASSERT_TRUE(blocking.Take().ok());
  ASSERT_TRUE(high_handle.Take().ok());
  ASSERT_TRUE(low_handle.Take().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5);  // Higher priority left the queue first.
  EXPECT_EQ(order[1], 0);
}

TEST(QueryRuntimeTest, FullWaitingRoomShedsWithResourceExhausted) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  options.max_queued_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();  // The blocker was popped; the waiting room is empty.

  QuerySpec queued;
  queued.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle waiting = runtime.Submit(std::move(queued));

  std::atomic<bool> shed_body_ran{false};
  QuerySpec overflow;
  overflow.body = [&shed_body_ran](QueryEnv&) -> Result<QueryResult> {
    shed_body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle shed = runtime.Submit(std::move(overflow));
  // The shed handle completes immediately, before the blocker releases.
  auto shed_result = shed.Take();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(shed_body_ran.load());

  release.Set();
  EXPECT_TRUE(blocking.Take().ok());
  EXPECT_TRUE(waiting.Take().ok());
}

TEST(QueryRuntimeTest, DeadlineExpiredWhileQueuedSkipsTheBody) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::atomic<bool> body_ran{false};
  QuerySpec doomed;
  doomed.deadline = steady_clock::now() - milliseconds(1);
  doomed.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(doomed));

  release.Set();
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(body_ran.load());
  EXPECT_TRUE(blocking.Take().ok());
}

TEST(QueryRuntimeTest, CancelWhileQueuedSkipsTheBody) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::atomic<bool> body_ran{false};
  QuerySpec spec;
  spec.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  handle.Cancel();

  release.Set();
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(body_ran.load());
  EXPECT_TRUE(blocking.Take().ok());
}

TEST(QueryRuntimeTest, CancelAfterCompletionIsANoOp) {
  QueryRuntime runtime;
  QuerySpec spec;
  spec.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  handle.Wait();
  handle.Cancel();  // Already done: must not disturb the stored outcome.
  EXPECT_TRUE(handle.Take().ok());
}

TEST(QueryRuntimeTest, MemoryBudgetGatesAdmissionUntilRelease) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 2;
  options.memory_budget_units = 10;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec big;
  big.memory_units = 10;  // Takes the whole budget.
  big.body = Blocker(&started, &release);
  QueryHandle big_handle = runtime.Submit(std::move(big));
  started.Await();

  QuerySpec small;
  small.memory_units = 5;
  small.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle small_handle = runtime.Submit(std::move(small));
  // A driver is free, but the budget is exhausted: the query waits
  // (admission-gated), it is not shed.
  EXPECT_FALSE(small_handle.WaitFor(milliseconds(50)));

  release.Set();
  ASSERT_TRUE(big_handle.Take().ok());
  ASSERT_TRUE(small_handle.Take().ok());

  // A declaration larger than the whole budget can never be satisfied:
  // it is shed at enqueue with ResourceExhausted instead of being
  // silently clamped (clamping let the query run unconstrained past the
  // budget it over-declared against).
  std::atomic<bool> huge_body_ran{false};
  QuerySpec huge;
  huge.memory_units = 100;
  huge.body = [&huge_body_ran](QueryEnv&) -> Result<QueryResult> {
    huge_body_ran.store(true);
    return QueryResult{};
  };
  auto huge_result = runtime.Submit(std::move(huge)).Take();
  ASSERT_FALSE(huge_result.ok());
  EXPECT_EQ(huge_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(huge_body_ran.load());
  EXPECT_NE(huge_result.status().message().find("memory_units"),
            std::string::npos)
      << huge_result.status().ToString();

  // A declaration exactly at the budget still runs.
  QuerySpec exact;
  exact.memory_units = 10;
  exact.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  EXPECT_TRUE(runtime.Submit(std::move(exact)).Take().ok());
}

TEST(QueryRuntimeTest, CancellingABudgetBlockedQueryHandsItOutPromptly) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 2;
  options.memory_budget_units = 10;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec big;
  big.memory_units = 10;  // Takes the whole budget and parks.
  big.body = Blocker(&started, &release);
  QueryHandle big_handle = runtime.Submit(std::move(big));
  started.Await();

  // Blocked in PopNext on the exhausted budget; a free driver is parked
  // on the admission cv with no deadline to poll for.
  std::atomic<bool> body_ran{false};
  QuerySpec gated;
  gated.memory_units = 5;
  gated.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle gated_handle = runtime.Submit(std::move(gated));
  EXPECT_FALSE(gated_handle.WaitFor(milliseconds(20)));

  // Cancel must wake the parked driver (the cancel_notify hook), which
  // hands the query out and completes it with Cancelled without running
  // the body — promptly, not after some poll interval.
  gated_handle.Cancel();
  EXPECT_TRUE(gated_handle.WaitFor(std::chrono::seconds(5)));
  auto taken = gated_handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(body_ran.load());

  release.Set();
  EXPECT_TRUE(big_handle.Take().ok());
}

TEST(QueryRuntimeTest, RuntimeMetricsCountOutcomes) {
  MetricsRegistry metrics;
  {
    QueryRuntimeOptions options;
    options.metrics = &metrics;
    QueryRuntime runtime(options);
    QuerySpec ok_spec;
    ok_spec.body = [](QueryEnv&) -> Result<QueryResult> {
      return QueryResult{};
    };
    runtime.Submit(std::move(ok_spec)).Wait();

    QuerySpec cancelled_spec;
    CancelToken token;
    token.Cancel();
    cancelled_spec.cancel = token;
    cancelled_spec.body = [](QueryEnv& env) -> Result<QueryResult> {
      DBS3_RETURN_IF_ERROR(env.CheckCancelled());
      return QueryResult{};
    };
    runtime.Submit(std::move(cancelled_spec)).Wait();
  }
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters["runtime.queries_submitted"], 2u);
  EXPECT_EQ(snap.counters["runtime.queries_completed"], 1u);
  EXPECT_EQ(snap.counters["runtime.queries_cancelled"], 1u);
  EXPECT_EQ(snap.series["runtime.admission_wait_us"].samples, 2u);
}

TEST(SchedulerFeedbackTest, UtilizationScalesWithLiveQueries) {
  EXPECT_DOUBLE_EQ(MultiUserUtilization(0), 1.0);
  EXPECT_DOUBLE_EQ(MultiUserUtilization(1), 1.0);
  EXPECT_DOUBLE_EQ(MultiUserUtilization(4), 0.25);

  ScheduleOptions fixed;
  fixed.total_threads = 8;
  EXPECT_EQ(ApplyUtilization(fixed, 0.25).total_threads, 2u);
  EXPECT_EQ(ApplyUtilization(fixed, 1e-12).total_threads, 1u);  // Floor.

  ScheduleOptions derived;
  derived.total_threads = 0;
  derived.utilization = 0.8;
  EXPECT_DOUBLE_EQ(ApplyUtilization(derived, 0.5).utilization, 0.4);
}

// ---------------------------------------------------------------------
// Real-engine integration through the Database facade.

TEST(DatabaseSubmitTest, SubmitSelectRunsOnSharedRuntime) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 1'000;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());

  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  QueryHandle select =
      SubmitSelect(db, "t", MatchAll(), 1.0, options);
  auto taken = select.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().result->cardinality(), 1'000u);
  const QueryRunStats stats = select.stats();
  EXPECT_EQ(stats.phases, 1u);
  EXPECT_GT(stats.units_processed, 0u);
  EXPECT_GE(stats.execution_seconds, 0.0);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GE(snap.counters["runtime.queries_submitted"], 1u);
  EXPECT_GE(snap.counters["runtime.queries_completed"], 1u);
  EXPECT_GE(snap.counters["engine.queries"], 1u);
}

TEST(DatabaseSubmitTest, CancelMidPipelineDrainsAndReportsPartialWork) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 4'000;
  opt.degree = 8;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  Relation* rel = db.relation("t").value();

  // The filter parks the first worker on its first tuple; everything
  // still queued when the cancel fires must drain into the cancelled
  // ledger bucket (verified by the DBS3_VERIFY conservation check on
  // executor exit in verify builds).
  Latch started, release;
  TuplePredicate parked = [&started, &release](const Tuple&) {
    started.Set();
    release.Await();
    return true;
  };

  QuerySpec spec;
  spec.body = [rel, parked](QueryEnv& env) -> Result<QueryResult> {
    auto result = std::make_unique<Relation>(
        "res", rel->schema(), rel->partition_column(),
        Partitioner(rel->partitioner().kind(), rel->degree()));
    Plan plan;
    const size_t filter = plan.AddNode(
        "filter", ActivationMode::kTriggered, rel->degree(),
        std::make_unique<FilterLogic>(rel, parked, 1.0));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, rel->degree(),
                     std::make_unique<StoreLogic>(result.get()));
    DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
    ScheduleOptions schedule;
    schedule.total_threads = 2;
    schedule.processors = 2;
    DBS3_ASSIGN_OR_RETURN(PhaseOutcome phase,
                          env.Run(plan, CostModel{}, schedule));
    QueryResult out;
    out.result = std::move(result);
    out.execution = std::move(phase.execution);
    return out;
  };
  QueryHandle handle = db.Submit(std::move(spec));
  started.Await();
  handle.Cancel();
  release.Set();

  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  const QueryRunStats stats = handle.stats();
  EXPECT_EQ(stats.phases, 1u);  // The interrupted phase still counts.
  EXPECT_GT(stats.units_cancelled, 0u);  // Drained, not lost.

  // The budget/slots were released: the database still runs queries.
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto after = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().result->cardinality(), 4'000u);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GE(snap.counters["runtime.queries_cancelled"], 1u);
  EXPECT_GT(snap.counters["engine.units_cancelled"], 0u);
}

TEST(DatabaseSubmitTest, DirectPathBypassesTheRuntime) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 500;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.use_shared_runtime = false;
  auto r = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.queries_submitted"], 0u);
  EXPECT_EQ(snap.counters["engine.queries"], 1u);
}

TEST(DatabaseSubmitTest, DirectPathHonorsPreCancelledToken) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 500;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.use_shared_runtime = false;
  CancelToken token;
  token.Cancel();
  options.cancel = token;
  auto r = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(DatabaseSubmitTest, SubmitEsqlReportsRepartitionPhases) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 8;
  spec.theta = 0.3;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());
  // B repartitioned on payload: a materialization boundary runs as an
  // extra phase through the same runtime.
  auto misaligned = std::make_unique<Relation>(
      "mis", Schema({{"key", ValueType::kInt64},
                     {"grp", ValueType::kInt64}}),
      1, Partitioner(PartitionKind::kHash, 8));
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(misaligned->Insert(Tuple({Value(k), Value(k % 5)})).ok());
  }
  ASSERT_TRUE(db.AddRelation(std::move(misaligned)).ok());

  EsqlOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  QueryHandle handle = SubmitEsql(
      db, "SELECT * FROM mis JOIN A ON mis.key = A.payload", options);
  auto taken = handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_NE(taken.value().detail.find("repartition"), std::string::npos)
      << taken.value().detail;
  EXPECT_EQ(taken.value().phases.size(), 1u);  // One materialization.
  EXPECT_EQ(handle.stats().phases, 2u);  // Repartition + final pipeline.
}

TEST(DatabaseSubmitTest, SubmitEsqlSurfacesParseErrorsThroughHandle) {
  Database db(2);
  QueryHandle handle = SubmitEsql(db, "SELEC nonsense", EsqlOptions{});
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, DatabaseIsNeitherCopyableNorMovable) {
  static_assert(!std::is_copy_constructible_v<Database>);
  static_assert(!std::is_copy_assignable_v<Database>);
  static_assert(!std::is_move_constructible_v<Database>);
  static_assert(!std::is_move_assignable_v<Database>);
}

// ---------------------------------------------------------------------
// Shared-work execution: multi-query shared scans.

std::vector<Tuple> SortedRows(const Relation& rel) {
  std::vector<Tuple> rows = rel.Scan();
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(SharedScanTest, DeadlineExpiringInTheWindowShedsNotRides) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 2'000;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;  // One driver => one batch window.
  ropt.shared_batch_max_queries = 8;
  ropt.shared_batch_window_us = 150'000;  // Far beyond q2's deadline.
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  // Park the driver so both queries are queued before the window opens.
  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  started.Await();

  EsqlOptions options;
  QueryHandle q1 = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 100",
                              options);
  EsqlOptions with_deadline = options;
  with_deadline.deadline = steady_clock::now() + milliseconds(40);
  QueryHandle q2 = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 500",
                              with_deadline);
  release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  // q2's deadline fires ~40ms into the 150ms window: it must be shed with
  // DeadlineExceeded, not ride the batch to a late result.
  auto q2_taken = q2.Take();
  ASSERT_FALSE(q2_taken.ok());
  EXPECT_EQ(q2_taken.status().code(), StatusCode::kDeadlineExceeded);

  // q1, the sole survivor, degenerates to its solo body — correct rows,
  // no shared batch recorded anywhere.
  auto q1_taken = q1.Take();
  ASSERT_TRUE(q1_taken.ok()) << q1_taken.status().ToString();
  Relation* rel = db.relation("w").value();
  std::vector<Tuple> expected;
  for (const Tuple& t : rel->Scan()) {
    if (t.at(0).AsInt() < 100) expected.push_back(t);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedRows(*q1_taken.value().result), expected);
  EXPECT_EQ(q1.stats().shared_batch_queries, 0u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 0u);
}

TEST(SharedScanTest, CancellingOneMemberMidBatchLeavesTheOthersIntact) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 800;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;
  ropt.shared_batch_max_queries = 8;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());
  Relation* rel = db.relation("w").value();

  // q1's predicate parks the scan workers mid-pass so the main thread can
  // cancel q2 while the batch is running.
  Latch started, release;
  TuplePredicate parked = [&started, &release](const Tuple&) {
    started.Set();
    release.Await();
    return true;
  };
  const auto make_spec = [&](Predicate predicate) {
    auto shared = std::make_shared<SharedScanSpec>();
    shared->relation = rel;
    shared->predicate = std::move(predicate);
    shared->result_schema = rel->schema();
    shared->vectorize = false;
    shared->share_class = 42;  // Hand-assigned: the two are compatible.
    QuerySpec spec;
    spec.shared = std::move(shared);
    spec.body = [](QueryEnv&) -> Result<QueryResult> {
      return Status::Internal("expected the batch path, got a solo run");
    };
    return spec;
  };

  // Park the driver so both members are queued when the batch forms.
  Latch b_started, b_release;
  QuerySpec blocker;
  blocker.body = Blocker(&b_started, &b_release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  b_started.Await();
  QueryHandle q1 = db.Submit(make_spec(Predicate(parked)));
  QueryHandle q2 = db.Submit(make_spec(MatchAll()));
  b_release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  started.Await();  // The shared pass is underway (parked on q1's pred).
  q2.Cancel();
  release.Set();

  // q2 is gone, q1 is whole: one member's cancel drops only its tagged
  // tuples. q1's OK outcome implies the per-query conservation ledger
  // audited clean (an unbalanced ledger fails every member).
  auto q2_taken = q2.Take();
  ASSERT_FALSE(q2_taken.ok());
  EXPECT_EQ(q2_taken.status().code(), StatusCode::kCancelled);
  auto q1_taken = q1.Take();
  ASSERT_TRUE(q1_taken.ok()) << q1_taken.status().ToString();
  EXPECT_EQ(SortedRows(*q1_taken.value().result), SortedRows(*rel));
  EXPECT_EQ(q1.stats().shared_batch_queries, 2u);
  EXPECT_EQ(q2.stats().shared_batch_queries, 2u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 1u);
}

TEST(SharedScanTest, IncompatibleQueryIsNeverFoldedIntoABatch) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 2'000;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;
  ropt.shared_batch_max_queries = 8;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  started.Await();

  // qa and qb share a class (same relation, star projection); qc projects
  // two columns — a different shape, so a different class.
  EsqlOptions options;
  QueryHandle qa = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 50",
                              options);
  QueryHandle qb = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 150",
                              options);
  QueryHandle qc = SubmitEsql(
      db, "SELECT unique1, unique2 FROM w WHERE unique1 < 150", options);
  release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  auto qa_taken = qa.Take();
  auto qb_taken = qb.Take();
  auto qc_taken = qc.Take();
  ASSERT_TRUE(qa_taken.ok()) << qa_taken.status().ToString();
  ASSERT_TRUE(qb_taken.ok()) << qb_taken.status().ToString();
  ASSERT_TRUE(qc_taken.ok()) << qc_taken.status().ToString();

  // qa/qb rode one batch; qc ran solo and is row-identical to the solo
  // reference computed straight off the base relation.
  EXPECT_EQ(qa.stats().shared_batch_queries, 2u);
  EXPECT_EQ(qb.stats().shared_batch_queries, 2u);
  EXPECT_EQ(qc.stats().shared_batch_queries, 0u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 1u);
  EXPECT_EQ(snap.series["shared.queries_per_batch"].samples, 1u);
  EXPECT_EQ(snap.series["shared.queries_per_batch"].last, 2);

  Relation* rel = db.relation("w").value();
  std::vector<Tuple> qb_expected;
  std::vector<Tuple> qc_expected;
  for (const Tuple& t : rel->Scan()) {
    if (t.at(0).AsInt() >= 150) continue;
    qb_expected.push_back(t);
    qc_expected.push_back(Tuple(std::vector<Value>{t.at(0), t.at(1)}));
  }
  std::sort(qb_expected.begin(), qb_expected.end());
  std::sort(qc_expected.begin(), qc_expected.end());
  EXPECT_EQ(SortedRows(*qb_taken.value().result), qb_expected);
  EXPECT_EQ(SortedRows(*qc_taken.value().result), qc_expected);
}

}  // namespace
}  // namespace dbs3

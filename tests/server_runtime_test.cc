// Tests of the concurrent query runtime: worker pool, admission control
// (priority, shedding, memory budget), cooperative cancellation and
// deadlines, and the Database::Submit facade over the real engine.

#include "server/query_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/operators.h"
#include "esql/planner.h"
#include "sched/reassign.h"
#include "server/pool_load_board.h"
#include "server/shared/shared_query.h"
#include "server/worker_pool.h"

namespace dbs3 {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// One-shot flag two threads meet on (tests only need set + spin-wait).
struct Latch {
  std::atomic<bool> flag{false};
  void Set() { flag.store(true); }
  void Await() const {
    while (!flag.load()) std::this_thread::sleep_for(milliseconds(1));
  }
};

/// A body that parks its driver until released — the tool for making
/// admission-queue states deterministic.
QueryBody Blocker(Latch* started, Latch* release) {
  return [started, release](QueryEnv&) -> Result<QueryResult> {
    started->Set();
    release->Await();
    return QueryResult{};
  };
}

TEST(WorkerPoolTest, RunsDispatchedTasks) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> ran{0};
  Latch done;
  for (int i = 0; i < 16; ++i) {
    pool.Dispatch([&ran, &done] {
      if (ran.fetch_add(1) + 1 == 16) done.Set();
    });
  }
  done.Await();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.tasks_dispatched(), 16u);
}

TEST(QueryRuntimeTest, SubmitRunsBodyAndTakeIsOneShot) {
  QueryRuntime runtime;
  QuerySpec spec;
  spec.body = [](QueryEnv&) -> Result<QueryResult> {
    QueryResult out;
    out.detail = "ran";
    return out;
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  EXPECT_GT(handle.id(), 0u);
  auto taken = handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().detail, "ran");
  EXPECT_TRUE(handle.done());
  // One-shot: the result was moved out.
  EXPECT_EQ(handle.Take().status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryRuntimeTest, PriorityOrdersTheAdmissionQueue) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;  // One driver => strict ordering.
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::mutex order_mu;
  std::vector<int> order;
  auto recorder = [&order_mu, &order](int tag) {
    return [&order_mu, &order, tag](QueryEnv&) -> Result<QueryResult> {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
      return QueryResult{};
    };
  };
  QuerySpec low;
  low.body = recorder(0);
  low.priority = 0;
  QuerySpec high;
  high.body = recorder(5);
  high.priority = 5;
  QueryHandle low_handle = runtime.Submit(std::move(low));
  QueryHandle high_handle = runtime.Submit(std::move(high));

  release.Set();
  ASSERT_TRUE(blocking.Take().ok());
  ASSERT_TRUE(high_handle.Take().ok());
  ASSERT_TRUE(low_handle.Take().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 5);  // Higher priority left the queue first.
  EXPECT_EQ(order[1], 0);
}

TEST(QueryRuntimeTest, FullWaitingRoomShedsWithResourceExhausted) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  options.max_queued_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();  // The blocker was popped; the waiting room is empty.

  QuerySpec queued;
  queued.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle waiting = runtime.Submit(std::move(queued));

  std::atomic<bool> shed_body_ran{false};
  QuerySpec overflow;
  overflow.body = [&shed_body_ran](QueryEnv&) -> Result<QueryResult> {
    shed_body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle shed = runtime.Submit(std::move(overflow));
  // The shed handle completes immediately, before the blocker releases.
  auto shed_result = shed.Take();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(shed_body_ran.load());

  release.Set();
  EXPECT_TRUE(blocking.Take().ok());
  EXPECT_TRUE(waiting.Take().ok());
}

TEST(QueryRuntimeTest, DeadlineExpiredWhileQueuedSkipsTheBody) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::atomic<bool> body_ran{false};
  QuerySpec doomed;
  doomed.deadline = steady_clock::now() - milliseconds(1);
  doomed.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(doomed));

  release.Set();
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(body_ran.load());
  EXPECT_TRUE(blocking.Take().ok());
}

TEST(QueryRuntimeTest, CancelWhileQueuedSkipsTheBody) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 1;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = runtime.Submit(std::move(blocker));
  started.Await();

  std::atomic<bool> body_ran{false};
  QuerySpec spec;
  spec.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  handle.Cancel();

  release.Set();
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(body_ran.load());
  EXPECT_TRUE(blocking.Take().ok());
}

TEST(QueryRuntimeTest, CancelAfterCompletionIsANoOp) {
  QueryRuntime runtime;
  QuerySpec spec;
  spec.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle handle = runtime.Submit(std::move(spec));
  handle.Wait();
  handle.Cancel();  // Already done: must not disturb the stored outcome.
  EXPECT_TRUE(handle.Take().ok());
}

TEST(QueryRuntimeTest, MemoryBudgetGatesAdmissionUntilRelease) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 2;
  options.memory_budget_units = 10;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec big;
  big.memory_units = 10;  // Takes the whole budget.
  big.body = Blocker(&started, &release);
  QueryHandle big_handle = runtime.Submit(std::move(big));
  started.Await();

  QuerySpec small;
  small.memory_units = 5;
  small.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  QueryHandle small_handle = runtime.Submit(std::move(small));
  // A driver is free, but the budget is exhausted: the query waits
  // (admission-gated), it is not shed.
  EXPECT_FALSE(small_handle.WaitFor(milliseconds(50)));

  release.Set();
  ASSERT_TRUE(big_handle.Take().ok());
  ASSERT_TRUE(small_handle.Take().ok());

  // A declaration larger than the whole budget can never be satisfied:
  // it is shed at enqueue with ResourceExhausted instead of being
  // silently clamped (clamping let the query run unconstrained past the
  // budget it over-declared against).
  std::atomic<bool> huge_body_ran{false};
  QuerySpec huge;
  huge.memory_units = 100;
  huge.body = [&huge_body_ran](QueryEnv&) -> Result<QueryResult> {
    huge_body_ran.store(true);
    return QueryResult{};
  };
  auto huge_result = runtime.Submit(std::move(huge)).Take();
  ASSERT_FALSE(huge_result.ok());
  EXPECT_EQ(huge_result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(huge_body_ran.load());
  EXPECT_NE(huge_result.status().message().find("memory_units"),
            std::string::npos)
      << huge_result.status().ToString();

  // A declaration exactly at the budget still runs.
  QuerySpec exact;
  exact.memory_units = 10;
  exact.body = [](QueryEnv&) -> Result<QueryResult> {
    return QueryResult{};
  };
  EXPECT_TRUE(runtime.Submit(std::move(exact)).Take().ok());
}

TEST(QueryRuntimeTest, CancellingABudgetBlockedQueryHandsItOutPromptly) {
  QueryRuntimeOptions options;
  options.max_concurrent_queries = 2;
  options.memory_budget_units = 10;
  QueryRuntime runtime(options);

  Latch started, release;
  QuerySpec big;
  big.memory_units = 10;  // Takes the whole budget and parks.
  big.body = Blocker(&started, &release);
  QueryHandle big_handle = runtime.Submit(std::move(big));
  started.Await();

  // Blocked in PopNext on the exhausted budget; a free driver is parked
  // on the admission cv with no deadline to poll for.
  std::atomic<bool> body_ran{false};
  QuerySpec gated;
  gated.memory_units = 5;
  gated.body = [&body_ran](QueryEnv&) -> Result<QueryResult> {
    body_ran.store(true);
    return QueryResult{};
  };
  QueryHandle gated_handle = runtime.Submit(std::move(gated));
  EXPECT_FALSE(gated_handle.WaitFor(milliseconds(20)));

  // Cancel must wake the parked driver (the cancel_notify hook), which
  // hands the query out and completes it with Cancelled without running
  // the body — promptly, not after some poll interval.
  gated_handle.Cancel();
  EXPECT_TRUE(gated_handle.WaitFor(std::chrono::seconds(5)));
  auto taken = gated_handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(body_ran.load());

  release.Set();
  EXPECT_TRUE(big_handle.Take().ok());
}

TEST(QueryRuntimeTest, RuntimeMetricsCountOutcomes) {
  MetricsRegistry metrics;
  {
    QueryRuntimeOptions options;
    options.metrics = &metrics;
    QueryRuntime runtime(options);
    QuerySpec ok_spec;
    ok_spec.body = [](QueryEnv&) -> Result<QueryResult> {
      return QueryResult{};
    };
    runtime.Submit(std::move(ok_spec)).Wait();

    QuerySpec cancelled_spec;
    CancelToken token;
    token.Cancel();
    cancelled_spec.cancel = token;
    cancelled_spec.body = [](QueryEnv& env) -> Result<QueryResult> {
      DBS3_RETURN_IF_ERROR(env.CheckCancelled());
      return QueryResult{};
    };
    runtime.Submit(std::move(cancelled_spec)).Wait();
  }
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters["runtime.queries_submitted"], 2u);
  EXPECT_EQ(snap.counters["runtime.queries_completed"], 1u);
  EXPECT_EQ(snap.counters["runtime.queries_cancelled"], 1u);
  EXPECT_EQ(snap.series["runtime.admission_wait_us"].samples, 2u);
}

TEST(SchedulerFeedbackTest, UtilizationScalesWithLiveQueries) {
  EXPECT_DOUBLE_EQ(MultiUserUtilization(0), 1.0);
  EXPECT_DOUBLE_EQ(MultiUserUtilization(1), 1.0);
  EXPECT_DOUBLE_EQ(MultiUserUtilization(4), 0.25);

  ScheduleOptions fixed;
  fixed.total_threads = 8;
  EXPECT_EQ(ApplyUtilization(fixed, 0.25).total_threads, 2u);
  EXPECT_EQ(ApplyUtilization(fixed, 1e-12).total_threads, 1u);  // Floor.

  ScheduleOptions derived;
  derived.total_threads = 0;
  derived.utilization = 0.8;
  EXPECT_DOUBLE_EQ(ApplyUtilization(derived, 0.5).utilization, 0.4);
}

// ---------------------------------------------------------------------
// Real-engine integration through the Database facade.

TEST(DatabaseSubmitTest, SubmitSelectRunsOnSharedRuntime) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 1'000;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());

  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  QueryHandle select =
      SubmitSelect(db, "t", MatchAll(), 1.0, options);
  auto taken = select.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().result->cardinality(), 1'000u);
  const QueryRunStats stats = select.stats();
  EXPECT_EQ(stats.phases, 1u);
  EXPECT_GT(stats.units_processed, 0u);
  EXPECT_GE(stats.execution_seconds, 0.0);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GE(snap.counters["runtime.queries_submitted"], 1u);
  EXPECT_GE(snap.counters["runtime.queries_completed"], 1u);
  EXPECT_GE(snap.counters["engine.queries"], 1u);
}

TEST(DatabaseSubmitTest, CancelMidPipelineDrainsAndReportsPartialWork) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 4'000;
  opt.degree = 8;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  Relation* rel = db.relation("t").value();

  // The filter parks the first worker on its first tuple; everything
  // still queued when the cancel fires must drain into the cancelled
  // ledger bucket (verified by the DBS3_VERIFY conservation check on
  // executor exit in verify builds).
  Latch started, release;
  TuplePredicate parked = [&started, &release](const Tuple&) {
    started.Set();
    release.Await();
    return true;
  };

  QuerySpec spec;
  spec.body = [rel, parked](QueryEnv& env) -> Result<QueryResult> {
    auto result = std::make_unique<Relation>(
        "res", rel->schema(), rel->partition_column(),
        Partitioner(rel->partitioner().kind(), rel->degree()));
    Plan plan;
    const size_t filter = plan.AddNode(
        "filter", ActivationMode::kTriggered, rel->degree(),
        std::make_unique<FilterLogic>(rel, parked, 1.0));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, rel->degree(),
                     std::make_unique<StoreLogic>(result.get()));
    DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
    ScheduleOptions schedule;
    schedule.total_threads = 2;
    schedule.processors = 2;
    DBS3_ASSIGN_OR_RETURN(PhaseOutcome phase,
                          env.Run(plan, CostModel{}, schedule));
    QueryResult out;
    out.result = std::move(result);
    out.execution = std::move(phase.execution);
    return out;
  };
  QueryHandle handle = db.Submit(std::move(spec));
  started.Await();
  handle.Cancel();
  release.Set();

  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kCancelled);
  const QueryRunStats stats = handle.stats();
  EXPECT_EQ(stats.phases, 1u);  // The interrupted phase still counts.
  EXPECT_GT(stats.units_cancelled, 0u);  // Drained, not lost.

  // The budget/slots were released: the database still runs queries.
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto after = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().result->cardinality(), 4'000u);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GE(snap.counters["runtime.queries_cancelled"], 1u);
  EXPECT_GT(snap.counters["engine.units_cancelled"], 0u);
}

TEST(DatabaseSubmitTest, DirectPathBypassesTheRuntime) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 500;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.use_shared_runtime = false;
  auto r = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.queries_submitted"], 0u);
  EXPECT_EQ(snap.counters["engine.queries"], 1u);
}

TEST(DatabaseSubmitTest, DirectPathHonorsPreCancelledToken) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 500;
  opt.degree = 4;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.use_shared_runtime = false;
  CancelToken token;
  token.Cancel();
  options.cancel = token;
  auto r = RunSelect(db, "t", MatchAll(), 1.0, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(DatabaseSubmitTest, SubmitEsqlReportsRepartitionPhases) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 8;
  spec.theta = 0.3;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());
  // B repartitioned on payload: a materialization boundary runs as an
  // extra phase through the same runtime.
  auto misaligned = std::make_unique<Relation>(
      "mis", Schema({{"key", ValueType::kInt64},
                     {"grp", ValueType::kInt64}}),
      1, Partitioner(PartitionKind::kHash, 8));
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(misaligned->Insert(Tuple({Value(k), Value(k % 5)})).ok());
  }
  ASSERT_TRUE(db.AddRelation(std::move(misaligned)).ok());

  EsqlOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  QueryHandle handle = SubmitEsql(
      db, "SELECT * FROM mis JOIN A ON mis.key = A.payload", options);
  auto taken = handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_NE(taken.value().detail.find("repartition"), std::string::npos)
      << taken.value().detail;
  EXPECT_EQ(taken.value().phases.size(), 1u);  // One materialization.
  EXPECT_EQ(handle.stats().phases, 2u);  // Repartition + final pipeline.
}

TEST(DatabaseSubmitTest, SubmitEsqlSurfacesParseErrorsThroughHandle) {
  Database db(2);
  QueryHandle handle = SubmitEsql(db, "SELEC nonsense", EsqlOptions{});
  auto taken = handle.Take();
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, DatabaseIsNeitherCopyableNorMovable) {
  static_assert(!std::is_copy_constructible_v<Database>);
  static_assert(!std::is_copy_assignable_v<Database>);
  static_assert(!std::is_move_constructible_v<Database>);
  static_assert(!std::is_move_assignable_v<Database>);
}

// ---------------------------------------------------------------------
// Shared-work execution: multi-query shared scans.

std::vector<Tuple> SortedRows(const Relation& rel) {
  std::vector<Tuple> rows = rel.Scan();
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(SharedScanTest, DeadlineExpiringInTheWindowShedsNotRides) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 2'000;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;  // One driver => one batch window.
  ropt.shared_batch_max_queries = 8;
  ropt.shared_batch_window_us = 150'000;  // Far beyond q2's deadline.
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  // Park the driver so both queries are queued before the window opens.
  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  started.Await();

  EsqlOptions options;
  QueryHandle q1 = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 100",
                              options);
  EsqlOptions with_deadline = options;
  with_deadline.deadline = steady_clock::now() + milliseconds(40);
  QueryHandle q2 = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 500",
                              with_deadline);
  release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  // q2's deadline fires ~40ms into the 150ms window: it must be shed with
  // DeadlineExceeded, not ride the batch to a late result.
  auto q2_taken = q2.Take();
  ASSERT_FALSE(q2_taken.ok());
  EXPECT_EQ(q2_taken.status().code(), StatusCode::kDeadlineExceeded);

  // q1, the sole survivor, degenerates to its solo body — correct rows,
  // no shared batch recorded anywhere.
  auto q1_taken = q1.Take();
  ASSERT_TRUE(q1_taken.ok()) << q1_taken.status().ToString();
  Relation* rel = db.relation("w").value();
  std::vector<Tuple> expected;
  for (const Tuple& t : rel->Scan()) {
    if (t.at(0).AsInt() < 100) expected.push_back(t);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedRows(*q1_taken.value().result), expected);
  EXPECT_EQ(q1.stats().shared_batch_queries, 0u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 0u);
}

TEST(SharedScanTest, CancellingOneMemberMidBatchLeavesTheOthersIntact) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 800;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;
  ropt.shared_batch_max_queries = 8;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());
  Relation* rel = db.relation("w").value();

  // q1's predicate parks the scan workers mid-pass so the main thread can
  // cancel q2 while the batch is running.
  Latch started, release;
  TuplePredicate parked = [&started, &release](const Tuple&) {
    started.Set();
    release.Await();
    return true;
  };
  const auto make_spec = [&](Predicate predicate) {
    auto shared = std::make_shared<SharedScanSpec>();
    shared->relation = rel;
    shared->predicate = std::move(predicate);
    shared->result_schema = rel->schema();
    shared->vectorize = false;
    shared->share_class = 42;  // Hand-assigned: the two are compatible.
    QuerySpec spec;
    spec.shared = std::move(shared);
    spec.body = [](QueryEnv&) -> Result<QueryResult> {
      return Status::Internal("expected the batch path, got a solo run");
    };
    return spec;
  };

  // Park the driver so both members are queued when the batch forms.
  Latch b_started, b_release;
  QuerySpec blocker;
  blocker.body = Blocker(&b_started, &b_release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  b_started.Await();
  QueryHandle q1 = db.Submit(make_spec(Predicate(parked)));
  QueryHandle q2 = db.Submit(make_spec(MatchAll()));
  b_release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  started.Await();  // The shared pass is underway (parked on q1's pred).
  q2.Cancel();
  release.Set();

  // q2 is gone, q1 is whole: one member's cancel drops only its tagged
  // tuples. q1's OK outcome implies the per-query conservation ledger
  // audited clean (an unbalanced ledger fails every member).
  auto q2_taken = q2.Take();
  ASSERT_FALSE(q2_taken.ok());
  EXPECT_EQ(q2_taken.status().code(), StatusCode::kCancelled);
  auto q1_taken = q1.Take();
  ASSERT_TRUE(q1_taken.ok()) << q1_taken.status().ToString();
  EXPECT_EQ(SortedRows(*q1_taken.value().result), SortedRows(*rel));
  EXPECT_EQ(q1.stats().shared_batch_queries, 2u);
  EXPECT_EQ(q2.stats().shared_batch_queries, 2u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 1u);
}

TEST(SharedScanTest, IncompatibleQueryIsNeverFoldedIntoABatch) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 2'000;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("w", opt).ok());
  QueryRuntimeOptions ropt;
  ropt.max_concurrent_queries = 1;
  ropt.shared_batch_max_queries = 8;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  Latch started, release;
  QuerySpec blocker;
  blocker.body = Blocker(&started, &release);
  QueryHandle blocking = db.Submit(std::move(blocker));
  started.Await();

  // qa and qb share a class (same relation, star projection); qc projects
  // two columns — a different shape, so a different class.
  EsqlOptions options;
  QueryHandle qa = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 50",
                              options);
  QueryHandle qb = SubmitEsql(db, "SELECT * FROM w WHERE unique1 < 150",
                              options);
  QueryHandle qc = SubmitEsql(
      db, "SELECT unique1, unique2 FROM w WHERE unique1 < 150", options);
  release.Set();
  ASSERT_TRUE(blocking.Take().ok());

  auto qa_taken = qa.Take();
  auto qb_taken = qb.Take();
  auto qc_taken = qc.Take();
  ASSERT_TRUE(qa_taken.ok()) << qa_taken.status().ToString();
  ASSERT_TRUE(qb_taken.ok()) << qb_taken.status().ToString();
  ASSERT_TRUE(qc_taken.ok()) << qc_taken.status().ToString();

  // qa/qb rode one batch; qc ran solo and is row-identical to the solo
  // reference computed straight off the base relation.
  EXPECT_EQ(qa.stats().shared_batch_queries, 2u);
  EXPECT_EQ(qb.stats().shared_batch_queries, 2u);
  EXPECT_EQ(qc.stats().shared_batch_queries, 0u);
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.shared_batches"], 1u);
  EXPECT_EQ(snap.series["shared.queries_per_batch"].samples, 1u);
  EXPECT_EQ(snap.series["shared.queries_per_batch"].last, 2);

  Relation* rel = db.relation("w").value();
  std::vector<Tuple> qb_expected;
  std::vector<Tuple> qc_expected;
  for (const Tuple& t : rel->Scan()) {
    if (t.at(0).AsInt() >= 150) continue;
    qb_expected.push_back(t);
    qc_expected.push_back(Tuple(std::vector<Value>{t.at(0), t.at(1)}));
  }
  std::sort(qb_expected.begin(), qb_expected.end());
  std::sort(qc_expected.begin(), qc_expected.end());
  EXPECT_EQ(SortedRows(*qb_taken.value().result), qb_expected);
  EXPECT_EQ(SortedRows(*qc_taken.value().result), qc_expected);
}

// ---------------------------------------------------------------------
// WorkerPool post-shutdown contract (the small-fix satellite).

TEST(WorkerPoolTest, DispatchAfterShutdownIsRejectedAndCounted) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  Latch done;
  pool.Dispatch([&ran, &done] {
    ran.fetch_add(1);
    done.Set();
  });
  done.Await();
  pool.Shutdown();
  // Post-shutdown dispatch: dropped, counted, never run — not silently
  // queued (the old behavior) and not an abort.
  pool.Dispatch([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(pool.tasks_rejected(), 1u);
  EXPECT_EQ(pool.tasks_dispatched(), 1u);  // Accepted tasks only.
  // Shutdown is idempotent; the rejected task still never runs.
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerPoolTest, IdleAndQueueDepthProbesTrackLoad) {
  WorkerPool pool(2);
  Latch started, release;
  pool.Dispatch([&started, &release] {
    started.Set();
    release.Await();
  });
  started.Await();
  EXPECT_LE(pool.idle_threads(), 1u);  // One thread is pinned.
  release.Set();
  // After the task finishes, both threads return to idle.
  while (pool.idle_threads() < 2) std::this_thread::sleep_for(milliseconds(1));
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// ---------------------------------------------------------------------
// ApplyUtilization edge cases (satellite).

TEST(SchedulerFeedbackTest, ApplyUtilizationFixedThreadEdges) {
  ScheduleOptions fixed;
  fixed.total_threads = 5;
  // lround: half rounds away from zero.
  EXPECT_EQ(ApplyUtilization(fixed, 0.5).total_threads, 3u);
  // Factor > 1 clamps to 1 — utilization feedback never inflates.
  EXPECT_EQ(ApplyUtilization(fixed, 2.0).total_threads, 5u);
  // The floor is always one thread, even at the 1e-9 clamp.
  EXPECT_EQ(ApplyUtilization(fixed, 0.0).total_threads, 1u);
  fixed.total_threads = 1;
  EXPECT_EQ(ApplyUtilization(fixed, 0.25).total_threads, 1u);
}

TEST(SchedulerFeedbackTest, ApplyUtilizationDerivedCompoundsAndClamps) {
  ScheduleOptions derived;
  derived.total_threads = 0;
  derived.utilization = 0.8;
  // Factors compound multiplicatively on the derived path.
  ScheduleOptions once = ApplyUtilization(derived, 0.5);
  EXPECT_DOUBLE_EQ(once.utilization, 0.4);
  ScheduleOptions twice = ApplyUtilization(once, 0.5);
  EXPECT_DOUBLE_EQ(twice.utilization, 0.2);
  // Repeated clamped factors bottom out at 1e-9, never 0 (which
  // ScheduleQuery would reject).
  ScheduleOptions floored = derived;
  for (int i = 0; i < 8; ++i) floored = ApplyUtilization(floored, 0.0);
  EXPECT_DOUBLE_EQ(floored.utilization, 1e-9);
}

// ---------------------------------------------------------------------
// Operation park/grant paths (TSan targets: park mid-drain, grant racing
// cancellation, teardown with parked workers).

/// Counts processed units and burns a little CPU per trigger so a drain
/// spans many activation boundaries.
class SpinCountLogic : public OperatorLogic {
 public:
  void OnTrigger(size_t, Emitter*) override {
    volatile uint32_t sink = 0;
    for (uint32_t i = 0; i < 64; ++i) sink = sink + i;
    processed_.fetch_add(1, std::memory_order_relaxed);
  }
  std::string name() const override { return "spin-count"; }
  uint64_t processed() const { return processed_.load(); }

 private:
  std::atomic<uint64_t> processed_{0};
};

OperationConfig ParkTestConfig(size_t instances, size_t threads) {
  OperationConfig config;
  config.name = "park-op";
  config.num_instances = instances;
  config.num_threads = threads;
  config.cache_size = 4;
  return config;
}

TEST(OperationParkTest, ParkMidDrainConservesUnitsAndSignalsExits) {
  WorkerPool pool(4);
  SpinCountLogic logic;
  Operation op(ParkTestConfig(8, 4), &logic, DataOutput{});
  op.AddProducer();
  std::atomic<size_t> exits{0};
  std::atomic<size_t> parked_exits{0};
  op.set_exit_callback([&exits, &parked_exits](bool parked) {
    exits.fetch_add(1);
    if (parked) parked_exits.fetch_add(1);
  });
  op.StartOn(&pool);

  const size_t kTriggers = 2'000;
  for (size_t i = 0; i < kTriggers / 2; ++i) op.PushTrigger(i % 8);
  // Park mid-drain: with 4 live workers at most 3 are parkable (one must
  // keep consuming), and the request is absorbed exactly.
  const size_t requested = op.RequestPark(2);
  EXPECT_EQ(requested, 2u);
  for (size_t i = 0; i < kTriggers / 2; ++i) op.PushTrigger(i % 8);
  op.ProducerDone();
  op.Join();

  EXPECT_EQ(logic.processed(), kTriggers);
  EXPECT_EQ(exits.load(), 4u);
  EXPECT_EQ(parked_exits.load(), requested);
  EXPECT_EQ(op.active_workers(), 0u);
  const OperationStats stats = op.stats();
  uint64_t total = 0;
  for (uint64_t c : stats.per_instance_processed) total += c;
  EXPECT_EQ(total, kTriggers);  // Conservation across the parks.
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(OperationParkTest, LastActiveWorkerRefusesToPark) {
  WorkerPool pool(2);
  SpinCountLogic logic;
  Operation op(ParkTestConfig(2, 1), &logic, DataOutput{});
  op.AddProducer();
  op.StartOn(&pool);
  // A lone worker is never parkable: liveness with queued work requires a
  // consumer.
  EXPECT_EQ(op.RequestPark(1), 0u);
  for (size_t i = 0; i < 100; ++i) op.PushTrigger(i % 2);
  EXPECT_EQ(op.RequestPark(3), 0u);
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(logic.processed(), 100u);
}

TEST(OperationParkTest, GrantAddsAWorkerAndStatsSlot) {
  WorkerPool pool(4);
  SpinCountLogic logic;
  Operation op(ParkTestConfig(8, 2), &logic, DataOutput{});
  op.AddProducer();
  op.StartOn(&pool);
  // Producers are still open, so the operation is not drained and must
  // accept a worker (capacity is max(threads, instances) = 8).
  EXPECT_TRUE(op.TryGrantWorker());
  for (size_t i = 0; i < 1'000; ++i) op.PushTrigger(i % 8);
  op.ProducerDone();
  op.Join();
  EXPECT_EQ(logic.processed(), 1'000u);
  const OperationStats stats = op.stats();
  // The granted worker reports in its own stat slot past num_threads.
  EXPECT_GE(stats.per_thread_processed.size(), 3u);
  uint64_t total = 0;
  for (uint64_t c : stats.per_instance_processed) total += c;
  EXPECT_EQ(total, 1'000u);
}

TEST(OperationParkTest, GrantRacingCancellationDrainsCleanly) {
  WorkerPool pool(6);
  SpinCountLogic logic;
  CancelToken cancel;
  OperationConfig config = ParkTestConfig(8, 2);
  config.cancel = cancel;
  Operation op(config, &logic, DataOutput{});
  op.AddProducer();
  op.StartOn(&pool);
  for (size_t i = 0; i < 4'000; ++i) op.PushTrigger(i % 8);
  // Race grants against the cancel from two sides; both outcomes of each
  // grant (accepted or refused) must leave the drain protocol intact.
  std::thread canceller([&cancel] { cancel.Cancel(); });
  size_t granted = 0;
  for (int i = 0; i < 4; ++i) {
    if (op.TryGrantWorker()) ++granted;
  }
  canceller.join();
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  uint64_t processed = 0;
  for (uint64_t c : stats.per_instance_processed) processed += c;
  // Conservation: every pushed unit was processed or drained-as-cancelled.
  EXPECT_EQ(processed + stats.cancelled_units, 4'000u);
  EXPECT_LE(granted, 4u);
}

TEST(OperationParkTest, TeardownWithParkedWorkersJoinsCleanly) {
  SpinCountLogic logic;
  {
    WorkerPool pool(4);
    Operation op(ParkTestConfig(4, 4), &logic, DataOutput{});
    op.AddProducer();
    op.StartOn(&pool);
    for (size_t i = 0; i < 200; ++i) op.PushTrigger(i % 4);
    // Park claims race ProducerDone and the drain; parked workers exit
    // through the same protocol, so Join and the pool teardown see a
    // consistent live count.
    (void)op.RequestPark(3);
    op.ProducerDone();
    op.Join();
  }
  EXPECT_EQ(logic.processed(), 200u);
}

// ---------------------------------------------------------------------
// ReassignPlanner policy (pure function).

TEST(ReassignPlanTest, PressureParksDownToTheLiveFairShare) {
  // One running query holding the whole pool, one waiter: the per-tick
  // utilization recomputation makes the fair share pool/2.
  std::vector<ExecSnapshot> execs = {{1, 8, 8}};
  const ReassignPlan plan = PlanReassign(execs, 8, 0, /*pressure=*/true,
                                         /*extra_load=*/1);
  ASSERT_EQ(plan.parks.size(), 1u);
  EXPECT_EQ(plan.parks[0].id, 1u);
  EXPECT_EQ(plan.parks[0].count, 4u);  // 8 - floor(8 * 1/2).
  EXPECT_TRUE(plan.grants.empty());
}

TEST(ReassignPlanTest, NoPressureGrantsRoundRobinByDeficit) {
  std::vector<ExecSnapshot> execs = {{1, 1, 4}, {2, 1, 2}};
  const ReassignPlan plan = PlanReassign(execs, 8, 3, /*pressure=*/false,
                                         /*extra_load=*/0);
  EXPECT_TRUE(plan.parks.empty());
  ASSERT_EQ(plan.grants.size(), 2u);
  // Largest deficit first, dealt one at a time: 2 for exec 1, 1 for exec 2.
  EXPECT_EQ(plan.grants[0].id, 1u);
  EXPECT_EQ(plan.grants[0].count, 2u);
  EXPECT_EQ(plan.grants[1].id, 2u);
  EXPECT_EQ(plan.grants[1].count, 1u);
}

TEST(ReassignPlanTest, ParksAndGrantsNeverShareATick) {
  // Under pressure an under-provisioned execution still receives nothing —
  // freed capacity goes to the waiters, preventing park/grant churn.
  std::vector<ExecSnapshot> execs = {{1, 6, 6}, {2, 1, 4}};
  const ReassignPlan plan = PlanReassign(execs, 8, 1, /*pressure=*/true,
                                         /*extra_load=*/2);
  EXPECT_TRUE(plan.grants.empty());
  ASSERT_EQ(plan.parks.size(), 1u);
  EXPECT_EQ(plan.parks[0].id, 1u);
  EXPECT_EQ(plan.parks[0].count, 4u);  // Down to floor(8 * 1/4) = 2.
}

// ---------------------------------------------------------------------
// PoolLoadBoard apply-side (fake execution, counted hooks).

class FakeMalleable : public MalleableExecution {
 public:
  std::vector<OpLoad> SampleLoad() override { return {}; }
  size_t RequestPark(size_t n) override {
    park_requests += n;
    return n;
  }
  bool TryGrantWorker() override {
    if (refuse_grants) return false;
    ++grants;
    return true;
  }

  size_t park_requests = 0;
  size_t grants = 0;
  bool refuse_grants = false;
};

struct CountedSlots {
  explicit CountedSlots(size_t free) : free_slots(free) {}
  PoolLoadBoard::Hooks hooks() {
    return {[this] {
              size_t now = free_slots.load();
              while (now > 0 &&
                     !free_slots.compare_exchange_weak(now, now - 1)) {
              }
              if (now == 0) return false;
              ++reserves;
              return true;
            },
            [this] {
              free_slots.fetch_add(1);
              ++releases;
            }};
  }
  std::atomic<size_t> free_slots;
  std::atomic<size_t> reserves{0};
  std::atomic<size_t> releases{0};
};

TEST(PoolLoadBoardTest, SoloSurvivorRegainsFullAllocationAfterCohortDrains) {
  CountedSlots slots(0);
  PoolLoadBoard board(slots.hooks());
  FakeMalleable survivor;
  FakeMalleable cohort;
  // Admitted at MPL 2: both were clamped to half the pool (4 -> 2).
  const uint64_t survivor_id = board.Register(&survivor, 2, 4);
  const uint64_t cohort_id = board.Register(&cohort, 2, 2);

  // While the cohort runs there is no idle capacity: nothing to grant.
  board.Rebalance(4, 0, /*pressure=*/false, 0);
  EXPECT_EQ(survivor.grants, 0u);

  // Cohort drains: its workers exit (crediting slots) and it unregisters.
  board.OnWorkerExit(cohort_id, false);
  board.OnWorkerExit(cohort_id, false);
  const RebalanceTotals cohort_totals = board.Unregister(cohort_id);
  EXPECT_TRUE(cohort_totals.active);
  EXPECT_EQ(slots.releases.load(), 2u);

  // Next tick: the survivor is alone, fair share is the whole pool, and
  // the freed capacity flows back — the admission-time clamp is undone.
  board.Rebalance(4, 2, /*pressure=*/false, 0);
  EXPECT_EQ(survivor.grants, 2u);
  EXPECT_EQ(slots.reserves.load(), 2u);

  const RebalanceTotals totals = board.Unregister(survivor_id);
  EXPECT_TRUE(totals.active);
  EXPECT_EQ(totals.granted, 2u);
}

TEST(PoolLoadBoardTest, RefusedGrantReturnsTheSlot) {
  CountedSlots slots(2);
  PoolLoadBoard board(slots.hooks());
  FakeMalleable exec;
  exec.refuse_grants = true;  // Drained / at capacity.
  board.Register(&exec, 1, 4);
  const PoolLoadBoard::TickReport report =
      board.Rebalance(4, 2, /*pressure=*/false, 0);
  EXPECT_EQ(report.grants_delivered, 0u);
  // Every reserved slot was handed back: no capacity leaks on refusal.
  EXPECT_EQ(slots.reserves.load(), slots.releases.load());
  EXPECT_EQ(slots.free_slots.load(), 2u);
}

TEST(PoolLoadBoardTest, PressureForwardsParksToTheWidestExecution) {
  CountedSlots slots(0);
  PoolLoadBoard board(slots.hooks());
  FakeMalleable wide;
  board.Register(&wide, 6, 6);
  board.Rebalance(8, 0, /*pressure=*/true, /*extra_load=*/1);
  // Fair share at live load 2 is floor(8/2) = 4: park 2 of 6.
  EXPECT_EQ(wide.park_requests, 2u);
  EXPECT_EQ(board.total_parked(), 0u);  // Counted at exit, not request.
  board.OnWorkerExit(1, true);
  EXPECT_EQ(board.total_parked(), 1u);
  EXPECT_EQ(slots.releases.load(), 1u);
}

// ---------------------------------------------------------------------
// Joint CPU+memory admission (controller-level, deterministic hooks).

TEST(AdmissionTest, CpuFitWaiterIsPackedPastABlockedWiderOne) {
  AdmissionConfig config;
  config.max_queued = 16;
  config.pool_threads = 4;
  std::atomic<size_t> free_threads{2};
  config.free_threads = [&free_threads] { return free_threads.load(); };
  AdmissionController ctrl(config);

  PendingQuery wide;
  wide.id = 1;
  wide.threads_hint = 4;  // Needs more than the 2 free: would block.
  PendingQuery narrow;
  narrow.id = 2;
  narrow.threads_hint = 2;  // Deliverable right now.
  ASSERT_TRUE(ctrl.TryEnqueue(std::move(wide)).ok());
  ASSERT_TRUE(ctrl.TryEnqueue(std::move(narrow)).ok());

  PendingQuery out;
  // FIFO would hand out the wide query first; joint packing prefers the
  // narrow one whose thread share the pool can deliver immediately.
  ASSERT_TRUE(ctrl.PopNext(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(ctrl.PopNext(&out));
  EXPECT_EQ(out.id, 1u);
  ctrl.Shutdown();
}

TEST(AdmissionTest, WiderThanPoolHintIsAlwaysCpuFit) {
  AdmissionConfig config;
  config.max_queued = 16;
  config.pool_threads = 4;
  config.free_threads = [] { return size_t{0}; };
  AdmissionController ctrl(config);

  PendingQuery fallback;
  fallback.id = 1;
  fallback.threads_hint = 8;  // Runs on private threads, not the pool.
  PendingQuery narrow;
  narrow.id = 2;
  narrow.threads_hint = 1;
  ASSERT_TRUE(ctrl.TryEnqueue(std::move(fallback)).ok());
  ASSERT_TRUE(ctrl.TryEnqueue(std::move(narrow)).ok());

  // Neither is deliverable from free pool capacity (0 free), but the
  // wider-than-pool query never waits on the pool at all: FIFO holds.
  PendingQuery out;
  ASSERT_TRUE(ctrl.PopNext(&out));
  EXPECT_EQ(out.id, 1u);
  ctrl.Shutdown();
}

TEST(AdmissionTest, BypassAgingBoundsTheReordering) {
  AdmissionConfig config;
  config.max_queued = 64;
  config.pool_threads = 4;
  config.free_threads = [] { return size_t{1}; };
  AdmissionController ctrl(config);

  PendingQuery wide;
  wide.id = 1;
  wide.threads_hint = 3;  // Never CPU-fit with 1 free thread.
  ASSERT_TRUE(ctrl.TryEnqueue(std::move(wide)).ok());
  for (uint64_t i = 0; i < 20; ++i) {
    PendingQuery narrow;
    narrow.id = 100 + i;
    narrow.threads_hint = 1;
    ASSERT_TRUE(ctrl.TryEnqueue(std::move(narrow)).ok());
  }

  // 16 bypasses are allowed, then the wide query wins despite being
  // CPU-unfit — packing delays it, starvation is impossible.
  PendingQuery out;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(ctrl.PopNext(&out));
    EXPECT_GE(out.id, 100u) << "bypass " << i;
  }
  ASSERT_TRUE(ctrl.PopNext(&out));
  EXPECT_EQ(out.id, 1u);
  ctrl.Shutdown();
}

// ---------------------------------------------------------------------
// End-to-end steady-state adaptivity through the runtime.

TEST(AdaptiveRuntimeTest, ClampedQueryIsGrantedWorkersWhenTheCohortDrains) {
  Database db(4);
  WisconsinOptions opt;
  opt.cardinality = 60'000;
  opt.degree = 8;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  Relation* rel = db.relation("t").value();

  QueryRuntimeOptions ropt;
  ropt.pool_threads = 4;
  ropt.max_concurrent_queries = 4;
  ropt.rebalance_interval_us = 200;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  // Hold one query body live so the long query is admitted at MPL 2 and
  // clamped to half its width (4 -> 2 threads).
  Latch cohort_started, cohort_release;
  QuerySpec cohort;
  cohort.body = Blocker(&cohort_started, &cohort_release);
  QueryHandle cohort_handle = db.Submit(std::move(cohort));
  cohort_started.Await();

  Latch long_started;
  TuplePredicate slow = [&long_started](const Tuple&) {
    long_started.Set();
    // ~1 us of work per tuple keeps the scan running across many ticks.
    volatile uint32_t sink = 0;
    for (uint32_t i = 0; i < 400; ++i) sink = sink + i;
    return true;
  };
  QuerySpec longq;
  longq.body = [rel, slow](QueryEnv& env) -> Result<QueryResult> {
    auto result = std::make_unique<Relation>(
        "res", rel->schema(), rel->partition_column(),
        Partitioner(rel->partitioner().kind(), rel->degree()));
    Plan plan;
    const size_t filter = plan.AddNode(
        "filter", ActivationMode::kTriggered, rel->degree(),
        std::make_unique<FilterLogic>(rel, slow, 1.0));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, rel->degree(),
                     std::make_unique<StoreLogic>(result.get()));
    DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
    ScheduleOptions schedule;
    schedule.total_threads = 4;
    schedule.processors = 4;
    DBS3_ASSIGN_OR_RETURN(PhaseOutcome phase,
                          env.Run(plan, CostModel{}, schedule));
    QueryResult out;
    out.result = std::move(result);
    out.execution = std::move(phase.execution);
    return out;
  };
  QueryHandle long_handle = db.Submit(std::move(longq));
  long_started.Await();

  // The cohort drains while the long query still has most of its scan
  // ahead; the solo survivor's fair share is the whole pool again.
  cohort_release.Set();
  ASSERT_TRUE(cohort_handle.Take().ok());

  auto taken = long_handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().result->cardinality(), 60'000u);
  const QueryRunStats stats = long_handle.stats();
  // The admission-time clamp was undone mid-query: at least one extra
  // worker was granted once the cohort drained (the regression this test
  // pins: allocations used to stay frozen at admission).
  EXPECT_GE(stats.threads_granted, 1u);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GE(snap.counters["runtime.threads_granted"], 1u);
}

TEST(AdaptiveRuntimeTest, PressureParksALongQueryAndShortsGetThrough) {
  Database db(4);
  WisconsinOptions opt;
  opt.cardinality = 60'000;
  opt.degree = 8;
  ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
  Relation* rel = db.relation("t").value();

  QueryRuntimeOptions ropt;
  ropt.pool_threads = 4;
  ropt.max_concurrent_queries = 4;
  ropt.rebalance_interval_us = 200;
  ASSERT_TRUE(db.StartRuntime(ropt).ok());

  // The long query takes the whole pool (solo admission, no clamp).
  Latch long_started;
  TuplePredicate slow = [&long_started](const Tuple&) {
    long_started.Set();
    volatile uint32_t sink = 0;
    for (uint32_t i = 0; i < 400; ++i) sink = sink + i;
    return true;
  };
  QuerySpec longq;
  longq.body = [rel, slow](QueryEnv& env) -> Result<QueryResult> {
    auto result = std::make_unique<Relation>(
        "res", rel->schema(), rel->partition_column(),
        Partitioner(rel->partitioner().kind(), rel->degree()));
    Plan plan;
    const size_t filter = plan.AddNode(
        "filter", ActivationMode::kTriggered, rel->degree(),
        std::make_unique<FilterLogic>(rel, slow, 1.0));
    const size_t store =
        plan.AddNode("store", ActivationMode::kPipelined, rel->degree(),
                     std::make_unique<StoreLogic>(result.get()));
    DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
    ScheduleOptions schedule;
    schedule.total_threads = 4;
    schedule.processors = 4;
    DBS3_ASSIGN_OR_RETURN(PhaseOutcome phase,
                          env.Run(plan, CostModel{}, schedule));
    QueryResult out;
    out.result = std::move(result);
    out.execution = std::move(phase.execution);
    return out;
  };
  QueryHandle long_handle = db.Submit(std::move(longq));
  long_started.Await();

  // A short lookup arrives while the pool is fully reserved. Statically it
  // would block until the long query ends; the rebalancer sees the blocked
  // reservation as pressure and parks long-query workers to free slots.
  QueryOptions short_opts;
  short_opts.schedule.total_threads = 1;
  short_opts.schedule.processors = 1;
  auto short_result = RunSelect(db, "t", MatchAll(), 1.0, short_opts);
  ASSERT_TRUE(short_result.ok()) << short_result.status().ToString();
  EXPECT_EQ(short_result.value().result->cardinality(), 60'000u);

  auto taken = long_handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken.value().result->cardinality(), 60'000u);
  const QueryRunStats stats = long_handle.stats();
  // At least one long-query worker parked to make room (and may have been
  // granted back after the short finished).
  EXPECT_GE(stats.threads_released, 1u);
}

}  // namespace
}  // namespace dbs3

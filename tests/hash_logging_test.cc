#include "common/hash.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace dbs3 {
namespace {

TEST(HashTest, IntHashIsDeterministic) {
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_NE(HashInt64(42), HashInt64(43));
}

TEST(HashTest, SequentialKeysSpreadOverBuckets) {
  // The property hash partitioning relies on: consecutive keys land in
  // near-equal fragment counts.
  constexpr size_t kBuckets = 16;
  constexpr size_t kKeys = 16'000;
  std::vector<size_t> counts(kBuckets, 0);
  for (size_t k = 0; k < kKeys; ++k) ++counts[HashInt64(k) % kBuckets];
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.10);
  }
}

TEST(HashTest, BytesHashDiffersByContent) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, CombineIsOrderSensitive) {
  const uint64_t a = HashInt64(1), b = HashInt64(2);
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
  EXPECT_EQ(HashCombine(a, b), HashCombine(a, b));
}

TEST(HashTest, FewCollisionsOnRandomInputs) {
  std::set<uint64_t> hashes;
  for (uint64_t i = 0; i < 10'000; ++i) hashes.insert(HashInt64(i * 77));
  EXPECT_EQ(hashes.size(), 10'000u);
}

TEST(LoggingTest, LevelGateWorks) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must not evaluate into output (smoke: the macro
  // compiles in all positions and the stream is swallowed).
  DBS3_LOG(kDebug) << "this must not appear";
  DBS3_LOG(kInfo) << "nor this";
  SetLogLevel(before);
}

TEST(LoggingTest, MacroUsableInIfWithoutBraces) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  bool flag = true;
  if (flag)
    DBS3_LOG(kDebug) << "swallowed";
  else
    flag = false;
  EXPECT_TRUE(flag);
  SetLogLevel(before);
}

}  // namespace
}  // namespace dbs3

// Stress and failure-injection tests for the real multithreaded engine.

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/operation.h"
#include "engine/operator_logic.h"

namespace dbs3 {
namespace {

TEST(EngineConcurrencyTest, RepeatedAssocJoinsAreStable) {
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 5'000;
  spec.b_cardinality = 500;
  spec.degree = 25;
  spec.theta = 0.9;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 6;
  options.schedule.processors = 8;
  for (int run = 0; run < 10; ++run) {
    auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
    ASSERT_TRUE(r.ok()) << "run " << run;
    EXPECT_EQ(r.value().result->cardinality(), 5'000u) << "run " << run;
  }
}

TEST(EngineConcurrencyTest, TinyQueueCapacityForcesBackpressure) {
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 4'000;
  spec.b_cardinality = 400;
  spec.degree = 16;
  spec.theta = 0.5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.schedule.queue_capacity = 2;  // Brutal back-pressure.
  auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 4'000u);
}

TEST(EngineConcurrencyTest, CacheSizeSweepPreservesResults) {
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 15;
  spec.theta = 0.8;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  for (size_t cache : {1ul, 4ul, 64ul}) {
    QueryOptions options;
    options.schedule.total_threads = 5;
    options.schedule.processors = 8;
    options.schedule.cache_size = cache;
    auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
    ASSERT_TRUE(r.ok()) << "cache " << cache;
    EXPECT_EQ(r.value().result->cardinality(), 3'000u) << "cache " << cache;
  }
}

TEST(EngineConcurrencyTest, ChunkSizeSweepPreservesResults) {
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 15;
  spec.theta = 0.8;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  for (size_t chunk : {1ul, 16ul, 256ul}) {
    QueryOptions options;
    options.schedule.total_threads = 5;
    options.schedule.processors = 8;
    options.schedule.chunk_size = chunk;
    auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
    ASSERT_TRUE(r.ok()) << "chunk " << chunk;
    EXPECT_EQ(r.value().result->cardinality(), 3'000u) << "chunk " << chunk;
  }
}

TEST(EngineConcurrencyTest, ChunkingReducesActivationTraffic) {
  // The join's per-instance counters stay tuple-denominated (skew and
  // load-balance figures keep their meaning) while the activation counter
  // drops by roughly the chunk factor.
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 4'000;
  spec.b_cardinality = 2'000;
  spec.degree = 16;
  spec.theta = 0.3;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  uint64_t activations_per_tuple_mode = 0;
  for (size_t chunk : {1ul, 32ul}) {
    QueryOptions options;
    options.schedule.total_threads = 4;
    options.schedule.processors = 8;
    options.schedule.chunk_size = chunk;
    auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
    ASSERT_TRUE(r.ok()) << "chunk " << chunk;
    const auto& join_stats = r.value().execution.op_stats[1];
    uint64_t tuples = 0;
    for (uint64_t c : join_stats.per_instance_processed) tuples += c;
    EXPECT_EQ(tuples, 2'000u) << "chunk " << chunk;
    if (chunk == 1) {
      activations_per_tuple_mode = join_stats.activations;
      EXPECT_EQ(join_stats.activations, 2'000u);
    } else {
      EXPECT_LT(join_stats.activations, activations_per_tuple_mode / 8);
    }
  }
}

TEST(EngineConcurrencyTest, ChunkLargerThanQueueCapacityDoesNotDeadlock) {
  // The contract under chunking + bounded queues: the emitter splits chunks
  // down to the consumer's capacity, so chunk_size 64 against capacity-2
  // queues must complete (and reproduce the full result), not deadlock.
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 200;
  spec.degree = 8;
  spec.theta = 0.5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.schedule.queue_capacity = 2;
  options.schedule.chunk_size = 64;
  auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 2'000u);
}

TEST(EngineConcurrencyTest, ManyThreadsOnFewFragments) {
  // Degree of partitioning caps the degree of parallelism: requesting more
  // threads than fragments must still execute correctly (the scheduler
  // clamps per-node pools).
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 3;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 16;
  options.schedule.processors = 16;
  auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result->cardinality(), 1'000u);
  for (size_t t : r.value().schedule.threads) EXPECT_LE(t, 3u);
}

TEST(EngineConcurrencyTest, EmptyInputRelationYieldsEmptyResult) {
  Database db(2);
  auto empty_a = std::make_unique<Relation>(
      "A", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, 4));
  auto empty_b = std::make_unique<Relation>(
      "B", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, 4));
  ASSERT_TRUE(db.AddRelation(std::move(empty_a)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(empty_b)).ok());
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 0u);
}

TEST(EngineConcurrencyTest, LoadBalanceUnderSkewWithLpt) {
  // With heavy skew, LPT plus shared queues keeps every thread busy: no
  // thread processes zero activations on the pipelined join.
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 8'000;
  spec.b_cardinality = 800;
  spec.degree = 40;
  spec.theta = 1.0;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 8;
  options.schedule.force_strategy = Strategy::kLpt;
  auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
  ASSERT_TRUE(r.ok());
  const auto& join_stats = r.value().execution.op_stats[1];
  uint64_t total = 0;
  for (uint64_t c : join_stats.per_thread_processed) total += c;
  EXPECT_EQ(total, 800u);  // Every probe processed exactly once.
}

TEST(EngineConcurrencyTest, SelectAfterJoinPipeline) {
  // Chain queries through the catalog: join, register result, select on it.
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 200;
  spec.degree = 10;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.result_name = "AB";
  auto join = RunIdealJoin(db, "A", "key", "B", "key", options);
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(db.AddRelation(std::move(join.value().result)).ok());
  options.result_name = "filtered";
  auto select =
      RunSelect(db, "AB", ColumnBetween(/*column=*/0, 0, 4), 0.5, options);
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  for (const Tuple& t : select.value().result->Scan()) {
    EXPECT_LE(t.at(0).AsInt(), 4);
  }
}

TEST(EngineConcurrencyTest, RandomizedShortQueryStress) {
  // Many short executions with randomized knobs, several in flight at
  // once: each driver thread runs its own database through query shapes
  // drawn from a deterministic per-thread RNG. This is the sanitizer
  // honeypot — rapid Operation construction/teardown, pool start/join,
  // back-pressure and chunking all churn concurrently.
  constexpr int kDrivers = 3;
  constexpr int kQueriesPerDriver = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([d, &failures] {
      std::mt19937 rng(0x9e3779b9u + static_cast<unsigned>(d));
      Database db(2 + d % 3);
      SkewSpec spec;
      spec.a_cardinality = 800;
      spec.b_cardinality = 80;
      spec.degree = 8;
      spec.theta = 0.5;
      if (!db.CreateSkewedPair(spec, "A", "B").ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerDriver; ++q) {
        QueryOptions options;
        options.schedule.total_threads = 2 + rng() % 5;
        options.schedule.processors = 4 + rng() % 5;
        options.schedule.cache_size = 1 + rng() % 8;
        options.schedule.chunk_size = 1 + rng() % 32;
        options.schedule.queue_capacity = (q % 2 == 0) ? 4 + rng() % 16 : 0;
        auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
        if (!r.ok() || r.value().result->cardinality() != 800u) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(EngineConcurrencyTest, DestroyWhileWorkersStillDrainingIsSafe) {
  // Tear an Operation down while its pool is mid-drain: the destructor's
  // defensive path (close queues, mark producers done, join) must race
  // cleanly against workers still popping and processing — the executor
  // never does this, but a failing query unwind does.
  class SlowLogic : public OperatorLogic {
   public:
    void OnData(size_t, Tuple, Emitter*) override {
      processed.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    std::string name() const override { return "slow"; }
    std::atomic<uint64_t> processed{0};
  };

  for (int round = 0; round < 8; ++round) {
    SlowLogic logic;
    uint64_t accepted = 0;
    {
      OperationConfig config;
      config.name = "teardown";
      config.num_instances = 4;
      config.num_threads = 3;
      config.cache_size = 2;
      Operation op(config, &logic, DataOutput{});
      op.AddProducer();
      op.Start();
      for (int64_t k = 0; k < 400; ++k) {
        op.PushData(static_cast<size_t>(k) % 4, Tuple({Value(k)}));
      }
      accepted = 400;
      // No ProducerDone, no Join: the destructor must shut the pool down
      // itself while workers are still chewing on the backlog.
    }
    const uint64_t done = logic.processed.load();
    EXPECT_LE(done, accepted) << "round " << round;
    EXPECT_GT(done, 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace dbs3

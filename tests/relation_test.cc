#include "storage/relation.h"

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

Schema TwoCols() {
  return Schema({{"key", ValueType::kInt64}, {"val", ValueType::kInt64}});
}

TEST(RelationTest, StartsEmptyWithDegreeFragments) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 4));
  EXPECT_EQ(r.degree(), 4u);
  EXPECT_EQ(r.cardinality(), 0u);
  EXPECT_EQ(r.name(), "R");
  EXPECT_EQ(r.partition_column(), 0u);
}

TEST(RelationTest, InsertRoutesByPartitioner) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 4));
  for (int64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(r.Insert(Tuple({Value(k), Value(k * 10)})).ok());
  }
  EXPECT_EQ(r.cardinality(), 40u);
  const std::vector<uint64_t> cards = r.FragmentCardinalities();
  ASSERT_EQ(cards.size(), 4u);
  for (uint64_t c : cards) EXPECT_EQ(c, 10u);
  // Every tuple in fragment f has key % 4 == f.
  for (size_t f = 0; f < 4; ++f) {
    for (const Tuple& t : r.fragment(f).tuples) {
      EXPECT_EQ(t.at(0).AsInt() % 4, static_cast<int64_t>(f));
    }
  }
}

TEST(RelationTest, InsertRejectsArityMismatch) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 2));
  const Status s = r.Insert(Tuple({Value(int64_t{1})}));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("R"), std::string::npos);
}

TEST(RelationTest, AppendToFragmentBypassesRouting) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 4));
  r.AppendToFragment(3, Tuple({Value(int64_t{0}), Value(int64_t{0})}));
  EXPECT_EQ(r.fragment(3).cardinality(), 1u);
  EXPECT_EQ(r.fragment(0).cardinality(), 0u);
}

TEST(RelationTest, ScanVisitsFragmentsInOrder) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 2));
  r.AppendToFragment(0, Tuple({Value(int64_t{0}), Value(int64_t{10})}));
  r.AppendToFragment(1, Tuple({Value(int64_t{1}), Value(int64_t{11})}));
  r.AppendToFragment(0, Tuple({Value(int64_t{2}), Value(int64_t{12})}));
  const std::vector<Tuple> all = r.Scan();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].at(1).AsInt(), 10);
  EXPECT_EQ(all[1].at(1).AsInt(), 12);  // Second tuple of fragment 0.
  EXPECT_EQ(all[2].at(1).AsInt(), 11);
}

TEST(RelationTest, EstimatedBytesGrowsWithData) {
  Relation r("R", TwoCols(), 0, Partitioner(PartitionKind::kModulo, 2));
  const uint64_t empty = r.EstimatedBytes();
  ASSERT_TRUE(r.Insert(Tuple({Value(int64_t{1}), Value(int64_t{2})})).ok());
  const uint64_t one = r.EstimatedBytes();
  EXPECT_GT(one, empty);
  ASSERT_TRUE(r.Insert(Tuple({Value(int64_t{2}), Value(int64_t{3})})).ok());
  EXPECT_EQ(r.EstimatedBytes(), 2 * one - empty);  // Linear in tuples.
}

TEST(RelationTest, StringColumnsCountTowardsBytes) {
  Schema s({{"name", ValueType::kString}});
  Relation r("S", s, 0, Partitioner(PartitionKind::kHash, 1));
  ASSERT_TRUE(r.Insert(Tuple({Value(std::string("x"))})).ok());
  const uint64_t small = r.EstimatedBytes();
  Relation r2("S2", s, 0, Partitioner(PartitionKind::kHash, 1));
  ASSERT_TRUE(r2.Insert(Tuple({Value(std::string(100, 'x'))})).ok());
  EXPECT_GT(r2.EstimatedBytes(), small + 90);
}

}  // namespace
}  // namespace dbs3

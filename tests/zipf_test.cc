#include "common/zipf.h"

#include <numeric>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(ZipfTest, SharesSumToOne) {
  for (size_t n : {1ul, 2ul, 10ul, 200ul, 1500ul}) {
    for (double theta : {0.0, 0.3, 0.6, 1.0}) {
      const std::vector<double> s = ZipfShares(n, theta);
      ASSERT_EQ(s.size(), n);
      const double sum = std::accumulate(s.begin(), s.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " theta=" << theta;
    }
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  const std::vector<double> s = ZipfShares(40, 0.0);
  for (double v : s) EXPECT_NEAR(v, 1.0 / 40.0, 1e-12);
}

TEST(ZipfTest, SharesDecreaseWithRank) {
  const std::vector<double> s = ZipfShares(100, 0.7);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LE(s[i], s[i - 1]);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  const double low = ZipfShares(100, 0.2).front();
  const double high = ZipfShares(100, 0.9).front();
  EXPECT_GT(high, low);
}

TEST(ZipfTest, CountsSumExactly) {
  for (uint64_t total : {1ull, 7ull, 100ull, 100'000ull}) {
    for (size_t n : {1ul, 3ul, 200ul}) {
      for (double theta : {0.0, 0.5, 1.0}) {
        const std::vector<uint64_t> c = ZipfCounts(total, n, theta);
        const uint64_t sum = std::accumulate(c.begin(), c.end(), 0ull);
        EXPECT_EQ(sum, total) << "n=" << n << " theta=" << theta;
      }
    }
  }
}

TEST(ZipfTest, CountsDescending) {
  const std::vector<uint64_t> c = ZipfCounts(100'000, 200, 0.8);
  for (size_t i = 1; i < c.size(); ++i) EXPECT_LE(c[i], c[i - 1]);
}

TEST(ZipfTest, MaxOverMeanMatchesPaperAnchor) {
  // Paper footnote, Section 5.5: Zipf = 1 over 200 buckets gives
  // Pmax = 34 P.
  EXPECT_NEAR(ZipfMaxOverMean(200, 1.0), 34.0, 0.5);
  // And the derived ceilings nmax = degree / (Pmax/P): 19 @ 0.6, 40 @ 0.4.
  EXPECT_NEAR(200.0 / ZipfMaxOverMean(200, 0.6), 19.0, 1.0);
  EXPECT_NEAR(200.0 / ZipfMaxOverMean(200, 0.4), 40.0, 2.0);
}

TEST(ZipfTest, MaxOverMeanIsOneWhenUniform) {
  EXPECT_NEAR(ZipfMaxOverMean(50, 0.0), 1.0, 1e-12);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, EmpiricalFrequenciesTrackShares) {
  const double theta = GetParam();
  const size_t n = 20;
  ZipfSampler sampler(n, theta);
  ASSERT_EQ(sampler.n(), n);
  Rng rng(101);
  std::vector<int> counts(n, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const std::vector<double> shares = ZipfShares(n, theta);
  for (size_t i = 0; i < n; ++i) {
    const double expected = shares[i] * kDraws;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected,
                std::max(50.0, expected * 0.08))
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSamplerTest,
                         ::testing::Values(0.0, 0.4, 0.8, 1.0));

TEST(ZipfSamplerTest, SingleRankAlwaysZero) {
  ZipfSampler sampler(1, 0.9);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace dbs3

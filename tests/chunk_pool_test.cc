#include "engine/chunk_pool.h"

#include <atomic>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "engine/cancel.h"
#include "engine/executor.h"
#include "engine/operation.h"
#include "engine/operator_logic.h"
#include "engine/operators.h"
#include "engine/plan.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

/// Terminal sink that only counts the tuples it is handed.
class CountingSink : public OperatorLogic {
 public:
  void OnData(size_t, Tuple, Emitter*) override {
    seen.fetch_add(1, std::memory_order_relaxed);
  }
  std::string name() const override { return "counting-sink"; }

  std::atomic<uint64_t> seen{0};
};

TupleChunk MakeChunk(size_t tuples) {
  TupleChunk chunk;
  chunk.reserve(tuples > 0 ? tuples : 1);
  for (size_t i = 0; i < tuples; ++i) {
    chunk.push_back(Tuple({Value(static_cast<int64_t>(i))}));
  }
  return chunk;
}

/// The pool's thread-local buffer cache is shared across pool instances
/// (and so across tests on this thread). Acquire until the pool reports a
/// fresh allocation — the cache and the pool's (empty) shared list are then
/// both drained, making per-test counter assertions deterministic.
void DrainThreadCache(ChunkPool* pool) {
  while (true) {
    const uint64_t before = pool->stats().allocated;
    TupleChunk scratch = pool->Acquire(0);
    if (pool->stats().allocated != before) return;
  }
}

TEST(ChunkPoolTest, AcquireWithEmptyPoolAllocatesFresh) {
  ChunkPool pool;
  DrainThreadCache(&pool);
  const ChunkPool::Stats before = pool.stats();
  TupleChunk chunk = pool.Acquire(8);
  EXPECT_GE(chunk.capacity(), 8u);
  EXPECT_TRUE(chunk.empty());
  const ChunkPool::Stats after = pool.stats();
  EXPECT_EQ(after.allocated, before.allocated + 1);
  EXPECT_EQ(after.reused, before.reused);
}

TEST(ChunkPoolTest, ReleasedBufferIsReusedWithElementsIntact) {
  ChunkPool pool;
  DrainThreadCache(&pool);
  TupleChunk chunk = MakeChunk(3);
  const Tuple* elements = chunk.data();
  pool.Release(std::move(chunk));
  const ChunkPool::Stats mid = pool.stats();
  EXPECT_GE(mid.released, 1u);

  TupleChunk back = pool.Acquire(1);
  // Same buffer, elements kept: the emitter overwrites these slots in
  // place, which is what removes the per-tuple allocations.
  EXPECT_EQ(back.data(), elements);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].at(0).AsInt(), 0);
  EXPECT_EQ(pool.stats().reused, mid.reused + 1);
}

TEST(ChunkPoolTest, CapacityLessReleasesAreIgnored) {
  ChunkPool pool;
  const ChunkPool::Stats before = pool.stats();
  pool.Release(TupleChunk{});  // Moved-from / never-filled buffer.
  const ChunkPool::Stats after = pool.stats();
  EXPECT_EQ(after.released, before.released);
}

TEST(ChunkPoolTest, CacheSpillsToSharedListAndRefills) {
  ChunkPool pool;
  DrainThreadCache(&pool);
  // Releasing past the thread-cache bound must spill buffers to the shared
  // list, where another thread (here: a later refill) can pick them up.
  const size_t n = 3 * ChunkPool::kTlsBatch;
  for (size_t i = 0; i < n; ++i) pool.Release(MakeChunk(1));
  EXPECT_GT(pool.stats().free_buffers, 0u);
  EXPECT_EQ(pool.stats().released, n);

  const ChunkPool::Stats before = pool.stats();
  for (size_t i = 0; i < n; ++i) {
    TupleChunk chunk = pool.Acquire(1);
    EXPECT_GT(chunk.capacity(), 0u);
  }
  const ChunkPool::Stats after = pool.stats();
  EXPECT_EQ(after.reused, before.reused + n);
  EXPECT_EQ(after.allocated, before.allocated);
}

TEST(ChunkPoolTest, SpillBeyondMaxFreeDiscards) {
  ChunkPool pool(/*max_free=*/0);
  DrainThreadCache(&pool);
  const size_t n = 4 * ChunkPool::kTlsBatch;
  for (size_t i = 0; i < n; ++i) pool.Release(MakeChunk(1));
  const ChunkPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.free_buffers, 0u);
  EXPECT_GT(stats.discarded, 0u);
  EXPECT_EQ(stats.released, n);
}

// ----------------------------------------------------------- engine level

/// Triggered scan -> store over a small skewed pair; every emitted tuple
/// crosses one queue as a (chunk_size-1) chunk.
struct ScanStorePlan {
  explicit ScanStorePlan(Database* db)
      : result("res", SkewSchema(), 0,
               Partitioner(PartitionKind::kModulo, 16)) {
    Relation* a = db->relation("A").value();
    scan = plan.AddNode("scan", ActivationMode::kTriggered, 16,
                        std::make_unique<FilterLogic>(a, MatchAll()));
    store = plan.AddNode("store", ActivationMode::kPipelined, 16,
                         std::make_unique<StoreLogic>(&result));
    EXPECT_TRUE(plan.ConnectSameInstance(scan, store).ok());
    for (size_t i = 0; i < plan.num_nodes(); ++i) plan.params(i).threads = 2;
  }

  Relation result;
  Plan plan;
  size_t scan = 0;
  size_t store = 0;
};

void MakeDb(Database& db) {
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 400;
  spec.degree = 16;
  spec.theta = 0.5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
}

TEST(ChunkPoolExecutionTest, NormalDrainReturnsEveryBuffer) {
  Database db(2);
  MakeDb(db);
  ScanStorePlan p(&db);
  Executor executor;
  auto run = executor.Run(p.plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(p.result.cardinality(), 2'000u);

  // One chunk per emitted tuple (chunk_size 1): the scan acquired 2000
  // buffers and the store released all of them after draining — units in
  // equals units processed plus buffers recycled, nothing leaks into the
  // queues or the emitters.
  const ChunkPool::Stats& pool = run.value().chunk_pool;
  EXPECT_EQ(pool.allocated + pool.reused, 2'000u);
  EXPECT_EQ(pool.released, 2'000u);
  EXPECT_EQ(run.value().units_dropped, 0u);
}

TEST(ChunkPoolExecutionTest, SharedPoolCarriesBuffersAcrossExecutions) {
  Database db(2);
  MakeDb(db);
  ChunkPool pool(/*max_free=*/1 << 16);
  ExecOptions options;
  options.chunk_pool = &pool;

  for (int round = 0; round < 3; ++round) {
    ScanStorePlan p(&db);
    Executor executor;
    auto run = executor.Run(p.plan, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const ChunkPool::Stats& stats = run.value().chunk_pool;
    EXPECT_EQ(stats.allocated + stats.reused, 2'000u) << "round " << round;
    EXPECT_EQ(stats.discarded, 0u) << "round " << round;
    // Warm rounds draw on the free list the earlier rounds filled. (How
    // *many* acquisitions recycle depends on producer/consumer
    // interleaving, so only the floor is asserted.)
    if (round > 0) {
      EXPECT_GT(stats.reused, 0u) << "round " << round;
    }
  }
}

TEST(ChunkPoolExecutionTest, CancelledDrainStillRecyclesBuffers) {
  // A fired token makes workers drain activations into the cancelled
  // bucket without invoking operator logic; the drained chunks must still
  // return to the pool.
  ChunkPool pool;
  CancelToken cancel;
  cancel.Cancel();

  CountingSink sink;
  OperationConfig config;
  config.name = "sink";
  config.num_instances = 2;
  config.num_threads = 2;
  config.cancel = cancel;
  config.chunk_pool = &pool;
  Operation op(config, &sink, DataOutput{});
  op.AddProducer();
  op.Start();
  const ChunkPool::Stats before = pool.stats();
  for (int i = 0; i < 10; ++i) {
    op.PushDataChunk(static_cast<size_t>(i) % 2, MakeChunk(4));
  }
  op.ProducerDone();
  op.Join();
  const OperationStats stats = op.stats();
  EXPECT_EQ(stats.cancelled_units, 40u);
  EXPECT_EQ(sink.seen.load(), 0u);
  EXPECT_EQ(pool.stats().released - before.released, 10u);
}

TEST(ChunkPoolExecutionTest, ClosedQueueRejectionRecyclesBuffer) {
  // A push racing a shutdown is dropped (counted, tuple-denominated); the
  // rejected activation's buffer must be recycled, not leaked with it.
  ChunkPool pool;
  CountingSink sink;
  OperationConfig config;
  config.name = "sink";
  config.num_instances = 1;
  config.num_threads = 1;
  config.chunk_pool = &pool;
  Operation op(config, &sink, DataOutput{});
  op.AddProducer();
  op.Start();
  op.ProducerDone();  // Closes the queues once drained.
  op.Join();
  const ChunkPool::Stats before = pool.stats();
  op.PushDataChunk(0, MakeChunk(5));
  EXPECT_EQ(op.stats().dropped, 5u);
  EXPECT_EQ(pool.stats().released - before.released, 1u);
}

}  // namespace
}  // namespace dbs3

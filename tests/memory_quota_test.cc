// Tests of the per-query memory quota: charge/release semantics, the
// forced-progress overshoot, and the high-water reporting the runtime
// surfaces through QueryRunStats.

#include "common/memory_quota.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(MemoryQuotaTest, UnlimitedChargesAlwaysSucceedButAreTracked) {
  MemoryQuota quota(0);
  EXPECT_FALSE(quota.bounded());
  EXPECT_TRUE(quota.TryCharge(1'000'000));
  EXPECT_EQ(quota.used(), 1'000'000u);
  EXPECT_EQ(quota.high_water(), 1'000'000u);
  quota.Release(1'000'000);
  EXPECT_EQ(quota.used(), 0u);
  // High water is sticky: it reports what a budget would have needed.
  EXPECT_EQ(quota.high_water(), 1'000'000u);
}

TEST(MemoryQuotaTest, TryChargeEnforcesTheLimit) {
  MemoryQuota quota(10);
  EXPECT_TRUE(quota.bounded());
  EXPECT_EQ(quota.limit(), 10u);
  EXPECT_TRUE(quota.TryCharge(7));
  EXPECT_TRUE(quota.TryCharge(3));
  EXPECT_FALSE(quota.TryCharge(1));  // Full: nothing charged.
  EXPECT_EQ(quota.used(), 10u);
  quota.Release(5);
  EXPECT_TRUE(quota.TryCharge(5));
  EXPECT_FALSE(quota.TryCharge(1));
}

TEST(MemoryQuotaTest, FailedChargeChargesNothing) {
  MemoryQuota quota(4);
  EXPECT_FALSE(quota.TryCharge(5));
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_EQ(quota.high_water(), 0u);
}

TEST(MemoryQuotaTest, ForceChargeOvershootsForProgress) {
  MemoryQuota quota(2);
  EXPECT_TRUE(quota.TryCharge(2));
  quota.ForceCharge(1);  // The spill paths' at-least-one-unit guarantee.
  EXPECT_EQ(quota.used(), 3u);
  EXPECT_EQ(quota.high_water(), 3u);
  EXPECT_FALSE(quota.TryCharge(1));  // Still over; normal charges fail.
  quota.Release(3);
  EXPECT_EQ(quota.used(), 0u);
}

TEST(MemoryQuotaTest, ReleaseClampsInsteadOfWrapping) {
  MemoryQuota quota(10);
  EXPECT_TRUE(quota.TryCharge(3));
  quota.Release(100);  // Caller bug, but must not wrap the counter.
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_TRUE(quota.TryCharge(10));
}

TEST(MemoryQuotaTest, ConcurrentChargesNeverExceedTheLimit) {
  constexpr uint64_t kLimit = 64;
  MemoryQuota quota(kLimit);
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        if (quota.TryCharge(1)) {
          granted.fetch_add(1);
          quota.Release(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(granted.load(), 0u);
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_LE(quota.high_water(), kLimit);
}

TEST(ChargeGuardTest, ReleasesOnScopeExit) {
  MemoryQuota quota(10);
  {
    ChargeGuard guard(&quota, 4);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(guard.held(), 4u);
    EXPECT_EQ(quota.used(), 4u);
  }
  EXPECT_EQ(quota.used(), 0u);
}

TEST(ChargeGuardTest, FailedChargeHoldsNothing) {
  MemoryQuota quota(3);
  ChargeGuard guard(&quota, 5);
  EXPECT_FALSE(guard.ok());
  EXPECT_EQ(guard.held(), 0u);
  EXPECT_EQ(quota.used(), 0u);
}

TEST(ChargeGuardTest, NullQuotaIsVacuouslyOk) {
  ChargeGuard guard(nullptr, 100);
  EXPECT_TRUE(guard.ok());
  EXPECT_EQ(guard.held(), 0u);
  EXPECT_TRUE(guard.TryAdd(7));
}

TEST(ChargeGuardTest, IncrementalTryAddStopsAtTheLimit) {
  MemoryQuota quota(3);
  ChargeGuard guard(&quota);
  int granted = 0;
  while (guard.TryAdd(1)) ++granted;
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(quota.used(), 3u);
  guard.ReleaseNow();
  EXPECT_EQ(quota.used(), 0u);
  // ReleaseNow is idempotent; the destructor must not double-release.
  guard.ReleaseNow();
  EXPECT_EQ(quota.used(), 0u);
}

TEST(ChargeGuardTest, ForcedChargeOvershootsButIsStillOwned) {
  MemoryQuota quota(2);
  {
    auto guard = ChargeGuard::Forced(&quota, 5);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(quota.used(), 5u);  // Past the limit: the progress guarantee.
  }
  EXPECT_EQ(quota.used(), 0u);
}

TEST(ChargeGuardTest, DisarmTransfersResponsibilityToTheCaller) {
  MemoryQuota quota(10);
  uint64_t ledger = 0;
  {
    ChargeGuard guard(&quota, 6);
    ASSERT_TRUE(guard.ok());
    ledger = guard.Disarm();
  }
  // The guard forgot its charge: still held, now owned by `ledger`.
  EXPECT_EQ(quota.used(), 6u);
  quota.Release(ledger);
  EXPECT_EQ(quota.used(), 0u);
}

TEST(ChargeGuardTest, MoveTransfersTheHeldCharge) {
  MemoryQuota quota(10);
  ChargeGuard outer;
  {
    ChargeGuard inner(&quota, 3);
    ASSERT_TRUE(inner.ok());
    outer = std::move(inner);
  }  // `inner` destructs empty; the charge survives in `outer`.
  EXPECT_EQ(quota.used(), 3u);
  outer.ReleaseNow();
  EXPECT_EQ(quota.used(), 0u);
}

}  // namespace
}  // namespace dbs3

// Differential testing of the ESQL engine: randomly generated queries over
// a small database are executed by the parallel engine and by a trivial
// single-threaded reference evaluator; results must agree exactly.

#include <algorithm>
#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "esql/planner.h"

namespace dbs3 {
namespace {

/// Reference evaluation of the supported query shape over full scans.
struct ReferenceResult {
  std::vector<Tuple> rows;  ///< Unordered (sorted before comparison).
};

bool EvalComparison(const Value& v, Comparison::Op op, const Value& lit) {
  switch (op) {
    case Comparison::Op::kEq:
      return v == lit;
    case Comparison::Op::kNe:
      return v != lit;
    case Comparison::Op::kLt:
      return v < lit;
    case Comparison::Op::kLe:
      return v < lit || v == lit;
    case Comparison::Op::kGt:
      return lit < v;
    case Comparison::Op::kGe:
      return lit < v || v == lit;
  }
  return false;
}

/// Evaluates `SELECT ... FROM A [JOIN B ON a=b] [WHERE ...] [GROUP BY g]`
/// with columns resolved by caller-provided indices.
ReferenceResult ReferenceEval(
    const Relation& a, std::optional<const Relation*> b, size_t a_col,
    size_t b_col, const std::vector<std::pair<size_t, Comparison>>& where,
    std::optional<size_t> group_col, const std::vector<AggSpec>& aggs,
    const std::vector<size_t>& projection) {
  // 1. Join (or plain scan).
  std::vector<Tuple> joined;
  if (b.has_value()) {
    for (const Tuple& ta : a.Scan()) {
      for (const Tuple& tb : (*b)->Scan()) {
        if (ta.at(a_col) == tb.at(b_col)) joined.push_back(ta.Concat(tb));
      }
    }
  } else {
    joined = a.Scan();
  }
  // 2. Filter.
  std::vector<Tuple> filtered;
  for (const Tuple& t : joined) {
    bool keep = true;
    for (const auto& [col, cmp] : where) {
      if (!EvalComparison(t.at(col), cmp.op, cmp.literal)) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(t);
  }
  // 3. Group / project.
  ReferenceResult out;
  if (!aggs.empty()) {
    std::map<Value, std::vector<int64_t>> groups;
    std::map<Value, std::vector<bool>> seen;
    for (const Tuple& t : filtered) {
      const Value key =
          group_col.has_value() ? t.at(*group_col) : Value(int64_t{0});
      auto& acc = groups[key];
      auto& sn = seen[key];
      if (acc.empty()) {
        acc.assign(aggs.size(), 0);
        sn.assign(aggs.size(), false);
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        const AggSpec& spec = aggs[i];
        if (spec.kind == AggKind::kCount) {
          ++acc[i];
          continue;
        }
        const int64_t x = t.at(spec.column).AsInt();
        switch (spec.kind) {
          case AggKind::kSum:
            acc[i] += x;
            break;
          case AggKind::kMin:
            acc[i] = sn[i] ? std::min(acc[i], x) : x;
            break;
          case AggKind::kMax:
            acc[i] = sn[i] ? std::max(acc[i], x) : x;
            break;
          case AggKind::kCount:
            break;
        }
        sn[i] = true;
      }
    }
    for (const auto& [key, acc] : groups) {
      std::vector<Value> values = {key};
      for (int64_t v : acc) values.emplace_back(v);
      out.rows.push_back(Tuple(std::move(values)));
    }
  } else {
    for (const Tuple& t : filtered) {
      if (projection.empty()) {
        out.rows.push_back(t);
      } else {
        std::vector<Value> values;
        for (size_t c : projection) values.push_back(t.at(c));
        out.rows.push_back(Tuple(std::move(values)));
      }
    }
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

class EsqlDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    // r(k, v, w): modulo-partitioned on k; s(k, x): modulo on k too.
    Rng rng(GetParam());
    auto r = std::make_unique<Relation>(
        "r",
        Schema({{"k", ValueType::kInt64},
                {"v", ValueType::kInt64},
                {"w", ValueType::kInt64}}),
        0, Partitioner(PartitionKind::kModulo, 7));
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(r->Insert(Tuple({Value(rng.Range(0, 40)),
                                   Value(rng.Range(-20, 20)),
                                   Value(rng.Range(0, 5))}))
                      .ok());
    }
    auto s = std::make_unique<Relation>(
        "s", Schema({{"k", ValueType::kInt64}, {"x", ValueType::kInt64}}),
        0, Partitioner(PartitionKind::kModulo, 7));
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(
          s->Insert(Tuple({Value(rng.Range(0, 40)), Value(rng.Range(0, 9))}))
              .ok());
    }
    ASSERT_TRUE(db_.AddRelation(std::move(r)).ok());
    ASSERT_TRUE(db_.AddRelation(std::move(s)).ok());
    options_.schedule.total_threads = 3;
    options_.schedule.processors = 4;
  }

  std::vector<Tuple> RunEngine(const std::string& query) {
    auto result = ExecuteEsql(db_, query, options_);
    EXPECT_TRUE(result.ok()) << query << " -> "
                             << result.status().ToString();
    if (!result.ok()) return {};
    std::vector<Tuple> rows = result.value().result->Scan();
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Database db_{2};
  EsqlOptions options_;
};

TEST_P(EsqlDifferentialTest, FilterScan) {
  Rng rng(GetParam() * 13 + 1);
  const int64_t lit = rng.Range(-10, 10);
  const std::string query =
      "SELECT * FROM r WHERE v >= " + std::to_string(lit);
  Comparison cmp;
  cmp.op = Comparison::Op::kGe;
  cmp.literal = Value(lit);
  const ReferenceResult expected =
      ReferenceEval(*db_.relation("r").value(), std::nullopt, 0, 0,
                    {{1, cmp}}, std::nullopt, {}, {});
  EXPECT_EQ(RunEngine(query), expected.rows) << query;
}

TEST_P(EsqlDifferentialTest, JoinWithFilter) {
  Rng rng(GetParam() * 31 + 2);
  const int64_t lit = rng.Range(0, 8);
  const std::string query =
      "SELECT * FROM r JOIN s ON r.k = s.k WHERE x < " +
      std::to_string(lit);
  Comparison cmp;
  cmp.op = Comparison::Op::kLt;
  cmp.literal = Value(lit);
  // Joined schema: r columns (3) then s columns; x is column 4.
  const Relation* s = db_.relation("s").value();
  const ReferenceResult expected =
      ReferenceEval(*db_.relation("r").value(), s, 0, 0, {{4, cmp}},
                    std::nullopt, {}, {});
  EXPECT_EQ(RunEngine(query), expected.rows) << query;
}

TEST_P(EsqlDifferentialTest, GroupByAggregates) {
  const std::string query =
      "SELECT w, COUNT(*), SUM(v), MIN(v), MAX(v) FROM r GROUP BY w";
  const ReferenceResult expected = ReferenceEval(
      *db_.relation("r").value(), std::nullopt, 0, 0, {}, /*group_col=*/2,
      {{AggKind::kCount, 0}, {AggKind::kSum, 1}, {AggKind::kMin, 1},
       {AggKind::kMax, 1}},
      {});
  EXPECT_EQ(RunEngine(query), expected.rows) << query;
}

TEST_P(EsqlDifferentialTest, JoinGroupByWithWhere) {
  Rng rng(GetParam() * 57 + 3);
  const int64_t lit = rng.Range(-5, 5);
  const std::string query =
      "SELECT w, COUNT(*) , SUM(x) FROM r JOIN s ON r.k = s.k WHERE v > " +
      std::to_string(lit) + " GROUP BY w";
  Comparison cmp;
  cmp.op = Comparison::Op::kGt;
  cmp.literal = Value(lit);
  const Relation* s = db_.relation("s").value();
  const ReferenceResult expected = ReferenceEval(
      *db_.relation("r").value(), s, 0, 0, {{1, cmp}}, /*group_col=*/2,
      {{AggKind::kCount, 0}, {AggKind::kSum, 4}}, {});
  EXPECT_EQ(RunEngine(query), expected.rows) << query;
}

TEST_P(EsqlDifferentialTest, Projection) {
  const std::string query = "SELECT v, k FROM r WHERE w = 3";
  Comparison cmp;
  cmp.op = Comparison::Op::kEq;
  cmp.literal = Value(int64_t{3});
  const ReferenceResult expected =
      ReferenceEval(*db_.relation("r").value(), std::nullopt, 0, 0,
                    {{2, cmp}}, std::nullopt, {}, {1, 0});
  EXPECT_EQ(RunEngine(query), expected.rows) << query;
}

TEST_P(EsqlDifferentialTest, BudgetedExecutionMatchesUnbudgeted) {
  // The declared memory budget routes joins through the spilling hybrid
  // hash join and flips group-by into its two-phase spill mode; results
  // must be identical to the unconstrained in-memory plan at any budget.
  const std::vector<std::string> queries = {
      "SELECT w, COUNT(*), SUM(x), MIN(v), MAX(v) FROM r JOIN s "
      "ON r.k = s.k GROUP BY w",
      "SELECT * FROM r JOIN s ON r.k = s.k",
  };
  for (const std::string& query : queries) {
    options_.memory_units = 0;
    const std::vector<Tuple> unbudgeted = RunEngine(query);
    for (uint64_t budget : {uint64_t{4}, uint64_t{32}, uint64_t{100'000}}) {
      options_.memory_units = budget;
      EXPECT_EQ(RunEngine(query), unbudgeted)
          << query << " budget=" << budget;
    }
    options_.memory_units = 0;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsqlDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dbs3

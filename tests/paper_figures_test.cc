// Regression guards for the paper reproduction: every headline property of
// Figures 8-19 (as recorded in EXPERIMENTS.md) asserted programmatically,
// on reduced-size workloads where the full sweep would be slow.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "model/analysis.h"
#include "sim/machine.h"
#include "sim/workload.h"

namespace dbs3 {
namespace {

SimMachineConfig Ksr(const SimCosts& costs, size_t processors = 70) {
  SimMachineConfig config;
  config.processors = processors;
  config.thread_startup_cost = costs.thread_startup;
  config.queue_create_cost = costs.queue_create;
  config.queue_scan_cost = costs.queue_scan;
  config.seed = 42;
  return config;
}

double RunPlan(const SimPlanSpec& plan, const SimMachineConfig& config) {
  SimMachine machine(config);
  auto result = machine.Run(plan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value().elapsed : -1.0;
}

TEST(PaperFiguresTest, Fig08AllcacheOverheadSmallAndDecreasing) {
  SimCosts costs;
  double prev_delta = 1e30;
  for (size_t n : {5ul, 15ul, 30ul}) {
    ScanWorkloadSpec spec;
    spec.cardinality = 200'000;
    spec.degree = 200;
    spec.threads = n;
    spec.remote = false;
    auto local = BuildScanSim(spec, costs);
    spec.remote = true;
    auto remote = BuildScanSim(spec, costs);
    ASSERT_TRUE(local.ok() && remote.ok());
    const double tl = RunPlan(local.value(), Ksr(costs, 30));
    const double tr = RunPlan(remote.value(), Ksr(costs, 30));
    const double delta = tr - tl;
    EXPECT_GT(delta, 0.0);
    EXPECT_LT(delta / tr, 0.06) << "overhead should stay ~4%";
    EXPECT_LT(delta, prev_delta) << "Tr - Tl must decrease with threads";
    prev_delta = delta;
  }
}

TEST(PaperFiguresTest, Fig12AssocJoinFlatAcrossSkew) {
  SimCosts costs;
  std::vector<double> times;
  for (double theta : {0.0, 0.5, 1.0}) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 50'000;
    spec.b_cardinality = 5'000;
    spec.degree = 200;
    spec.theta = theta;
    spec.threads = 10;
    auto plan = BuildAssocJoinSim(spec, costs);
    ASSERT_TRUE(plan.ok());
    times.push_back(RunPlan(plan.value(), Ksr(costs)));
  }
  const Summary s = Summarize(times);
  EXPECT_LT(s.max / s.min - 1.0, 0.03)
      << "pipelined execution must be skew-insensitive";
}

TEST(PaperFiguresTest, Fig12EngineThreadsBalancedDespiteInstanceSkew) {
  // The engine-side counterpart of Figure 12, on the real thread pool: the
  // Zipf skew of the transmitted A lands squarely on the join *instances*
  // (per-instance tuple counts spread by multiples of the mean), but the
  // shared pool absorbs it — every join thread's busy time stays within a
  // factor of the others'. That decoupling is the paper's core claim.
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 20'000;
  spec.b_cardinality = 4'000;
  spec.degree = 32;
  spec.theta = 1.0;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());

  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto result = RunAssocJoin(db, "A", "key", "Bp", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const OperationStats* join = nullptr;
  for (const OperationStats& op : result.value().execution.op_stats) {
    if (op.name == "join") join = &op;
  }
  ASSERT_NE(join, nullptr);

  // Instance side: Zipf-1 over 32 fragments puts several times the mean on
  // the heaviest instance (analytically ~8x; leave margin for hashing).
  uint64_t max_units = 0, total_units = 0;
  for (uint64_t c : join->per_instance_processed) {
    max_units = std::max(max_units, c);
    total_units += c;
  }
  const double mean_units =
      static_cast<double>(total_units) / static_cast<double>(32);
  ASSERT_GT(mean_units, 0.0);
  EXPECT_GT(static_cast<double>(max_units) / mean_units, 3.0)
      << "the workload must actually be instance-skewed";

  // Thread side: per-thread busy seconds of the pipelined join stay
  // comparable — no thread does the overwhelming share.
  ASSERT_FALSE(join->per_thread_busy_seconds.empty());
  double busy_max = 0.0, busy_sum = 0.0;
  for (double b : join->per_thread_busy_seconds) {
    busy_max = std::max(busy_max, b);
    busy_sum += b;
  }
  const double busy_mean =
      busy_sum / static_cast<double>(join->per_thread_busy_seconds.size());
  ASSERT_GT(busy_mean, 0.0);
  EXPECT_LT(busy_max / busy_mean, 2.0)
      << "pipelined activations must spread instance skew over the pool";
  // And the split accounting holds: summed thread busy == busy_seconds.
  EXPECT_NEAR(busy_sum, join->busy_seconds, 1e-9);
}

TEST(PaperFiguresTest, Fig13LptFlatToZipf08ThenPmaxBound) {
  SimCosts costs;
  JoinWorkloadSpec spec;
  spec.a_cardinality = 100'000;
  spec.b_cardinality = 10'000;
  spec.degree = 200;
  spec.threads = 10;
  spec.strategy = Strategy::kLpt;

  spec.theta = 0.0;
  auto p0 = JoinProfile(spec, costs, false);
  ASSERT_TRUE(p0.ok());
  const double ideal = TIdeal(p0.value(), 10);

  spec.theta = 0.8;
  auto plan08 = BuildIdealJoinSim(spec, costs);
  ASSERT_TRUE(plan08.ok());
  const double t08 = RunPlan(plan08.value(), Ksr(costs));
  EXPECT_LT(t08 / ideal, 1.06) << "LPT within a few % of ideal at Zipf 0.8";

  spec.theta = 1.0;
  auto plan10 = BuildIdealJoinSim(spec, costs);
  auto p10 = JoinProfile(spec, costs, false);
  ASSERT_TRUE(plan10.ok() && p10.ok());
  const double t10 = RunPlan(plan10.value(), Ksr(costs));
  // Past the inflection the longest activation bounds the response time.
  EXPECT_GE(t10, p10.value().max_cost * 0.99);
  EXPECT_LE(t10, p10.value().max_cost * 1.10);
}

TEST(PaperFiguresTest, Fig14SkewedAssocJoinTracksUnskewed) {
  SimCosts costs;
  double speedup[2];
  int i = 0;
  for (double theta : {0.0, 1.0}) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 100'000;
    spec.b_cardinality = 10'000;
    spec.degree = 200;
    spec.theta = theta;
    spec.threads = 70;
    auto plan = BuildAssocJoinSim(spec, costs);
    ASSERT_TRUE(plan.ok());
    auto profile = JoinProfile(spec, costs, true);
    ASSERT_TRUE(profile.ok());
    const double tseq = profile.value().TotalWork();
    speedup[i++] = tseq / RunPlan(plan.value(), Ksr(costs));
  }
  EXPECT_GT(speedup[0], 45.0) << "strong speed-up at 70 threads";
  EXPECT_GT(speedup[1] / speedup[0], 0.93)
      << "skewed within ~5% of unskewed (paper: < 5%)";
}

TEST(PaperFiguresTest, Fig15SpeedupPlateausAtNMax) {
  SimCosts costs;
  // Zipf 1: nmax ~ 5.9 over 200 fragments. Speed-up at 40 threads must not
  // exceed nmax and must roughly reach it.
  JoinWorkloadSpec spec;
  spec.a_cardinality = 100'000;
  spec.b_cardinality = 10'000;
  spec.degree = 200;
  spec.theta = 1.0;
  spec.threads = 40;
  spec.strategy = Strategy::kLpt;
  auto plan = BuildIdealJoinSim(spec, costs);
  auto profile = JoinProfile(spec, costs, false);
  ASSERT_TRUE(plan.ok() && profile.ok());
  const double nmax = NMax(profile.value());
  EXPECT_NEAR(nmax, 5.9, 0.3);
  const double speedup =
      profile.value().TotalWork() / RunPlan(plan.value(), Ksr(costs));
  EXPECT_LE(speedup, nmax * 1.02);
  EXPECT_GE(speedup, nmax * 0.85);
}

TEST(PaperFiguresTest, Fig16OverheadSlopesOrdered) {
  // AssocJoin's partitioning overhead grows much faster than IdealJoin's
  // (paper: ~4 vs ~0.45 ms/degree).
  SimCosts costs;
  auto run = [&](bool assoc, size_t degree) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 50'000;
    spec.b_cardinality = 5'000;
    spec.degree = degree;
    spec.threads = 20;
    auto plan = assoc ? BuildAssocJoinSim(spec, costs)
                      : BuildIdealJoinSim(spec, costs);
    EXPECT_TRUE(plan.ok());
    return RunPlan(plan.value(), Ksr(costs));
  };
  const double ideal_ovh =
      run(false, 1000) - run(false, 20) * (20.0 / 1000.0);
  const double assoc_ovh = run(true, 1000) - run(true, 20) * (20.0 / 1000.0);
  EXPECT_GT(ideal_ovh, 0.0);
  EXPECT_GT(assoc_ovh, 2.0 * ideal_ovh)
      << "pipelined overhead must dominate (two queue groups + many "
         "activations)";
  // Both stay small in absolute terms (sub-ms per degree).
  EXPECT_LT(ideal_ovh / 980.0, 2e-3);
  EXPECT_LT(assoc_ovh / 980.0, 8e-3);
}

TEST(PaperFiguresTest, Fig17IndexJoinHasUsefulHighDegrees) {
  // With a temporary index, raising the degree from 20 well past 250 must
  // not hurt IdealJoin (the paper's "limited impact of the overhead").
  SimCosts costs;
  auto run = [&](size_t degree) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 200'000;
    spec.b_cardinality = 20'000;
    spec.degree = degree;
    spec.threads = 20;
    spec.algorithm = JoinAlgorithm::kTempIndex;
    auto plan = BuildIdealJoinSim(spec, costs);
    EXPECT_TRUE(plan.ok());
    return RunPlan(plan.value(), Ksr(costs));
  };
  const double t20 = run(20);
  const double t500 = run(500);
  EXPECT_LT(t500, t20) << "smaller fragments make the index cheaper";
}

TEST(PaperFiguresTest, Fig18HighDegreeErasesTriggeredSkew) {
  SimCosts costs;
  auto v = [&](size_t degree) {
    auto run = [&](double theta) {
      JoinWorkloadSpec spec;
      spec.a_cardinality = 100'000;
      spec.b_cardinality = 10'000;
      spec.degree = degree;
      spec.theta = theta;
      spec.threads = 20;
      spec.strategy = Strategy::kLpt;
      auto plan = BuildIdealJoinSim(spec, costs);
      EXPECT_TRUE(plan.ok());
      return RunPlan(plan.value(), Ksr(costs));
    };
    return run(0.6) / run(0.0) - 1.0;
  };
  const double v_low = v(20);
  const double v_high = v(800);
  EXPECT_GT(v_low, 1.0) << "low degree: the longest fragment dominates";
  EXPECT_LT(v_high, 0.10) << "high degree: LPT rebalances the skew away";
}

TEST(PaperFiguresTest, Fig19SavedTimeExceedsUnskewedTime) {
  SimCosts costs;
  auto run = [&](size_t degree, double theta) {
    JoinWorkloadSpec spec;
    spec.a_cardinality = 200'000;
    spec.b_cardinality = 20'000;
    spec.degree = degree;
    spec.theta = theta;
    spec.threads = 20;
    spec.strategy = Strategy::kLpt;
    spec.algorithm = JoinAlgorithm::kTempIndex;
    auto plan = BuildIdealJoinSim(spec, costs);
    EXPECT_TRUE(plan.ok());
    return RunPlan(plan.value(), Ksr(costs));
  };
  const double saved = run(40, 0.6) - run(1000, 0.6);
  const double t0 = run(250, 0.0);
  EXPECT_GT(saved, t0)
      << "raising the degree saves more than the whole unskewed run";
}

}  // namespace
}  // namespace dbs3

#include "storage/schema.h"

#include <gtest/gtest.h>

#include "storage/tuple.h"
#include "storage/value.h"

namespace dbs3 {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, IntAndStringKinds) {
  Value i(int64_t{-5});
  Value s(std::string("hello"));
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt(), -5);
  EXPECT_EQ(s.AsString(), "hello");
  EXPECT_STREQ(ValueTypeName(i.type()), "int64");
  EXPECT_STREQ(ValueTypeName(s.type()), "string");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(int64_t{4}));
  EXPECT_NE(Value(int64_t{3}), Value(std::string("3")));
  EXPECT_LT(Value(int64_t{3}), Value(int64_t{4}));
  // Ints order before strings (variant index order): total order exists.
  EXPECT_LT(Value(int64_t{999}), Value(std::string("a")));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value(std::string("x")).Hash(), Value(std::string("x")).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-12}).ToString(), "-12");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
}

TEST(TupleTest, AppendAndAccess) {
  Tuple t;
  t.Append(Value(int64_t{1}));
  t.Append(Value(std::string("two")));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0).AsInt(), 1);
  EXPECT_EQ(t.at(1).AsString(), "two");
}

TEST(TupleTest, ConcatJoinsValues) {
  Tuple a({Value(int64_t{1}), Value(int64_t{2})});
  Tuple b({Value(int64_t{3})});
  Tuple c = a.Concat(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(2).AsInt(), 3);
  // Originals untouched.
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(TupleTest, AssignFromOverwritesInPlace) {
  Tuple dest({Value(int64_t{9}), Value(int64_t{8}), Value(int64_t{7})});
  // Shrinking assignment: reused slots, trimmed tail.
  dest.AssignFrom(Tuple({Value(int64_t{1}), Value(std::string("x"))}));
  EXPECT_EQ(dest, Tuple({Value(int64_t{1}), Value(std::string("x"))}));
  // Growing assignment from a wider source.
  dest.AssignFrom(
      Tuple({Value(int64_t{4}), Value(int64_t{5}), Value(int64_t{6})}));
  EXPECT_EQ(dest,
            Tuple({Value(int64_t{4}), Value(int64_t{5}), Value(int64_t{6})}));
}

TEST(TupleTest, AssignConcatMatchesConcat) {
  Tuple left({Value(int64_t{1}), Value(std::string("l"))});
  Tuple right({Value(int64_t{2})});
  Tuple dest({Value(int64_t{0})});  // Narrower than the output row.
  dest.AssignConcat(left, right);
  EXPECT_EQ(dest, left.Concat(right));
  // Sources untouched, and a reused (now wider) destination converges to
  // the same row.
  EXPECT_EQ(left.size(), 2u);
  EXPECT_EQ(right.size(), 1u);
  dest.AssignConcat(right, left);
  EXPECT_EQ(dest, right.Concat(left));
}

TEST(TupleTest, ComparisonIsLexicographic) {
  Tuple a({Value(int64_t{1}), Value(int64_t{2})});
  Tuple b({Value(int64_t{1}), Value(int64_t{3})});
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Tuple({Value(int64_t{1}), Value(int64_t{2})}));
}

TEST(TupleTest, ToStringFormat) {
  Tuple t({Value(int64_t{1}), Value(std::string("x"))});
  EXPECT_EQ(t.ToString(), "[1, x]");
}

TEST(SchemaTest, IndexOfFindsColumns) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  ASSERT_TRUE(s.IndexOf("b").ok());
  EXPECT_EQ(s.IndexOf("b").value(), 1u);
  auto missing = s.IndexOf("zz");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error message is actionable: names the column and the schema.
  EXPECT_NE(missing.status().message().find("zz"), std::string::npos);
}

TEST(SchemaTest, ConcatPrefixesCollidingNames) {
  Schema left({{"key", ValueType::kInt64}, {"x", ValueType::kInt64}});
  Schema right({{"key", ValueType::kInt64}, {"y", ValueType::kString}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.num_columns(), 4u);
  EXPECT_EQ(joined.column(0).name, "key");
  EXPECT_EQ(joined.column(2).name, "r_key");
  EXPECT_EQ(joined.column(3).name, "y");
  EXPECT_EQ(joined.column(3).type, ValueType::kString);
}

TEST(SchemaTest, ConcatCustomPrefix) {
  Schema left({{"k", ValueType::kInt64}});
  Schema right({{"k", ValueType::kInt64}});
  Schema joined = Schema::Concat(left, right, "inner_");
  EXPECT_EQ(joined.column(1).name, "inner_k");
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a({{"a", ValueType::kInt64}});
  Schema b({{"a", ValueType::kInt64}});
  Schema c({{"a", ValueType::kString}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "(a:int64)");
}

}  // namespace
}  // namespace dbs3

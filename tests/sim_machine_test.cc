#include "sim/machine.h"

#include <numeric>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

SimOpSpec TriggeredOp(std::vector<double> costs, size_t threads,
                      Strategy strategy = Strategy::kRandom) {
  SimOpSpec op;
  op.name = "op";
  op.instances = costs.size();
  op.threads = threads;
  op.strategy = strategy;
  op.triggers.resize(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) op.triggers[i].cost = costs[i];
  return op;
}

SimMachineConfig BareMachine(size_t processors) {
  SimMachineConfig config;
  config.processors = processors;
  return config;  // No startup or queue costs: pure scheduling.
}

TEST(SimMachineTest, SingleThreadRunsSequentially) {
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp({1.0, 2.0, 3.0}, 1));
  SimMachine machine(BareMachine(4));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result.value().elapsed, 6.0, 1e-9);
  EXPECT_NEAR(result.value().total_work, 6.0, 1e-9);
}

TEST(SimMachineTest, EqualActivationsSplitPerfectly) {
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(8, 1.0), 4));
  SimMachine machine(BareMachine(8));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().elapsed, 2.0, 1e-9);  // 8 x 1.0 over 4 threads.
}

TEST(SimMachineTest, ProcessorSharingWhenOversubscribed) {
  // 4 threads on 2 processors: everyone runs at rate 1/2, elapsed = work/2.
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(4, 1.0), 4));
  SimMachine machine(BareMachine(2));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().elapsed, 2.0, 1e-9);
}

TEST(SimMachineTest, MakespanBoundedByLongestActivation) {
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp({10.0, 1.0, 1.0, 1.0}, 4));
  SimMachine machine(BareMachine(8));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().elapsed, 10.0, 1e-9);
}

TEST(SimMachineTest, LptBeatsRandomOnSkewedTriggers) {
  // Two expensive + many cheap activations, 2 threads: LPT starts the
  // expensive ones first and finishes in max(10, total/2); a bad order can
  // leave an expensive activation for last.
  std::vector<double> costs = {10.0, 10.0};
  for (int i = 0; i < 20; ++i) costs.push_back(1.0);
  // Shuffle the expensive ones to the back for Random's natural order.
  std::rotate(costs.begin(), costs.begin() + 2, costs.end());
  SimPlanSpec lpt_plan;
  lpt_plan.ops.push_back(TriggeredOp(costs, 2, Strategy::kLpt));
  SimPlanSpec random_plan;
  random_plan.ops.push_back(TriggeredOp(costs, 2, Strategy::kRandom));
  SimMachine m1(BareMachine(4)), m2(BareMachine(4));
  auto lpt = m1.Run(lpt_plan);
  auto random = m2.Run(random_plan);
  ASSERT_TRUE(lpt.ok() && random.ok());
  EXPECT_NEAR(lpt.value().elapsed, 20.0, 1e-9);  // Perfect LPT schedule.
  EXPECT_LE(lpt.value().elapsed, random.value().elapsed + 1e-9);
}

TEST(SimMachineTest, PipelineOverlapsProducerAndConsumer) {
  // Producer: one trigger of cost 10 emitting 100 tuples; consumer: 0.1
  // per tuple with its own thread. Pipelined execution overlaps them, so
  // elapsed is well under the serial 20.
  SimPlanSpec plan;
  SimOpSpec producer = TriggeredOp({10.0}, 1);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({0, 100});
  SimOpSpec consumer;
  consumer.name = "consumer";
  consumer.instances = 1;
  consumer.threads = 1;
  consumer.data_cost = {0.1};
  plan.ops.push_back(producer);
  plan.ops.push_back(consumer);
  SimMachine machine(BareMachine(4));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().elapsed, 15.0);
  EXPECT_GE(result.value().elapsed, 10.0 - 1e-9);
  // All 100 data activations processed.
  uint64_t processed = 0;
  for (uint64_t c : result.value().ops[1].per_thread_processed) {
    processed += c;
  }
  EXPECT_EQ(processed, 100u);
}

TEST(SimMachineTest, DataSetupCostChargedOnce) {
  SimPlanSpec plan;
  SimOpSpec producer = TriggeredOp({0.0}, 1);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({0, 10});
  SimOpSpec consumer;
  consumer.instances = 1;
  consumer.threads = 1;
  consumer.data_cost = {1.0};
  consumer.data_setup_cost = {5.0};
  plan.ops.push_back(producer);
  plan.ops.push_back(consumer);
  SimMachine machine(BareMachine(2));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  // 10 x 1.0 + one-time 5.0 setup.
  EXPECT_NEAR(result.value().elapsed, 15.0, 1e-6);
}

TEST(SimMachineTest, CacheSizeBatchesDataActivations) {
  SimPlanSpec plan;
  SimOpSpec producer = TriggeredOp({0.0}, 1);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({0, 64});
  SimOpSpec consumer;
  consumer.instances = 1;
  consumer.threads = 1;
  consumer.cache_size = 16;
  consumer.data_cost = {1.0};
  plan.ops.push_back(producer);
  plan.ops.push_back(consumer);
  SimMachine machine(BareMachine(2));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().elapsed, 64.0, 1e-6);
  // All 64 counted even though acquired in batches.
  EXPECT_EQ(result.value().ops[1].per_instance_processed[0], 64u);
}

TEST(SimMachineTest, ThreadStartupStaggersAvailability) {
  SimMachineConfig config = BareMachine(8);
  config.thread_startup_cost = 1.0;
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(4, 1.0), 4));
  SimMachine machine(config);
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  // Thread k alive at k+1; the 4th activation finishes at 4 + 1 = 5 in the
  // worst case, but earlier threads steal the remaining work: thread 0
  // (alive at 1) can do two activations by t=3. Elapsed must exceed the
  // no-startup 1.0 and reflect the staggering.
  EXPECT_GT(result.value().elapsed, 2.0 - 1e-9);
  EXPECT_LE(result.value().elapsed, 5.0 + 1e-9);
}

TEST(SimMachineTest, QueueCreationDelaysEverything) {
  SimMachineConfig config = BareMachine(8);
  config.queue_create_cost = 0.5;
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp({1.0, 1.0}, 2));
  SimMachine machine(config);
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().init_time, 1.0, 1e-9);  // Two queues.
  EXPECT_NEAR(result.value().elapsed, 2.0, 1e-9);    // Init + parallel work.
}

TEST(SimMachineTest, QueueScanOverheadAddedPerAcquisition) {
  SimMachineConfig config = BareMachine(4);
  config.queue_scan_cost = 0.1;
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(4, 1.0), 1));
  SimMachine machine(config);
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  // Four acquisitions, each paying 0.1 * 4 queues.
  EXPECT_NEAR(result.value().elapsed, 4.0 + 4 * 0.4, 1e-6);
}

TEST(SimMachineTest, EmissionsRouteToDeclaredInstances) {
  SimPlanSpec plan;
  SimOpSpec producer = TriggeredOp({1.0, 1.0}, 1);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({2, 5});
  producer.triggers[1].emissions.push_back({0, 3});
  SimOpSpec consumer;
  consumer.instances = 3;
  consumer.threads = 1;
  consumer.data_cost = {0.1, 0.1, 0.1};
  plan.ops.push_back(producer);
  plan.ops.push_back(consumer);
  SimMachine machine(BareMachine(4));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ops[1].per_instance_processed[2], 5u);
  EXPECT_EQ(result.value().ops[1].per_instance_processed[0], 3u);
  EXPECT_EQ(result.value().ops[1].per_instance_processed[1], 0u);
}

TEST(SimMachineTest, WorkConservation) {
  SimPlanSpec plan;
  SimOpSpec producer = TriggeredOp({2.0, 3.0}, 2);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({0, 10});
  SimOpSpec consumer;
  consumer.instances = 1;
  consumer.threads = 2;
  consumer.data_cost = {0.5};
  plan.ops.push_back(producer);
  plan.ops.push_back(consumer);
  SimMachine machine(BareMachine(8));
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().total_work, 2.0 + 3.0 + 10 * 0.5, 1e-6);
}

TEST(SimMachineTest, DeterministicAcrossRuns) {
  std::vector<double> costs;
  for (int i = 0; i < 50; ++i) costs.push_back(0.1 * (i % 7 + 1));
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(costs, 5, Strategy::kRandom));
  SimMachine m1(BareMachine(8)), m2(BareMachine(8));
  auto a = m1.Run(plan);
  auto b = m2.Run(plan);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().elapsed, b.value().elapsed);
}

TEST(SimMachineTest, MainQueueAblationStillCompletes) {
  SimMachineConfig config = BareMachine(4);
  config.use_main_queues = false;
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(8, 1.0), 4));
  SimMachine machine(config);
  auto result = machine.Run(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().elapsed, 2.0, 1e-9);
}

TEST(SimMachineTest, ContextSwitchOverheadSlowsOversubscription) {
  SimPlanSpec plan;
  plan.ops.push_back(TriggeredOp(std::vector<double>(8, 1.0), 8));
  // 8 threads on 2 processors.
  SimMachineConfig pure = BareMachine(2);
  SimMachineConfig penalized = BareMachine(2);
  penalized.context_switch_overhead = 0.5;
  SimMachine m1(pure), m2(penalized);
  auto t_pure = m1.Run(plan);
  auto t_pen = m2.Run(plan);
  ASSERT_TRUE(t_pure.ok() && t_pen.ok());
  EXPECT_NEAR(t_pure.value().elapsed, 4.0, 1e-9);  // Work-conserving PS.
  // Ratio 4 => rate divided by 1 + 0.5 * 3 = 2.5.
  EXPECT_NEAR(t_pen.value().elapsed, 4.0 * 2.5, 1e-6);
  // No penalty when threads <= processors.
  SimPlanSpec small;
  small.ops.push_back(TriggeredOp(std::vector<double>(2, 1.0), 2));
  SimMachine m3(penalized);
  auto t_small = m3.Run(small);
  ASSERT_TRUE(t_small.ok());
  EXPECT_NEAR(t_small.value().elapsed, 1.0, 1e-9);
}

TEST(SimMachineTest, ValidatesSpecs) {
  SimMachine machine(BareMachine(2));
  // Empty plan.
  EXPECT_FALSE(machine.Run(SimPlanSpec{}).ok());
  // Pipelined op without producer.
  SimPlanSpec orphan;
  SimOpSpec op;
  op.instances = 1;
  op.threads = 1;
  op.data_cost = {1.0};
  orphan.ops.push_back(op);
  EXPECT_FALSE(machine.Run(orphan).ok());
  // Trigger count mismatch.
  SimPlanSpec mismatch;
  SimOpSpec bad = TriggeredOp({1.0}, 1);
  bad.instances = 2;
  mismatch.ops.push_back(bad);
  EXPECT_FALSE(machine.Run(mismatch).ok());
  // Out-of-range emission.
  SimPlanSpec bad_emit;
  SimOpSpec producer = TriggeredOp({1.0}, 1);
  producer.output = 1;
  producer.triggers[0].emissions.push_back({5, 1});
  SimOpSpec consumer;
  consumer.instances = 1;
  consumer.threads = 1;
  consumer.data_cost = {1.0};
  bad_emit.ops.push_back(producer);
  bad_emit.ops.push_back(consumer);
  EXPECT_FALSE(machine.Run(bad_emit).ok());
  // Zero processors.
  SimMachine zero(BareMachine(0));
  SimPlanSpec ok_plan;
  ok_plan.ops.push_back(TriggeredOp({1.0}, 1));
  EXPECT_FALSE(zero.Run(ok_plan).ok());
}

}  // namespace
}  // namespace dbs3

#include "storage/serialize.h"

#include <cstdio>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "storage/skew.h"
#include "storage/wisconsin.h"

namespace dbs3 {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripsIntRelation) {
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 8;
  spec.theta = 0.7;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  const std::string path = TempPath("round_trip.dbs3");
  ASSERT_TRUE(WriteRelation(*db.value().a, path).ok());
  auto loaded = ReadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Relation& a = *db.value().a;
  const Relation& b = *loaded.value();
  EXPECT_EQ(b.name(), a.name());
  EXPECT_TRUE(b.schema() == a.schema());
  EXPECT_EQ(b.partition_column(), a.partition_column());
  EXPECT_TRUE(b.partitioner() == a.partitioner());
  EXPECT_EQ(b.degree(), a.degree());
  for (size_t f = 0; f < a.degree(); ++f) {
    EXPECT_EQ(b.fragment(f).tuples, a.fragment(f).tuples) << "fragment " << f;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripsStringColumns) {
  WisconsinOptions opt;
  opt.cardinality = 200;
  opt.degree = 4;
  opt.with_strings = true;
  auto rel = GenerateWisconsin("w", opt);
  ASSERT_TRUE(rel.ok());
  const std::string path = TempPath("strings.dbs3");
  ASSERT_TRUE(WriteRelation(*rel.value(), path).ok());
  auto loaded = ReadRelation(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->Scan(), rel.value()->Scan());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto r = ReadRelation(TempPath("does_not_exist.dbs3"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.dbs3");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a relation file at all, honestly", f);
  std::fclose(f);
  auto r = ReadRelation(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("not a DBS3 relation"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileRejected) {
  SkewSpec spec;
  spec.a_cardinality = 500;
  spec.b_cardinality = 100;
  spec.degree = 4;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  const std::string path = TempPath("truncated.dbs3");
  ASSERT_TRUE(WriteRelation(*db.value().a, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto r = ReadRelation(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(SerializeTest, DatabaseSaveLoadCycle) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 300;
  spec.b_cardinality = 60;
  spec.degree = 6;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  const std::string path = TempPath("db_cycle.dbs3");
  ASSERT_TRUE(db.SaveRelation("A", path).ok());
  EXPECT_EQ(db.SaveRelation("nope", path).code(), StatusCode::kNotFound);

  Database other(2);
  ASSERT_TRUE(other.LoadRelation(path).ok());
  auto a = other.relation("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value()->cardinality(), 300u);
  // Fragments placed on the new database's disks.
  EXPECT_GE(a.value()->fragment(0).disk_id, 0);
  // Loading the same file again collides on the name.
  EXPECT_EQ(other.LoadRelation(path).code(), StatusCode::kAlreadyExists);
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyRelationRoundTrips) {
  Relation empty("empty", SkewSchema(), 0,
                 Partitioner(PartitionKind::kHash, 5));
  const std::string path = TempPath("empty.dbs3");
  ASSERT_TRUE(WriteRelation(empty, path).ok());
  auto loaded = ReadRelation(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->cardinality(), 0u);
  EXPECT_EQ(loaded.value()->degree(), 5u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbs3

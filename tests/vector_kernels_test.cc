// Tests of the vectorized batch kernels: the arena, the columnar batch
// view, the predicate IR kernels, the batched index probe — and
// differential checks that every vectorized operator produces exactly the
// row path's results (tuples and stats ledgers) across chunk sizes.

#include "engine/vector/column_batch.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/rng.h"
#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/blocking_operators.h"
#include "engine/vector/kernels.h"
#include "engine/vector/pred.h"
#include "storage/temp_index.h"

namespace dbs3 {
namespace {

// ---------------------------------------------------------------- Arena --

TEST(ArenaTest, AllocationsAlignedAndWritable) {
  Arena arena;
  char* c = arena.AllocateArrayOf<char>(3);
  ASSERT_NE(c, nullptr);
  int64_t* ints = arena.AllocateArrayOf<int64_t>(100);
  ASSERT_NE(ints, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ints) % alignof(int64_t), 0u);
  for (int i = 0; i < 100; ++i) ints[i] = i;
  c[0] = 'a';  // Distinct storage: the int array did not overlap.
  EXPECT_EQ(ints[99], 99);
}

TEST(ArenaTest, ResetRetainsBlocks) {
  Arena arena;
  arena.AllocateArrayOf<int64_t>(1000);
  const size_t warmed = arena.block_count();
  const size_t reserved = arena.reserved_bytes();
  EXPECT_GE(warmed, 1u);
  for (int round = 0; round < 100; ++round) {
    arena.Reset();
    arena.AllocateArrayOf<int64_t>(1000);
  }
  EXPECT_EQ(arena.block_count(), warmed);  // Steady state: no new blocks.
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ArenaTest, MarkRewindRecyclesSpace) {
  Arena arena;
  arena.AllocateArrayOf<int64_t>(16);  // Force the first block into being.
  const Arena::Mark m = arena.mark();
  int64_t* first = arena.AllocateArrayOf<int64_t>(64);
  arena.Rewind(m);
  int64_t* second = arena.AllocateArrayOf<int64_t>(64);
  EXPECT_EQ(first, second);  // Same bytes handed out again.
}

// Regression: a ScopedArena opened on a still-empty arena must rewind to
// the start of the first block (allocated inside the scope), not to the
// pre-block null cursor — the original bug returned null pointers from
// every allocation after the first scope exit.
TEST(ArenaTest, ScopedArenaOnEmptyArenaStaysValid) {
  Arena arena;
  for (int round = 0; round < 50; ++round) {
    ScopedArena scope(&arena);
    int64_t* data = scope.get()->AllocateArrayOf<int64_t>(512);
    ASSERT_NE(data, nullptr);
    for (int i = 0; i < 512; ++i) data[i] = round + i;
    EXPECT_EQ(data[511], round + 511);
  }
  EXPECT_LE(arena.block_count(), 2u);  // Space was recycled, not regrown.
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena;
  const size_t huge = (1 << 22) + 4096;  // Past the block-doubling cap.
  char* data = arena.AllocateArrayOf<char>(huge);
  ASSERT_NE(data, nullptr);
  data[0] = 'x';
  data[huge - 1] = 'y';
  EXPECT_GE(arena.reserved_bytes(), huge);
}

// ------------------------------------------------------ SelectionVector --

TEST(SelectionVectorTest, AllIsIdentity) {
  Arena arena;
  SelectionVector sel = SelectionVector::All(&arena, 10);
  ASSERT_EQ(sel.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sel[i], i);
  sel.set_size(3);
  EXPECT_EQ(sel.size(), 3u);
  EXPECT_FALSE(sel.empty());
}

// ---------------------------------------------------------- ColumnBatch --

std::vector<Tuple> IntRows(Rng& rng, size_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value(rng.Range(-50, 50)), Value(rng.Range(0, 10)),
                          Value(static_cast<int64_t>(i))}));
  }
  return rows;
}

TEST(ColumnBatchTest, IntColumnGatheredAndCached) {
  Rng rng(1);
  std::vector<Tuple> rows = IntRows(rng, 37);
  Arena arena;
  ColumnBatch batch(rows, &arena);
  EXPECT_EQ(batch.num_rows(), 37u);
  EXPECT_EQ(batch.num_columns(), 3u);
  const int64_t* col0 = batch.Ints(0);
  ASSERT_NE(col0, nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(col0[i], rows[i].at(0).AsInt());
  }
  EXPECT_EQ(batch.Ints(0), col0);  // Second access reuses the build.
}

TEST(ColumnBatchTest, MixedColumnHasNoIntViewButValuesWork) {
  std::vector<Tuple> rows;
  rows.push_back(Tuple({Value(int64_t{1})}));
  rows.push_back(Tuple({Value(std::string("s"))}));
  rows.push_back(Tuple({Value(int64_t{3})}));
  Arena arena;
  ColumnBatch batch(rows, &arena);
  EXPECT_EQ(batch.Ints(0), nullptr);
  const Value* const* values = batch.Values(0);
  ASSERT_NE(values, nullptr);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(values[i], &rows[i].at(0));  // Pointers into the rows.
  }
}

// ------------------------------------------------------------- PredExpr --

TEST(PredExprTest, FactoriesNormalizeDegenerateForms) {
  EXPECT_EQ(PredExpr::IntBetween(0, 7, 3).kind, PredExpr::Kind::kNone);
  EXPECT_EQ(PredExpr::IntLess(0, std::numeric_limits<int64_t>::min()).kind,
            PredExpr::Kind::kNone);
  EXPECT_EQ(PredExpr::IntGreater(0, std::numeric_limits<int64_t>::max()).kind,
            PredExpr::Kind::kNone);
  // Single-child conjunctions collapse.
  std::vector<PredExpr> one;
  one.push_back(PredExpr::IntEquals(2, 5));
  EXPECT_EQ(PredExpr::And(std::move(one)).kind, PredExpr::Kind::kIntRange);
}

TEST(PredExprTest, LeafSemanticsAreTyped) {
  const PredExpr range = PredExpr::IntBetween(0, 0, 10);
  EXPECT_TRUE(range.EvalValue(Value(int64_t{5})));
  EXPECT_FALSE(range.EvalValue(Value(int64_t{11})));
  EXPECT_FALSE(range.EvalValue(Value(std::string("5"))));  // Ints only.
  const PredExpr ne = PredExpr::IntNotEquals(0, 5);
  EXPECT_FALSE(ne.EvalValue(Value(int64_t{5})));
  EXPECT_TRUE(ne.EvalValue(Value(int64_t{6})));
  EXPECT_TRUE(ne.EvalValue(Value(std::string("5"))));  // Non-ints match.
  const PredExpr eq = PredExpr::StringEquals(0, "x");
  EXPECT_TRUE(eq.EvalValue(Value(std::string("x"))));
  EXPECT_FALSE(eq.EvalValue(Value(int64_t{0})));
  const PredExpr sne = PredExpr::StringNotEquals(0, "x");
  EXPECT_FALSE(sne.EvalValue(Value(std::string("x"))));
  EXPECT_TRUE(sne.EvalValue(Value(int64_t{0})));
}

/// Reference evaluation: per-row EvalRow over the whole span.
std::vector<uint32_t> RowPathSelection(const PredExpr& pred,
                                       const std::vector<Tuple>& rows) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (pred.EvalRow(rows[i])) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

TEST(PredKernelTest, BatchSelectionMatchesRowPath) {
  Rng rng(42);
  std::vector<Tuple> rows = IntRows(rng, 200);
  rows[17] = Tuple({Value(std::string("odd")), Value(int64_t{3}),
                    Value(int64_t{17})});  // Poison column 0 -> fallback.
  std::vector<PredExpr> preds;
  preds.push_back(PredExpr::All());
  preds.push_back(PredExpr::None());
  preds.push_back(PredExpr::IntBetween(0, -10, 10));
  preds.push_back(PredExpr::IntNotEquals(1, 4));
  preds.push_back(PredExpr::StringEquals(0, "odd"));
  preds.push_back(PredExpr::StringNotEquals(0, "odd"));
  {
    std::vector<PredExpr> conj;
    conj.push_back(PredExpr::IntBetween(0, -30, 30));
    conj.push_back(PredExpr::IntBetween(1, 2, 8));
    conj.push_back(PredExpr::IntNotEquals(2, 100));
    preds.push_back(PredExpr::And(std::move(conj)));
  }
  Arena arena;
  for (const PredExpr& pred : preds) {
    ScopedArena scope(&arena);
    ColumnBatch batch(rows, scope.get());
    uint32_t* sel = scope.get()->AllocateArrayOf<uint32_t>(rows.size());
    const size_t n = EvalPredAll(pred, batch, sel);
    const std::vector<uint32_t> expect = RowPathSelection(pred, rows);
    ASSERT_EQ(n, expect.size()) << pred.ToString();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sel[i], expect[i]) << pred.ToString();
    }
  }
}

TEST(PredKernelTest, FilterRefinesExistingSelection) {
  Rng rng(7);
  std::vector<Tuple> rows = IntRows(rng, 100);
  Arena arena;
  ColumnBatch batch(rows, &arena);
  uint32_t* sel = arena.AllocateArrayOf<uint32_t>(rows.size());
  const PredExpr first = PredExpr::IntBetween(0, -25, 25);
  const PredExpr second = PredExpr::IntBetween(1, 0, 4);
  size_t n = EvalPredAll(first, batch, sel);
  n = EvalPredFilter(second, batch, sel, n);
  std::vector<PredExpr> both;
  both.push_back(first);
  both.push_back(second);
  const std::vector<uint32_t> expect =
      RowPathSelection(PredExpr::And(std::move(both)), rows);
  ASSERT_EQ(n, expect.size());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(sel[i], expect[i]);
}

// -------------------------------------------------------------- Hashing --

TEST(HashKernelTest, HashColumnMatchesValueHash) {
  std::vector<Tuple> rows;
  rows.push_back(Tuple({Value(int64_t{-3}), Value(std::string("a"))}));
  rows.push_back(Tuple({Value(int64_t{0}), Value(int64_t{9})}));
  rows.push_back(Tuple({Value(int64_t{1234567}), Value(std::string("b"))}));
  Arena arena;
  ColumnBatch batch(rows, &arena);
  const uint64_t* ints = HashColumn(batch, 0, &arena);   // Int fast path.
  const uint64_t* mixed = HashColumn(batch, 1, &arena);  // Value fallback.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(ints[i], rows[i].at(0).Hash());
    EXPECT_EQ(mixed[i], rows[i].at(1).Hash());
  }
}

// -------------------------------------------------------- Batched probe --

TEST(BatchedProbeTest, MatchesScalarProbeIncludingChains) {
  // A fragment with heavy duplication so chains have length > 1.
  Relation rel("inner", Schema({{"k", ValueType::kInt64}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple({Value(rng.Range(0, 60))})).ok());
  }
  const TempIndex index(rel.fragment(0), 0);

  std::vector<Tuple> probes;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(Tuple({Value(rng.Range(0, 80))}));  // Some miss.
  }
  Arena arena;
  ColumnBatch batch(probes, &arena);
  const uint64_t* hashes = HashColumn(batch, 0, &arena);
  const Value* const* keys = batch.Values(0);
  uint32_t* first = arena.AllocateArrayOf<uint32_t>(probes.size());
  index.ProbeHashed(std::span<const uint64_t>(hashes, probes.size()), keys,
                    first);
  for (size_t i = 0; i < probes.size(); ++i) {
    const std::vector<uint32_t> expect = index.Lookup(probes[i].at(0));
    std::vector<uint32_t> got;
    for (uint32_t pos = first[i]; pos != TempIndex::kNone;
         pos = index.NextMatchAfter(pos, hashes[i], *keys[i])) {
      got.push_back(pos);
    }
    EXPECT_EQ(got, expect) << "probe key " << probes[i].at(0).AsInt();
  }
}

TEST(BatchedProbeTest, ProbeKeysMatchesScalarProbe) {
  // Spans several kProbeTile tiles so the three-stage pipeline's prologue,
  // steady state, and ragged tail all run; duplicated keys give chains.
  Relation rel("inner", Schema({{"k", ValueType::kInt64}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  Rng rng(7);
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple({Value(rng.Range(0, 120))})).ok());
  }
  const TempIndex index(rel.fragment(0), 0);
  ASSERT_TRUE(index.int_keyed());

  std::vector<int64_t> keys;
  for (int i = 0; i < 333; ++i) keys.push_back(rng.Range(0, 160));
  std::vector<uint32_t> first(keys.size());
  index.ProbeKeys(std::span<const int64_t>(keys), first.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::vector<uint32_t> expect = index.Lookup(Value(keys[i]));
    std::vector<uint32_t> got;
    for (uint32_t pos = first[i]; pos != TempIndex::kNone;
         pos = index.NextMatchAfter(pos, keys[i])) {
      got.push_back(pos);
    }
    EXPECT_EQ(got, expect) << "probe key " << keys[i];
  }
}

TEST(BatchedProbeTest, StringKeyedIndexUsesGenericWave) {
  // Non-int keys keep the index off the inline-key fast path; the batched
  // probe must fall back to the hash-prefilter wave and still agree with
  // the scalar walk. Few distinct keys force multi-node chains.
  Relation rel("inner", Schema({{"k", ValueType::kString}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  Rng rng(13);
  const char* words[] = {"ada", "bee", "cat", "doe", "elk"};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple({Value(words[rng.Range(0, 4)])})).ok());
  }
  const TempIndex index(rel.fragment(0), 0);
  ASSERT_FALSE(index.int_keyed());

  std::vector<Tuple> probes;
  for (int i = 0; i < 150; ++i) {
    probes.push_back(Tuple({Value(words[rng.Range(0, 4)])}));
  }
  probes.push_back(Tuple({Value("missing")}));
  Arena arena;
  ColumnBatch batch(probes, &arena);
  const uint64_t* hashes = HashColumn(batch, 0, &arena);
  const Value* const* keys = batch.Values(0);
  uint32_t* first = arena.AllocateArrayOf<uint32_t>(probes.size());
  index.ProbeHashed(std::span<const uint64_t>(hashes, probes.size()), keys,
                    first);
  for (size_t i = 0; i < probes.size(); ++i) {
    const std::vector<uint32_t> expect = index.Lookup(probes[i].at(0));
    std::vector<uint32_t> got;
    for (uint32_t pos = first[i]; pos != TempIndex::kNone;
         pos = index.NextMatchAfter(pos, hashes[i], *keys[i])) {
      got.push_back(pos);
    }
    EXPECT_EQ(got, expect) << "probe key " << probes[i].at(0).AsString();
  }
}

TEST(BatchedProbeTest, IntKeyedIndexRejectsNonIntProbeKeys) {
  // A mixed probe column against an int-keyed index: the int tiles resolve
  // on the fast path and the tile holding the string key falls back to
  // per-key resolution, which cannot match any int key.
  Relation rel("inner", Schema({{"k", ValueType::kInt64}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple({Value(static_cast<int64_t>(i))})).ok());
  }
  const TempIndex index(rel.fragment(0), 0);
  ASSERT_TRUE(index.int_keyed());

  std::vector<Tuple> probes;
  for (int i = 0; i < 10; ++i) {
    probes.push_back(Tuple({Value(static_cast<int64_t>(i * 5))}));
  }
  probes.push_back(Tuple({Value("7")}));  // String, not the int 7.
  Arena arena;
  ColumnBatch batch(probes, &arena);
  const uint64_t* hashes = HashColumn(batch, 0, &arena);
  uint32_t* first = arena.AllocateArrayOf<uint32_t>(probes.size());
  index.ProbeHashed(std::span<const uint64_t>(hashes, probes.size()),
                    batch.Values(0), first);
  for (size_t i = 0; i + 1 < probes.size(); ++i) {
    EXPECT_EQ(first[i], static_cast<uint32_t>(i * 5));
  }
  EXPECT_EQ(first[probes.size() - 1], TempIndex::kNone);
}

TEST(BatchedProbeTest, EmptyIndexReturnsNoMatches) {
  Relation rel("empty", Schema({{"k", ValueType::kInt64}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  const TempIndex index(rel.fragment(0), 0);
  std::vector<Tuple> probes = {Tuple({Value(int64_t{1})})};
  Arena arena;
  ColumnBatch batch(probes, &arena);
  const uint64_t* hashes = HashColumn(batch, 0, &arena);
  uint32_t first = 0;
  index.ProbeHashed(std::span<const uint64_t>(hashes, 1), batch.Values(0),
                    &first);
  EXPECT_EQ(first, TempIndex::kNone);
}

// ------------------------------------------------- Concurrent execution --

// Several threads hammer the kernels through their thread-local arenas
// against one shared (read-only) index. Run under TSan by the sanitizer CI
// job; any cross-thread kernel state would fire there.
TEST(ConcurrentKernelTest, ThreadLocalArenasDoNotInterfere) {
  Relation rel("inner", Schema({{"k", ValueType::kInt64}}), 0,
               Partitioner(PartitionKind::kModulo, 1));
  Rng seed_rng(11);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple({Value(seed_rng.Range(0, 50))})).ok());
  }
  const TempIndex index(rel.fragment(0), 0);
  std::atomic<uint64_t> total_matches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&index, &total_matches, t] {
      Rng rng(100 + t);
      std::vector<Tuple> rows = IntRows(rng, 128);
      const PredExpr pred = PredExpr::IntBetween(0, -20, 20);
      uint64_t matches = 0;
      for (int round = 0; round < 200; ++round) {
        Arena& arena = ThreadLocalKernelArena();
        ScopedArena scope(&arena);
        ColumnBatch batch(rows, scope.get());
        uint32_t* sel = scope.get()->AllocateArrayOf<uint32_t>(rows.size());
        const size_t n = EvalPredAll(pred, batch, sel);
        const uint64_t* hashes = HashColumn(batch, 2, scope.get());
        uint32_t* first =
            scope.get()->AllocateArrayOf<uint32_t>(rows.size());
        index.ProbeHashed(
            std::span<const uint64_t>(hashes, rows.size()),
            batch.Values(2), first);
        for (size_t i = 0; i < n; ++i) {
          if (first[sel[i]] != TempIndex::kNone) ++matches;
        }
      }
      total_matches.fetch_add(matches);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(total_matches.load(), 0u);
}

// ------------------------------------------- Differential: whole queries --

std::vector<Tuple> SortedScan(const Relation& rel) {
  std::vector<Tuple> rows = rel.Scan();
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The portion of an execution's ledger that must be identical between the
/// vectorized and row paths: per-operation tuple units in and out.
std::vector<std::tuple<std::string, uint64_t, uint64_t>> Ledger(
    const ExecutionResult& execution) {
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> out;
  for (const OperationStats& stats : execution.op_stats) {
    uint64_t processed = 0;
    for (uint64_t units : stats.per_instance_processed) processed += units;
    out.emplace_back(stats.name, processed, stats.emitted);
  }
  return out;
}

class VectorDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WisconsinOptions wopt;
    wopt.cardinality = 2'000;
    wopt.degree = 8;
    wopt.partition_kind = PartitionKind::kHash;
    wopt.with_strings = true;
    ASSERT_TRUE(db_.CreateWisconsin("tenk1", wopt).ok());
    wopt.seed = 99;  // Different permutation, same key set.
    ASSERT_TRUE(db_.CreateWisconsin("tenk2", wopt).ok());
    SkewSpec spec;  // Zipf-skewed join pair.
    spec.a_cardinality = 3'000;
    spec.b_cardinality = 300;
    spec.degree = 8;
    spec.theta = 0.8;
    ASSERT_TRUE(db_.CreateSkewedPair(spec, "Z", "W").ok());
  }

  QueryOptions Options(size_t chunk_size, bool vectorize) {
    QueryOptions options;
    options.schedule.total_threads = 4;
    options.schedule.processors = 4;
    options.schedule.chunk_size = chunk_size;
    options.vectorize = vectorize;
    return options;
  }

  size_t Column(const std::string& rel, const std::string& column) {
    return db_.relation(rel).value()->schema().IndexOf(column).value();
  }

  /// Runs `run` with the vectorized and row paths at every chunk size and
  /// requires identical sorted results and identical tuple ledgers.
  void ExpectPathsAgree(
      const std::function<Result<QueryResult>(const QueryOptions&)>& run) {
    for (size_t chunk_size : {1, 4, 16, 64}) {
      auto vec = run(Options(chunk_size, /*vectorize=*/true));
      auto row = run(Options(chunk_size, /*vectorize=*/false));
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      EXPECT_EQ(SortedScan(*vec.value().result),
                SortedScan(*row.value().result))
          << "chunk_size=" << chunk_size;
      EXPECT_EQ(Ledger(vec.value().execution), Ledger(row.value().execution))
          << "chunk_size=" << chunk_size;
    }
  }

  Database db_{4};
};

TEST_F(VectorDifferentialTest, IntFilterOnWisconsin) {
  const size_t col = Column("tenk1", "unique1");
  ExpectPathsAgree([&](const QueryOptions& options) {
    return RunSelect(db_, "tenk1", ColumnBetween(col, 100, 700), 0.3,
                     options);
  });
}

TEST_F(VectorDifferentialTest, StringFilterOnWisconsin) {
  const size_t col = Column("tenk1", "string4");
  ExpectPathsAgree([&](const QueryOptions& options) {
    return RunSelect(db_, "tenk1", ColumnEquals(col, Value("HHHH")), 0.25,
                     options);
  });
}

TEST_F(VectorDifferentialTest, HashJoinOnWisconsin) {
  ExpectPathsAgree([&](const QueryOptions& options) {
    return RunIdealJoin(db_, "tenk1", "unique1", "tenk2", "unique1", options);
  });
}

TEST_F(VectorDifferentialTest, FilterJoinOnZipfPair) {
  const size_t payload = Column("Z", "payload");
  ExpectPathsAgree([&](const QueryOptions& options) {
    return RunFilterJoin(db_, "Z", ColumnBetween(payload, 0, 1'000'000'000),
                         0.5, "key", "W", "key", options);
  });
}

TEST_F(VectorDifferentialTest, TempIndexJoinOnZipfPair) {
  ExpectPathsAgree([&](const QueryOptions& options) {
    QueryOptions opt = options;
    opt.algorithm = JoinAlgorithm::kTempIndex;
    return RunIdealJoin(db_, "Z", "key", "W", "key", opt);
  });
}

// ------------------------------------------ Differential: semi/anti join --

// Drives PipelinedSemiJoinLogic's chunked entry point directly: the
// vectorized existence probe must match the row path tuple for tuple, for
// both semi and anti joins, at every chunk size.
TEST(SemiJoinDifferentialTest, BatchedExistenceMatchesRowPath) {
  Rng rng(21);
  auto inner = std::make_unique<Relation>(
      "inner", Schema({{"k", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 2));
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(inner->Insert(Tuple({Value(rng.Range(0, 40))})).ok());
  }
  std::vector<Tuple> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back(Tuple({Value(rng.Range(0, 60)), Value(rng.Range(0, 5))}));
  }
  struct Collector : Emitter {
    void Emit(size_t, Tuple tuple) override {
      rows.push_back(std::move(tuple));
    }
    std::vector<Tuple> rows;
  };
  for (bool anti : {false, true}) {
    for (size_t chunk_size : {1, 4, 16, 64}) {
      Collector vec_out;
      Collector row_out;
      for (bool vectorize : {true, false}) {
        PipelinedSemiJoinLogic semi(inner.get(), 0, 0, anti, vectorize);
        ASSERT_TRUE(semi.Prepare(2).ok());
        Collector& out = vectorize ? vec_out : row_out;
        std::vector<Tuple> copy = probes;  // OnDataBatch may move from.
        for (size_t base = 0; base < copy.size(); base += chunk_size) {
          const size_t n = std::min(chunk_size, copy.size() - base);
          semi.OnDataBatch(base % 2, std::span<Tuple>(&copy[base], n), &out);
        }
      }
      EXPECT_EQ(vec_out.rows, row_out.rows)
          << "anti=" << anti << " chunk_size=" << chunk_size;
    }
  }
}

}  // namespace
}  // namespace dbs3

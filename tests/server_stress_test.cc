// Multi-user stress: several client threads submit short ESQL queries
// against one shared Database/QueryRuntime while a canceller thread
// randomly cancels in-flight handles. Runs in the TSan and ASan+UBSan CI
// jobs and in the Debug+DBS3_VERIFY job, where the conservation ledger
// additionally checks every (possibly cancelled) execution.

#include <atomic>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "esql/planner.h"
#include "server/query_runtime.h"

namespace dbs3 {
namespace {

TEST(ServerStressTest, ConcurrentEsqlSubmittersWithRandomCanceller) {
  constexpr size_t kSubmitters = 4;
  constexpr size_t kQueriesPerThread = 6;

  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 8;
  spec.theta = 0.3;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "people", "towns").ok());
  QueryRuntimeOptions runtime_options;
  runtime_options.max_concurrent_queries = 3;
  runtime_options.max_queued_queries = 256;  // Roomy: nothing sheds.
  ASSERT_TRUE(db.StartRuntime(runtime_options).ok());

  const std::vector<std::string> queries = {
      "SELECT * FROM towns",
      "SELECT key, payload FROM people WHERE payload < 50",
      "SELECT * FROM people JOIN towns ON people.key = towns.key",
      "SELECT COUNT(*) FROM people",
  };

  std::mutex handles_mu;
  std::vector<QueryHandle> handles;
  std::atomic<bool> submitting_done{false};

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1000 + t));
      EsqlOptions options;
      options.schedule.total_threads = 2;
      options.schedule.processors = 2;
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        const std::string& text = queries[rng() % queries.size()];
        QueryHandle handle = SubmitEsql(db, text, options);
        std::lock_guard<std::mutex> lock(handles_mu);
        handles.push_back(handle);
      }
    });
  }

  std::thread canceller([&] {
    std::mt19937 rng(99);
    while (!submitting_done.load()) {
      QueryHandle victim;
      {
        std::lock_guard<std::mutex> lock(handles_mu);
        if (!handles.empty()) victim = handles[rng() % handles.size()];
      }
      if (victim.id() != 0 && rng() % 2 == 0) victim.Cancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : submitters) t.join();
  submitting_done.store(true);
  canceller.join();

  size_t completed = 0, cancelled = 0;
  for (QueryHandle& handle : handles) {
    auto taken = handle.Take();
    if (taken.ok()) {
      ++completed;
      ASSERT_NE(taken.value().result, nullptr);
    } else {
      // Cancellation is the only legitimate failure here (the waiting
      // room is large enough that nothing sheds, and no deadlines are
      // set).
      ASSERT_EQ(taken.status().code(), StatusCode::kCancelled)
          << taken.status().ToString();
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, kSubmitters * kQueriesPerThread);

  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_EQ(snap.counters["runtime.queries_submitted"],
            kSubmitters * kQueriesPerThread);
  EXPECT_EQ(snap.counters["runtime.queries_completed"] +
                snap.counters["runtime.queries_cancelled"],
            kSubmitters * kQueriesPerThread);
  EXPECT_EQ(snap.counters["runtime.queries_shed"], 0u);
  // Every completed query recorded a latency sample.
  EXPECT_EQ(snap.series["runtime.admission_wait_us"].samples,
            kSubmitters * kQueriesPerThread);
}

TEST(ServerStressTest, RuntimeShutdownWithInFlightQueriesIsClean) {
  // Destroying the Database (and with it the runtime) while handles are
  // outstanding must complete every one of them — running bodies drain,
  // queued ones complete with Cancelled.
  std::vector<QueryHandle> handles;
  {
    Database db(2);
    WisconsinOptions opt;
    opt.cardinality = 2'000;
    opt.degree = 8;
    ASSERT_TRUE(db.CreateWisconsin("t", opt).ok());
    QueryRuntimeOptions runtime_options;
    runtime_options.max_concurrent_queries = 2;
    ASSERT_TRUE(db.StartRuntime(runtime_options).ok());

    QueryOptions options;
    options.schedule.total_threads = 2;
    options.schedule.processors = 2;
    for (int i = 0; i < 8; ++i) {
      handles.push_back(SubmitSelect(db, "t", MatchAll(), 1.0, options));
    }
    // Database destruction joins the runtime here.
  }
  for (QueryHandle& handle : handles) {
    ASSERT_TRUE(handle.done());
    auto taken = handle.Take();
    EXPECT_TRUE(taken.ok() ||
                taken.status().code() == StatusCode::kCancelled)
        << taken.status().ToString();
  }
}

}  // namespace
}  // namespace dbs3

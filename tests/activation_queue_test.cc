#include "engine/activation_queue.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

Activation DataWithKey(int64_t key) {
  return Activation::Data(Tuple({Value(key)}));
}

TEST(ActivationQueueTest, FifoOrder) {
  ActivationQueue q;
  for (int64_t k = 0; k < 5; ++k) ASSERT_TRUE(q.Push(DataWithKey(k)));
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(10, &out), 5u);
  for (int64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(out[static_cast<size_t>(k)].tuples.front().at(0).AsInt(), k);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(ActivationQueueTest, PopBatchRespectsMax) {
  ActivationQueue q;
  for (int64_t k = 0; k < 10; ++k) ASSERT_TRUE(q.Push(DataWithKey(k)));
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(3, &out), 3u);
  EXPECT_EQ(q.Size(), 7u);
  EXPECT_EQ(q.PopBatch(100, &out), 7u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(ActivationQueueTest, PopFromEmptyReturnsZero) {
  ActivationQueue q;
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(4, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ActivationQueueTest, TriggerAndDataKindsPreserved) {
  ActivationQueue q;
  ASSERT_TRUE(q.Push(Activation::Trigger()));
  ASSERT_TRUE(q.Push(DataWithKey(9)));
  std::vector<Activation> out;
  ASSERT_EQ(q.PopBatch(2, &out), 2u);
  EXPECT_TRUE(out[0].is_trigger());
  EXPECT_FALSE(out[1].is_trigger());
  EXPECT_EQ(out[1].tuples.front().at(0).AsInt(), 9);
}

TEST(ActivationQueueTest, CloseRejectsFurtherPushes) {
  ActivationQueue q;
  ASSERT_TRUE(q.Push(DataWithKey(1)));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(DataWithKey(2)));
  // Queued items stay poppable after close.
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(10, &out), 1u);
}

TEST(ActivationQueueTest, BoundedPushBlocksUntilPop) {
  ActivationQueue q(/*capacity=*/2);
  ASSERT_TRUE(q.Push(DataWithKey(1)));
  ASSERT_TRUE(q.Push(DataWithKey(2)));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(DataWithKey(3)));  // Blocks while full.
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_pushed.load());
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(1, &out), 1u);  // Frees one slot.
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.Size(), 2u);
}

TEST(ActivationQueueTest, CloseWakesBlockedProducer) {
  ActivationQueue q(/*capacity=*/1);
  ASSERT_TRUE(q.Push(DataWithKey(1)));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(DataWithKey(2))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());  // Push failed: queue closed.
}

Activation ChunkOf(size_t n) {
  TupleChunk chunk;
  for (size_t k = 0; k < n; ++k) {
    chunk.push_back(Tuple({Value(static_cast<int64_t>(k))}));
  }
  return Activation::DataChunk(std::move(chunk));
}

TEST(ActivationQueueTest, RejectedPushLeavesActivationIntact) {
  // The chunk-recycling contract: a rejected Push must leave the caller's
  // activation (and so its tuple buffer) intact, so the producer can
  // release the buffer back to the pool instead of leaking it into a
  // moved-from shell.
  ActivationQueue q;
  q.Close();
  Activation a = ChunkOf(3);
  const Tuple* buffer = a.tuples.data();
  EXPECT_FALSE(q.Push(std::move(a)));
  ASSERT_EQ(a.tuples.size(), 3u);
  EXPECT_EQ(a.tuples.data(), buffer);
  EXPECT_EQ(a.tuples.front().at(0).AsInt(), 0);
}

TEST(ActivationQueueTest, ApproxUnitsTracksPushAndPop) {
  ActivationQueue q;
  EXPECT_EQ(q.ApproxUnits(), 0u);
  ASSERT_TRUE(q.Push(ChunkOf(3)));
  ASSERT_TRUE(q.Push(DataWithKey(1)));
  EXPECT_EQ(q.ApproxUnits(), 4u);
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(10, &out), 2u);
  EXPECT_EQ(q.ApproxUnits(), 0u);
}

TEST(ActivationQueueTest, SizeCountsActivationsUnitsCountTuples) {
  ActivationQueue q;
  ASSERT_TRUE(q.Push(ChunkOf(3)));
  ASSERT_TRUE(q.Push(Activation::Trigger()));  // A trigger is one unit.
  ASSERT_TRUE(q.Push(DataWithKey(7)));
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.SizeUnits(), 5u);
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(10, &out), 3u);
  EXPECT_EQ(q.SizeUnits(), 0u);
}

TEST(ActivationQueueTest, BoundedCapacityIsDenominatedInTuples) {
  // Capacity 4 tuples: a 3-tuple chunk fits, a second 3-tuple chunk must
  // wait for a pop even though only one *activation* is queued.
  ActivationQueue q(/*capacity=*/4);
  ASSERT_TRUE(q.Push(ChunkOf(3)));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(ChunkOf(3)));
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_pushed.load());
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(1, &out), 1u);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.SizeUnits(), 3u);
}

TEST(ActivationQueueTest, OversizedChunkAdmittedWhenEmptyNotDeadlocked) {
  // The split-or-overshoot contract: a chunk larger than the whole capacity
  // is admitted once the queue is empty (transient overshoot) instead of
  // blocking forever. The engine's emitter clamps chunks to the capacity,
  // so this path only serves hand-built producers.
  ActivationQueue q(/*capacity=*/2);
  ASSERT_TRUE(q.Push(ChunkOf(5)));  // Empty queue: admitted immediately.
  EXPECT_EQ(q.SizeUnits(), 5u);
  // While the oversized chunk is in, further pushes wait for the drain.
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(DataWithKey(1)));
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(second_pushed.load());
  std::vector<Activation> out;
  EXPECT_EQ(q.PopBatch(1, &out), 1u);  // Drains to empty.
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(ActivationQueueTest, ConcurrentProducersConserveCount) {
  ActivationQueue q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(DataWithKey(p * kPerProducer + i)));
      }
    });
  }
  std::atomic<uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  std::atomic<bool> done{false};
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<Activation> out;
      while (!done.load() || !q.Empty()) {
        out.clear();
        consumed.fetch_add(q.PopBatch(16, &out));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true);
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace dbs3

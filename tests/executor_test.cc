#include "engine/executor.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

/// Reference single-threaded join of two relations on given columns.
std::vector<Tuple> ReferenceJoin(const Relation& left, size_t left_col,
                                 const Relation& right, size_t right_col) {
  std::vector<Tuple> out;
  std::multimap<std::string, const Tuple*> index;
  for (size_t f = 0; f < right.degree(); ++f) {
    for (const Tuple& t : right.fragment(f).tuples) {
      index.emplace(t.at(right_col).ToString(), &t);
    }
  }
  for (size_t f = 0; f < left.degree(); ++f) {
    for (const Tuple& t : left.fragment(f).tuples) {
      auto [lo, hi] = index.equal_range(t.at(left_col).ToString());
      for (auto it = lo; it != hi; ++it) out.push_back(t.Concat(*it->second));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Populates `db` in place: Database is intentionally non-movable (the
/// query runtime pins it), so tests fill a stack instance.
void MakeSmallSkewedDb(Database& db, double theta) {
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 400;
  spec.degree = 16;
  spec.theta = theta;
  spec.seed = 7;
  EXPECT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());
}

TEST(ExecutorTest, IdealJoinMatchesReferenceJoin) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.5);
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto result = RunIdealJoin(db, "A", "key", "Bp", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  Relation* a = db.relation("A").value();
  Relation* b = db.relation("Bp").value();
  std::vector<Tuple> expected = ReferenceJoin(*a, 0, *b, 0);
  std::vector<Tuple> actual = result.value().result->Scan();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual.size(), 2'000u);  // Each A tuple matches one B' tuple.
  EXPECT_EQ(actual, expected);
}

TEST(ExecutorTest, AssocJoinMatchesIdealJoin) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.8);
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto ideal = RunIdealJoin(db, "A", "key", "Bp", "key", options);
  ASSERT_TRUE(ideal.ok()) << ideal.status().ToString();
  // AssocJoin probes with B' against A: result columns are (B', A); remap
  // by comparing join cardinalities and key multiplicity instead of raw
  // tuples.
  auto assoc = RunAssocJoin(db, "Bp", "key", "A", "key", options);
  ASSERT_TRUE(assoc.ok()) << assoc.status().ToString();
  EXPECT_EQ(assoc.value().result->cardinality(),
            ideal.value().result->cardinality());

  // Tuple-level check: swap the column order of the assoc result.
  std::vector<Tuple> expected = ideal.value().result->Scan();
  std::sort(expected.begin(), expected.end());
  std::vector<Tuple> actual;
  for (const Tuple& t : assoc.value().result->Scan()) {
    std::vector<Value> vals;
    vals.push_back(t.at(2));  // A.key
    vals.push_back(t.at(3));  // A.payload
    vals.push_back(t.at(0));  // Bp.key
    vals.push_back(t.at(1));  // Bp.payload
    actual.push_back(Tuple(std::move(vals)));
  }
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ExecutorTest, SelectKeepsMatchingTuplesOnly) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.0);
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto result =
      RunSelect(db, "A", ColumnBetween(/*column=*/1, 0, 9), 0.1, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Tuple& t : result.value().result->Scan()) {
    EXPECT_GE(t.at(1).AsInt(), 0);
    EXPECT_LE(t.at(1).AsInt(), 9);
  }
  // Payload column counts 0..count-1 per fragment, so every fragment keeps
  // min(10, |fragment|) tuples.
  uint64_t expected = 0;
  Relation* a = db.relation("A").value();
  for (uint64_t c : a->FragmentCardinalities()) {
    expected += std::min<uint64_t>(c, 10);
  }
  EXPECT_EQ(result.value().result->cardinality(), expected);
}

TEST(ExecutorTest, FilterJoinPipelineProducesJoin) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.3);
  QueryOptions options;
  options.schedule.total_threads = 3;
  options.schedule.processors = 4;
  // Filter keeps all of B', joins against A: same cardinality as the join.
  auto result = RunFilterJoin(db, "Bp", MatchAll(), 1.0, "key", "A", "key",
                              options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().result->cardinality(), 2'000u);
}

TEST(ExecutorTest, StatsAccountForEveryActivation) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.6);
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto result = RunAssocJoin(db, "Bp", "key", "A", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& ops = result.value().execution.op_stats;
  ASSERT_EQ(ops.size(), 3u);  // transmit, join, store.
  // Transmit processes one trigger per fragment.
  uint64_t transmit_total = 0;
  for (uint64_t c : ops[0].per_thread_processed) transmit_total += c;
  EXPECT_EQ(transmit_total, 16u);
  EXPECT_EQ(ops[0].emitted, 400u);  // All B' tuples redistributed.
  // Join processes one data activation per redistributed tuple.
  uint64_t join_total = 0;
  for (uint64_t c : ops[1].per_thread_processed) join_total += c;
  EXPECT_EQ(join_total, 400u);
  EXPECT_EQ(ops[1].emitted, 2'000u);
  // Store consumes every result tuple.
  uint64_t store_total = 0;
  for (uint64_t c : ops[2].per_thread_processed) store_total += c;
  EXPECT_EQ(store_total, 2'000u);
}

TEST(ExecutorTest, NoUnitsDroppedOnWellFormedPlans) {
  // Activations pushed onto closed queues used to disappear with only a log
  // line. On a well-formed plan (consumers outlive their producers) nothing
  // may ever be dropped — across all four query shapes.
  Database db(4);
  MakeSmallSkewedDb(db, 0.7);
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;

  auto check = [](const char* what, const ExecutionResult& execution) {
    EXPECT_EQ(execution.units_dropped, 0u) << what;
    for (const OperationStats& op : execution.op_stats) {
      EXPECT_EQ(op.dropped, 0u) << what << " op " << op.name;
    }
  };
  auto ideal = RunIdealJoin(db, "A", "key", "Bp", "key", options);
  ASSERT_TRUE(ideal.ok()) << ideal.status().ToString();
  check("IdealJoin", ideal.value().execution);

  auto assoc = RunAssocJoin(db, "Bp", "key", "A", "key", options);
  ASSERT_TRUE(assoc.ok()) << assoc.status().ToString();
  check("AssocJoin", assoc.value().execution);

  auto filter = RunFilterJoin(db, "Bp", MatchAll(), 1.0, "key", "A", "key",
                              options);
  ASSERT_TRUE(filter.ok()) << filter.status().ToString();
  check("FilterJoin", filter.value().execution);

  auto select =
      RunSelect(db, "A", ColumnBetween(/*column=*/1, 0, 9), 0.1, options);
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  check("Select", select.value().execution);
}

TEST(ExecutorTest, MetricsSnapshotAggregatesPerOperationCounters) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.4);
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto result = RunAssocJoin(db, "Bp", "key", "A", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionResult& execution = result.value().execution;
  const auto& counters = execution.metrics.counters;
  // One counter group per operation; values mirror op_stats.
  for (const OperationStats& op : execution.op_stats) {
    const std::string prefix = "op." + op.name + ".";
    ASSERT_TRUE(counters.count(prefix + "activations")) << prefix;
    EXPECT_EQ(counters.at(prefix + "activations"), op.activations);
    ASSERT_TRUE(counters.count(prefix + "dropped_units")) << prefix;
    EXPECT_EQ(counters.at(prefix + "dropped_units"), op.dropped);
    ASSERT_TRUE(counters.count(prefix + "main_queue_acquisitions"));
    EXPECT_EQ(counters.at(prefix + "main_queue_acquisitions"),
              op.main_queue_acquisitions);
  }
  // Tracing off: no trace JSON, no queue-depth series.
  EXPECT_TRUE(execution.trace_json.empty());
  EXPECT_TRUE(execution.metrics.series.empty());
}

TEST(ExecutorTest, TracingProducesSpansAndQueueDepthSeries) {
  Database db(4);
  MakeSmallSkewedDb(db, 0.4);
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.schedule.trace.enabled = true;
  options.schedule.trace.sample_interval_us = 50;
  auto result = RunAssocJoin(db, "Bp", "key", "A", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionResult& execution = result.value().execution;
  EXPECT_NE(execution.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(execution.trace_json.find("\"ph\":\"X\""), std::string::npos);
  // One sampled queue-depth series per operation.
  EXPECT_EQ(execution.metrics.series.size(), 3u);
  for (const auto& [name, series] : execution.metrics.series) {
    EXPECT_EQ(name.rfind("op.", 0), 0u) << name;
    EXPECT_GE(series.min, 0);
  }
}

TEST(ExecutorTest, RejectsNonCopartitionedIdealJoin) {
  Database db(2);
  SkewSpec spec;
  spec.degree = 8;
  spec.a_cardinality = 100;
  spec.b_cardinality = 50;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());
  spec.degree = 4;
  spec.b_cardinality = 50;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "C", "D").ok());
  QueryOptions options;
  auto result = RunIdealJoin(db, "A", "key", "D", "key", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbs3

// Tests of the spill-file layer: chunk-framed tuple roundtrips, rescans
// (the block nested-loop fallback re-reads its probe file), and the
// live-handle accounting the cancellation tests pin.

#include "storage/spill.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

Tuple IntRow(int64_t a, int64_t b) { return Tuple({Value(a), Value(b)}); }

std::vector<Tuple> ReadAll(SpillFile& file) {
  EXPECT_TRUE(file.Rewind().ok());
  std::vector<Tuple> all, chunk;
  while (true) {
    auto more = file.ReadChunk(&chunk);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    for (Tuple& t : chunk) all.push_back(std::move(t));
  }
  return all;
}

TEST(SpillFileTest, RoundTripsTuplesAcrossChunkBoundaries) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  SpillFile& spill = *file.value();
  // 2.5 chunk frames' worth, so reads cross frame boundaries.
  const size_t n = kSpillChunkTuples * 2 + kSpillChunkTuples / 2;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(spill.Append(IntRow(static_cast<int64_t>(i), -7)).ok());
  }
  EXPECT_EQ(spill.tuple_count(), n);
  const std::vector<Tuple> back = ReadAll(spill);
  ASSERT_EQ(back.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(back[i].at(0).AsInt(), static_cast<int64_t>(i));
    EXPECT_EQ(back[i].at(1).AsInt(), -7);
  }
  EXPECT_GT(spill.bytes_written(), 0u);
}

TEST(SpillFileTest, RoundTripsStringsAndMixedArity) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  SpillFile& spill = *file.value();
  const Tuple a({Value(int64_t{1}), Value(std::string("paris"))});
  const Tuple b({Value(std::string("")), Value(int64_t{-5}),
                 Value(std::string("lyon"))});
  const Tuple c({Value(int64_t{42})});
  ASSERT_TRUE(spill.Append(a).ok());
  ASSERT_TRUE(spill.Append(b).ok());
  ASSERT_TRUE(spill.Append(c).ok());
  const std::vector<Tuple> back = ReadAll(spill);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);
  EXPECT_EQ(back[2], c);
}

TEST(SpillFileTest, RewindAllowsRepeatedRescans) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  SpillFile& spill = *file.value();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(spill.Append(IntRow(i, i * 2)).ok());
  }
  const std::vector<Tuple> first = ReadAll(spill);
  const std::vector<Tuple> second = ReadAll(spill);  // Rescan.
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 100u);
}

TEST(SpillFileTest, EmptyFileReadsCleanEof) {
  auto file = SpillFile::Create();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Rewind().ok());
  std::vector<Tuple> chunk;
  auto more = file.value()->ReadChunk(&chunk);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
  EXPECT_TRUE(chunk.empty());
}

TEST(SpillFileTest, CountersAccumulateAcrossFiles) {
  SpillCounters counters;
  {
    auto f1 = SpillFile::Create(&counters);
    auto f2 = SpillFile::Create(&counters);
    ASSERT_TRUE(f1.ok() && f2.ok());
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(f1.value()->Append(IntRow(i, 0)).ok());
      ASSERT_TRUE(f2.value()->Append(IntRow(i, 1)).ok());
    }
    (void)ReadAll(*f1.value());
  }
  EXPECT_EQ(counters.files_created.load(), 2u);
  EXPECT_EQ(counters.tuples_written.load(), 20u);
  EXPECT_GT(counters.bytes_written.load(), 0u);
  EXPECT_GT(counters.bytes_read.load(), 0u);
}

TEST(SpillFileTest, LiveFileCountReturnsToBaseline) {
  const int64_t before = SpillFile::live_files();
  {
    auto f1 = SpillFile::Create();
    auto f2 = SpillFile::Create();
    ASSERT_TRUE(f1.ok() && f2.ok());
    EXPECT_EQ(SpillFile::live_files(), before + 2);
  }
  EXPECT_EQ(SpillFile::live_files(), before);
}

}  // namespace
}  // namespace dbs3

#include "engine/plan.h"

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

std::unique_ptr<Relation> SmallRelation(size_t degree) {
  auto r = std::make_unique<Relation>(
      "R", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, degree));
  for (int64_t k = 0; k < static_cast<int64_t>(4 * degree); ++k) {
    EXPECT_TRUE(r->Insert(Tuple({Value(k), Value(k)})).ok());
  }
  return r;
}

class PlanTest : public ::testing::Test {
 protected:
  std::unique_ptr<Relation> input_ = SmallRelation(4);
  std::unique_ptr<Relation> result_ = SmallRelation(4);

  std::unique_ptr<OperatorLogic> Filter() {
    return std::make_unique<FilterLogic>(input_.get(), MatchAll());
  }
  std::unique_ptr<OperatorLogic> Store() {
    return std::make_unique<StoreLogic>(result_.get());
  }
};

TEST_F(PlanTest, ValidSingleChain) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t s =
      plan.AddNode("store", ActivationMode::kPipelined, 4, Store());
  ASSERT_TRUE(plan.ConnectSameInstance(f, s).ok());
  EXPECT_TRUE(plan.Validate().ok());
  auto order = plan.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<size_t>{f, s}));
}

TEST_F(PlanTest, EmptyPlanInvalid) {
  Plan plan;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, PipelinedWithoutProducerInvalid) {
  Plan plan;
  plan.AddNode("store", ActivationMode::kPipelined, 4, Store());
  const Status s = plan.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no data producer"), std::string::npos);
}

TEST_F(PlanTest, TriggeredWithProducerInvalid) {
  Plan plan;
  const size_t a =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t b =
      plan.AddNode("filter2", ActivationMode::kTriggered, 4, Filter());
  ASSERT_TRUE(plan.ConnectSameInstance(a, b).ok());
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, ZeroThreadsInvalid) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  plan.params(f).threads = 0;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, DoubleOutputRejected) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t s1 =
      plan.AddNode("store1", ActivationMode::kPipelined, 4, Store());
  const size_t s2 =
      plan.AddNode("store2", ActivationMode::kPipelined, 4, Store());
  ASSERT_TRUE(plan.ConnectSameInstance(f, s1).ok());
  EXPECT_EQ(plan.ConnectSameInstance(f, s2).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlanTest, SameInstanceNeedsEnoughConsumerInstances) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t s =
      plan.AddNode("store", ActivationMode::kPipelined, 2, Store());
  EXPECT_EQ(plan.ConnectSameInstance(f, s).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, ByColumnNeedsMatchingPartitionerDegree) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t s =
      plan.AddNode("store", ActivationMode::kPipelined, 4, Store());
  EXPECT_FALSE(
      plan.ConnectByColumn(f, s, 0, Partitioner(PartitionKind::kModulo, 8))
          .ok());
  EXPECT_TRUE(
      plan.ConnectByColumn(f, s, 0, Partitioner(PartitionKind::kModulo, 4))
          .ok());
}

TEST_F(PlanTest, OutOfRangeNodeIds) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  EXPECT_FALSE(plan.ConnectSameInstance(f, 99).ok());
  EXPECT_FALSE(plan.ConnectSameInstance(99, f).ok());
}

TEST_F(PlanTest, ToStringShowsStructure) {
  Plan plan;
  const size_t f =
      plan.AddNode("filter", ActivationMode::kTriggered, 4, Filter());
  const size_t s =
      plan.AddNode("store", ActivationMode::kPipelined, 4, Store());
  ASSERT_TRUE(plan.ConnectSameInstance(f, s).ok());
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("filter"), std::string::npos);
  EXPECT_NE(text.find("triggered"), std::string::npos);
  EXPECT_NE(text.find("same-instance"), std::string::npos);
}

TEST(ActivationModeTest, Names) {
  EXPECT_STREQ(ActivationModeName(ActivationMode::kTriggered), "triggered");
  EXPECT_STREQ(ActivationModeName(ActivationMode::kPipelined), "pipelined");
}

}  // namespace
}  // namespace dbs3

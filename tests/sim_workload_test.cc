#include "sim/workload.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace dbs3 {
namespace {

JoinWorkloadSpec SmallSpec(double theta = 0.0) {
  JoinWorkloadSpec spec;
  spec.a_cardinality = 10'000;
  spec.b_cardinality = 1'000;
  spec.degree = 50;
  spec.theta = theta;
  spec.threads = 8;
  return spec;
}

TEST(WorkloadTest, IdealJoinHasOneTriggerPerFragment) {
  SimCosts costs;
  auto plan = BuildIdealJoinSim(SmallSpec(), costs);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().ops.size(), 1u);
  const SimOpSpec& join = plan.value().ops[0];
  EXPECT_TRUE(join.triggered());
  EXPECT_EQ(join.triggers.size(), 50u);
  EXPECT_EQ(join.instances, 50u);
  EXPECT_EQ(join.output, -1);
}

TEST(WorkloadTest, IdealJoinCostsFollowFragmentSkew) {
  SimCosts costs;
  auto flat = BuildIdealJoinSim(SmallSpec(0.0), costs);
  auto skewed = BuildIdealJoinSim(SmallSpec(1.0), costs);
  ASSERT_TRUE(flat.ok() && skewed.ok());
  auto total = [](const SimOpSpec& op) {
    double t = 0.0;
    for (const auto& trig : op.triggers) t += trig.cost;
    return t;
  };
  // Same total work whatever the skew (sum |A_i| x |B_i| is invariant when
  // B is uniform)...
  EXPECT_NEAR(total(flat.value().ops[0]), total(skewed.value().ops[0]),
              total(flat.value().ops[0]) * 0.01);
  // ...but the skewed max activation dominates.
  auto max_cost = [](const SimOpSpec& op) {
    double m = 0.0;
    for (const auto& trig : op.triggers) m = std::max(m, trig.cost);
    return m;
  };
  EXPECT_GT(max_cost(skewed.value().ops[0]),
            5.0 * max_cost(flat.value().ops[0]));
}

TEST(WorkloadTest, AssocJoinRedistributesAllBTuples) {
  SimCosts costs;
  auto plan = BuildAssocJoinSim(SmallSpec(0.5), costs);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().ops.size(), 2u);
  const SimOpSpec& transmit = plan.value().ops[0];
  const SimOpSpec& join = plan.value().ops[1];
  EXPECT_TRUE(transmit.triggered());
  EXPECT_EQ(transmit.output, 1);
  EXPECT_FALSE(join.triggered());
  uint64_t emitted = 0;
  for (const auto& trig : transmit.triggers) {
    for (const auto& e : trig.emissions) {
      emitted += e.count;
      EXPECT_LT(e.dest_instance, join.instances);
    }
  }
  EXPECT_EQ(emitted, 1'000u);
}

TEST(WorkloadTest, AssocJoinProbeLoadsUniformButCostsSkewed) {
  SimCosts costs;
  auto plan = BuildAssocJoinSim(SmallSpec(1.0), costs);
  ASSERT_TRUE(plan.ok());
  const SimOpSpec& transmit = plan.value().ops[0];
  const SimOpSpec& join = plan.value().ops[1];
  // Probe counts per instance are near-uniform (B's key domain is uniform
  // per residue class).
  std::vector<uint64_t> probes(join.instances, 0);
  for (const auto& trig : transmit.triggers) {
    for (const auto& e : trig.emissions) probes[e.dest_instance] += e.count;
  }
  const double expected = 1'000.0 / 50.0;
  for (uint64_t p : probes) {
    EXPECT_NEAR(static_cast<double>(p), expected, expected * 0.3);
  }
  // Per-probe costs mirror A's Zipf fragment sizes.
  const std::vector<uint64_t> a_counts = ZipfCounts(10'000, 50, 1.0);
  for (size_t i = 1; i < join.data_cost.size(); ++i) {
    EXPECT_LE(join.data_cost[i], join.data_cost[i - 1] + 1e-12);
  }
  EXPECT_GT(join.data_cost.front() / join.data_cost.back(), 10.0);
  (void)a_counts;
}

TEST(WorkloadTest, ThreadSplitRespectsBudget) {
  SimCosts costs;
  for (size_t n : {1ul, 2ul, 5ul, 20ul}) {
    JoinWorkloadSpec spec = SmallSpec();
    spec.threads = n;
    auto plan = BuildAssocJoinSim(spec, costs);
    ASSERT_TRUE(plan.ok());
    const size_t total =
        plan.value().ops[0].threads + plan.value().ops[1].threads;
    if (n == 1) {
      EXPECT_EQ(total, 2u);  // Each pool needs one thread.
    } else {
      EXPECT_EQ(total, n);
    }
    EXPECT_GE(plan.value().ops[1].threads, plan.value().ops[0].threads);
  }
}

TEST(WorkloadTest, IndexAlgorithmAddsSetupCost) {
  SimCosts costs;
  JoinWorkloadSpec spec = SmallSpec();
  spec.algorithm = JoinAlgorithm::kTempIndex;
  auto plan = BuildAssocJoinSim(spec, costs);
  ASSERT_TRUE(plan.ok());
  const SimOpSpec& join = plan.value().ops[1];
  ASSERT_EQ(join.data_setup_cost.size(), join.instances);
  for (double s : join.data_setup_cost) EXPECT_GT(s, 0.0);
  // Index probes are far cheaper than nested-loop scans.
  spec.algorithm = JoinAlgorithm::kNestedLoop;
  auto nl_plan = BuildAssocJoinSim(spec, costs);
  ASSERT_TRUE(nl_plan.ok());
  EXPECT_LT(join.data_cost[0], nl_plan.value().ops[1].data_cost[0] / 5.0);
}

TEST(WorkloadTest, JoinProfileCountsActivations) {
  SimCosts costs;
  auto triggered = JoinProfile(SmallSpec(0.7), costs, /*pipelined=*/false);
  auto pipelined = JoinProfile(SmallSpec(0.7), costs, /*pipelined=*/true);
  ASSERT_TRUE(triggered.ok() && pipelined.ok());
  EXPECT_EQ(triggered.value().activations, 50u);
  EXPECT_EQ(pipelined.value().activations, 1'000u);
  // Pipelined granularity shrinks the worst-case overhead (Section 4.1).
  EXPECT_LT(OverheadBound(pipelined.value(), 8),
            OverheadBound(triggered.value(), 8));
}

TEST(WorkloadTest, ValidatesSpecs) {
  SimCosts costs;
  JoinWorkloadSpec spec = SmallSpec();
  spec.degree = 0;
  EXPECT_FALSE(BuildIdealJoinSim(spec, costs).ok());
  spec = SmallSpec();
  spec.theta = -0.1;
  EXPECT_FALSE(BuildAssocJoinSim(spec, costs).ok());
  spec = SmallSpec();
  spec.threads = 0;
  EXPECT_FALSE(BuildIdealJoinSim(spec, costs).ok());
  spec = SmallSpec();
  spec.b_cardinality = 10;  // Below the degree.
  EXPECT_FALSE(BuildAssocJoinSim(spec, costs).ok());
}

TEST(ScanWorkloadTest, RemoteCostsMoreAndShipsOnce) {
  SimCosts costs;
  ScanWorkloadSpec spec;
  spec.cardinality = 10'000;
  spec.degree = 20;
  spec.threads = 4;
  spec.remote = false;
  auto local = BuildScanSim(spec, costs);
  spec.remote = true;
  auto remote = BuildScanSim(spec, costs);
  ASSERT_TRUE(local.ok() && remote.ok());
  double local_total = 0.0, remote_total = 0.0;
  for (const auto& t : local.value().ops[0].triggers) local_total += t.cost;
  for (const auto& t : remote.value().ops[0].triggers) {
    remote_total += t.cost;
  }
  EXPECT_GT(remote_total, local_total);
  // The surcharge equals the subpage shipping cost of the whole relation.
  const double expected_extra =
      spec.allcache.RemoteExtraCost(spec.cardinality * spec.tuple_bytes);
  EXPECT_NEAR(remote_total - local_total, expected_extra,
              expected_extra * 0.05);
}

TEST(AllcacheTest, RemoteExtraCostRoundsUpSubpages) {
  AllcacheModel model;
  model.subpage_bytes = 128;
  model.remote_subpage_cost = 2.0;
  EXPECT_DOUBLE_EQ(model.RemoteExtraCost(0), 0.0);
  EXPECT_DOUBLE_EQ(model.RemoteExtraCost(1), 2.0);
  EXPECT_DOUBLE_EQ(model.RemoteExtraCost(128), 2.0);
  EXPECT_DOUBLE_EQ(model.RemoteExtraCost(129), 4.0);
}

TEST(AllcacheTest, LocalFeasibilityThreshold) {
  AllcacheModel model;
  model.local_cache_bytes = 1'000;
  EXPECT_TRUE(model.LocalFeasible(4'000, 4));
  EXPECT_FALSE(model.LocalFeasible(4'001, 4));
  EXPECT_FALSE(model.LocalFeasible(100, 0));
  // The paper's configuration: a 200K x 208 B relation fits 5 x 32 MB
  // local caches but the paper could not obtain local execution under 5
  // threads (per-thread share vs. what the run leaves resident); with the
  // default 32 MB caches our threshold flags 1 thread as still feasible in
  // capacity terms — 41.6 MB > 32 MB makes 1 thread infeasible.
  AllcacheModel ksr;
  EXPECT_FALSE(ksr.LocalFeasible(200'000ull * 208, 1));
  EXPECT_TRUE(ksr.LocalFeasible(200'000ull * 208, 5));
}

}  // namespace
}  // namespace dbs3

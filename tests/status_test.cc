#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dbs3 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::ResourceExhausted("f"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
      {Status::Cancelled("h"), StatusCode::kCancelled, "Cancelled"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.status.code()), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("relation 'R' missing");
  EXPECT_EQ(s.ToString(), "NotFound: relation 'R' missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsWhenNegative(int x) {
  DBS3_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                             : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsWhenNegative(1).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DBS3_ASSIGN_OR_RETURN(int h, Half(x));
  DBS3_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd.
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace dbs3

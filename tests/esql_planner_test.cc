#include "esql/planner.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "storage/skew.h"

namespace dbs3 {
namespace {

/// A database with:
///  - residents(key, payload) / cities(key, payload): co-partitioned pair,
///  - orders: partitioned on its key,
///  - misaligned: partitioned on payload (not a join column).
class EsqlPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkewSpec spec;
    spec.a_cardinality = 2'000;
    spec.b_cardinality = 200;
    spec.degree = 10;
    spec.theta = 0.4;
    ASSERT_TRUE(db_.CreateSkewedPair(spec, "residents", "cities").ok());

    // orders: modulo-partitioned on key like the pair (co-locatable).
    auto orders = std::make_unique<Relation>(
        "orders", Schema({{"key", ValueType::kInt64},
                          {"amount", ValueType::kInt64}}),
        0, Partitioner(PartitionKind::kModulo, 10));
    for (int64_t k = 0; k < 500; ++k) {
      ASSERT_TRUE(orders->Insert(Tuple({Value(k % 200), Value(k)})).ok());
    }
    ASSERT_TRUE(db_.AddRelation(std::move(orders)).ok());

    // misaligned: partitioned on its second column.
    auto misaligned = std::make_unique<Relation>(
        "misaligned", Schema({{"key", ValueType::kInt64},
                              {"grp", ValueType::kInt64}}),
        1, Partitioner(PartitionKind::kHash, 10));
    for (int64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(
          misaligned->Insert(Tuple({Value(k), Value(k % 7)})).ok());
    }
    ASSERT_TRUE(db_.AddRelation(std::move(misaligned)).ok());

    options_.schedule.total_threads = 4;
    options_.schedule.processors = 4;
  }

  Database db_{2};
  EsqlOptions options_;
};

TEST_F(EsqlPlannerTest, SelectStar) {
  auto r = ExecuteEsql(db_, "SELECT * FROM cities", options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 200u);
  EXPECT_EQ(r.value().phases, 1u);
}

TEST_F(EsqlPlannerTest, SelectWithWhereAndProjection) {
  auto r = ExecuteEsql(
      db_, "SELECT payload AS p FROM residents WHERE payload < 3",
      options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->schema().num_columns(), 1u);
  EXPECT_EQ(r.value().result->schema().column(0).name, "p");
  for (const Tuple& t : r.value().result->Scan()) {
    EXPECT_LT(t.at(0).AsInt(), 3);
  }
}

TEST_F(EsqlPlannerTest, CoPartitionedJoinUsesIdealJoin) {
  auto r = ExecuteEsql(
      db_,
      "SELECT * FROM residents JOIN cities ON residents.key = cities.key",
      options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().physical_plan.find("IdealJoin"), std::string::npos)
      << r.value().physical_plan;
  EXPECT_EQ(r.value().result->cardinality(), 2'000u);
}

TEST_F(EsqlPlannerTest, JoinWithPushdownUsesAssocJoin) {
  // A probe-side WHERE disables the IdealJoin shortcut; the planner scans
  // residents with the filter pushed down and probes cities.
  auto r = ExecuteEsql(db_,
                       "SELECT * FROM residents JOIN cities ON "
                       "residents.key = cities.key "
                       "WHERE residents.payload < 5",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().physical_plan.find("AssocJoin"), std::string::npos)
      << r.value().physical_plan;
  // residents.payload < 5 keeps 5 tuples per fragment... validate by
  // recomputing: every result row has payload < 5.
  const size_t payload_col = 1;
  for (const Tuple& t : r.value().result->Scan()) {
    EXPECT_LT(t.at(payload_col).AsInt(), 5);
  }
}

TEST_F(EsqlPlannerTest, MisalignedInnerSwapsProbeSide) {
  // misaligned is not partitioned on its join column, but residents is on
  // its own — the planner swaps the probe side instead of materializing.
  auto r = ExecuteEsql(
      db_,
      "SELECT * FROM residents JOIN misaligned ON residents.key = "
      "misaligned.key",
      options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().physical_plan.find("probe=misaligned"),
            std::string::npos)
      << r.value().physical_plan;
  EXPECT_EQ(r.value().phases, 1u);
  // misaligned keys 0..199 each match the residents holding that key:
  // total matches = |residents| with key < 200 = all 2000 (keys are drawn
  // from cities' 200-key domain).
  EXPECT_EQ(r.value().result->cardinality(), 2'000u);
}

TEST_F(EsqlPlannerTest, FullyMisalignedJoinRepartitions) {
  // Neither side is partitioned on its join column: the planner
  // materializes a repartition of the right side first (a subquery
  // boundary), then runs an AssocJoin.
  auto r = ExecuteEsql(
      db_,
      "SELECT * FROM misaligned JOIN orders ON misaligned.key = "
      "orders.amount",
      options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().physical_plan.find("repartition"), std::string::npos)
      << r.value().physical_plan;
  EXPECT_EQ(r.value().phases, 2u);  // Materialization boundary.
  // orders.amount runs 0..499, misaligned.key runs 0..199: 200 matches.
  EXPECT_EQ(r.value().result->cardinality(), 200u);
}

TEST_F(EsqlPlannerTest, GroupByWithAggregates) {
  auto r = ExecuteEsql(db_,
                       "SELECT key, COUNT(*) AS n, SUM(amount) AS total "
                       "FROM orders GROUP BY key",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 200 distinct keys; counts sum to 500.
  EXPECT_EQ(r.value().result->cardinality(), 200u);
  int64_t count_sum = 0, amount_sum = 0;
  for (const Tuple& t : r.value().result->Scan()) {
    count_sum += t.at(1).AsInt();
    amount_sum += t.at(2).AsInt();
  }
  EXPECT_EQ(count_sum, 500);
  EXPECT_EQ(amount_sum, 499 * 500 / 2);
  EXPECT_EQ(r.value().result->schema().column(1).name, "n");
}

TEST_F(EsqlPlannerTest, GroupKeysGloballyDistinct) {
  // The repartition before group-by must co-locate equal keys: no key may
  // appear in two result rows.
  auto r = ExecuteEsql(db_, "SELECT key, COUNT(*) FROM orders GROUP BY key",
                       options_);
  ASSERT_TRUE(r.ok());
  std::map<int64_t, int> seen;
  for (const Tuple& t : r.value().result->Scan()) {
    ++seen[t.at(0).AsInt()];
  }
  for (const auto& [key, times] : seen) {
    EXPECT_EQ(times, 1) << "key " << key << " split across instances";
  }
}

TEST_F(EsqlPlannerTest, GlobalAggregateWithoutGroupBy) {
  auto r = ExecuteEsql(db_,
                       "SELECT COUNT(*) AS n, MIN(amount) AS lo, "
                       "MAX(amount) AS hi FROM orders WHERE amount >= 100",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().result->cardinality(), 1u);
  const Tuple row = r.value().result->Scan()[0];
  // Columns: [_const group key, n, lo, hi].
  EXPECT_EQ(row.at(1).AsInt(), 400);
  EXPECT_EQ(row.at(2).AsInt(), 100);
  EXPECT_EQ(row.at(3).AsInt(), 499);
}

TEST_F(EsqlPlannerTest, OrderBySortsEachFragment) {
  auto r = ExecuteEsql(
      db_, "SELECT amount FROM orders ORDER BY amount DESC", options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 500u);
  // Each result fragment is internally descending.
  const Relation& res = *r.value().result;
  for (size_t f = 0; f < res.degree(); ++f) {
    const auto& tuples = res.fragment(f).tuples;
    for (size_t i = 1; i < tuples.size(); ++i) {
      EXPECT_LE(tuples[i].at(0).AsInt(), tuples[i - 1].at(0).AsInt())
          << "fragment " << f;
    }
  }
}

TEST_F(EsqlPlannerTest, JoinThenGroupBy) {
  auto r = ExecuteEsql(db_,
                       "SELECT payload, COUNT(*) AS n FROM residents JOIN "
                       "cities ON residents.key = cities.key "
                       "GROUP BY residents.payload",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t total = 0;
  for (const Tuple& t : r.value().result->Scan()) total += t.at(1).AsInt();
  EXPECT_EQ(total, 2'000);
}

TEST_F(EsqlPlannerTest, ThreeWayJoinChain) {
  auto r = ExecuteEsql(db_,
                       "SELECT * FROM residents "
                       "JOIN cities ON residents.key = cities.key "
                       "JOIN orders ON cities.key = orders.key",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Reference cardinality: every resident matches exactly one city; each
  // key k appears in orders (500 rows of k % 200) 3x for k < 100, 2x
  // otherwise.
  uint64_t expected = 0;
  for (const Tuple& t : db_.relation("residents").value()->Scan()) {
    expected += t.at(0).AsInt() < 100 ? 3 : 2;
  }
  EXPECT_EQ(r.value().result->cardinality(), expected);
  // Two pipelined joins in one chain, no materialization.
  EXPECT_EQ(r.value().phases, 1u);
  EXPECT_NE(r.value().physical_plan.find("inner=cities"),
            std::string::npos);
  EXPECT_NE(r.value().physical_plan.find("inner=orders"),
            std::string::npos);
}

TEST_F(EsqlPlannerTest, ThreeWayJoinWithAggregation) {
  auto r = ExecuteEsql(db_,
                       "SELECT COUNT(*) AS n, SUM(amount) AS total "
                       "FROM residents "
                       "JOIN cities ON residents.key = cities.key "
                       "JOIN orders ON cities.key = orders.key "
                       "WHERE amount < 200",
                       options_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().result->cardinality(), 1u);
  const Tuple row = r.value().result->Scan()[0];
  // amount < 200 keeps orders rows 0..199 (key = amount % 200 = amount):
  // each such order joins the residents holding that key once per
  // resident; total matches = sum over orders k<200 of resident count of
  // key k.
  std::map<int64_t, int64_t> residents_per_key;
  for (const Tuple& t : db_.relation("residents").value()->Scan()) {
    ++residents_per_key[t.at(0).AsInt()];
  }
  int64_t expected_n = 0, expected_total = 0;
  for (int64_t amount = 0; amount < 200; ++amount) {
    expected_n += residents_per_key[amount % 200];
    expected_total += amount * residents_per_key[amount % 200];
  }
  EXPECT_EQ(row.at(1).AsInt(), expected_n);
  EXPECT_EQ(row.at(2).AsInt(), expected_total);
}

TEST_F(EsqlPlannerTest, SemanticErrors) {
  EXPECT_EQ(ExecuteEsql(db_, "SELECT * FROM nope", options_)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExecuteEsql(db_, "SELECT zzz FROM orders", options_)
                .status()
                .code(),
            StatusCode::kNotFound);
  // GROUP BY without aggregates.
  EXPECT_FALSE(
      ExecuteEsql(db_, "SELECT key FROM orders GROUP BY key", options_)
          .ok());
  // Plain select item that is not the grouping column.
  EXPECT_FALSE(ExecuteEsql(db_,
                           "SELECT amount, COUNT(*) FROM orders GROUP BY "
                           "key",
                           options_)
                   .ok());
  // Join condition referencing only one side.
  EXPECT_FALSE(ExecuteEsql(db_,
                           "SELECT * FROM residents JOIN cities ON "
                           "residents.key = residents.payload",
                           options_)
                   .ok());
}

TEST_F(EsqlPlannerTest, ParseErrorsPropagate) {
  auto r = ExecuteEsql(db_, "SELEKT * FROM x", options_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dbs3

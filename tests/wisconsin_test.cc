#include "storage/wisconsin.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(WisconsinTest, SchemaHasStandardColumns) {
  const Schema s = WisconsinSchema(false);
  EXPECT_EQ(s.num_columns(), 13u);
  EXPECT_TRUE(s.IndexOf("unique1").ok());
  EXPECT_TRUE(s.IndexOf("unique2").ok());
  EXPECT_TRUE(s.IndexOf("onePercent").ok());
  EXPECT_TRUE(s.IndexOf("fiftyPercent").ok());
  const Schema with_strings = WisconsinSchema(true);
  EXPECT_EQ(with_strings.num_columns(), 16u);
  EXPECT_TRUE(with_strings.IndexOf("stringu1").ok());
  EXPECT_EQ(with_strings.column(13).type, ValueType::kString);
}

TEST(WisconsinTest, Unique1IsAPermutation) {
  WisconsinOptions opt;
  opt.cardinality = 5'000;
  opt.degree = 8;
  auto r = GenerateWisconsin("w", opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<int64_t> u1, u2;
  for (const Tuple& t : r.value()->Scan()) {
    u1.insert(t.at(0).AsInt());
    u2.insert(t.at(1).AsInt());
  }
  EXPECT_EQ(u1.size(), 5'000u);
  EXPECT_EQ(*u1.begin(), 0);
  EXPECT_EQ(*u1.rbegin(), 4'999);
  EXPECT_EQ(u2.size(), 5'000u);
}

TEST(WisconsinTest, DerivedColumnsFollowUnique1) {
  WisconsinOptions opt;
  opt.cardinality = 1'000;
  opt.degree = 4;
  auto r = GenerateWisconsin("w", opt);
  ASSERT_TRUE(r.ok());
  const Schema& s = r.value()->schema();
  const size_t two = s.IndexOf("two").value();
  const size_t ten = s.IndexOf("ten").value();
  const size_t one_pct = s.IndexOf("onePercent").value();
  const size_t even = s.IndexOf("evenOnePercent").value();
  const size_t odd = s.IndexOf("oddOnePercent").value();
  for (const Tuple& t : r.value()->Scan()) {
    const int64_t u1 = t.at(0).AsInt();
    EXPECT_EQ(t.at(two).AsInt(), u1 % 2);
    EXPECT_EQ(t.at(ten).AsInt(), u1 % 10);
    EXPECT_EQ(t.at(one_pct).AsInt(), u1 % 100);
    EXPECT_EQ(t.at(even).AsInt(), (u1 % 100) * 2);
    EXPECT_EQ(t.at(odd).AsInt(), (u1 % 100) * 2 + 1);
  }
}

TEST(WisconsinTest, StringColumnsWellFormed) {
  WisconsinOptions opt;
  opt.cardinality = 200;
  opt.degree = 2;
  opt.with_strings = true;
  auto r = GenerateWisconsin("w", opt);
  ASSERT_TRUE(r.ok());
  const Schema& s = r.value()->schema();
  const size_t s1 = s.IndexOf("stringu1").value();
  const size_t s4 = s.IndexOf("string4").value();
  std::set<std::string> distinct_s4;
  for (const Tuple& t : r.value()->Scan()) {
    const std::string& v = t.at(s1).AsString();
    ASSERT_EQ(v.size(), 52u);
    for (int i = 0; i < 7; ++i) {
      EXPECT_GE(v[i], 'A');
      EXPECT_LE(v[i], 'Z');
    }
    EXPECT_EQ(v.substr(7), std::string(45, 'x'));
    distinct_s4.insert(t.at(s4).AsString());
  }
  EXPECT_EQ(distinct_s4.size(), 4u);  // AAAA / HHHH / OOOO / VVVV cycle.
}

TEST(WisconsinTest, WisconsinStringEncodesBase26) {
  EXPECT_EQ(WisconsinString(0).substr(0, 7), "AAAAAAA");
  EXPECT_EQ(WisconsinString(1).substr(0, 7), "AAAAAAB");
  EXPECT_EQ(WisconsinString(26).substr(0, 7), "AAAAABA");
  EXPECT_EQ(WisconsinString(0).size(), 52u);
}

TEST(WisconsinTest, DeterministicBySeed) {
  WisconsinOptions opt;
  opt.cardinality = 500;
  opt.degree = 4;
  opt.seed = 99;
  auto a = GenerateWisconsin("a", opt);
  auto b = GenerateWisconsin("b", opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value()->Scan(), b.value()->Scan());
  opt.seed = 100;
  auto c = GenerateWisconsin("c", opt);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value()->Scan(), c.value()->Scan());
}

TEST(WisconsinTest, HashPartitioningOnUnique1IsBalanced) {
  WisconsinOptions opt;
  opt.cardinality = 20'000;
  opt.degree = 20;
  auto r = GenerateWisconsin("w", opt);
  ASSERT_TRUE(r.ok());
  const double expected = 1'000.0;
  for (uint64_t c : r.value()->FragmentCardinalities()) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

TEST(WisconsinTest, PartitionColumnRespected) {
  WisconsinOptions opt;
  opt.cardinality = 1'000;
  opt.degree = 10;
  opt.partition_column = "unique2";
  opt.partition_kind = PartitionKind::kModulo;
  auto r = GenerateWisconsin("w", opt);
  ASSERT_TRUE(r.ok());
  for (size_t f = 0; f < 10; ++f) {
    for (const Tuple& t : r.value()->fragment(f).tuples) {
      EXPECT_EQ(t.at(1).AsInt() % 10, static_cast<int64_t>(f));
    }
  }
}

TEST(WisconsinTest, RejectsBadOptions) {
  WisconsinOptions opt;
  opt.cardinality = 0;
  EXPECT_FALSE(GenerateWisconsin("w", opt).ok());
  opt.cardinality = 10;
  opt.degree = 0;
  EXPECT_FALSE(GenerateWisconsin("w", opt).ok());
  opt.degree = 2;
  opt.partition_column = "nope";
  auto r = GenerateWisconsin("w", opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dbs3

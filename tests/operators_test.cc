#include "engine/operators.h"

#include <algorithm>
#include <mutex>

#include <gtest/gtest.h>

#include "storage/skew.h"

namespace dbs3 {
namespace {

/// Captures emitted tuples per producer instance (thread-safe).
class CapturingEmitter : public Emitter {
 public:
  void Emit(size_t producer_instance, Tuple tuple) override {
    std::lock_guard<std::mutex> lock(mu_);
    emitted_.emplace_back(producer_instance, std::move(tuple));
  }

  std::vector<std::pair<size_t, Tuple>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(emitted_);
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<size_t, Tuple>> emitted_;
};

std::unique_ptr<Relation> KeyedRelation(size_t degree,
                                        std::vector<int64_t> keys) {
  auto r = std::make_unique<Relation>(
      "R", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, degree));
  int64_t payload = 0;
  for (int64_t k : keys) {
    EXPECT_TRUE(r->Insert(Tuple({Value(k), Value(payload++)})).ok());
  }
  return r;
}

TEST(FilterLogicTest, EmitsOnlyMatches) {
  auto r = KeyedRelation(2, {0, 1, 2, 3, 4, 5});
  FilterLogic filter(r.get(), ColumnEquals(0, Value(int64_t{2})));
  ASSERT_TRUE(filter.Prepare(2).ok());
  CapturingEmitter out;
  filter.OnTrigger(0, &out);  // Key 2 lives in fragment 0 (2 % 2).
  auto emitted = out.take();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].second.at(0).AsInt(), 2);
}

TEST(FilterLogicTest, MatchAllEmitsWholeFragment) {
  auto r = KeyedRelation(2, {0, 1, 2, 3, 4, 5});
  FilterLogic filter(r.get(), MatchAll());
  ASSERT_TRUE(filter.Prepare(2).ok());
  CapturingEmitter out;
  filter.OnTrigger(1, &out);
  EXPECT_EQ(out.take().size(), 3u);  // Keys 1, 3, 5.
}

TEST(FilterLogicTest, RejectsMoreInstancesThanFragments) {
  auto r = KeyedRelation(2, {0, 1});
  FilterLogic filter(r.get(), MatchAll());
  const Status s = filter.Prepare(5);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TransmitLogicTest, EmitsWholeFragmentTagged) {
  auto r = KeyedRelation(4, {0, 1, 2, 3, 4, 5, 6, 7});
  TransmitLogic transmit(r.get());
  ASSERT_TRUE(transmit.Prepare(4).ok());
  CapturingEmitter out;
  transmit.OnTrigger(2, &out);
  auto emitted = out.take();
  ASSERT_EQ(emitted.size(), 2u);  // Keys 2 and 6.
  for (const auto& [inst, tuple] : emitted) {
    EXPECT_EQ(inst, 2u);
    EXPECT_EQ(tuple.at(0).AsInt() % 4, 2);
  }
}

class TriggeredJoinAlgoTest
    : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(TriggeredJoinAlgoTest, JoinsCoPartitionedFragments) {
  auto outer = KeyedRelation(2, {0, 1, 2, 2, 3});
  auto inner = KeyedRelation(2, {2, 3, 4});
  TriggeredJoinLogic join(outer.get(), 0, inner.get(), 0, GetParam());
  ASSERT_TRUE(join.Prepare(2).ok());
  CapturingEmitter out;
  join.OnTrigger(0, &out);  // Fragment 0: outer {0,2,2}, inner {2,4}.
  auto emitted = out.take();
  ASSERT_EQ(emitted.size(), 2u);  // Both outer 2s match inner 2.
  for (const auto& [inst, tuple] : emitted) {
    EXPECT_EQ(tuple.at(0).AsInt(), 2);
    EXPECT_EQ(tuple.at(2).AsInt(), 2);
    ASSERT_EQ(tuple.size(), 4u);  // Concatenated schema.
  }
  out.take();
  join.OnTrigger(1, &out);  // Fragment 1: outer {1,3}, inner {3}.
  EXPECT_EQ(out.take().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TriggeredJoinAlgoTest,
                         ::testing::Values(JoinAlgorithm::kNestedLoop,
                                           JoinAlgorithm::kHash,
                                           JoinAlgorithm::kTempIndex));

TEST(TriggeredJoinTest, RejectsMismatchedDegrees) {
  auto outer = KeyedRelation(2, {0, 1});
  auto inner = KeyedRelation(4, {0, 1});
  TriggeredJoinLogic join(outer.get(), 0, inner.get(), 0,
                          JoinAlgorithm::kNestedLoop);
  EXPECT_EQ(join.Prepare(2).code(), StatusCode::kFailedPrecondition);
}

TEST(TriggeredJoinTest, RequiresOneInstancePerFragment) {
  auto outer = KeyedRelation(4, {0, 1, 2, 3});
  auto inner = KeyedRelation(4, {0, 1, 2, 3});
  TriggeredJoinLogic join(outer.get(), 0, inner.get(), 0,
                          JoinAlgorithm::kNestedLoop);
  EXPECT_FALSE(join.Prepare(2).ok());
  EXPECT_TRUE(join.Prepare(4).ok());
}

class PipelinedJoinAlgoTest
    : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(PipelinedJoinAlgoTest, ProbesAgainstInstanceFragment) {
  auto inner = KeyedRelation(2, {0, 1, 2, 2, 3});
  PipelinedJoinLogic join(inner.get(), /*inner_column=*/0,
                          /*probe_column=*/0, GetParam());
  ASSERT_TRUE(join.Prepare(2).ok());
  CapturingEmitter out;
  // Probe with key 2 at instance 0 (2 % 2 == 0): matches the two 2s.
  join.OnData(0, Tuple({Value(int64_t{2}), Value(int64_t{77})}), &out);
  auto emitted = out.take();
  ASSERT_EQ(emitted.size(), 2u);
  for (const auto& [inst, tuple] : emitted) {
    EXPECT_EQ(inst, 0u);
    EXPECT_EQ(tuple.at(1).AsInt(), 77);     // Probe payload first.
    EXPECT_EQ(tuple.at(2).AsInt(), 2);      // Inner key appended.
  }
  // A probe with no match at instance 1.
  join.OnData(1, Tuple({Value(int64_t{9}), Value(int64_t{0})}), &out);
  EXPECT_TRUE(out.take().empty());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PipelinedJoinAlgoTest,
                         ::testing::Values(JoinAlgorithm::kNestedLoop,
                                           JoinAlgorithm::kHash,
                                           JoinAlgorithm::kTempIndex));

TEST(StoreLogicTest, AppendsToInstanceFragment) {
  Relation result("Res", SkewSchema(), 0,
                  Partitioner(PartitionKind::kModulo, 3));
  StoreLogic store(&result);
  ASSERT_TRUE(store.Prepare(3).ok());
  store.OnData(1, Tuple({Value(int64_t{4}), Value(int64_t{0})}), nullptr);
  store.OnData(1, Tuple({Value(int64_t{7}), Value(int64_t{0})}), nullptr);
  store.OnData(2, Tuple({Value(int64_t{5}), Value(int64_t{0})}), nullptr);
  EXPECT_EQ(result.fragment(0).cardinality(), 0u);
  EXPECT_EQ(result.fragment(1).cardinality(), 2u);
  EXPECT_EQ(result.fragment(2).cardinality(), 1u);
}

TEST(MapLogicTest, TransformsAndForwards) {
  MapLogic map([](Tuple t) {
    t.at(0) = Value(t.at(0).AsInt() * 10);
    return t;
  });
  CapturingEmitter out;
  map.OnData(3, Tuple({Value(int64_t{4})}), &out);
  auto emitted = out.take();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].first, 3u);
  EXPECT_EQ(emitted[0].second.at(0).AsInt(), 40);
}

TEST(AggregateLogicTest, CountsAndSums) {
  AggregateLogic agg(/*sum_column=*/1);
  agg.OnData(0, Tuple({Value(int64_t{1}), Value(int64_t{10})}), nullptr);
  agg.OnData(1, Tuple({Value(int64_t{2}), Value(int64_t{-3})}), nullptr);
  EXPECT_EQ(agg.count(), 2u);
  EXPECT_EQ(agg.sum(), 7);
}

TEST(AggregateLogicTest, CountOnly) {
  AggregateLogic agg;
  agg.OnData(0, Tuple({Value(int64_t{1})}), nullptr);
  EXPECT_EQ(agg.count(), 1u);
  EXPECT_EQ(agg.sum(), 0);
}

TEST(EstimateTest, FilterEstimateUsesSelectivity) {
  auto r = KeyedRelation(4, std::vector<int64_t>(100, 0));
  // All 100 keys are 0 -> fragment 0 holds everything.
  FilterLogic filter(r.get(), MatchAll(), /*selectivity=*/0.25);
  const NodeEstimate e = filter.Estimate(CostModel{}, 0.0);
  EXPECT_DOUBLE_EQ(e.output_tuples, 25.0);
  EXPECT_DOUBLE_EQ(e.activations, 4.0);
  ASSERT_EQ(e.per_instance_work.size(), 4u);
  EXPECT_GT(e.per_instance_work[0], e.per_instance_work[1]);
}

TEST(EstimateTest, TriggeredJoinNestedLoopQuadratic) {
  auto outer = KeyedRelation(2, {0, 0, 0, 0, 1, 1});  // 4 and 2 per fragment.
  auto inner = KeyedRelation(2, {0, 0, 1, 1});        // 2 and 2.
  TriggeredJoinLogic join(outer.get(), 0, inner.get(), 0,
                          JoinAlgorithm::kNestedLoop);
  CostModel cm;
  const NodeEstimate e = join.Estimate(cm, 0.0);
  EXPECT_DOUBLE_EQ(e.per_instance_work[0], 4.0 * 2.0 * cm.nl_pair);
  EXPECT_DOUBLE_EQ(e.per_instance_work[1], 2.0 * 2.0 * cm.nl_pair);
  EXPECT_DOUBLE_EQ(e.total_work, 12.0 * cm.nl_pair);
  EXPECT_DOUBLE_EQ(e.output_tuples, 6.0);
}

TEST(EstimateTest, PipelinedJoinScalesWithInput) {
  auto inner = KeyedRelation(2, {0, 0, 1, 1});
  PipelinedJoinLogic join(inner.get(), 0, 0, JoinAlgorithm::kNestedLoop);
  CostModel cm;
  const NodeEstimate a = join.Estimate(cm, 100.0);
  const NodeEstimate b = join.Estimate(cm, 200.0);
  EXPECT_DOUBLE_EQ(b.total_work, 2.0 * a.total_work);
  EXPECT_DOUBLE_EQ(a.activations, 100.0);
}

TEST(EstimateTest, StoreLinearInInput) {
  Relation result("Res", SkewSchema(), 0,
                  Partitioner(PartitionKind::kModulo, 2));
  StoreLogic store(&result);
  CostModel cm;
  const NodeEstimate e = store.Estimate(cm, 50.0);
  EXPECT_DOUBLE_EQ(e.total_work, 50.0 * cm.store_tuple);
  EXPECT_DOUBLE_EQ(e.output_tuples, 0.0);
}

TEST(JoinAlgorithmTest, Names) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kNestedLoop), "nested-loop");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kHash), "hash");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kTempIndex), "temp-index");
}

}  // namespace
}  // namespace dbs3

// Tests of the DBS3_VERIFY invariant layer: the tuple-conservation ledger,
// the lock-order recorder, and their wiring into the engine. The check
// implementations compile in every build, so the negative tests (drive a
// violation, assert detection fires) run regardless of DBS3_VERIFY; only
// the tests that rely on the engine-side *hooks* skip when the hooks are
// compiled out.

#include "engine/verify.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"

namespace dbs3 {
namespace {

using verify::CheckTupleConservation;
using verify::LedgerEntry;
using verify::LockOrderRecorder;

LedgerEntry Entry(const std::string& name, int64_t consumer,
                  uint64_t emitted, uint64_t processed, uint64_t triggers) {
  LedgerEntry e;
  e.name = name;
  e.consumer = consumer;
  e.emitted = emitted;
  e.processed = processed;
  e.triggers = triggers;
  return e;
}

TEST(TupleConservationTest, BalancedPipelineHasNoViolations) {
  // scan (2 triggered instances, emits 100) -> join (processes all 100).
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", /*consumer=*/1, /*emitted=*/100,
                         /*processed=*/2, /*triggers=*/2));
  ledger.push_back(Entry("join", /*consumer=*/-1, /*emitted=*/40,
                         /*processed=*/100, /*triggers=*/0));
  EXPECT_TRUE(CheckTupleConservation(ledger).empty());
}

TEST(TupleConservationTest, SilentlyLostUnitsAreDetected) {
  // The join only accounts for 90 of the 100 units the scan emitted at it:
  // 10 tuples evaporated somewhere between Push and the instance counters.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", 1, 100, 2, 2));
  ledger.push_back(Entry("join", -1, 0, 90, 0));
  const std::vector<std::string> violations = CheckTupleConservation(ledger);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("join"), std::string::npos) << violations[0];
  EXPECT_NE(violations[0].find("100"), std::string::npos) << violations[0];
  EXPECT_NE(violations[0].find("90"), std::string::npos) << violations[0];
}

TEST(TupleConservationTest, AccountedDropsStillConserve) {
  // Cancelled executions legitimately drop: as long as the drop counter and
  // the queues' rejection tally agree, the ledger balances.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", 1, 100, 2, 2));
  LedgerEntry join = Entry("join", -1, 0, 90, 0);
  join.dropped = 10;
  join.rejected = 10;
  ledger.push_back(join);
  EXPECT_TRUE(CheckTupleConservation(ledger).empty());
}

TEST(TupleConservationTest, CancelledUnitsAreAnAccountedBucket) {
  // A cancelled execution drains queued units without processing them:
  // drained units land in the `cancelled` counter and the ledger still
  // balances (in == processed + cancelled + dropped).
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", 1, 100, 2, 2));
  LedgerEntry join = Entry("join", -1, 0, 60, 0);
  join.cancelled = 40;
  ledger.push_back(join);
  EXPECT_TRUE(CheckTupleConservation(ledger).empty());
}

TEST(TupleConservationTest, CancelledUnitsStillMustBalance) {
  // Draining must not hide losses: units neither processed nor recorded
  // as cancelled/dropped are a violation even on a cancelled execution.
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", 1, 100, 2, 2));
  LedgerEntry join = Entry("join", -1, 0, 60, 0);
  join.cancelled = 30;  // 10 units evaporated.
  ledger.push_back(join);
  const std::vector<std::string> violations = CheckTupleConservation(ledger);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("cancelled"), std::string::npos)
      << violations[0];
}

TEST(TupleConservationTest, DropWithoutQueueRejectionIsDetected) {
  // An operation claims drops its own queues never saw: the two tallies
  // must agree or a unit was double-counted away.
  std::vector<LedgerEntry> ledger;
  LedgerEntry op = Entry("join", -1, 0, 90, 0);
  op.triggers = 0;
  op.dropped = 10;
  op.rejected = 0;
  std::vector<LedgerEntry> producers;
  producers.push_back(Entry("scan", 1, 100, 2, 2));
  producers.push_back(op);
  const std::vector<std::string> violations =
      CheckTupleConservation(producers);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("drop accounting"), std::string::npos)
      << violations[0];
}

TEST(TupleConservationTest, ConsumerIndexOutsideLedgerIsDetected) {
  std::vector<LedgerEntry> ledger;
  ledger.push_back(Entry("scan", /*consumer=*/7, 100, 2, 2));
  const std::vector<std::string> violations = CheckTupleConservation(ledger);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("outside the ledger"), std::string::npos);
}

TEST(VerifyFailTest, DispatchesToInstalledHandler) {
  std::vector<std::string> reports;
  verify::FailureHandler previous = verify::SetVerifyFailureHandler(
      [&reports](const std::string& m) { reports.push_back(m); });
  verify::Fail("synthetic violation");
  verify::SetVerifyFailureHandler(previous);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0], "synthetic violation");
}

/// Installs a collecting handler on the recorder for the test's lifetime
/// and restores the previous handler (plus a clean edge graph) after.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockOrderRecorder::Instance().ResetGraph();
    previous_ = LockOrderRecorder::Instance().SetFailureHandler(
        [this](const std::string& m) { reports_.push_back(m); });
  }
  void TearDown() override {
    LockOrderRecorder::Instance().SetFailureHandler(previous_);
    LockOrderRecorder::Instance().ResetGraph();
  }

  std::vector<std::string> reports_;
  verify::FailureHandler previous_;
};

TEST_F(LockOrderTest, ConsistentOrderIsClean) {
  LockOrderRecorder& rec = LockOrderRecorder::Instance();
  int a = 0;
  int b = 0;
  for (int round = 0; round < 3; ++round) {
    rec.OnAcquire(&a, "order_test::A");
    rec.OnAcquire(&b, "order_test::B");
    rec.OnRelease(&b);
    rec.OnRelease(&a);
  }
  EXPECT_TRUE(reports_.empty());
  EXPECT_GE(rec.EdgeCount(), 1u);  // The A -> B edge, recorded once.
}

TEST_F(LockOrderTest, InvertedOrderClosesCycle) {
  LockOrderRecorder& rec = LockOrderRecorder::Instance();
  int a = 0;
  int b = 0;
  rec.OnAcquire(&a, "order_test::A");
  rec.OnAcquire(&b, "order_test::B");
  rec.OnRelease(&b);
  rec.OnRelease(&a);
  ASSERT_TRUE(reports_.empty());
  // The reverse interleaving: B held while acquiring A. Classic ABBA.
  rec.OnAcquire(&b, "order_test::B");
  rec.OnAcquire(&a, "order_test::A");
  rec.OnRelease(&a);
  rec.OnRelease(&b);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("order_test::A"), std::string::npos)
      << reports_[0];
  EXPECT_NE(reports_[0].find("order_test::B"), std::string::npos)
      << reports_[0];
}

TEST_F(LockOrderTest, TransitiveCycleIsDetected) {
  // A -> B and B -> C recorded; C -> A closes the three-class cycle even
  // though no direct A/C inversion ever happens.
  LockOrderRecorder& rec = LockOrderRecorder::Instance();
  int a = 0;
  int b = 0;
  int c = 0;
  rec.OnAcquire(&a, "tri::A");
  rec.OnAcquire(&b, "tri::B");
  rec.OnRelease(&b);
  rec.OnRelease(&a);
  rec.OnAcquire(&b, "tri::B");
  rec.OnAcquire(&c, "tri::C");
  rec.OnRelease(&c);
  rec.OnRelease(&b);
  ASSERT_TRUE(reports_.empty());
  rec.OnAcquire(&c, "tri::C");
  rec.OnAcquire(&a, "tri::A");
  rec.OnRelease(&a);
  rec.OnRelease(&c);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("tri::A -> tri::B -> tri::C"),
            std::string::npos)
      << reports_[0];
}

TEST_F(LockOrderTest, SameClassNestingIsDetected) {
  // Two distinct instances of the same lock class held at once: there is
  // no defined order inside a class, so this is flagged even without a
  // recorded inversion.
  LockOrderRecorder& rec = LockOrderRecorder::Instance();
  int a = 0;
  int b = 0;
  rec.OnAcquire(&a, "same::L");
  rec.OnAcquire(&b, "same::L");
  rec.OnRelease(&b);
  rec.OnRelease(&a);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("same-class nesting"), std::string::npos)
      << reports_[0];
}

TEST_F(LockOrderTest, RealMutexCycleIsDetected) {
  if (!DBS3_VERIFY_ENABLED) {
    GTEST_SKIP() << "Mutex recorder hooks compiled out (DBS3_VERIFY off)";
  }
  Mutex x("verify_test::X");
  Mutex y("verify_test::Y");
  x.Lock();
  y.Lock();
  y.Unlock();
  x.Unlock();
  ASSERT_TRUE(reports_.empty());
  y.Lock();
  x.Lock();
  x.Unlock();
  y.Unlock();
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("verify_test::X"), std::string::npos)
      << reports_[0];
}

TEST(VerifyEndToEndTest, RealQueryConservesTuplesAndLockOrder) {
  if (!DBS3_VERIFY_ENABLED) {
    GTEST_SKIP() << "Engine verify hooks compiled out (DBS3_VERIFY off)";
  }
  // Run a real skewed associative join with every hook armed and a
  // collecting handler installed: any ledger imbalance, queue-invariant
  // breach, or lock-order cycle in the engine lands in `reports`.
  std::vector<std::string> reports;
  verify::FailureHandler previous = verify::SetVerifyFailureHandler(
      [&reports](const std::string& m) { reports.push_back(m); });
  {
    Database db(4);
    SkewSpec spec;
    spec.a_cardinality = 4'000;
    spec.b_cardinality = 400;
    spec.degree = 16;
    spec.theta = 0.7;
    ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
    QueryOptions options;
    options.schedule.total_threads = 6;
    options.schedule.processors = 8;
    options.schedule.queue_capacity = 8;  // Real back-pressure.
    auto r = RunAssocJoin(db, "B", "key", "A", "key", options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().result->cardinality(), 4'000u);
  }
  verify::SetVerifyFailureHandler(previous);
  EXPECT_TRUE(reports.empty())
      << "verify layer reported: " << reports.front();
}

}  // namespace
}  // namespace dbs3

// Tests for dynamic repartitioning (the paper's raise of the degree of
// partitioning) and for bushy plans (a pipelined operation fed by several
// producers — inter-operation parallelism).

#include <gtest/gtest.h>

#include "dbs3/database.h"
#include "dbs3/query.h"
#include "engine/executor.h"
#include "storage/skew.h"

namespace dbs3 {
namespace {

TEST(RepartitionTest, PreservesTuplesAndRouting) {
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 200;
  spec.degree = 10;
  spec.theta = 0.8;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  auto repart = db.value().a->Repartitioned(40);
  ASSERT_TRUE(repart.ok()) << repart.status().ToString();
  const Relation& r = *repart.value();
  EXPECT_EQ(r.degree(), 40u);
  EXPECT_EQ(r.cardinality(), 2'000u);
  // Same multiset of tuples.
  std::vector<Tuple> before = db.value().a->Scan();
  std::vector<Tuple> after = r.Scan();
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  // Routing invariant: fragment i holds keys congruent to i mod 40.
  for (size_t f = 0; f < 40; ++f) {
    for (const Tuple& t : r.fragment(f).tuples) {
      EXPECT_EQ(t.at(0).AsInt() % 40, static_cast<int64_t>(f));
    }
  }
}

TEST(RepartitionTest, HigherDegreeShrinksLargestFragment) {
  SkewSpec spec;
  spec.a_cardinality = 10'000;
  spec.b_cardinality = 1'000;
  spec.degree = 10;
  spec.theta = 1.0;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  auto max_card = [](const Relation& r) {
    uint64_t m = 0;
    for (uint64_t c : r.FragmentCardinalities()) m = std::max(m, c);
    return m;
  };
  const uint64_t before = max_card(*db.value().a);
  auto repart = db.value().a->Repartitioned(100);
  ASSERT_TRUE(repart.ok());
  // The dominant fragment splits across the finer partitioning: the
  // sequential unit of work shrinks (what makes LPT effective again).
  EXPECT_LT(max_card(*repart.value()), before);
}

TEST(RepartitionTest, RejectsZeroDegree) {
  Relation r("r", SkewSchema(), 0, Partitioner(PartitionKind::kModulo, 2));
  EXPECT_FALSE(r.Repartitioned(0).ok());
}

TEST(RepartitionTest, RepartitionedJoinStillCorrect) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 6;
  spec.theta = 0.9;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  // Raise both degrees 6 -> 60 and join at the finer granularity.
  auto a60 = db.relation("A").value()->Repartitioned(60);
  auto b60 = db.relation("B").value()->Repartitioned(60);
  ASSERT_TRUE(a60.ok() && b60.ok());
  a60.value()->Repartitioned(1).value();  // Exercise down-partitioning too.
  auto a = std::move(a60).value();
  auto b = std::move(b60).value();
  // Rename to register alongside the originals.
  auto fine_a = std::make_unique<Relation>("A60", a->schema(), 0,
                                           a->partitioner());
  auto fine_b = std::make_unique<Relation>("B60", b->schema(), 0,
                                           b->partitioner());
  for (size_t f = 0; f < 60; ++f) {
    for (const Tuple& t : a->fragment(f).tuples) fine_a->AppendToFragment(f, t);
    for (const Tuple& t : b->fragment(f).tuples) fine_b->AppendToFragment(f, t);
  }
  ASSERT_TRUE(db.AddRelation(std::move(fine_a)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(fine_b)).ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto coarse = RunIdealJoin(db, "A", "key", "B", "key", options);
  auto fine = RunIdealJoin(db, "A60", "key", "B60", "key", options);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_EQ(fine.value().result->cardinality(),
            coarse.value().result->cardinality());
}

TEST(BushyPlanTest, TwoProducersFeedOneConsumer) {
  // Union-style plan: two triggered scans over different relations feed the
  // same store (inter-operation parallelism with a shared consumer).
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 400;
  spec.degree = 8;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  Relation* a = db.relation("A").value();
  Relation* b = db.relation("B").value();

  Relation result("union", SkewSchema(), 0,
                  Partitioner(PartitionKind::kModulo, 8));
  Plan plan;
  const size_t scan_a =
      plan.AddNode("scan-a", ActivationMode::kTriggered, 8,
                   std::make_unique<FilterLogic>(a, MatchAll()));
  const size_t scan_b =
      plan.AddNode("scan-b", ActivationMode::kTriggered, 8,
                   std::make_unique<FilterLogic>(b, MatchAll()));
  const size_t store = plan.AddNode(
      "store", ActivationMode::kPipelined, 8,
      std::make_unique<StoreLogic>(&result));
  ASSERT_TRUE(plan.ConnectSameInstance(scan_a, store).ok());
  ASSERT_TRUE(plan.ConnectSameInstance(scan_b, store).ok());
  for (size_t i = 0; i < plan.num_nodes(); ++i) plan.params(i).threads = 2;

  Executor executor;
  auto run = executor.Run(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(result.cardinality(), 1'400u);
  // The store only closed after BOTH producers finished.
  uint64_t store_processed = 0;
  for (uint64_t c : run.value().op_stats[2].per_thread_processed) {
    store_processed += c;
  }
  EXPECT_EQ(store_processed, 1'400u);
}

TEST(BushyPlanTest, TwoChainsIntoPipelinedJoin) {
  // A pipelined join probed by the concatenation of two filtered streams.
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 200;
  spec.degree = 10;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  Relation* a = db.relation("A").value();
  Relation* b = db.relation("B").value();

  Relation result("res", Schema::Concat(b->schema(), a->schema()), 0,
                  Partitioner(PartitionKind::kModulo, 10));
  Plan plan;
  // Two halves of B' by payload parity, probing A.
  const size_t even = plan.AddNode(
      "scan-even", ActivationMode::kTriggered, 10,
      std::make_unique<FilterLogic>(
          b, [](const Tuple& t) { return t.at(1).AsInt() % 2 == 0; }, 0.5));
  const size_t odd = plan.AddNode(
      "scan-odd", ActivationMode::kTriggered, 10,
      std::make_unique<FilterLogic>(
          b, [](const Tuple& t) { return t.at(1).AsInt() % 2 != 0; }, 0.5));
  const size_t join = plan.AddNode(
      "join", ActivationMode::kPipelined, 10,
      std::make_unique<PipelinedJoinLogic>(a, 0, 0, JoinAlgorithm::kHash));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, 10,
                   std::make_unique<StoreLogic>(&result));
  ASSERT_TRUE(plan.ConnectByColumn(even, join, 0, a->partitioner()).ok());
  ASSERT_TRUE(plan.ConnectByColumn(odd, join, 0, a->partitioner()).ok());
  ASSERT_TRUE(plan.ConnectSameInstance(join, store).ok());
  for (size_t i = 0; i < plan.num_nodes(); ++i) plan.params(i).threads = 2;

  Executor executor;
  auto run = executor.Run(plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Every A tuple matches exactly one B' tuple, reached via one of the two
  // streams: the union of probes covers all of B'.
  EXPECT_EQ(result.cardinality(), 2'000u);
}

}  // namespace
}  // namespace dbs3

#include "storage/skew.h"

#include <map>

#include <gtest/gtest.h>

#include "common/zipf.h"
#include "dbs3/database.h"
#include "dbs3/query.h"

namespace dbs3 {
namespace {

TEST(SkewTest, CardinalitiesMatchSpec) {
  SkewSpec spec;
  spec.a_cardinality = 10'000;
  spec.b_cardinality = 1'000;
  spec.degree = 50;
  spec.theta = 0.7;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value().a->cardinality(), 10'000u);
  EXPECT_EQ(db.value().b->cardinality(), 1'000u);
  EXPECT_EQ(db.value().a->degree(), 50u);
  EXPECT_EQ(db.value().b->degree(), 50u);
}

TEST(SkewTest, FragmentCardinalitiesFollowZipf) {
  SkewSpec spec;
  spec.a_cardinality = 100'000;
  spec.b_cardinality = 10'000;
  spec.degree = 200;
  spec.theta = 1.0;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  const std::vector<uint64_t> expected = ZipfCounts(100'000, 200, 1.0);
  EXPECT_EQ(db.value().a->FragmentCardinalities(), expected);
  // The paper anchor: largest fragment is ~34x the mean at Zipf 1 / 200
  // fragments.
  EXPECT_NEAR(static_cast<double>(expected.front()) / 500.0, 34.0, 0.5);
}

TEST(SkewTest, BFragmentsAreUniform) {
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 1'000;
  spec.degree = 40;
  spec.theta = 0.9;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  for (uint64_t c : db.value().b->FragmentCardinalities()) {
    EXPECT_EQ(c, 25u);
  }
}

TEST(SkewTest, CoPartitionedByConstruction) {
  SkewSpec spec;
  spec.a_cardinality = 5'000;
  spec.b_cardinality = 500;
  spec.degree = 25;
  spec.theta = 0.5;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  // Fragment f of both relations holds keys congruent to f mod degree.
  for (size_t f = 0; f < 25; ++f) {
    for (const Tuple& t : db.value().a->fragment(f).tuples) {
      EXPECT_EQ(t.at(0).AsInt() % 25, static_cast<int64_t>(f));
    }
    for (const Tuple& t : db.value().b->fragment(f).tuples) {
      EXPECT_EQ(t.at(0).AsInt() % 25, static_cast<int64_t>(f));
    }
  }
}

TEST(SkewTest, EveryAKeyHasExactlyOneBMatch) {
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 30;
  spec.theta = 0.8;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  std::map<int64_t, int> b_keys;
  for (const Tuple& t : db.value().b->Scan()) ++b_keys[t.at(0).AsInt()];
  for (const auto& [key, count] : b_keys) EXPECT_EQ(count, 1);
  for (const Tuple& t : db.value().a->Scan()) {
    EXPECT_EQ(b_keys.count(t.at(0).AsInt()), 1u)
        << "A key " << t.at(0).AsInt() << " has no B' match";
  }
}

TEST(SkewTest, DeterministicBySeed) {
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 200;
  spec.degree = 10;
  spec.theta = 0.6;
  spec.seed = 5;
  auto a = BuildSkewedDatabase(spec);
  auto b = BuildSkewedDatabase(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().a->Scan(), b.value().a->Scan());
  spec.seed = 6;
  auto c = BuildSkewedDatabase(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().a->Scan(), c.value().a->Scan());
}

TEST(SkewTest, ValidatesSpec) {
  SkewSpec spec;
  spec.degree = 0;
  EXPECT_FALSE(BuildSkewedDatabase(spec).ok());
  spec.degree = 10;
  spec.theta = 1.5;
  EXPECT_FALSE(BuildSkewedDatabase(spec).ok());
  spec.theta = 0.5;
  spec.b_cardinality = 5;  // Fewer B tuples than fragments.
  auto r = BuildSkewedDatabase(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SkewTest, LptJoinUnderHighSkewIsCorrectAndDropsNothing) {
  // End-to-end regression for the live-LPT secondary scan: a triggered join
  // over a Zipf-1 database, LPT forced, with more threads than the heavy
  // fragments. The stealing threads consult live queue sizes (the static
  // estimate order goes stale as queues drain), and the run must stay
  // exact: every A tuple joins exactly once, nothing dropped.
  Database db(4);
  SkewSpec spec;
  spec.a_cardinality = 4'000;
  spec.b_cardinality = 400;
  spec.degree = 20;
  spec.theta = 1.0;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "Bp").ok());

  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  options.schedule.force_strategy = Strategy::kLpt;
  auto result = RunIdealJoin(db, "A", "key", "Bp", "key", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().result->cardinality(), 4'000u);
  EXPECT_EQ(result.value().execution.units_dropped, 0u);
  for (const Strategy s : result.value().schedule.strategies) {
    EXPECT_EQ(s, Strategy::kLpt);
  }
  // The shared pool actually load-balanced: batches were acquired, split
  // between main and stolen queues, and the per-thread tuple counters of
  // the join account for all 20 triggers.
  const OperationStats& join = result.value().execution.op_stats[0];
  EXPECT_GT(join.main_queue_acquisitions + join.secondary_queue_acquisitions,
            0u);
  uint64_t triggers = 0;
  for (uint64_t c : join.per_thread_processed) triggers += c;
  EXPECT_EQ(triggers, 20u);
}

TEST(SkewTest, ThetaZeroIsUnskewed) {
  SkewSpec spec;
  spec.a_cardinality = 4'000;
  spec.b_cardinality = 400;
  spec.degree = 40;
  spec.theta = 0.0;
  auto db = BuildSkewedDatabase(spec);
  ASSERT_TRUE(db.ok());
  for (uint64_t c : db.value().a->FragmentCardinalities()) EXPECT_EQ(c, 100u);
}

}  // namespace
}  // namespace dbs3

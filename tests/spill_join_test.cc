// Differential tests of the memory-bounded operators: the spilling hybrid
// hash join and the spilling group-by must produce results identical to
// their unconstrained in-memory paths under any budget, including budgets
// small enough to force recursive repartitioning and the block nested-loop
// fallback. Also pins the cancellation contract: a torn-down logic returns
// its quota charges and leaks no spill-file handles.

#include "engine/spill_join.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_quota.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "dbs3/database.h"
#include "engine/blocking_operators.h"
#include "engine/operators.h"
#include "esql/planner.h"
#include "storage/spill.h"

namespace dbs3 {
namespace {

class CapturingEmitter : public Emitter {
 public:
  void Emit(size_t producer_instance, Tuple tuple) override {
    std::lock_guard<std::mutex> lock(mu_);
    (void)producer_instance;
    emitted_.push_back(std::move(tuple));
  }
  std::vector<Tuple> take_sorted() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Tuple> out = std::move(emitted_);
    emitted_.clear();
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<Tuple> emitted_;
};

/// Degree-1 build relation with rows (key, 1000 + i).
std::unique_ptr<Relation> MakeInner(const std::vector<int64_t>& keys) {
  auto rel = std::make_unique<Relation>(
      "inner",
      Schema({{"k", ValueType::kInt64}, {"payload", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 1));
  int64_t i = 0;
  for (int64_t k : keys) {
    EXPECT_TRUE(rel->Insert(Tuple({Value(k), Value(1000 + i++)})).ok());
  }
  return rel;
}

std::vector<Tuple> MakeProbes(const std::vector<int64_t>& keys) {
  std::vector<Tuple> probes;
  int64_t i = 0;
  probes.reserve(keys.size());
  for (int64_t k : keys) {
    probes.push_back(Tuple({Value(k), Value(-(i++))}));
  }
  return probes;
}

/// Drives one logic through the executor's calling convention and returns
/// its sorted output. `quota` may be null (no accounting).
std::vector<Tuple> RunJoin(OperatorLogic& logic,
                           const std::vector<Tuple>& probes,
                           MemoryQuota* quota,
                           MetricsRegistry* metrics = nullptr) {
  ExecResources resources;
  resources.quota = quota;
  resources.metrics = metrics;
  logic.BindExecution(resources);
  EXPECT_TRUE(logic.Prepare(1).ok());
  CapturingEmitter out;
  for (const Tuple& p : probes) logic.OnData(0, Tuple(p), &out);
  logic.OnFinish(0, &out);
  EXPECT_TRUE(logic.error().ok()) << logic.error().ToString();
  return out.take_sorted();
}

class SpillJoinDifferentialTest : public ::testing::Test {
 protected:
  /// The unconstrained in-memory reference (the logic the planner uses
  /// when no budget is declared).
  std::vector<Tuple> Reference(const Relation* inner,
                               const std::vector<Tuple>& probes) {
    PipelinedJoinLogic reference(inner, 0, 0, JoinAlgorithm::kHash);
    return RunJoin(reference, probes, nullptr);
  }
};

TEST_F(SpillJoinDifferentialTest, UnboundedQuotaMatchesInMemoryJoin) {
  Rng rng(7);
  std::vector<int64_t> build_keys, probe_keys;
  for (int i = 0; i < 300; ++i) build_keys.push_back(rng.Range(0, 60));
  for (int i = 0; i < 500; ++i) probe_keys.push_back(rng.Range(0, 80));
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);
  const std::vector<Tuple> expected = Reference(inner.get(), probes);
  ASSERT_FALSE(expected.empty());

  MemoryQuota quota(0);  // Unlimited: tracks but never spills.
  SpillingHashJoinLogic join(inner.get(), 0, 0);
  EXPECT_EQ(RunJoin(join, probes, &quota), expected);
  EXPECT_EQ(quota.used(), 0u);  // Everything released after OnFinish.
  EXPECT_EQ(quota.high_water(), build_keys.size());  // Whole build charged.
}

TEST_F(SpillJoinDifferentialTest, TinyBudgetsSpillAndStayByteIdentical) {
  Rng rng(11);
  std::vector<int64_t> build_keys, probe_keys;
  for (int i = 0; i < 400; ++i) build_keys.push_back(rng.Range(0, 100));
  for (int i = 0; i < 600; ++i) probe_keys.push_back(rng.Range(0, 120));
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);
  const std::vector<Tuple> expected = Reference(inner.get(), probes);
  ASSERT_FALSE(expected.empty());

  const int64_t live_before = SpillFile::live_files();
  for (uint64_t budget : {uint64_t{1}, uint64_t{4}, uint64_t{32},
                          uint64_t{1'000'000}}) {
    MemoryQuota quota(budget);
    MetricsRegistry metrics;
    SpillingHashJoinLogic join(inner.get(), 0, 0);
    EXPECT_EQ(RunJoin(join, probes, &quota, &metrics), expected)
        << "budget=" << budget;
    EXPECT_EQ(quota.used(), 0u) << "budget=" << budget;
    // Forced-progress overshoot is bounded to O(1) units per instance.
    EXPECT_LE(quota.high_water(), budget + 2) << "budget=" << budget;
    MetricsSnapshot snap = metrics.Snapshot();
    if (budget < build_keys.size()) {
      EXPECT_GT(snap.counters["spill.bytes_written"], 0u)
          << "budget=" << budget;
    } else {
      EXPECT_EQ(snap.counters["spill.bytes_written"], 0u);
    }
  }
  EXPECT_EQ(SpillFile::live_files(), live_before);
}

TEST_F(SpillJoinDifferentialTest, HotKeySkewFallsBackToNestedLoop) {
  // Every build row shares one key: no rehash can ever split the spilled
  // partition, so the join must detect the non-split and finish through
  // the block nested-loop pass instead of recursing forever.
  std::vector<int64_t> build_keys(200, 7);
  std::vector<int64_t> probe_keys(50, 7);
  probe_keys.push_back(8);  // One non-matching probe.
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);
  const std::vector<Tuple> expected = Reference(inner.get(), probes);
  ASSERT_EQ(expected.size(), 200u * 50u);

  MemoryQuota quota(2);
  SpillingHashJoinLogic join(inner.get(), 0, 0);
  EXPECT_EQ(RunJoin(join, probes, &quota), expected);
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_LE(quota.high_water(), 2u + 2u);
}

TEST_F(SpillJoinDifferentialTest, ZipfSkewAcrossBudgets) {
  // Zipf-ish frequencies: key k appears ~N/(k+1) times on both sides —
  // a few very hot keys with a long tail, the paper's skew regime.
  std::vector<int64_t> build_keys, probe_keys;
  for (int64_t k = 0; k < 40; ++k) {
    for (int64_t c = 0; c < 120 / (k + 1) + 1; ++c) build_keys.push_back(k);
  }
  for (int64_t k = 0; k < 50; ++k) {
    for (int64_t c = 0; c < 200 / (k + 1) + 1; ++c) probe_keys.push_back(k);
  }
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);
  const std::vector<Tuple> expected = Reference(inner.get(), probes);
  ASSERT_FALSE(expected.empty());

  for (uint64_t budget : {uint64_t{3}, uint64_t{17}, uint64_t{64}}) {
    MemoryQuota quota(budget);
    SpillingHashJoinLogic join(inner.get(), 0, 0);
    EXPECT_EQ(RunJoin(join, probes, &quota), expected)
        << "budget=" << budget;
    EXPECT_EQ(quota.used(), 0u);
  }
}

TEST_F(SpillJoinDifferentialTest, LowFanoutForcesDeepRecursion) {
  // Fanout 2 with a 500-row build and budget 4 recurses several levels
  // before partitions fit; results must still be exact.
  Rng rng(23);
  std::vector<int64_t> build_keys, probe_keys;
  for (int i = 0; i < 500; ++i) build_keys.push_back(rng.Range(0, 250));
  for (int i = 0; i < 400; ++i) probe_keys.push_back(rng.Range(0, 250));
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);
  const std::vector<Tuple> expected = Reference(inner.get(), probes);

  SpillJoinOptions options;
  options.fanout = 2;
  options.max_recursion = 3;
  MemoryQuota quota(4);
  MetricsRegistry metrics;
  SpillingHashJoinLogic join(inner.get(), 0, 0, options);
  EXPECT_EQ(RunJoin(join, probes, &quota, &metrics), expected);
  EXPECT_GT(metrics.Snapshot().counters["spill.recursions"], 0u);
  EXPECT_EQ(quota.used(), 0u);
}

TEST_F(SpillJoinDifferentialTest,
       TeardownWithoutFinishReleasesQuotaAndFiles) {
  // A cancelled run skips OnFinish; destruction alone must return every
  // charged unit and close every spill file (they are unlinked from
  // birth, so closing is the whole cleanup).
  Rng rng(31);
  std::vector<int64_t> build_keys, probe_keys;
  for (int i = 0; i < 300; ++i) build_keys.push_back(rng.Range(0, 80));
  for (int i = 0; i < 200; ++i) probe_keys.push_back(rng.Range(0, 80));
  auto inner = MakeInner(build_keys);
  const std::vector<Tuple> probes = MakeProbes(probe_keys);

  const int64_t live_before = SpillFile::live_files();
  // A budget just under the build size: most partitions stay resident
  // (and hold charges) while at least one spills (and opens files).
  MemoryQuota quota(280);
  {
    SpillingHashJoinLogic join(inner.get(), 0, 0);
    ExecResources resources;
    resources.quota = &quota;
    join.BindExecution(resources);
    ASSERT_TRUE(join.Prepare(1).ok());
    CapturingEmitter out;
    // Build happens on first data; deferred probes open probe files.
    for (const Tuple& p : probes) join.OnData(0, Tuple(p), &out);
    EXPECT_GT(SpillFile::live_files(), live_before);  // Mid-spill state.
    EXPECT_GT(quota.used(), 0u);
    // No OnFinish: the dtor is the cancel path.
  }
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_EQ(SpillFile::live_files(), live_before);
}

// --------------------------------------------------------------- GroupBy

std::vector<Tuple> RunGroupBy(const std::vector<AggSpec>& aggs,
                              const std::vector<Tuple>& rows,
                              MemoryQuota* quota,
                              MetricsRegistry* metrics = nullptr) {
  GroupByLogic group(0, aggs);
  ExecResources resources;
  resources.quota = quota;
  resources.metrics = metrics;
  group.BindExecution(resources);
  EXPECT_TRUE(group.Prepare(1).ok());
  CapturingEmitter out;
  for (const Tuple& r : rows) group.OnData(0, Tuple(r), &out);
  group.OnFinish(0, &out);
  EXPECT_TRUE(group.error().ok()) << group.error().ToString();
  return out.take_sorted();
}

TEST(GroupBySpillTest, SpilledAggregationMatchesInMemory) {
  Rng rng(13);
  std::vector<Tuple> rows;
  for (int i = 0; i < 800; ++i) {
    rows.push_back(Tuple({Value(rng.Range(0, 70)),
                          Value(rng.Range(-50, 50))}));
  }
  const std::vector<AggSpec> aggs = {{AggKind::kCount, 0},
                                     {AggKind::kSum, 1},
                                     {AggKind::kMin, 1},
                                     {AggKind::kMax, 1}};
  const std::vector<Tuple> expected = RunGroupBy(aggs, rows, nullptr);
  ASSERT_FALSE(expected.empty());

  const int64_t live_before = SpillFile::live_files();
  for (uint64_t budget : {uint64_t{1}, uint64_t{5}, uint64_t{24}}) {
    MemoryQuota quota(budget);
    MetricsRegistry metrics;
    EXPECT_EQ(RunGroupBy(aggs, rows, &quota, &metrics), expected)
        << "budget=" << budget;
    EXPECT_EQ(quota.used(), 0u);
    EXPECT_GT(metrics.Snapshot().counters["spill.groupby_flushes"], 0u)
        << "budget=" << budget;
  }
  EXPECT_EQ(SpillFile::live_files(), live_before);
}

TEST(GroupBySpillTest, SentinelExtremaSurviveTheSpillPath) {
  // Groups whose min/max column only ever holds strings emit the sentinel
  // (empty string) on the in-memory path; spilled re-aggregation must
  // agree, which exercises the (accumulator, seen) partial encoding.
  std::vector<Tuple> rows;
  for (int64_t g = 0; g < 30; ++g) {
    for (int64_t i = 0; i < 20; ++i) {
      if (g % 3 == 0) {
        rows.push_back(Tuple({Value(g), Value(std::string("label"))}));
      } else {
        rows.push_back(Tuple({Value(g), Value(g * 10 + i)}));
      }
    }
  }
  const std::vector<AggSpec> aggs = {{AggKind::kMin, 1},
                                     {AggKind::kMax, 1},
                                     {AggKind::kCount, 0}};
  const std::vector<Tuple> expected = RunGroupBy(aggs, rows, nullptr);
  ASSERT_EQ(expected.size(), 30u);

  MemoryQuota quota(4);
  EXPECT_EQ(RunGroupBy(aggs, rows, &quota), expected);
  EXPECT_EQ(quota.used(), 0u);
}

TEST(GroupBySpillTest, TeardownWithoutFinishReleasesQuotaAndFiles) {
  const int64_t live_before = SpillFile::live_files();
  MemoryQuota quota(3);
  {
    GroupByLogic group(
        0, std::vector<AggSpec>{{AggKind::kCount, 0}, {AggKind::kSum, 1}});
    ExecResources resources;
    resources.quota = &quota;
    group.BindExecution(resources);
    ASSERT_TRUE(group.Prepare(1).ok());
    for (int64_t i = 0; i < 200; ++i) {
      group.OnData(0, Tuple({Value(i % 40), Value(i)}), nullptr);
    }
    EXPECT_GT(SpillFile::live_files(), live_before);
    EXPECT_GT(quota.used(), 0u);
  }
  EXPECT_EQ(quota.used(), 0u);
  EXPECT_EQ(SpillFile::live_files(), live_before);
}

// ---------------------------------------------------- End-to-end (ESQL)

TEST(SpillJoinEndToEndTest, BudgetedEsqlMatchesUnbudgetedAndBoundsMemory) {
  Database db(2);
  Rng rng(41);
  auto a = std::make_unique<Relation>(
      "A", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 4));
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(
        a->Insert(Tuple({Value(rng.Range(0, 200)), Value(rng.Range(0, 9))}))
            .ok());
  }
  auto b = std::make_unique<Relation>(
      "B", Schema({{"k", ValueType::kInt64}, {"g", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 4));
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        b->Insert(Tuple({Value(rng.Range(0, 200)), Value(rng.Range(0, 5))}))
            .ok());
  }
  ASSERT_TRUE(db.AddRelation(std::move(a)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(b)).ok());

  const std::string query =
      "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) "
      "FROM A JOIN B ON A.k = B.k GROUP BY g";
  EsqlOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;

  auto run = [&](uint64_t budget) {
    options.memory_units = budget;
    auto result = ExecuteEsql(db, query, options);
    EXPECT_TRUE(result.ok()) << "budget=" << budget << " -> "
                             << result.status().ToString();
    std::vector<Tuple> rows;
    if (result.ok()) rows = result.value().result->Scan();
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  const std::vector<Tuple> unbudgeted = run(0);
  ASSERT_FALSE(unbudgeted.empty());
  for (uint64_t budget : {uint64_t{8}, uint64_t{64}, uint64_t{4096}}) {
    EXPECT_EQ(run(budget), unbudgeted) << "budget=" << budget;
  }

  // The spill activity rolled up into the database's runtime registry.
  MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GT(snap.counters["spill.bytes_written"], 0u);
  EXPECT_GT(snap.series["runtime.quota_high_water_units"].samples, 0u);
}

TEST(SpillJoinEndToEndTest, BudgetedSubmitReportsBoundedHighWater) {
  Database db(2);
  auto a = std::make_unique<Relation>(
      "A", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 2));
  auto b = std::make_unique<Relation>(
      "B", Schema({{"k", ValueType::kInt64}, {"g", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 2));
  for (int64_t i = 0; i < 1'000; ++i) {
    ASSERT_TRUE(a->Insert(Tuple({Value(i % 150), Value(i)})).ok());
  }
  for (int64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(b->Insert(Tuple({Value(i % 150), Value(i % 7)})).ok());
  }
  ASSERT_TRUE(db.AddRelation(std::move(a)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(b)).ok());

  const int64_t live_before = SpillFile::live_files();
  EsqlOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.memory_units = 16;
  QueryHandle handle =
      SubmitEsql(db, "SELECT * FROM A JOIN B ON A.k = B.k", options);
  auto taken = handle.Take();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();

  const QueryRunStats stats = handle.stats();
  EXPECT_GT(stats.quota_high_water_units, 0u);
  // Enforced: the unconstrained working set (the 400-tuple build side)
  // would dwarf this. Slack covers the bounded per-instance overshoot of
  // the forced-progress charges.
  EXPECT_LE(stats.quota_high_water_units, options.memory_units + 16);

  // ESQL's sort-free plans finish with no residual quota: every phase's
  // spill files are gone once the query completes.
  EXPECT_EQ(SpillFile::live_files(), live_before);
}

TEST(SpillJoinEndToEndTest, SortOverTinyBudgetFailsWithResourceExhausted) {
  Database db(2);
  auto r = std::make_unique<Relation>(
      "r", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}), 0,
      Partitioner(PartitionKind::kModulo, 2));
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(r->Insert(Tuple({Value(i), Value(i % 13)})).ok());
  }
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());

  EsqlOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  options.memory_units = 4;  // Sort has no spill path: must fail fast.
  auto result = ExecuteEsql(db, "SELECT * FROM r ORDER BY v", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // And with room it succeeds.
  options.memory_units = 4'096;
  auto ok = ExecuteEsql(db, "SELECT * FROM r ORDER BY v", options);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace dbs3

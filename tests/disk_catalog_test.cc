#include "storage/disk.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace dbs3 {
namespace {

Schema KeyOnly() { return Schema({{"key", ValueType::kInt64}}); }

std::unique_ptr<Relation> MakeRelation(const std::string& name,
                                       size_t degree, uint64_t tuples) {
  auto r = std::make_unique<Relation>(
      name, KeyOnly(), 0, Partitioner(PartitionKind::kModulo, degree));
  for (uint64_t k = 0; k < tuples; ++k) {
    EXPECT_TRUE(r->Insert(Tuple({Value(static_cast<int64_t>(k))})).ok());
  }
  return r;
}

TEST(DiskArrayTest, RoundRobinPlacementIsBalanced) {
  DiskArray disks(4);
  auto r = MakeRelation("R", 16, 160);
  disks.Place(*r);
  EXPECT_EQ(disks.FragmentCountSpread(), 0u);  // 16 % 4 == 0.
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(disks.disk(d).fragments.size(), 4u);
  }
  // Every fragment got stamped with its disk.
  for (size_t f = 0; f < r->degree(); ++f) {
    EXPECT_EQ(r->fragment(f).disk_id, static_cast<int>(f % 4));
  }
}

TEST(DiskArrayTest, SpreadAtMostOneWhenNotDivisible) {
  DiskArray disks(4);
  auto r = MakeRelation("R", 10, 10);
  disks.Place(*r);
  EXPECT_LE(disks.FragmentCountSpread(), 1u);
}

TEST(DiskArrayTest, DegreeCanExceedDiskCount) {
  // The paper's point: the degree of partitioning is independent of the
  // number of disks.
  DiskArray disks(2);
  auto r = MakeRelation("R", 200, 400);
  disks.Place(*r);
  EXPECT_EQ(disks.disk(0).fragments.size() + disks.disk(1).fragments.size(),
            200u);
  EXPECT_LE(disks.FragmentCountSpread(), 1u);
}

TEST(DiskArrayTest, ConsecutiveRelationsInterleave) {
  DiskArray disks(4);
  auto r1 = MakeRelation("R1", 3, 3);  // Disks 0,1,2.
  auto r2 = MakeRelation("R2", 3, 3);  // Continues at disk 3,0,1.
  disks.Place(*r1);
  disks.Place(*r2);
  EXPECT_EQ(r2->fragment(0).disk_id, 3);
  EXPECT_EQ(r2->fragment(1).disk_id, 0);
}

TEST(DiskArrayTest, BytesAttributedProportionally) {
  DiskArray disks(2);
  auto r = MakeRelation("R", 2, 100);
  disks.Place(*r);
  const uint64_t total = disks.disk(0).bytes + disks.disk(1).bytes;
  EXPECT_GT(total, 0u);
  EXPECT_NEAR(static_cast<double>(disks.disk(0).bytes),
              static_cast<double>(disks.disk(1).bytes),
              static_cast<double>(total) * 0.05);
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(MakeRelation("A", 2, 4)).ok());
  ASSERT_TRUE(catalog.Add(MakeRelation("B", 2, 4)).ok());
  EXPECT_EQ(catalog.size(), 2u);
  auto a = catalog.Get("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value()->name(), "A");
  EXPECT_TRUE(catalog.Drop("A").ok());
  EXPECT_FALSE(catalog.Get("A").ok());
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(MakeRelation("A", 2, 0)).ok());
  const Status s = catalog.Add(MakeRelation("A", 4, 0));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropMissingIsNotFound) {
  Catalog catalog;
  EXPECT_EQ(catalog.Drop("nope").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, NamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(MakeRelation("zeta", 1, 0)).ok());
  ASSERT_TRUE(catalog.Add(MakeRelation("alpha", 1, 0)).ok());
  const std::vector<std::string> names = catalog.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(CatalogTest, PointersStableAcrossAdds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(MakeRelation("A", 2, 4)).ok());
  Relation* a = catalog.Get("A").value();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(catalog.Add(MakeRelation("R" + std::to_string(i), 1, 1)).ok());
  }
  EXPECT_EQ(catalog.Get("A").value(), a);
}

}  // namespace
}  // namespace dbs3

#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dbs3 {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.05);
  }
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, RangeSingleton) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Range(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // Compiles and runs.
  EXPECT_EQ(v.size(), 5u);
}

TEST(RngTest, SplitMix64AdvancesState) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace dbs3

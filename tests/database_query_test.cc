#include "dbs3/database.h"

#include <gtest/gtest.h>

#include "dbs3/query.h"

namespace dbs3 {
namespace {

TEST(DatabaseTest, CreateWisconsinRegistersRelation) {
  Database db(4);
  WisconsinOptions opt;
  opt.cardinality = 1'000;
  opt.degree = 8;
  ASSERT_TRUE(db.CreateWisconsin("tenk", opt).ok());
  auto rel = db.relation("tenk");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value()->cardinality(), 1'000u);
  // Fragments were placed on disks.
  for (size_t f = 0; f < rel.value()->degree(); ++f) {
    EXPECT_GE(rel.value()->fragment(f).disk_id, 0);
    EXPECT_LT(rel.value()->fragment(f).disk_id, 4);
  }
}

TEST(DatabaseTest, CreateSkewedPairUsesGivenNames) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 1'000;
  spec.b_cardinality = 100;
  spec.degree = 10;
  spec.theta = 0.5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "big", "small").ok());
  ASSERT_TRUE(db.relation("big").ok());
  ASSERT_TRUE(db.relation("small").ok());
  EXPECT_EQ(db.relation("big").value()->cardinality(), 1'000u);
  EXPECT_EQ(db.relation("small").value()->cardinality(), 100u);
  EXPECT_FALSE(db.relation("A").ok());  // Generator names not leaked.
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 10;
  opt.degree = 2;
  ASSERT_TRUE(db.CreateWisconsin("r", opt).ok());
  EXPECT_EQ(db.CreateWisconsin("r", opt).code(),
            StatusCode::kAlreadyExists);
}

TEST(QueryTest, UnknownRelationFails) {
  Database db(2);
  QueryOptions options;
  auto r = RunIdealJoin(db, "nope", "a", "also_nope", "b", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, UnknownColumnFails) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 100;
  spec.b_cardinality = 50;
  spec.degree = 5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  auto r = RunIdealJoin(db, "A", "no_such_column", "B", "key", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(QueryTest, AssocJoinRequiresInnerPartitionedOnJoinColumn) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 100;
  spec.b_cardinality = 50;
  spec.degree = 5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  // "payload" is not the partition column of A.
  auto r = RunAssocJoin(db, "B", "key", "A", "payload", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryTest, WisconsinSelfJoinOnUnique1) {
  // Join tenk with itself via unique1 (a key): every tuple matches once.
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 2'000;
  opt.degree = 10;
  opt.partition_kind = PartitionKind::kHash;
  ASSERT_TRUE(db.CreateWisconsin("tenk1", opt).ok());
  opt.seed = 77;  // Different permutation, same key set.
  ASSERT_TRUE(db.CreateWisconsin("tenk2", opt).ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 4;
  auto r = RunIdealJoin(db, "tenk1", "unique1", "tenk2", "unique1", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 2'000u);
  // Join output schema is the concatenation with collision prefixes.
  EXPECT_TRUE(r.value().result->schema().IndexOf("r_unique1").ok());
}

TEST(QueryTest, SelectivityOnePercentColumn) {
  Database db(2);
  WisconsinOptions opt;
  opt.cardinality = 10'000;
  opt.degree = 10;
  ASSERT_TRUE(db.CreateWisconsin("tenk", opt).ok());
  const size_t col =
      db.relation("tenk").value()->schema().IndexOf("onePercent").value();
  QueryOptions options;
  options.schedule.total_threads = 2;
  options.schedule.processors = 2;
  auto r = RunSelect(db, "tenk", ColumnEquals(col, Value(int64_t{7})), 0.01,
                     options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().result->cardinality(), 100u);  // 1% of 10K.
}

TEST(QueryTest, ScheduleReportExposed) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 2'000;
  spec.b_cardinality = 200;
  spec.degree = 8;
  spec.theta = 1.0;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 4;
  options.schedule.processors = 8;
  options.algorithm = JoinAlgorithm::kNestedLoop;
  auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
  ASSERT_TRUE(r.ok());
  // The skewed triggered join was given LPT by step 4.
  EXPECT_EQ(r.value().schedule.strategies[0], Strategy::kLpt);
  EXPECT_EQ(r.value().schedule.total_threads, 4u);
  EXPECT_GT(r.value().execution.seconds, 0.0);
}

TEST(QueryTest, ResultNameHonored) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 100;
  spec.b_cardinality = 50;
  spec.degree = 5;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.result_name = "join_output";
  auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result->name(), "join_output");
  // The result can be registered back into the database.
  ASSERT_TRUE(db.AddRelation(std::move(r.value().result)).ok());
  EXPECT_TRUE(db.relation("join_output").ok());
}

TEST(QueryTest, AllJoinAlgorithmsAgree) {
  Database db(2);
  SkewSpec spec;
  spec.a_cardinality = 3'000;
  spec.b_cardinality = 300;
  spec.degree = 12;
  spec.theta = 0.7;
  ASSERT_TRUE(db.CreateSkewedPair(spec, "A", "B").ok());
  QueryOptions options;
  options.schedule.total_threads = 3;
  options.schedule.processors = 4;
  uint64_t cardinality[3];
  int i = 0;
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kNestedLoop, JoinAlgorithm::kHash,
        JoinAlgorithm::kTempIndex}) {
    options.algorithm = algo;
    auto r = RunIdealJoin(db, "A", "key", "B", "key", options);
    ASSERT_TRUE(r.ok()) << JoinAlgorithmName(algo);
    cardinality[i++] = r.value().result->cardinality();
  }
  EXPECT_EQ(cardinality[0], 3'000u);
  EXPECT_EQ(cardinality[0], cardinality[1]);
  EXPECT_EQ(cardinality[1], cardinality[2]);
}

}  // namespace
}  // namespace dbs3

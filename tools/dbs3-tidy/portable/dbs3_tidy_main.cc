// dbs3-tidy, portable edition: runs the five DBS3 invariant checks over a
// set of C++ sources and prints clang-tidy-style diagnostics.
//
//   dbs3_tidy [--checks=a,b] [--list-checks] path [path ...]
//
// A directory argument is scanned recursively for *.h / *.cc. Exit status:
// 0 clean, 1 findings, 2 usage/IO error. All files given on one invocation
// are analyzed as a single corpus — pass headers together with their .cc
// files so dbs3-guarded-member-init can resolve out-of-line constructor
// init lists.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tidy_checks.h"

namespace {

void Usage(std::ostream& os) {
  os << "usage: dbs3_tidy [--checks=name,name] [--list-checks] "
        "path [path ...]\n";
}

/// Expands a directory argument to its *.h / *.cc files, sorted so runs
/// are deterministic; a plain file passes through unchanged.
std::vector<std::string> Expand(const std::string& arg) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(arg, ec)) return {arg};
  std::vector<std::string> out;
  for (fs::recursive_directory_iterator it(arg, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") out.push_back(it->path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> enabled;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const std::string& name : dbs3_tidy::AllCheckNames()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (arg.rfind("--checks=", 0) == 0) {
      std::istringstream names(arg.substr(9));
      std::string name;
      while (std::getline(names, name, ',')) {
        if (!name.empty()) enabled.insert(name);
      }
      continue;
    }
    if (arg == "-h" || arg == "--help") {
      Usage(std::cout);
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dbs3_tidy: unknown option '" << arg << "'\n";
      Usage(std::cerr);
      return 2;
    }
    for (std::string& path : Expand(arg)) paths.push_back(std::move(path));
  }
  if (paths.empty()) {
    Usage(std::cerr);
    return 2;
  }

  std::vector<dbs3_tidy::TidySource> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string error;
    dbs3_tidy::TidySource src = dbs3_tidy::LoadSource(path, &error);
    if (!error.empty()) {
      std::cerr << "dbs3_tidy: " << error << "\n";
      return 2;
    }
    sources.push_back(std::move(src));
  }

  const std::vector<dbs3_tidy::Diag> diags =
      dbs3_tidy::RunChecks(sources, enabled);
  for (const dbs3_tidy::Diag& d : diags) {
    std::cout << d.file << ":" << d.line << ": warning: " << d.message
              << " [" << d.check << "]\n";
  }
  std::cerr << "dbs3_tidy: " << sources.size() << " file(s), "
            << diags.size() << " finding(s)\n";
  return diags.empty() ? 0 : 1;
}

#ifndef DBS3_TOOLS_TIDY_PORTABLE_TIDY_SOURCE_H_
#define DBS3_TOOLS_TIDY_PORTABLE_TIDY_SOURCE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

// Tokenized view of one C++ source file, the input of the portable
// dbs3-tidy checks (tools/dbs3-tidy/portable/tidy_checks.h).
//
// This is deliberately NOT a C++ parser: the portable engine exists so the
// engine's invariants are enforceable in environments without clang-tidy
// dev headers (the plugin under ../plugin/ is the full-fidelity
// implementation). The lexer strips comments and literals exactly, records
// NOLINT suppressions, and matches bracket pairs; the checks work on that
// token stream with scope heuristics tuned to this codebase's style.

namespace dbs3_tidy {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;
  int line = 0;
};

/// One diagnostic: `check` in kebab-case (e.g. "dbs3-quota-pairing").
struct Diag {
  std::string file;
  int line = 0;
  std::string check;
  std::string message;
};

class TidySource {
 public:
  /// Tokenizes `content` (as file `path`). Comments, string/char literals
  /// and preprocessor directives produce no code tokens (strings shrink to
  /// one kString token); NOLINT / NOLINTNEXTLINE comments are recorded.
  TidySource(std::string path, const std::string& content);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return tokens_; }

  /// Index of the bracket matching tokens()[i] (for '(', ')', '{', '}',
  /// '[', ']'), or npos when unbalanced.
  size_t MatchingBracket(size_t i) const;

  /// True when `check` is suppressed on `line` by a NOLINT(check) or a
  /// NOLINTNEXTLINE(check) on the preceding line. A bare NOLINT (no list)
  /// suppresses every check.
  bool IsSuppressed(int line, const std::string& check) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  void Tokenize(const std::string& content);
  void MatchBrackets();
  void RecordNolint(const std::string& comment, int line);

  std::string path_;
  std::vector<Token> tokens_;
  std::vector<size_t> match_;
  /// line -> suppressed check names ("" = all checks).
  std::map<int, std::set<std::string>> nolint_;
};

/// Reads `path` and tokenizes it; returns nullptr-equivalent empty source
/// (no tokens) with `error` set when the file cannot be read.
TidySource LoadSource(const std::string& path, std::string* error);

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PORTABLE_TIDY_SOURCE_H_

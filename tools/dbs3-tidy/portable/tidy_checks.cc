#include "tidy_checks.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string>

namespace dbs3_tidy {
namespace {

using Kind = Token::Kind;

bool TextIn(const Token& t, std::initializer_list<const char*> names) {
  for (const char* n : names) {
    if (t.text == n) return true;
  }
  return false;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// ------------------------------------------------------------- scope model

struct Scope {
  enum class Kind {
    kNamespace,
    kClass,
    kEnum,
    kFunction,
    kLambda,
    kControl,  // if/else/switch/catch/try body
    kLoop,     // for/while/do body
    kBlock,    // bare block or brace we could not classify
  };
  Kind kind = Kind::kBlock;
  std::string name;     // Function or class name when known.
  size_t open = 0;      // '{' token index.
  size_t close = 0;     // '}' token index.
  size_t keyword = 0;   // Loop/Control: index of the introducing keyword.
};

/// Scoped view of one source: every matched brace pair classified by the
/// tokens in front of it (function signature, class head, control keyword,
/// constructor init list, lambda introducer, ...).
class ScopedSource {
 public:
  explicit ScopedSource(const TidySource& src) : src_(src) {
    const auto& toks = src.tokens();
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind == Kind::kPunct && toks[i].text == "{") {
        const size_t close = src.MatchingBracket(i);
        if (close == TidySource::npos) continue;
        scopes_.push_back(Classify(i, close));
      }
    }
  }

  const TidySource& src() const { return src_; }
  const std::vector<Token>& tokens() const { return src_.tokens(); }
  const std::vector<Scope>& scopes() const { return scopes_; }

  /// Innermost scope of `kind` containing token `i`, or npos.
  size_t InnermostOfKind(size_t i, std::initializer_list<Scope::Kind> kinds)
      const {
    size_t best = TidySource::npos;
    size_t best_span = static_cast<size_t>(-1);
    for (size_t s = 0; s < scopes_.size(); ++s) {
      const Scope& sc = scopes_[s];
      if (sc.open < i && i < sc.close) {
        bool match = false;
        for (Scope::Kind k : kinds) match = match || sc.kind == k;
        if (match && sc.close - sc.open < best_span) {
          best = s;
          best_span = sc.close - sc.open;
        }
      }
    }
    return best;
  }

 private:
  // Walks back from `j` over one constructor-init-list worth of tokens
  // (identifiers, ::, commas, template args, balanced () {} groups).
  // Returns the index of the introducing ':' when the shape matches an
  // init list whose signature close-paren precedes it, else npos.
  size_t InitListIntro(size_t j) const {
    const auto& toks = src_.tokens();
    size_t k = j;
    bool first = true;
    while (k != TidySource::npos && k > 0) {
      const Token& t = toks[k];
      if (t.kind == Kind::kPunct && (t.text == ")" || t.text == "}")) {
        const size_t open = src_.MatchingBracket(k);
        if (open == TidySource::npos || open == 0) return TidySource::npos;
        // Only step over real initializer groups `a_(x)` / `b_{y}` —
        // identifier (or template `>`) right before the open bracket.
        // Without this the walk crosses previous function *bodies* and
        // misreads an ordinary signature as an init-list tail. The very
        // first group is the candidate itself and is always stepped.
        const Token& intro = toks[open - 1];
        if (!first && !(intro.kind == Kind::kIdent ||
                        (intro.kind == Kind::kPunct && intro.text == ">"))) {
          return TidySource::npos;
        }
        first = false;
        k = open - 1;
        continue;
      }
      first = false;
      if (t.kind == Kind::kIdent || t.kind == Kind::kNumber ||
          t.kind == Kind::kString ||
          (t.kind == Kind::kPunct &&
           TextIn(t, {"::", ",", "<", ">", "&", "*"}))) {
        --k;
        continue;
      }
      if (t.kind == Kind::kPunct && t.text == ":" && k > 0 &&
          toks[k - 1].kind == Kind::kPunct && toks[k - 1].text == ")") {
        return k;
      }
      return TidySource::npos;
    }
    return TidySource::npos;
  }

  std::string FunctionNameBefore(size_t open_paren) const {
    const auto& toks = src_.tokens();
    if (open_paren == 0) return "";
    const Token& t = toks[open_paren - 1];
    if (t.kind == Kind::kIdent) return t.text;
    return "";
  }

  Scope Classify(size_t open, size_t close) const {
    const auto& toks = src_.tokens();
    Scope s;
    s.open = open;
    s.close = close;
    if (open == 0) {
      s.kind = Scope::Kind::kBlock;
      return s;
    }
    size_t j = open - 1;
    // Skip trailing signature qualifiers: `) const noexcept override {`.
    while (j > 0 &&
           ((toks[j].kind == Kind::kIdent &&
             TextIn(toks[j],
                    {"const", "noexcept", "override", "final", "mutable"})) ||
            (toks[j].kind == Kind::kPunct && TextIn(toks[j], {"&", "&&"})))) {
      --j;
    }
    const Token& p = toks[j];
    if (p.kind == Kind::kIdent && TextIn(p, {"else", "try"})) {
      s.kind = Scope::Kind::kControl;
      s.keyword = j;
      return s;
    }
    if (p.kind == Kind::kIdent && p.text == "do") {
      s.kind = Scope::Kind::kLoop;
      s.keyword = j;
      return s;
    }
    if (p.kind == Kind::kIdent && p.text == "namespace") {
      s.kind = Scope::Kind::kNamespace;
      return s;
    }
    if (p.kind == Kind::kPunct && p.text == ")") {
      const size_t sig_open = src_.MatchingBracket(j);
      if (sig_open == TidySource::npos || sig_open == 0) {
        s.kind = Scope::Kind::kBlock;
        return s;
      }
      const Token& before = toks[sig_open - 1];
      if (before.kind == Kind::kIdent &&
          TextIn(before, {"if", "for", "while", "switch", "catch"})) {
        s.kind = TextIn(before, {"for", "while"}) ? Scope::Kind::kLoop
                                                  : Scope::Kind::kControl;
        s.keyword = sig_open - 1;
        return s;
      }
      if (before.kind == Kind::kPunct && before.text == "]") {
        s.kind = Scope::Kind::kLambda;
        s.name = "lambda";
        return s;
      }
      // `Foo::Foo(...) : a_(x), b_{y} {` — the token run before this `)`
      // may be the *last initializer* of a constructor init list; if so the
      // real signature is the paren group before the introducing ':'.
      const size_t intro = InitListIntro(j);
      if (intro != TidySource::npos) {
        const size_t ctor_close = intro - 1;
        const size_t ctor_open = src_.MatchingBracket(ctor_close);
        if (ctor_open != TidySource::npos && ctor_open > 0 &&
            !(toks[ctor_open - 1].kind == Kind::kIdent &&
              TextIn(toks[ctor_open - 1],
                     {"if", "for", "while", "switch", "catch"}))) {
          s.kind = Scope::Kind::kFunction;
          s.name = FunctionNameBefore(ctor_open);
          return s;
        }
      }
      s.kind = Scope::Kind::kFunction;
      s.name = FunctionNameBefore(sig_open);
      return s;
    }
    // Class-like head: walk back over the head tokens looking for the
    // introducing keyword (`class CAPABILITY("mutex") Mutex {`,
    // `struct S : public B {`, `enum class E : int {`, ...).
    size_t k = j;
    while (k != TidySource::npos) {
      const Token& t = toks[k];
      if (t.kind == Kind::kIdent &&
          TextIn(t, {"class", "struct", "union"})) {
        s.kind = (k > 0 && toks[k - 1].kind == Kind::kIdent &&
                  toks[k - 1].text == "enum")
                     ? Scope::Kind::kEnum
                     : Scope::Kind::kClass;
        // Name: first plain identifier after the keyword (skipping
        // attribute-macro groups).
        for (size_t m = k + 1; m <= j; ++m) {
          if (toks[m].kind == Kind::kIdent) {
            if (m + 1 <= j && toks[m + 1].kind == Kind::kPunct &&
                toks[m + 1].text == "(") {
              m = src_.MatchingBracket(m + 1);
              if (m == TidySource::npos) break;
              continue;  // Attribute macro like CAPABILITY("mutex").
            }
            s.name = toks[m].text;
            break;
          }
        }
        return s;
      }
      if (t.kind == Kind::kIdent && t.text == "enum") {
        s.kind = Scope::Kind::kEnum;
        return s;
      }
      if (t.kind == Kind::kPunct && (t.text == ")" || t.text == "]")) {
        const size_t o = src_.MatchingBracket(k);
        if (o == TidySource::npos || o == 0) break;
        k = o - 1;
        continue;
      }
      if (t.kind == Kind::kIdent || t.kind == Kind::kNumber ||
          t.kind == Kind::kString ||
          (t.kind == Kind::kPunct &&
           TextIn(t, {"::", ":", ",", "<", ">", "&", "*"}))) {
        if (k == 0) break;
        --k;
        continue;
      }
      break;
    }
    s.kind = Scope::Kind::kBlock;
    return s;
  }

  const TidySource& src_;
  std::vector<Scope> scopes_;
};

bool IsCall(const std::vector<Token>& toks, size_t i) {
  return i + 1 < toks.size() && toks[i].kind == Kind::kIdent &&
         toks[i + 1].kind == Kind::kPunct && toks[i + 1].text == "(";
}

/// Textual receiver chain of a member call whose '.'/'->' sits at `dot`:
/// `state.parts[i].build.tuples` -> "state.parts[].build.tuples".
std::string ReceiverChain(const ScopedSource& ss, size_t dot) {
  const auto& toks = ss.tokens();
  std::vector<std::string> parts;
  size_t k = dot;  // Index of the '.' or '->'.
  while (k != TidySource::npos && k > 0) {
    const Token& t = toks[k];
    if (t.kind == Kind::kPunct && (t.text == "." || t.text == "->")) {
      --k;
      continue;
    }
    if (t.kind == Kind::kPunct && (t.text == "]" || t.text == ")")) {
      const size_t open = ss.src().MatchingBracket(k);
      if (open == TidySource::npos || open == 0) break;
      parts.push_back(t.text == "]" ? "[]" : "()");
      k = open - 1;
      continue;
    }
    if (t.kind == Kind::kIdent || (t.kind == Kind::kPunct && t.text == "::")) {
      parts.push_back(t.text);
      if (k == 0) break;
      const Token& prev = toks[k - 1];
      if (prev.kind == Kind::kPunct &&
          TextIn(prev, {".", "->", "::", "]", ")"})) {
        --k;
        continue;
      }
      break;
    }
    break;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += *it;
  return out;
}

// ---------------------------------------------- dbs3-no-lock-across-emit

void CheckNoLockAcrossEmit(const ScopedSource& ss, std::vector<Diag>* out) {
  const auto& toks = ss.tokens();
  struct HeldLock {
    size_t scope_close;  // RAII: released at this token. Manual: npos.
    std::string name;
    int line;
  };
  // Active scope stack is implied by token position; locks pop when the
  // position passes their scope close. Manual Lock() entries are keyed by
  // receiver text and live until Unlock() or end of enclosing function.
  std::vector<HeldLock> raii;
  std::map<std::string, HeldLock> manual;
  size_t function_close = TidySource::npos;

  for (size_t i = 0; i < toks.size(); ++i) {
    while (!raii.empty() && raii.back().scope_close <= i) raii.pop_back();
    if (function_close != TidySource::npos && i >= function_close) {
      manual.clear();
      function_close = TidySource::npos;
    }
    const Token& t = toks[i];
    if (t.kind != Kind::kIdent) continue;

    // RAII acquisition: `MutexLock lock(&mu);` (declaration position).
    if (TextIn(t, {"MutexLock", "CountingMutexLock"}) && i + 2 < toks.size() &&
        toks[i + 1].kind == Kind::kIdent && toks[i + 2].kind == Kind::kPunct &&
        toks[i + 2].text == "(") {
      const size_t enclosing = ss.InnermostOfKind(
          i, {Scope::Kind::kFunction, Scope::Kind::kLambda,
              Scope::Kind::kControl, Scope::Kind::kLoop, Scope::Kind::kBlock});
      if (enclosing != TidySource::npos) {
        raii.push_back(
            {ss.scopes()[enclosing].close, toks[i + 1].text, t.line});
      }
      continue;
    }
    // Manual acquisition / release: `mu_.Lock()` / `mu_.Unlock()`.
    if (TextIn(t, {"Lock", "Unlock"}) && IsCall(toks, i) && i > 0 &&
        toks[i - 1].kind == Kind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      const std::string recv = ReceiverChain(ss, i - 1);
      if (t.text == "Lock") {
        manual[recv] = {TidySource::npos, recv, t.line};
        const size_t fn = ss.InnermostOfKind(
            i, {Scope::Kind::kFunction, Scope::Kind::kLambda});
        if (fn != TidySource::npos) {
          function_close = std::min(function_close == TidySource::npos
                                        ? ss.scopes()[fn].close
                                        : function_close,
                                    ss.scopes()[fn].close);
        }
      } else {
        manual.erase(recv);
      }
      continue;
    }
    // Emit-family call while a lock is held.
    if (TextIn(t, {"Emit", "EmitCopy", "EmitConcat", "EmitSelect", "PushData",
                   "PushDataChunk", "PushTrigger"}) &&
        IsCall(toks, i) && (!raii.empty() || !manual.empty())) {
      const HeldLock& held = !raii.empty() ? raii.back() : manual.begin()->second;
      out->push_back(
          {ss.src().path(), t.line, kNoLockAcrossEmit,
           "'" + t.text + "' called while lock '" + held.name +
               "' (acquired line " + std::to_string(held.line) +
               ") is held; emitting can block on a bounded ActivationQueue "
               "under back-pressure — the engine's canonical deadlock "
               "shape. Release the lock (move state out) before emitting"});
    }
  }
}

// --------------------------------------------- dbs3-no-alloc-in-hot-path

const std::set<std::string>& HotPathNames() {
  static const std::set<std::string> names = {
      "OnData",      "OnDataBatch", "Probe",   "ProbeKeys",  "ProbeHashed",
      "EvalPredAll", "EvalRow",     "HashColumn", "EmitTagged"};
  return names;
}

void CheckNoAllocInHotPath(const ScopedSource& ss, std::vector<Diag>* out) {
  const auto& toks = ss.tokens();
  for (const Scope& fn : ss.scopes()) {
    if (fn.kind != Scope::Kind::kFunction || HotPathNames().count(fn.name) == 0)
      continue;
    for (size_t i = fn.open + 1; i < fn.close; ++i) {
      const Token& t = toks[i];
      if (t.kind != Kind::kIdent) continue;
      if (t.text == "new") {
        // Placement new (`new (arena...) T`) is the arena path; plain
        // operator new is heap traffic the bench gates forbid.
        if (i + 1 < toks.size() &&
            !(toks[i + 1].kind == Kind::kPunct && toks[i + 1].text == "(")) {
          out->push_back({ss.src().path(), t.line, kNoAllocInHotPath,
                          "hot-path function '" + fn.name +
                              "' allocates with operator new; kernel "
                              "surfaces must stay allocation-free (use the "
                              "execution Arena or ChunkPool)"});
        }
        continue;
      }
      if (TextIn(t, {"malloc", "calloc", "realloc", "strdup"}) &&
          IsCall(toks, i)) {
        out->push_back({ss.src().path(), t.line, kNoAllocInHotPath,
                        "hot-path function '" + fn.name + "' calls " +
                            t.text + "(); kernel surfaces must stay "
                            "allocation-free"});
        continue;
      }
      if (TextIn(t, {"push_back", "emplace_back", "resize", "reserve",
                     "insert", "emplace", "append", "assign"}) &&
          IsCall(toks, i) && i > 0 && toks[i - 1].kind == Kind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        const std::string recv = Lower(ReceiverChain(ss, i - 1));
        if (recv.find("arena") != std::string::npos ||
            recv.find("pool") != std::string::npos) {
          continue;  // The blessed allocators.
        }
        out->push_back({ss.src().path(), t.line, kNoAllocInHotPath,
                        "hot-path function '" + fn.name + "' grows '" +
                            ReceiverChain(ss, i - 1) + "' with " + t.text +
                            "(); only ChunkPool/Arena-backed storage may "
                            "grow on the kernel surface"});
      }
    }
  }
}

// --------------------------------------------------- dbs3-quota-pairing

/// True when the call whose callee identifier sits at `call_ident` is a
/// full statement (its receiver chain starts right after ';', '{' or '}'),
/// i.e. its return value is dropped.
bool IsStatementHead(const ScopedSource& ss, size_t call_ident) {
  const auto& toks = ss.tokens();
  size_t k = call_ident;
  while (k > 0) {
    const Token& prev = toks[k - 1];
    if (prev.kind == Kind::kPunct && TextIn(prev, {".", "->", "::"})) {
      if (k < 2) return false;
      k -= 2;  // Step over the separator onto the token before it.
      if (toks[k].kind == Kind::kPunct &&
          (toks[k].text == ")" || toks[k].text == "]")) {
        const size_t o = ss.src().MatchingBracket(k);
        if (o == TidySource::npos) return false;
        k = o;
      }
      continue;
    }
    break;
  }
  if (k == 0) return true;
  const Token& head_prev = toks[k - 1];
  return head_prev.kind == Kind::kPunct && TextIn(head_prev, {";", "{", "}"});
}

void CheckQuotaPairing(const ScopedSource& ss, std::vector<Diag>* out) {
  const auto& toks = ss.tokens();
  for (const Scope& fn : ss.scopes()) {
    if (fn.kind != Scope::Kind::kFunction && fn.kind != Scope::Kind::kLambda)
      continue;
    // Nested lambdas are analyzed on their own; skip their tokens when
    // looking at the outer function so each charge is judged once, in the
    // innermost callable that contains it.
    std::vector<const Scope*> nested;
    for (const Scope& other : ss.scopes()) {
      if (&other != &fn &&
          (other.kind == Scope::Kind::kFunction ||
           other.kind == Scope::Kind::kLambda) &&
          fn.open < other.open && other.close < fn.close) {
        nested.push_back(&other);
      }
    }
    const auto in_nested = [&](size_t i) {
      for (const Scope* n : nested) {
        if (n->open < i && i < n->close) return true;
      }
      return false;
    };

    std::vector<size_t> charges;
    bool has_pairing = false;
    for (size_t i = fn.open + 1; i < fn.close; ++i) {
      if (in_nested(i)) continue;
      const Token& t = toks[i];
      if (t.kind != Kind::kIdent) continue;
      if (TextIn(t, {"TryCharge", "ForceCharge"}) && IsCall(toks, i)) {
        charges.push_back(i);
        continue;
      }
      if (t.text == "ChargeGuard") has_pairing = true;
      if (TextIn(t, {"Release", "ReleaseNow", "Disarm"}) && IsCall(toks, i)) {
        has_pairing = true;
      }
      // A recorded ledger: `++state.charged`, `part.charged += n`,
      // `held_ = units` — an identifier that names held units adjacent to
      // a mutation.
      const std::string lower = Lower(t.text);
      if (lower.find("charged") != std::string::npos ||
          lower.find("held") != std::string::npos) {
        bool mutated =
            i + 1 < toks.size() && toks[i + 1].kind == Kind::kPunct &&
            TextIn(toks[i + 1], {"++", "+=", "-=", "="});
        // Prefix form mutating a member chain: `++state.charged`. Walk the
        // receiver chain leftward to see whether a `++`/`--` introduces it.
        if (!mutated) {
          size_t k = i;
          while (k > 0 && (toks[k - 1].kind == Kind::kIdent ||
                           (toks[k - 1].kind == Kind::kPunct &&
                            TextIn(toks[k - 1], {".", "->", "::"})))) {
            --k;
          }
          mutated = k > 0 && toks[k - 1].kind == Kind::kPunct &&
                    TextIn(toks[k - 1], {"++", "--"});
        }
        if (mutated) has_pairing = true;
      }
    }
    for (size_t c : charges) {
      // A charge whose result is dropped on the floor is always a bug,
      // pairing or not: either it succeeded and nobody owns the units, or
      // the code assumes memory it was never granted.
      const size_t close = ss.src().MatchingBracket(c + 1);
      const bool result_dropped =
          toks[c].text == "TryCharge" && close != TidySource::npos &&
          close + 1 < toks.size() && toks[close + 1].kind == Kind::kPunct &&
          toks[close + 1].text == ";" && IsStatementHead(ss, c);
      if (result_dropped) {
        out->push_back({ss.src().path(), toks[c].line, kQuotaPairing,
                        "TryCharge result is dropped: the charge either "
                        "leaked or never happened; hold it in a ChargeGuard "
                        "or branch on the result"});
        continue;
      }
      if (!has_pairing) {
        out->push_back(
            {ss.src().path(), toks[c].line, kQuotaPairing,
             "quota charge has no matching Release, ChargeGuard, or "
             "recorded charge ledger in '" + fn.name +
                 "'; every exit path must return these units (use "
                 "ChargeGuard — see common/memory_quota.h)"});
      }
    }
  }
}

// ------------------------------------- dbs3-cancel-check-in-consume-loop

void CheckCancelInConsumeLoop(const ScopedSource& ss, std::vector<Diag>* out) {
  const auto& toks = ss.tokens();
  struct LoopExtent {
    size_t begin, end;  // Token range [begin, end] incl. condition + body.
    int line;
  };
  std::vector<LoopExtent> loops;
  // Brace-bodied loops (from scopes): extend the extent left to the loop
  // keyword so pops in the condition are covered too.
  for (const Scope& sc : ss.scopes()) {
    if (sc.kind != Scope::Kind::kLoop) continue;
    loops.push_back({sc.keyword, sc.close, toks[sc.keyword].line});
  }
  // Single-statement loops: `for (...) Stmt();` / `while (...) Stmt();`.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Kind::kIdent && TextIn(toks[i], {"for", "while"}) &&
        i + 1 < toks.size() && toks[i + 1].kind == Kind::kPunct &&
        toks[i + 1].text == "(") {
      const size_t cond_close = ss.src().MatchingBracket(i + 1);
      if (cond_close == TidySource::npos || cond_close + 1 >= toks.size())
        continue;
      const Token& after = toks[cond_close + 1];
      if (after.kind == Kind::kPunct && (after.text == "{" || after.text == ";"))
        continue;  // Brace-bodied (covered above) or `while (...);`.
      size_t end = cond_close + 1;
      while (end < toks.size() &&
             !(toks[end].kind == Kind::kPunct && toks[end].text == ";")) {
        if (toks[end].kind == Kind::kPunct &&
            (toks[end].text == "(" || toks[end].text == "[")) {
          const size_t m = ss.src().MatchingBracket(end);
          if (m == TidySource::npos) break;
          end = m;
        }
        ++end;
      }
      loops.push_back({i, end, toks[i].line});
    }
  }

  std::set<size_t> flagged;  // Loop begin tokens already reported.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == Kind::kIdent &&
          TextIn(toks[i], {"PopBatch", "ReadChunk", "AcquireBatch"}) &&
          IsCall(toks, i))) {
      continue;
    }
    // Innermost loop containing the consuming call.
    const LoopExtent* innermost = nullptr;
    for (const LoopExtent& le : loops) {
      if (le.begin < i && i <= le.end &&
          (innermost == nullptr ||
           le.end - le.begin < innermost->end - innermost->begin)) {
        innermost = &le;
      }
    }
    if (innermost == nullptr) continue;
    bool has_cancel = false;
    for (size_t k = innermost->begin; k <= innermost->end; ++k) {
      if (toks[k].kind == Kind::kIdent &&
          TextIn(toks[k], {"ShouldStop", "cancelled"}) && IsCall(toks, k)) {
        has_cancel = true;
        break;
      }
    }
    if (!has_cancel && flagged.insert(innermost->begin).second) {
      out->push_back(
          {ss.src().path(), innermost->line, kCancelCheckInConsumeLoop,
           "loop consumes work (" + toks[i].text +
               ") but never consults a CancelToken; check "
               "ShouldStop()/cancelled() each iteration so cancellation "
               "latency stays bounded"});
    }
  }
}

// ---------------------------------------------- dbs3-guarded-member-init

const std::set<std::string>& ScalarTypeNames() {
  static const std::set<std::string> names = {
      "bool",    "char",     "short",    "int",      "long",     "unsigned",
      "signed",  "float",    "double",   "size_t",   "ssize_t",  "int8_t",
      "int16_t", "int32_t",  "int64_t",  "uint8_t",  "uint16_t", "uint32_t",
      "uint64_t", "intptr_t", "uintptr_t", "ptrdiff_t"};
  return names;
}

struct GuardedMember {
  std::string class_name;
  std::string member;
  std::string file;
  int line;
};

/// Collects scalar GUARDED_BY members lacking in-class initializers, and
/// every constructor-init-list region of every class, across one source.
struct MemberScan {
  std::vector<GuardedMember> uninitialized;
  /// class name -> declared-a-constructor (even `= default` counts).
  std::map<std::string, bool> has_ctor_decl;
  /// class name -> member names initialized in some ctor init list.
  std::map<std::string, std::set<std::string>> ctor_inits;
};

void ScanMembers(const ScopedSource& ss, MemberScan* scan) {
  const auto& toks = ss.tokens();

  // Constructor init lists, both in-class and out-of-line: find
  // `Name (args) : inits... {` where a preceding `Name ::` or an enclosing
  // class scope of the same name marks it as a constructor of Name.
  for (const Scope& fn : ss.scopes()) {
    if (fn.kind != Scope::Kind::kFunction || fn.name.empty()) continue;
    std::string owner;
    const size_t cls = ss.InnermostOfKind(fn.open, {Scope::Kind::kClass});
    if (cls != TidySource::npos && ss.scopes()[cls].name == fn.name) {
      owner = fn.name;  // In-class constructor definition.
    }
    // Out-of-line: `Foo::Foo(...)`. Find the signature open paren: first
    // '(' after the name going backward from the body; easier forward from
    // keyword: locate tokens `fn.name` `::`? Walk back from fn.open.
    if (owner.empty()) {
      // Find the signature '(' by scanning back from the body '{' over the
      // init list (if any).
      size_t j = fn.open - 1;
      while (j > 0 &&
             !(toks[j].kind == Kind::kPunct && toks[j].text == ")")) {
        if (toks[j].kind == Kind::kPunct &&
            (toks[j].text == "}" || toks[j].text == "]")) {
          const size_t o = ss.src().MatchingBracket(j);
          if (o == TidySource::npos || o == 0) break;
          j = o;
        }
        --j;
      }
      size_t sig_close = j;
      size_t sig_open = ss.src().MatchingBracket(sig_close);
      // Walk further back when this `)` closes a trailing initializer
      // rather than the signature: `Foo::Foo(int x) : a_(x) {`.
      while (sig_open != TidySource::npos && sig_open > 1) {
        const Token& before = toks[sig_open - 1];
        if (before.kind == Kind::kIdent && before.text == fn.name &&
            sig_open >= 2 && toks[sig_open - 2].kind == Kind::kPunct &&
            toks[sig_open - 2].text == "::" && sig_open >= 3 &&
            toks[sig_open - 3].kind == Kind::kIdent &&
            toks[sig_open - 3].text == fn.name) {
          owner = fn.name;
          break;
        }
        // Step past one more initializer group leftward.
        size_t k = sig_open - 1;
        while (k > 0 &&
               !(toks[k].kind == Kind::kPunct && toks[k].text == ")")) {
          if (toks[k].kind == Kind::kPunct &&
              (toks[k].text == "}" || toks[k].text == "]")) {
            const size_t o = ss.src().MatchingBracket(k);
            if (o == TidySource::npos || o == 0) {
              k = 0;
              break;
            }
            k = o;
          }
          --k;
        }
        if (k == 0) break;
        sig_close = k;
        sig_open = ss.src().MatchingBracket(sig_close);
      }
    }
    if (owner.empty()) continue;
    scan->has_ctor_decl[owner] = true;
    // Init region: signature close .. body open. Every `ident (` / `ident {`
    // at init-list position records an initialized member.
    size_t sig_close = fn.open - 1;  // Recompute forward for simplicity.
    // Find the ':' introducing the init list by walking back as above.
    for (size_t k = fn.open - 1; k > 0; --k) {
      const Token& t = toks[k];
      if (t.kind == Kind::kPunct && (t.text == "}" || t.text == ")")) {
        const size_t o = ss.src().MatchingBracket(k);
        if (o == TidySource::npos || o == 0) break;
        k = o;
        continue;
      }
      if (t.kind == Kind::kPunct && t.text == ":") {
        sig_close = k;
        break;
      }
      if (t.kind == Kind::kPunct && (t.text == ";" || t.text == "{")) break;
    }
    for (size_t k = sig_close; k < fn.open; ++k) {
      if (toks[k].kind == Kind::kIdent && k + 1 < toks.size() &&
          toks[k + 1].kind == Kind::kPunct &&
          (toks[k + 1].text == "(" || toks[k + 1].text == "{")) {
        scan->ctor_inits[owner].insert(toks[k].text);
        const size_t m = ss.src().MatchingBracket(k + 1);
        if (m != TidySource::npos) k = m;
      }
    }
  }

  // Constructor *declarations* without bodies still count as "class has a
  // constructor" (including `Foo() = default;`): member-level `Name (...)`
  // inside class Name.
  for (const Scope& cls : ss.scopes()) {
    if (cls.kind != Scope::Kind::kClass || cls.name.empty()) continue;
    for (size_t i = cls.open + 1; i < cls.close; ++i) {
      // Skip nested scopes.
      if (toks[i].kind == Kind::kPunct && toks[i].text == "{") {
        const size_t m = ss.src().MatchingBracket(i);
        if (m != TidySource::npos) i = m;
        continue;
      }
      if (toks[i].kind == Kind::kIdent && toks[i].text == cls.name &&
          IsCall(toks, i) &&
          (i == cls.open + 1 ||
           (toks[i - 1].kind == Kind::kPunct &&
            TextIn(toks[i - 1], {";", "{", "}", ":", "~"})) ||
           (toks[i - 1].kind == Kind::kIdent &&
            TextIn(toks[i - 1], {"explicit", "constexpr", "public",
                                 "private", "protected"})))) {
        if (i > 0 && toks[i - 1].kind == Kind::kPunct &&
            toks[i - 1].text == "~") {
          continue;  // Destructor.
        }
        scan->has_ctor_decl[cls.name] = true;
        const size_t m = ss.src().MatchingBracket(i + 1);
        if (m != TidySource::npos) i = m;
      }
    }
  }

  // Member declarations with GUARDED_BY.
  for (const Scope& cls : ss.scopes()) {
    if (cls.kind != Scope::Kind::kClass) continue;
    std::vector<size_t> decl;  // Token indexes of the current declaration.
    for (size_t i = cls.open + 1; i < cls.close; ++i) {
      const Token& t = toks[i];
      if (t.kind == Kind::kPunct && t.text == "{") {
        // Nested scope (method body, nested class, braced init): braced
        // member initializers stay part of the declaration; real scopes
        // end it.
        const size_t m = ss.src().MatchingBracket(i);
        bool is_scope = false;
        for (const Scope& sc : ss.scopes()) {
          if (sc.open == i && sc.kind != Scope::Kind::kBlock) {
            is_scope = true;
            break;
          }
        }
        if (is_scope) {
          decl.clear();
          if (m != TidySource::npos) i = m;
          continue;
        }
        decl.push_back(i);
        if (m != TidySource::npos) {
          for (size_t k = i + 1; k <= m; ++k) decl.push_back(k);
          i = m;
        }
        continue;
      }
      if (t.kind == Kind::kPunct && t.text == ";") {
        // Analyze the finished declaration.
        size_t guard = TidySource::npos;
        for (size_t k = 0; k < decl.size(); ++k) {
          if (toks[decl[k]].kind == Kind::kIdent &&
              toks[decl[k]].text == "GUARDED_BY") {
            guard = k;
            break;
          }
        }
        if (guard != TidySource::npos && guard > 0 &&
            toks[decl[guard - 1]].kind == Kind::kIdent) {
          const std::string member = toks[decl[guard - 1]].text;
          // Initializer: any '=' or '{' after the GUARDED_BY(...) group.
          bool initialized = false;
          size_t k = guard + 1;
          if (k < decl.size() && toks[decl[k]].text == "(") {
            const size_t m = ss.src().MatchingBracket(decl[k]);
            while (k < decl.size() && decl[k] != m) ++k;
            ++k;
          }
          for (; k < decl.size(); ++k) {
            if (toks[decl[k]].kind == Kind::kPunct &&
                (toks[decl[k]].text == "=" || toks[decl[k]].text == "{")) {
              initialized = true;
              break;
            }
          }
          // Scalar type? Tokens before the member name form the type.
          std::vector<size_t> type_toks(decl.begin(),
                                        decl.begin() + (guard - 1));
          while (!type_toks.empty() &&
                 toks[type_toks.front()].kind == Kind::kIdent &&
                 TextIn(toks[type_toks.front()],
                        {"const", "mutable", "static", "volatile",
                         "inline"})) {
            type_toks.erase(type_toks.begin());
          }
          bool scalar = false;
          if (!type_toks.empty()) {
            const Token& first = toks[type_toks.front()];
            const Token& last = toks[type_toks.back()];
            scalar = (first.kind == Kind::kIdent &&
                      ScalarTypeNames().count(first.text) > 0) ||
                     (last.kind == Kind::kPunct && last.text == "*");
          }
          if (scalar && !initialized) {
            scan->uninitialized.push_back({cls.name, member, ss.src().path(),
                                           toks[decl[guard - 1]].line});
          }
        }
        decl.clear();
        continue;
      }
      decl.push_back(i);
    }
  }
}

void CheckGuardedMemberInit(const std::vector<MemberScan>& scans,
                            const std::vector<const TidySource*>& sources,
                            std::vector<Diag>* out) {
  // Merge corpus-wide constructor knowledge, then judge each member.
  std::map<std::string, bool> has_ctor;
  std::map<std::string, std::set<std::string>> inits;
  for (const MemberScan& s : scans) {
    for (const auto& [cls, has] : s.has_ctor_decl) {
      has_ctor[cls] = has_ctor[cls] || has;
    }
    for (const auto& [cls, members] : s.ctor_inits) {
      inits[cls].insert(members.begin(), members.end());
    }
  }
  (void)sources;
  for (const MemberScan& s : scans) {
    for (const GuardedMember& m : s.uninitialized) {
      if (inits[m.class_name].count(m.member) > 0) continue;
      out->push_back(
          {m.file, m.line, kGuardedMemberInit,
           "GUARDED_BY member '" + m.member + "' of '" + m.class_name +
               "' has no in-class initializer and no constructor "
               "initializes it; -Wthread-safety does not cover "
               "construction, so this reads garbage until first locked "
               "write. Initialize it at the declaration"});
    }
  }
}

}  // namespace

std::vector<std::string> AllCheckNames() {
  return {kNoLockAcrossEmit, kNoAllocInHotPath, kQuotaPairing,
          kCancelCheckInConsumeLoop, kGuardedMemberInit};
}

std::vector<Diag> RunChecks(const std::vector<TidySource>& sources,
                            const std::set<std::string>& enabled) {
  const auto on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) > 0;
  };
  std::vector<Diag> diags;
  std::vector<MemberScan> scans;
  std::vector<const TidySource*> ptrs;
  std::vector<ScopedSource> scoped;
  scoped.reserve(sources.size());
  for (const TidySource& src : sources) scoped.emplace_back(src);
  for (size_t i = 0; i < scoped.size(); ++i) {
    const ScopedSource& ss = scoped[i];
    if (on(kNoLockAcrossEmit)) CheckNoLockAcrossEmit(ss, &diags);
    if (on(kNoAllocInHotPath)) CheckNoAllocInHotPath(ss, &diags);
    if (on(kQuotaPairing)) CheckQuotaPairing(ss, &diags);
    if (on(kCancelCheckInConsumeLoop)) CheckCancelInConsumeLoop(ss, &diags);
    if (on(kGuardedMemberInit)) {
      scans.emplace_back();
      ScanMembers(ss, &scans.back());
      ptrs.push_back(&sources[i]);
    }
  }
  if (on(kGuardedMemberInit)) CheckGuardedMemberInit(scans, ptrs, &diags);

  // NOLINT filtering against the owning source.
  std::vector<Diag> kept;
  for (const Diag& d : diags) {
    bool suppressed = false;
    for (const TidySource& src : sources) {
      if (src.path() == d.file && src.IsSuppressed(d.line, d.check)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  std::sort(kept.begin(), kept.end(), [](const Diag& a, const Diag& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return kept;
}

}  // namespace dbs3_tidy

#include "tidy_source.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace dbs3_tidy {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

TidySource::TidySource(std::string path, const std::string& content)
    : path_(std::move(path)) {
  Tokenize(content);
  MatchBrackets();
}

void TidySource::RecordNolint(const std::string& comment, int line) {
  // Accepts NOLINT, NOLINT(a, b), NOLINTNEXTLINE, NOLINTNEXTLINE(a, b).
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    int target = line;
    if (comment.compare(after, 8, "NEXTLINE") == 0) {
      after += 8;
      target = line + 1;
    }
    std::set<std::string>& checks = nolint_[target];
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      std::string list = comment.substr(
          after + 1, close == std::string::npos ? std::string::npos
                                                : close - after - 1);
      std::string name;
      std::istringstream names(list);
      while (std::getline(names, name, ',')) {
        const size_t b = name.find_first_not_of(" \t");
        const size_t e = name.find_last_not_of(" \t");
        if (b != std::string::npos) checks.insert(name.substr(b, e - b + 1));
      }
    } else {
      checks.insert("");  // Bare NOLINT: everything.
    }
    pos = after;
  }
}

void TidySource::Tokenize(const std::string& content) {
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations, so macro bodies never confuse the scope heuristics.
    if (c == '#') {
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment (NOLINT lives here).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t eol = content.find('\n', i);
      const std::string comment =
          content.substr(i, eol == std::string::npos ? std::string::npos
                                                     : eol - i);
      RecordNolint(comment, line);
      i = eol == std::string::npos ? n : eol;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const size_t end = content.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      const std::string comment = content.substr(i, stop - i);
      RecordNolint(comment, line);
      for (size_t k = i; k < stop; ++k) {
        if (content[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t open = content.find('(', i + 2);
      if (open == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim =
          ")" + content.substr(i + 2, open - (i + 2)) + "\"";
      const size_t end = content.find(delim, open + 1);
      const size_t stop =
          end == std::string::npos ? n : end + delim.size();
      tokens_.push_back({Token::Kind::kString, "\"\"", line});
      for (size_t k = i; k < stop; ++k) {
        if (content[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t k = i + 1;
      while (k < n && content[k] != quote) {
        if (content[k] == '\\') ++k;
        if (content[k] == '\n') ++line;
        ++k;
      }
      tokens_.push_back({quote == '"' ? Token::Kind::kString
                                      : Token::Kind::kChar,
                         std::string(1, quote) + std::string(1, quote),
                         line});
      i = k + 1;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t k = i + 1;
      while (k < n && IsIdentChar(content[k])) ++k;
      tokens_.push_back({Token::Kind::kIdent, content.substr(i, k - i),
                         line});
      i = k;
      continue;
    }
    // Number (loose: good enough for token counting, incl. 0x1f, 1'000).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t k = i + 1;
      while (k < n && (IsIdentChar(content[k]) || content[k] == '\'' ||
                       content[k] == '.')) {
        ++k;
      }
      tokens_.push_back({Token::Kind::kNumber, content.substr(i, k - i),
                         line});
      i = k;
      continue;
    }
    // Multi-char punctuators the checks care about; everything else is a
    // single char.
    static const char* kTwo[] = {"::", "->", "++", "--", "+=", "-=", "&&",
                                 "||", "==", "!=", "<=", ">=", "<<", ">>"};
    std::string punct(1, c);
    if (i + 1 < n) {
      const std::string two = content.substr(i, 2);
      for (const char* t : kTwo) {
        if (two == t) {
          punct = two;
          break;
        }
      }
    }
    tokens_.push_back({Token::Kind::kPunct, punct, line});
    i += punct.size();
  }
}

void TidySource::MatchBrackets() {
  match_.assign(tokens_.size(), npos);
  std::vector<size_t> parens;
  std::vector<size_t> braces;
  std::vector<size_t> squares;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].kind != Token::Kind::kPunct) continue;
    const std::string& t = tokens_[i].text;
    if (t == "(") parens.push_back(i);
    if (t == "{") braces.push_back(i);
    if (t == "[") squares.push_back(i);
    if (t == ")" && !parens.empty()) {
      match_[i] = parens.back();
      match_[parens.back()] = i;
      parens.pop_back();
    }
    if (t == "}" && !braces.empty()) {
      match_[i] = braces.back();
      match_[braces.back()] = i;
      braces.pop_back();
    }
    if (t == "]" && !squares.empty()) {
      match_[i] = squares.back();
      match_[squares.back()] = i;
      squares.pop_back();
    }
  }
}

size_t TidySource::MatchingBracket(size_t i) const {
  return i < match_.size() ? match_[i] : npos;
}

bool TidySource::IsSuppressed(int line, const std::string& check) const {
  const auto it = nolint_.find(line);
  if (it == nolint_.end()) return false;
  return it->second.count("") > 0 || it->second.count(check) > 0;
}

TidySource LoadSource(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return TidySource(path, "");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TidySource(path, buffer.str());
}

}  // namespace dbs3_tidy

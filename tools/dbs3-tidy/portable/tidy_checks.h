#ifndef DBS3_TOOLS_TIDY_PORTABLE_TIDY_CHECKS_H_
#define DBS3_TOOLS_TIDY_PORTABLE_TIDY_CHECKS_H_

#include <set>
#include <string>
#include <vector>

#include "tidy_source.h"

// The five DBS3 invariant checks, portable edition.
//
// Same check names, same semantics, same fixtures as the clang-tidy plugin
// under ../plugin/ — this implementation trades AST fidelity for zero
// dependencies so `check_dbs3_tidy` (and the full src/ sweep) run in any
// environment with a C++ compiler. Where the two engines could disagree the
// fixtures pin the common contract; the plugin may additionally catch
// shapes the token heuristics cannot see.
//
//  dbs3-no-lock-across-emit     No dbs3::Mutex / MutexLock held across
//                               Emit/Push* — bounded ActivationQueues block
//                               under back-pressure; holding a lock there
//                               is the engine's canonical deadlock shape.
//  dbs3-no-alloc-in-hot-path    Kernel-surface functions (OnData,
//                               OnDataBatch, Probe*, EvalPredAll,
//                               EmitTagged, ...)
//                               must not reach operator new / malloc or
//                               growing container calls except through
//                               ChunkPool / Arena receivers.
//  dbs3-quota-pairing           Every MemoryQuota::TryCharge/ForceCharge
//                               must pair with a Release, a ChargeGuard,
//                               or a recorded charge ledger; a bare
//                               TryCharge whose result is dropped is
//                               always wrong.
//  dbs3-cancel-check-in-consume-loop
//                               Loops that pop activations (PopBatch) or
//                               stream spill chunks (ReadChunk) must
//                               consult a CancelToken (ShouldStop /
//                               cancelled) each iteration.
//  dbs3-guarded-member-init     GUARDED_BY members of scalar type must be
//                               initialized in-class or in every reachable
//                               constructor init list (-Wthread-safety
//                               does not cover construction).

namespace dbs3_tidy {

inline constexpr char kNoLockAcrossEmit[] = "dbs3-no-lock-across-emit";
inline constexpr char kNoAllocInHotPath[] = "dbs3-no-alloc-in-hot-path";
inline constexpr char kQuotaPairing[] = "dbs3-quota-pairing";
inline constexpr char kCancelCheckInConsumeLoop[] =
    "dbs3-cancel-check-in-consume-loop";
inline constexpr char kGuardedMemberInit[] = "dbs3-guarded-member-init";

/// All five check names, in registration order.
std::vector<std::string> AllCheckNames();

/// Runs `enabled` checks (empty = all) over `sources` as one corpus:
/// dbs3-guarded-member-init resolves constructor init lists across files,
/// so headers and their .cc implementations should be analyzed together.
/// Diagnostics are NOLINT-filtered and sorted by (file, line).
std::vector<Diag> RunChecks(const std::vector<TidySource>& sources,
                            const std::set<std::string>& enabled = {});

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PORTABLE_TIDY_CHECKS_H_

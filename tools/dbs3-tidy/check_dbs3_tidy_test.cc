// check_dbs3_tidy: fixture-driven regression tests for the dbs3-tidy
// checks (portable engine). Every `*_violation.cc` fixture seeds findings
// annotated in place with `// DBS3-TIDY: <check-name>`; its `*_clean.cc`
// twin rebuilds the same shapes conformingly and must stay silent. The
// annotations are the contract shared with the clang-tidy plugin (see
// plugin/run_fixture_tests.py), so a check whose behavior drifts fails
// here before it reaches CI.

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "portable/tidy_checks.h"
#include "portable/tidy_source.h"

#ifndef DBS3_TIDY_FIXTURE_DIR
#error "DBS3_TIDY_FIXTURE_DIR must point at tools/dbs3-tidy/fixtures"
#endif

namespace dbs3_tidy {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(DBS3_TIDY_FIXTURE_DIR) + "/" + name;
}

/// (line, check) pairs expected by a fixture's `// DBS3-TIDY:` annotations.
std::set<std::pair<int, std::string>> ExpectedFindings(
    const std::string& path) {
  std::set<std::pair<int, std::string>> expected;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::string text;
  int line = 0;
  while (std::getline(in, text)) {
    ++line;
    const std::string marker = "// DBS3-TIDY:";
    const size_t at = text.find(marker);
    if (at == std::string::npos) continue;
    std::istringstream names(text.substr(at + marker.size()));
    std::string check;
    while (names >> check) expected.emplace(line, check);
  }
  return expected;
}

std::set<std::pair<int, std::string>> ActualFindings(const std::string& path) {
  std::string error;
  TidySource src = LoadSource(path, &error);
  EXPECT_TRUE(error.empty()) << error;
  std::vector<TidySource> corpus;
  corpus.push_back(std::move(src));
  std::set<std::pair<int, std::string>> actual;
  for (const Diag& d : RunChecks(corpus)) actual.emplace(d.line, d.check);
  return actual;
}

void ExpectFixtureMatches(const std::string& fixture) {
  const std::string path = FixturePath(fixture);
  const auto expected = ExpectedFindings(path);
  const auto actual = ActualFindings(path);
  for (const auto& [line, check] : expected) {
    EXPECT_TRUE(actual.count({line, check}) > 0)
        << fixture << ":" << line << " expected a " << check
        << " finding that did not fire";
  }
  for (const auto& [line, check] : actual) {
    EXPECT_TRUE(expected.count({line, check}) > 0)
        << fixture << ":" << line << " unexpected " << check << " finding";
  }
}

void ExpectFixtureSilent(const std::string& fixture) {
  const std::string path = FixturePath(fixture);
  ASSERT_TRUE(ExpectedFindings(path).empty())
      << "clean fixture " << fixture << " carries DBS3-TIDY annotations";
  for (const auto& [line, check] : ActualFindings(path)) {
    ADD_FAILURE() << fixture << ":" << line << " false positive: " << check;
  }
}

struct CheckCase {
  std::string name;    // Check name, for test labeling.
  std::string prefix;  // Fixture file prefix.
};

class Dbs3TidyFixtureTest : public ::testing::TestWithParam<CheckCase> {};

TEST_P(Dbs3TidyFixtureTest, ViolationFixtureFiresOnEveryAnnotatedLine) {
  ExpectFixtureMatches(GetParam().prefix + "_violation.cc");
}

TEST_P(Dbs3TidyFixtureTest, CleanTwinStaysSilent) {
  ExpectFixtureSilent(GetParam().prefix + "_clean.cc");
}

TEST_P(Dbs3TidyFixtureTest, ViolationFixtureSeedsAtLeastThreeFindings) {
  // A fixture that degenerates to one trivial case no longer pins the
  // check's behavior; keep the corpus meaningfully adversarial.
  EXPECT_GE(ExpectedFindings(FixturePath(GetParam().prefix + "_violation.cc"))
                .size(),
            3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, Dbs3TidyFixtureTest,
    ::testing::Values(
        CheckCase{kNoLockAcrossEmit, "no_lock_across_emit"},
        CheckCase{kNoAllocInHotPath, "no_alloc_in_hot_path"},
        CheckCase{kQuotaPairing, "quota_pairing"},
        CheckCase{kCancelCheckInConsumeLoop, "cancel_check_in_consume_loop"},
        CheckCase{kGuardedMemberInit, "guarded_member_init"}),
    [](const ::testing::TestParamInfo<CheckCase>& info) {
      std::string label = info.param.prefix;
      for (char& c : label) {
        if (c == '-') c = '_';
      }
      return label;
    });

TEST(Dbs3TidySuppressionTest, NolintOnTheLineSuppressesTheNamedCheck) {
  const std::string code =
      "void f(MemoryQuota* q) {\n"
      "  q->TryCharge(1);  // NOLINT(dbs3-quota-pairing) // test\n"
      "}\n";
  std::vector<TidySource> corpus;
  corpus.emplace_back("inline.cc", code);
  EXPECT_TRUE(RunChecks(corpus).empty());
}

TEST(Dbs3TidySuppressionTest, NolintNextlineSuppressesTheFollowingLine) {
  const std::string code =
      "void f(MemoryQuota* q) {\n"
      "  // NOLINTNEXTLINE(dbs3-quota-pairing) // test\n"
      "  q->TryCharge(1);\n"
      "}\n";
  std::vector<TidySource> corpus;
  corpus.emplace_back("inline.cc", code);
  EXPECT_TRUE(RunChecks(corpus).empty());
}

TEST(Dbs3TidySuppressionTest, NolintForAnotherCheckDoesNotSuppress) {
  const std::string code =
      "void f(MemoryQuota* q) {\n"
      "  q->TryCharge(1);  // NOLINT(dbs3-no-alloc-in-hot-path) // wrong\n"
      "}\n";
  std::vector<TidySource> corpus;
  corpus.emplace_back("inline.cc", code);
  ASSERT_EQ(RunChecks(corpus).size(), 1u);
  EXPECT_EQ(RunChecks(corpus)[0].check, kQuotaPairing);
}

TEST(Dbs3TidySuppressionTest, BareNolintSuppressesEverything) {
  const std::string code =
      "void f(MemoryQuota* q) {\n"
      "  q->TryCharge(1);  // NOLINT\n"
      "}\n";
  std::vector<TidySource> corpus;
  corpus.emplace_back("inline.cc", code);
  EXPECT_TRUE(RunChecks(corpus).empty());
}

TEST(Dbs3TidyCorpusTest, OutOfLineConstructorResolvesAcrossFiles) {
  // The QueryRuntime::free_slots_ shape: declaration in a header, init
  // list in the .cc. Analyzed together the member is covered; the header
  // alone must not be judged in isolation by callers (RunChecks contract).
  const std::string header =
      "class Runtime {\n"
      " public:\n"
      "  explicit Runtime(size_t slots);\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  size_t free_slots_ GUARDED_BY(mu_);\n"
      "};\n";
  const std::string impl =
      "Runtime::Runtime(size_t slots) : free_slots_(slots) {}\n";
  std::vector<TidySource> corpus;
  corpus.emplace_back("runtime.h", header);
  corpus.emplace_back("runtime.cc", impl);
  EXPECT_TRUE(RunChecks(corpus, {kGuardedMemberInit}).empty());

  std::vector<TidySource> header_only;
  header_only.emplace_back("runtime.h", header);
  EXPECT_EQ(RunChecks(header_only, {kGuardedMemberInit}).size(), 1u);
}

TEST(Dbs3TidyCorpusTest, CheckFilterRunsOnlyTheNamedChecks) {
  std::string error;
  TidySource src = LoadSource(
      FixturePath("no_lock_across_emit_violation.cc"), &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<TidySource> corpus;
  corpus.push_back(std::move(src));
  EXPECT_TRUE(RunChecks(corpus, {kGuardedMemberInit}).empty());
  EXPECT_FALSE(RunChecks(corpus, {kNoLockAcrossEmit}).empty());
}

TEST(Dbs3TidyCorpusTest, AllCheckNamesAreRegistered) {
  const std::vector<std::string> names = AllCheckNames();
  EXPECT_EQ(names.size(), 5u);
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

}  // namespace
}  // namespace dbs3_tidy

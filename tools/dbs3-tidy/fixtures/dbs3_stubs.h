#ifndef DBS3_TOOLS_TIDY_FIXTURES_DBS3_STUBS_H_
#define DBS3_TOOLS_TIDY_FIXTURES_DBS3_STUBS_H_

// Minimal stand-ins for the engine types the dbs3-tidy fixtures exercise.
// Just enough surface that every fixture compiles as plain C++17 with no
// engine headers — the clang-tidy plugin runs the same fixtures through a
// real frontend, and checks match on *names* (Emit, PopBatch, TryCharge,
// GUARDED_BY, ...), so behavioral fidelity is irrelevant here.

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef GUARDED_BY
#define GUARDED_BY(mu)
#endif

namespace dbs3 {

struct Status {
  static Status OK() { return Status{}; }
  bool ok() const { return true; }
};

class Mutex {
 public:
  void Lock() {}
  void Unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

class CountingMutexLock {
 public:
  explicit CountingMutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~CountingMutexLock() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

struct Tuple {
  int64_t at(size_t) const { return 0; }
};

class Emitter {
 public:
  void Emit(size_t, Tuple) {}
  void EmitCopy(size_t, const Tuple&) {}
  void EmitConcat(size_t, const Tuple&, const Tuple&) {}
  void EmitSelect(size_t, const Tuple&) {}
};

struct Activation {};

class ActivationQueue {
 public:
  size_t PopBatch(size_t, std::vector<Activation>*) { return 0; }
};

class Operation {
 public:
  void PushData(size_t, Tuple) {}
  void PushDataChunk(size_t, std::vector<Tuple>) {}
  void PushTrigger(size_t) {}
  /// The worker-loop acquisition (batch of activations under one queue
  /// lock) — a consume call the cancel-in-consume-loop check recognizes.
  size_t AcquireBatch(size_t, std::vector<Activation>*) { return 0; }
};

class CancelToken {
 public:
  bool ShouldStop() const { return false; }
  bool cancelled() const { return false; }
};

class SpillFile {
 public:
  Status Rewind() { return Status::OK(); }
  bool ReadChunk(std::vector<Tuple>*) { return false; }
};

class MemoryQuota {
 public:
  [[nodiscard]] bool TryCharge(uint64_t) { return true; }
  void ForceCharge(uint64_t) {}
  void Release(uint64_t) {}
};

class ChargeGuard {
 public:
  explicit ChargeGuard(MemoryQuota* quota) : quota_(quota) {}
  ChargeGuard(MemoryQuota* quota, uint64_t units) : quota_(quota) {
    ok_ = quota_ == nullptr || quota_->TryCharge(units);
    if (ok_) held_ = units;
  }
  ~ChargeGuard() { ReleaseNow(); }
  bool ok() const { return ok_; }
  [[nodiscard]] bool TryAdd(uint64_t units) {
    if (quota_ == nullptr || quota_->TryCharge(units)) {
      held_ += units;
      return true;
    }
    return false;
  }
  void ReleaseNow() {
    if (quota_ != nullptr && held_ > 0) quota_->Release(held_);
    held_ = 0;
  }

 private:
  MemoryQuota* quota_ = nullptr;
  uint64_t held_ = 0;
  bool ok_ = true;
};

class Arena {
 public:
  std::vector<Tuple>* scratch() { return &scratch_; }

 private:
  std::vector<Tuple> scratch_;
};

}  // namespace dbs3

#endif  // DBS3_TOOLS_TIDY_FIXTURES_DBS3_STUBS_H_

// Fixture: dbs3-quota-pairing must fire on every seeded line.

#include "dbs3_stubs.h"

namespace dbs3 {

// The result of the charge is dropped on the floor: either it succeeded
// and nobody owns the units, or the caller proceeds with memory it was
// never granted.
void DroppedChargeResult(MemoryQuota* quota) {
  quota->TryCharge(8);  // DBS3-TIDY: dbs3-quota-pairing
}

// The charge is tested, but no Release / guard / ledger exists anywhere in
// the function: the early error return leaks the units forever.
bool ChargeWithoutAnyRelease(MemoryQuota* quota, bool input_ok) {
  if (!quota->TryCharge(1)) {  // DBS3-TIDY: dbs3-quota-pairing
    return false;
  }
  if (!input_ok) return false;
  return true;
}

// Forced charges owe the quota exactly like successful TryCharges do.
void ForcedChargeWithoutRelease(MemoryQuota* quota) {
  quota->ForceCharge(2);  // DBS3-TIDY: dbs3-quota-pairing
}

}  // namespace dbs3

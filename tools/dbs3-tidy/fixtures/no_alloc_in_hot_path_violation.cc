// Fixture: dbs3-no-alloc-in-hot-path must fire on every seeded line.

#include "dbs3_stubs.h"

#include <cstdlib>

namespace dbs3 {

class GrowingScratchInOnData {
 public:
  void OnData(size_t instance, Tuple tuple, Emitter* out) {
    scratch_.push_back(tuple);  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
    out->Emit(instance, tuple);
  }

 private:
  std::vector<Tuple> scratch_;
};

class HeapNewInBatchKernel {
 public:
  void OnDataBatch(size_t n, Tuple* tuples, Emitter* out) {
    int* counters = new int[n];  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
    for (size_t i = 0; i < n; ++i) counters[i] = 0;
    out->Emit(0, tuples[0]);
    delete[] counters;
  }
};

class MallocInProbe {
 public:
  size_t ProbeKeys(const int64_t* keys, size_t n, uint32_t* matches) {
    void* tmp = std::malloc(n);  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
    std::free(tmp);
    (void)keys;
    (void)matches;
    return 0;
  }
};

class ReserveInPredicateKernel {
 public:
  size_t EvalPredAll(const int64_t* column, size_t n) {
    hits_.reserve(n);  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
    (void)column;
    return hits_.size();
  }

 private:
  std::vector<uint32_t> hits_;
};

// The shared scan's tagged-emit path: building a fresh tag tuple per
// emitted row instead of reusing the prebuilt per-member tag.
class TagAllocInSharedEmit {
 public:
  void EmitTagged(size_t instance, const Tuple* rows, const uint32_t* sel,
                  size_t kept, Emitter* out) {
    for (size_t i = 0; i < kept; ++i) {
      Tuple* tag = new Tuple();  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
      out->EmitConcat(instance, *tag, rows[sel[i]]);
      delete tag;
    }
  }
};

// Staging emitted rows in a growing member buffer defeats the recycled
// chunk slot the tagged emit writes into.
class StagingBufferInSharedEmit {
 public:
  void EmitTagged(size_t instance, const Tuple* rows, const uint32_t* sel,
                  size_t kept, Emitter* out) {
    for (size_t i = 0; i < kept; ++i) {
      staged_.push_back(rows[sel[i]]);  // DBS3-TIDY: dbs3-no-alloc-in-hot-path
    }
    for (const Tuple& row : staged_) out->EmitConcat(instance, tag_, row);
  }

 private:
  Tuple tag_;
  std::vector<Tuple> staged_;
};

}  // namespace dbs3

// Fixture: dbs3-no-lock-across-emit must fire on every seeded line.
// Each expected finding is annotated in place with the DBS3-TIDY marker;
// the harness compares the analyzer's (line, check) set against them.

#include "dbs3_stubs.h"

namespace dbs3 {

class FlushUnderRaiiLock {
 public:
  void OnFinish(size_t instance, Emitter* out) {
    MutexLock lock(&mu_);
    for (const Tuple& t : rows_) {
      out->EmitCopy(instance, t);  // DBS3-TIDY: dbs3-no-lock-across-emit
    }
  }

 private:
  Mutex mu_;
  std::vector<Tuple> rows_;
};

class FlushUnderCountingLock {
 public:
  void Drain(size_t instance, Emitter* out) {
    CountingMutexLock lock(&mu_);
    out->Emit(instance, Tuple{});  // DBS3-TIDY: dbs3-no-lock-across-emit
  }

 private:
  Mutex mu_;
};

class PushUnderManualLock {
 public:
  void Forward(size_t instance, Operation* downstream) {
    mu_.Lock();
    downstream->PushTrigger(instance);  // DBS3-TIDY: dbs3-no-lock-across-emit
    mu_.Unlock();
  }

 private:
  Mutex mu_;
};

class EmitInNestedScopeUnderLock {
 public:
  void OnFinish(size_t instance, Emitter* out) {
    MutexLock lock(&mu_);
    if (!rows_.empty()) {
      while (instance > 0) {
        out->EmitConcat(instance, rows_[0], rows_[1]);  // DBS3-TIDY: dbs3-no-lock-across-emit
        --instance;
      }
    }
  }

 private:
  Mutex mu_;
  std::vector<Tuple> rows_;
};

}  // namespace dbs3

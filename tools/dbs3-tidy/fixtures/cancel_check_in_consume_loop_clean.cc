// Fixture: the conforming twin of cancel_check_in_consume_loop_violation.cc
// — every consuming loop consults the CancelToken each iteration. Zero
// findings expected.

#include "dbs3_stubs.h"

namespace dbs3 {

// The canonical shape: cancellation is part of the loop condition.
void DrainUntilStopped(ActivationQueue* queue, CancelToken* cancel) {
  std::vector<Activation> batch;
  while (!cancel->ShouldStop()) {
    if (queue->PopBatch(64, &batch) == 0) break;
  }
}

// Equivalent: an early-exit check at the top of the body.
Status StreamWithPerChunkCheck(SpillFile* file, const CancelToken& cancel) {
  std::vector<Tuple> chunk;
  while (file->ReadChunk(&chunk)) {
    if (cancel.ShouldStop()) return Status::OK();
    chunk.clear();
  }
  return Status::OK();
}

// The `cancelled()` spelling counts too.
void DrainPolling(ActivationQueue* queue, CancelToken* cancel) {
  std::vector<Activation> batch;
  for (int pass = 0; pass < 1000 && !cancel->cancelled(); ++pass) {
    queue->PopBatch(64, &batch);
  }
}

// A loop that never consumes needs no check: the invariant binds consuming
// loops only, so spinning on arithmetic stays out of scope.
size_t NonConsumingLoop(size_t n) {
  size_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += i;
  return sum;
}

// The shared result router's drain shape done right: the batch-level token
// is consulted every chunk, so a batch cancel stops routing promptly even
// with tagged tuples still queued.
void RouteTaggedChunksUntilStopped(ActivationQueue* queue, Operation* sinks,
                                   const CancelToken& batch_cancel) {
  std::vector<Activation> chunk;
  while (!batch_cancel.ShouldStop()) {
    if (queue->PopBatch(128, &chunk) == 0) break;
    for (const Activation& a : chunk) {
      (void)a;
      sinks->PushTrigger(0);
    }
  }
}

// The park-wait worker loop done right: the token is consulted at every
// activation boundary, the same grain park requests are claimed at, so
// both cancellation and mid-query worker release stay bounded.
void WorkerLoopWithToken(Operation* op, const CancelToken& cancel) {
  std::vector<Activation> batch;
  while (!cancel.ShouldStop()) {
    if (op->AcquireBatch(0, &batch) == 0) break;
    batch.clear();
  }
}

// Spilled-batch replay with a per-chunk check: a cancelled member stops
// paying for the replay after at most one chunk.
Status ReplaySpilledBatchChecked(SpillFile* file, Operation* sinks,
                                 const CancelToken& cancel) {
  std::vector<Tuple> chunk;
  while (file->ReadChunk(&chunk)) {
    if (cancel.cancelled()) return Status::OK();
    for (const Tuple& t : chunk) sinks->PushData(0, t);
    chunk.clear();
  }
  return Status::OK();
}

}  // namespace dbs3

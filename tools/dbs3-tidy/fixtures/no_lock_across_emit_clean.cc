// Fixture: the conforming twin of no_lock_across_emit_violation.cc — the
// same flush shapes restructured to release the lock before emitting. The
// harness requires zero findings here.

#include "dbs3_stubs.h"

#include <utility>

namespace dbs3 {

class FlushAfterMoveOut {
 public:
  void OnFinish(size_t instance, Emitter* out) {
    std::vector<Tuple> rows;
    {
      MutexLock lock(&mu_);
      rows.swap(rows_);
    }
    for (const Tuple& t : rows) out->EmitCopy(instance, t);
  }

 private:
  Mutex mu_;
  std::vector<Tuple> rows_;
};

class PushAfterManualUnlock {
 public:
  void Forward(size_t instance, Operation* downstream) {
    mu_.Lock();
    const bool ready = ready_;
    mu_.Unlock();
    if (ready) downstream->PushTrigger(instance);
  }

 private:
  Mutex mu_;
  bool ready_ = false;
};

class LockScopeEndsBeforeEmit {
 public:
  void Drain(size_t instance, Emitter* out) {
    Tuple snapshot;
    if (instance > 0) {
      MutexLock lock(&mu_);
      snapshot = pending_;
    }
    out->Emit(instance, snapshot);
  }

 private:
  Mutex mu_;
  Tuple pending_;
};

}  // namespace dbs3

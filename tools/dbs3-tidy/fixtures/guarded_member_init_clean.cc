// Fixture: the conforming twin of guarded_member_init_violation.cc — every
// scalar GUARDED_BY member is initialized in-class, in an in-class
// constructor init list, or in an out-of-line constructor definition.
// Zero findings expected.

#include "dbs3_stubs.h"

namespace dbs3 {

// The preferred spelling: initialize at the declaration.
class InClassInitializers {
 private:
  Mutex mu_;
  size_t pending_ GUARDED_BY(mu_) = 0;
  bool draining_ GUARDED_BY(mu_) = false;
  Tuple* head_ GUARDED_BY(mu_) = nullptr;
};

// An in-class constructor init list covers the member.
class InClassConstructor {
 public:
  explicit InClassConstructor(size_t slots) : free_slots_(slots) {}

 private:
  Mutex mu_;
  size_t free_slots_ GUARDED_BY(mu_);
};

// An out-of-line constructor counts too — the check resolves init lists
// across the whole corpus, mirroring the QueryRuntime::free_slots_ shape
// in the real tree.
class OutOfLineConstructor {
 public:
  explicit OutOfLineConstructor(int64_t budget);

 private:
  Mutex mu_;
  int64_t budget_ GUARDED_BY(mu_);
};

OutOfLineConstructor::OutOfLineConstructor(int64_t budget)
    : budget_(budget) {}

// Non-scalar guarded members are out of scope: class types have default
// constructors.
class NonScalarGuardedMember {
 private:
  Mutex mu_;
  std::vector<Tuple> rows_ GUARDED_BY(mu_);
};

}  // namespace dbs3

// Fixture: the conforming twin of quota_pairing_violation.cc — every
// charge is owned by a ChargeGuard, paired with an explicit Release, or
// recorded in a charge ledger. Zero findings expected.

#include "dbs3_stubs.h"

namespace dbs3 {

// RAII ownership: the guard returns the units on every exit path.
bool GuardOwnedCharge(MemoryQuota* quota, bool input_ok) {
  ChargeGuard guard(quota, 8);
  if (!guard.ok()) return false;
  if (!input_ok) return false;  // Guard releases here too.
  return true;
}

// Explicit pairing: the charge is released on both the error path and the
// success path.
bool ExplicitlyPairedCharge(MemoryQuota* quota, bool input_ok) {
  if (!quota->TryCharge(1)) return false;
  if (!input_ok) {
    quota->Release(1);
    return false;
  }
  quota->Release(1);
  return true;
}

// A recorded ledger: the member counter tracks what is owed, and another
// phase (flush/teardown) releases `charged_` in bulk — the engine's
// accumulate-then-release idiom.
class LedgerRecordedCharge {
 public:
  bool Accumulate(Tuple tuple) {
    if (!quota_->TryCharge(1)) return false;
    ++charged_;
    rows_.push_back(tuple);
    return true;
  }

 private:
  MemoryQuota* quota_ = nullptr;
  uint64_t charged_ = 0;
  std::vector<Tuple> rows_;
};

// Incremental guard growth: TryAdd records each unit inside the guard.
size_t IncrementalGuardGrowth(MemoryQuota* quota, size_t want) {
  ChargeGuard guard(quota);
  size_t granted = 0;
  while (granted < want && guard.TryAdd(1)) ++granted;
  return granted;
}

}  // namespace dbs3

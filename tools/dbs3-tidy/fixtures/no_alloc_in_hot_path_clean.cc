// Fixture: the conforming twin of no_alloc_in_hot_path_violation.cc —
// kernel surfaces that stay allocation-free or route growth through the
// blessed Arena / ChunkPool receivers. Zero findings expected.

#include "dbs3_stubs.h"

namespace dbs3 {

class ArenaBackedOnData {
 public:
  void OnData(size_t instance, Tuple tuple, Emitter* out) {
    // Growth through the arena is the sanctioned path: its chunks are
    // recycled, so the kernel stays free of per-tuple heap traffic.
    arena_->scratch()->push_back(tuple);
    out->Emit(instance, tuple);
  }

 private:
  Arena* arena_ = nullptr;
};

class PoolReceiverOnDataBatch {
 public:
  void OnDataBatch(size_t n, Tuple* tuples, Emitter* out) {
    for (size_t i = 0; i < n; ++i) chunk_pool_.push_back(tuples[i]);
    out->Emit(0, tuples[0]);
  }

 private:
  std::vector<Tuple> chunk_pool_;
};

class AllocationFreeProbe {
 public:
  size_t ProbeKeys(const int64_t* keys, size_t n, uint32_t* matches) {
    size_t found = 0;
    for (size_t i = 0; i < n; ++i) {
      if (keys[i] == 0) matches[found++] = static_cast<uint32_t>(i);
    }
    return found;
  }
};

class SetupOutsideTheKernel {
 public:
  // Non-hot-path setup may allocate freely; the check keys on the kernel
  // surface names only.
  void Prepare(size_t n) { hits_.reserve(n); }

  size_t EvalPredAll(const int64_t* column, size_t n) {
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) count += column[i] > 0 ? 1 : 0;
    return count;
  }

 private:
  std::vector<uint32_t> hits_;
};

// The shared scan's tagged-emit shape done right: the per-member tag tuple
// is prebuilt outside the kernel and EmitConcat writes [tag, row] straight
// into a recycled chunk slot — zero allocations per emitted row.
class PrebuiltTagSharedEmit {
 public:
  // Tag construction happens once, off the kernel surface.
  void Prepare(size_t members) {
    tags_.resize(members);
  }

  void EmitTagged(size_t instance, const Tuple* rows, const uint32_t* sel,
                  size_t kept, size_t member, Emitter* out) {
    const Tuple& tag = tags_[member];
    for (size_t i = 0; i < kept; ++i) {
      out->EmitConcat(instance, tag, rows[sel[i]]);
    }
  }

 private:
  std::vector<Tuple> tags_;
};

// Growth routed through a pool receiver is the sanctioned staging path.
class PoolStagedSharedEmit {
 public:
  void EmitTagged(size_t instance, const Tuple* rows, const uint32_t* sel,
                  size_t kept, Emitter* out) {
    for (size_t i = 0; i < kept; ++i) chunk_pool_.push_back(rows[sel[i]]);
    for (const Tuple& row : chunk_pool_) out->EmitConcat(instance, tag_, row);
  }

 private:
  Tuple tag_;
  std::vector<Tuple> chunk_pool_;
};

}  // namespace dbs3

// Fixture: dbs3-guarded-member-init must fire on every seeded line.
// -Wthread-safety covers locked access, not construction: a scalar left
// uninitialized reads garbage until the first locked write.

#include "dbs3_stubs.h"

namespace dbs3 {

// No constructor at all: the members are never written before first use.
class NoConstructorAtAll {
 private:
  Mutex mu_;
  size_t pending_ GUARDED_BY(mu_);  // DBS3-TIDY: dbs3-guarded-member-init
  bool draining_ GUARDED_BY(mu_);  // DBS3-TIDY: dbs3-guarded-member-init
};

// A constructor exists but skips one member.
class ConstructorSkipsOne {
 public:
  ConstructorSkipsOne() : pending_(0) {}

 private:
  Mutex mu_;
  size_t pending_ GUARDED_BY(mu_);
  int64_t high_water_ GUARDED_BY(mu_);  // DBS3-TIDY: dbs3-guarded-member-init
};

// Raw pointers are scalars too: an indeterminate pointer is worse than an
// indeterminate counter.
class UninitializedGuardedPointer {
 private:
  Mutex mu_;
  Tuple* head_ GUARDED_BY(mu_);  // DBS3-TIDY: dbs3-guarded-member-init
};

}  // namespace dbs3

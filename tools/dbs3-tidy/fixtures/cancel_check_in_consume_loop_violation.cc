// Fixture: dbs3-cancel-check-in-consume-loop must fire on every seeded
// line. The diagnostic anchors to the loop keyword, not the popping call.

#include "dbs3_stubs.h"

namespace dbs3 {

// Unbounded drain with no way out: cancellation waits for the queue to
// empty on its own.
void DrainForever(ActivationQueue* queue) {
  std::vector<Activation> batch;
  while (true) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    if (queue->PopBatch(64, &batch) == 0) break;
  }
}

// Spill streaming without a cancel check: latency scales with file size.
Status StreamWholeFile(SpillFile* file) {
  std::vector<Tuple> chunk;
  while (file->ReadChunk(&chunk)) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    chunk.clear();
  }
  return Status::OK();
}

// The cancel check outside the loop does not help the iterations inside.
void CheckedOnlyBeforeTheLoop(ActivationQueue* queue, CancelToken* cancel) {
  if (cancel->ShouldStop()) return;
  std::vector<Activation> batch;
  for (int pass = 0; pass < 1000; ++pass) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    queue->PopBatch(64, &batch);
  }
}

}  // namespace dbs3

// Fixture: dbs3-cancel-check-in-consume-loop must fire on every seeded
// line. The diagnostic anchors to the loop keyword, not the popping call.

#include "dbs3_stubs.h"

namespace dbs3 {

// Unbounded drain with no way out: cancellation waits for the queue to
// empty on its own.
void DrainForever(ActivationQueue* queue) {
  std::vector<Activation> batch;
  while (true) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    if (queue->PopBatch(64, &batch) == 0) break;
  }
}

// Spill streaming without a cancel check: latency scales with file size.
Status StreamWholeFile(SpillFile* file) {
  std::vector<Tuple> chunk;
  while (file->ReadChunk(&chunk)) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    chunk.clear();
  }
  return Status::OK();
}

// The cancel check outside the loop does not help the iterations inside.
void CheckedOnlyBeforeTheLoop(ActivationQueue* queue, CancelToken* cancel) {
  if (cancel->ShouldStop()) return;
  std::vector<Activation> batch;
  for (int pass = 0; pass < 1000; ++pass) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    queue->PopBatch(64, &batch);
  }
}

// The shared result router's drain shape: demultiplexing tagged chunks to
// per-member sinks. Without a per-iteration check a cancelled member's
// tuples keep flowing until the whole batch finishes.
void RouteTaggedChunks(ActivationQueue* queue, Operation* sinks) {
  std::vector<Activation> chunk;
  while (true) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    if (queue->PopBatch(128, &chunk) == 0) break;
    for (const Activation& a : chunk) {
      (void)a;
      sinks->PushTrigger(0);
    }
  }
}

// The park-wait worker-loop shape without a token: a worker acquiring
// activation batches must consult the token each boundary, or a park /
// cancel request waits for the whole drain.
void WorkerLoopWithoutToken(Operation* op) {
  std::vector<Activation> batch;
  while (true) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    if (op->AcquireBatch(0, &batch) == 0) break;
    batch.clear();
  }
}

// Replaying a spilled shared batch to late members: the file drives the
// loop, so a cancel can only land between files, not between chunks.
Status ReplaySpilledBatch(SpillFile* file, Operation* sinks) {
  std::vector<Tuple> chunk;
  while (file->ReadChunk(&chunk)) {  // DBS3-TIDY: dbs3-cancel-check-in-consume-loop
    for (const Tuple& t : chunk) sinks->PushData(0, t);
    chunk.clear();
  }
  return Status::OK();
}

}  // namespace dbs3

#include "QuotaPairingCheck.h"

#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace dbs3_tidy {

namespace {

/// The ledger idiom: a mutation of a variable/field whose name contains
/// "charged" or "held" records units some later phase releases in bulk.
bool NameIsLedger(StringRef Name) {
  const std::string Lower = Name.lower();
  return Lower.find("charged") != std::string::npos ||
         Lower.find("held") != std::string::npos;
}

}  // namespace

void QuotaPairingCheck::registerMatchers(MatchFinder* Finder) {
  const auto InFunc = hasAncestor(functionDecl().bind("func"));
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("TryCharge", "ForceCharge"))),
          InFunc)
          .bind("charge"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                            "Release", "ReleaseNow", "Disarm"))),
                        InFunc),
      this);
  Finder->addMatcher(
      varDecl(hasType(cxxRecordDecl(hasName("ChargeGuard"))), InFunc), this);
  // Ledger mutations: `++x.charged`, `charged_ += n`, `state.held = units`.
  Finder->addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(anyOf(memberExpr().bind("lhs_member"),
                                  declRefExpr().bind("lhs_ref"))),
                     InFunc),
      this);
  Finder->addMatcher(
      unaryOperator(hasAnyOperatorName("++", "--"),
                    hasUnaryOperand(anyOf(memberExpr().bind("lhs_member"),
                                          declRefExpr().bind("lhs_ref"))),
                    InFunc),
      this);
}

void QuotaPairingCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr) return;

  if (const auto* Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("charge")) {
    Charge C;
    C.Loc = Call->getBeginLoc();
    const auto* Method = Call->getMethodDecl();
    if (Method != nullptr && Method->getName() == "TryCharge") {
      // Result dropped when the call's parent is a statement context.
      const auto Parents = Result.Context->getParents(*Call);
      for (const auto& P : Parents) {
        if (P.get<CompoundStmt>() != nullptr) C.ResultDropped = true;
        if (const auto* Cleanups = P.get<ExprWithCleanups>()) {
          const auto GP = Result.Context->getParents(*Cleanups);
          for (const auto& G : GP) {
            if (G.get<CompoundStmt>() != nullptr) C.ResultDropped = true;
          }
        }
      }
    }
    Charges_[Func].push_back(C);
    return;
  }

  // Any other match marks the function as having a pairing mechanism.
  if (const auto* Member = Result.Nodes.getNodeAs<MemberExpr>("lhs_member")) {
    if (!NameIsLedger(Member->getMemberDecl()->getName())) return;
  } else if (const auto* Ref =
                 Result.Nodes.getNodeAs<DeclRefExpr>("lhs_ref")) {
    if (!NameIsLedger(Ref->getDecl()->getName())) return;
  }
  HasPairing_[Func] = true;
}

void QuotaPairingCheck::onEndOfTranslationUnit() {
  for (const auto& [Func, Charges] : Charges_) {
    const bool Paired =
        HasPairing_.count(Func) > 0 && HasPairing_.at(Func);
    for (const Charge& C : Charges) {
      if (C.ResultDropped) {
        diag(C.Loc,
             "TryCharge result is dropped: the charge either leaked or "
             "never happened; hold it in a ChargeGuard or branch on the "
             "result");
        continue;
      }
      if (!Paired) {
        diag(C.Loc,
             "quota charge has no matching Release, ChargeGuard, or "
             "recorded charge ledger in this function; every exit path "
             "must return these units (use ChargeGuard — see "
             "common/memory_quota.h)");
      }
    }
  }
  Charges_.clear();
  HasPairing_.clear();
}

}  // namespace dbs3_tidy

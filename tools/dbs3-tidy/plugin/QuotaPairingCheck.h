#ifndef DBS3_TOOLS_TIDY_PLUGIN_QUOTAPAIRINGCHECK_H_
#define DBS3_TOOLS_TIDY_PLUGIN_QUOTAPAIRINGCHECK_H_

#include <map>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace dbs3_tidy {

/// dbs3-quota-pairing: every MemoryQuota::TryCharge / ForceCharge must pair
/// with a Release on every exit path, be held by a ChargeGuard, or feed a
/// recorded charge ledger (a `charged`/`held` counter another phase
/// releases in bulk). A TryCharge whose result is discarded is always
/// wrong: the charge either leaked or never happened.
///
/// Pairing is judged per enclosing callable, accumulated across matches
/// and reported at end of translation unit.
class QuotaPairingCheck : public clang::tidy::ClangTidyCheck {
 public:
  QuotaPairingCheck(llvm::StringRef Name,
                    clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
  void onEndOfTranslationUnit() override;

 private:
  struct Charge {
    clang::SourceLocation Loc;
    bool ResultDropped = false;
  };
  std::map<const clang::FunctionDecl*, std::vector<Charge>> Charges_;
  std::map<const clang::FunctionDecl*, bool> HasPairing_;
};

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PLUGIN_QUOTAPAIRINGCHECK_H_

#include "NoLockAcrossEmitCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace dbs3_tidy {

namespace {

constexpr const char* kEmitCall = "emit_call";

/// True when `S` (a statement inside `Body`) executes after a local
/// MutexLock/CountingMutexLock declaration in the same or an enclosing
/// compound statement — i.e. the RAII guard is still alive at `S`.
bool LockInScopeBefore(ASTContext& Ctx, const Stmt* S) {
  const SourceManager& SM = Ctx.getSourceManager();
  const SourceLocation CallLoc = S->getBeginLoc();
  DynTypedNodeList Parents = Ctx.getParents(*S);
  while (!Parents.empty()) {
    const DynTypedNode& Node = Parents[0];
    if (const auto* Compound = Node.get<CompoundStmt>()) {
      for (const Stmt* Child : Compound->body()) {
        if (!SM.isBeforeInTranslationUnit(Child->getBeginLoc(), CallLoc))
          break;
        const auto* Decls = dyn_cast<DeclStmt>(Child);
        if (Decls == nullptr) continue;
        for (const Decl* D : Decls->decls()) {
          const auto* Var = dyn_cast<VarDecl>(D);
          if (Var == nullptr) continue;
          const std::string Type =
              Var->getType().getCanonicalType().getAsString();
          if (Type.find("MutexLock") != std::string::npos) return true;
        }
      }
    }
    if (Node.get<FunctionDecl>() != nullptr ||
        Node.get<LambdaExpr>() != nullptr) {
      return false;  // Reached the enclosing callable: no guard found.
    }
    Parents = Ctx.getParents(Node);
  }
  return false;
}

/// True when a manual `mu.Lock()` precedes `S` in the enclosing function
/// with no `mu.Unlock()` in between (textual approximation, same contract
/// as the portable engine).
bool ManualLockHeldBefore(ASTContext& Ctx, const Stmt* S,
                          const FunctionDecl* Func) {
  if (Func == nullptr || !Func->hasBody()) return false;
  const SourceManager& SM = Ctx.getSourceManager();
  const SourceLocation CallLoc = S->getBeginLoc();
  bool Held = false;
  // Walk every member call in the body in source order.
  struct Visitor : RecursiveASTVisitor<Visitor> {
    const SourceManager* SM = nullptr;
    SourceLocation Limit;
    bool* Held = nullptr;
    bool VisitCXXMemberCallExpr(CXXMemberCallExpr* Call) {
      if (!SM->isBeforeInTranslationUnit(Call->getBeginLoc(), Limit))
        return true;
      const auto* Method = Call->getMethodDecl();
      if (Method == nullptr) return true;
      const StringRef Name = Method->getName();
      if (Name == "Lock") *Held = true;
      if (Name == "Unlock") *Held = false;
      return true;
    }
  } V;
  V.SM = &SM;
  V.Limit = CallLoc;
  V.Held = &Held;
  V.TraverseStmt(Func->getBody());
  return Held;
}

}  // namespace

void NoLockAcrossEmitCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("Emit", "EmitCopy", "EmitConcat",
                                          "EmitSelect", "PushData",
                                          "PushDataChunk", "PushTrigger"))),
          hasAncestor(functionDecl().bind("func")))
          .bind(kEmitCall),
      this);
}

void NoLockAcrossEmitCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>(kEmitCall);
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Call == nullptr) return;
  ASTContext& Ctx = *Result.Context;
  if (!LockInScopeBefore(Ctx, Call) &&
      !ManualLockHeldBefore(Ctx, Call, Func)) {
    return;
  }
  diag(Call->getBeginLoc(),
       "%0 called while a mutex is held; emitting can block on a bounded "
       "ActivationQueue under back-pressure — release the lock (move state "
       "out) before emitting")
      << Call->getMethodDecl()->getName();
}

}  // namespace dbs3_tidy

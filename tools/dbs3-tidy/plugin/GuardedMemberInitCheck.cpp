#include "GuardedMemberInitCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace dbs3_tidy {

namespace {

bool IsScalar(QualType T) {
  const QualType Canonical = T.getCanonicalType();
  return Canonical->isIntegerType() || Canonical->isBooleanType() ||
         Canonical->isEnumeralType() || Canonical->isPointerType() ||
         Canonical->isFloatingType();
}

}  // namespace

void GuardedMemberInitCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(fieldDecl().bind("field"), this);
  Finder->addMatcher(cxxConstructorDecl(isDefinition()).bind("ctor"), this);
}

void GuardedMemberInitCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Field = Result.Nodes.getNodeAs<FieldDecl>("field")) {
    if (!Field->hasAttr<GuardedByAttr>()) return;
    if (Field->hasInClassInitializer()) return;
    if (!IsScalar(Field->getType())) return;
    Candidates_.push_back(Field);
    return;
  }
  if (const auto* Ctor =
          Result.Nodes.getNodeAs<CXXConstructorDecl>("ctor")) {
    const CXXRecordDecl* Class = Ctor->getParent();
    for (const CXXCtorInitializer* Init : Ctor->inits()) {
      if (Init->isMemberInitializer() && Init->getMember() != nullptr) {
        CtorInits_[Class->getCanonicalDecl()->getDefinition()].insert(
            Init->getMember()->getCanonicalDecl());
      }
    }
  }
}

void GuardedMemberInitCheck::onEndOfTranslationUnit() {
  for (const FieldDecl* Field : Candidates_) {
    const auto* Class = dyn_cast<CXXRecordDecl>(Field->getParent());
    if (Class == nullptr) continue;
    const auto It = CtorInits_.find(Class->getCanonicalDecl()->getDefinition());
    if (It != CtorInits_.end() &&
        It->second.count(Field->getCanonicalDecl()) > 0) {
      continue;
    }
    diag(Field->getLocation(),
         "GUARDED_BY member %0 has no in-class initializer and no "
         "constructor initializes it; -Wthread-safety does not cover "
         "construction, so this reads garbage until first locked write — "
         "initialize it at the declaration")
        << Field;
  }
  Candidates_.clear();
  CtorInits_.clear();
}

}  // namespace dbs3_tidy

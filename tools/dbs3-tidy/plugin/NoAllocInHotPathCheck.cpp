#include "NoAllocInHotPathCheck.h"

#include <algorithm>
#include <string>

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace dbs3_tidy {

namespace {

AST_MATCHER(FunctionDecl, isHotPathFunction) {
  static const char* kNames[] = {"OnData",      "OnDataBatch", "Probe",
                                 "ProbeKeys",   "ProbeHashed", "EvalPredAll",
                                 "EvalRow",     "HashColumn",  "EmitTagged"};
  const auto Name = Node.getNameAsString();
  for (const char* N : kNames) {
    if (Name == N) return true;
  }
  return false;
}

/// Lowercased source text of the member-call receiver; "arena"/"pool"
/// substrings mark the blessed allocators.
bool ReceiverIsBlessed(const CXXMemberCallExpr& Call, ASTContext& Ctx) {
  const Expr* Object = Call.getImplicitObjectArgument();
  if (Object == nullptr) return false;
  const StringRef Text = Lexer::getSourceText(
      CharSourceRange::getTokenRange(Object->getSourceRange()),
      Ctx.getSourceManager(), Ctx.getLangOpts());
  std::string Lower = Text.lower();
  return Lower.find("arena") != std::string::npos ||
         Lower.find("pool") != std::string::npos;
}

}  // namespace

void NoAllocInHotPathCheck::registerMatchers(MatchFinder* Finder) {
  const auto InHotPath =
      hasAncestor(functionDecl(isHotPathFunction()).bind("func"));
  Finder->addMatcher(cxxNewExpr(InHotPath).bind("new"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("malloc", "calloc", "realloc", "strdup"))),
               InHotPath)
          .bind("malloc"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName(
              "push_back", "emplace_back", "resize", "reserve", "insert",
              "emplace", "append", "assign"))),
          InHotPath)
          .bind("grow"),
      this);
}

void NoAllocInHotPathCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  const StringRef FuncName = Func != nullptr ? Func->getName() : "?";

  if (const auto* New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    if (New->getNumPlacementArgs() > 0) return;  // Arena placement-new.
    diag(New->getBeginLoc(),
         "hot-path function %0 allocates with operator new; kernel "
         "surfaces must stay allocation-free (use the execution Arena or "
         "ChunkPool)")
        << FuncName;
    return;
  }
  if (const auto* Malloc = Result.Nodes.getNodeAs<CallExpr>("malloc")) {
    diag(Malloc->getBeginLoc(),
         "hot-path function %0 calls a malloc-family allocator; kernel "
         "surfaces must stay allocation-free")
        << FuncName;
    return;
  }
  if (const auto* Grow = Result.Nodes.getNodeAs<CXXMemberCallExpr>("grow")) {
    if (ReceiverIsBlessed(*Grow, *Result.Context)) return;
    diag(Grow->getBeginLoc(),
         "hot-path function %0 grows a container with %1; only "
         "ChunkPool/Arena-backed storage may grow on the kernel surface")
        << FuncName << Grow->getMethodDecl()->getName();
  }
}

}  // namespace dbs3_tidy

#ifndef DBS3_TOOLS_TIDY_PLUGIN_NOLOCKACROSSEMITCHECK_H_
#define DBS3_TOOLS_TIDY_PLUGIN_NOLOCKACROSSEMITCHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace dbs3_tidy {

/// dbs3-no-lock-across-emit: flags Emit/EmitCopy/EmitConcat/EmitSelect/
/// PushData/PushDataChunk/PushTrigger calls made while a dbs3::MutexLock /
/// CountingMutexLock RAII guard (or a manual Mutex::Lock) is in scope.
/// Emitting can block on a bounded ActivationQueue under back-pressure;
/// blocking while holding an instance mutex is the engine's canonical
/// deadlock shape.
class NoLockAcrossEmitCheck : public clang::tidy::ClangTidyCheck {
 public:
  NoLockAcrossEmitCheck(llvm::StringRef Name,
                        clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PLUGIN_NOLOCKACROSSEMITCHECK_H_

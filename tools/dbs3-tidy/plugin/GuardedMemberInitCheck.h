#ifndef DBS3_TOOLS_TIDY_PLUGIN_GUARDEDMEMBERINITCHECK_H_
#define DBS3_TOOLS_TIDY_PLUGIN_GUARDEDMEMBERINITCHECK_H_

#include <map>
#include <set>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace dbs3_tidy {

/// dbs3-guarded-member-init: a GUARDED_BY member of scalar type (integer,
/// bool, enum, pointer) must have an in-class initializer or be
/// initialized in every constructor's init list. -Wthread-safety verifies
/// locked *access*, not construction — an uninitialized guarded scalar
/// reads garbage until the first locked write, and no analysis will
/// notice. Resolution is deferred to end of translation unit so
/// out-of-line constructor definitions (QueryRuntime::free_slots_ shape)
/// are seen.
class GuardedMemberInitCheck : public clang::tidy::ClangTidyCheck {
 public:
  GuardedMemberInitCheck(llvm::StringRef Name,
                         clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
  void onEndOfTranslationUnit() override;

 private:
  std::vector<const clang::FieldDecl*> Candidates_;
  /// Class -> members covered by some constructor init list.
  std::map<const clang::CXXRecordDecl*, std::set<const clang::FieldDecl*>>
      CtorInits_;
};

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PLUGIN_GUARDEDMEMBERINITCHECK_H_

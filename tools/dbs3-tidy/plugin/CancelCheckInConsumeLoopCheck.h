#ifndef DBS3_TOOLS_TIDY_PLUGIN_CANCELCHECKINCONSUMELOOPCHECK_H_
#define DBS3_TOOLS_TIDY_PLUGIN_CANCELCHECKINCONSUMELOOPCHECK_H_

#include <set>

#include "clang-tidy/ClangTidyCheck.h"

namespace dbs3_tidy {

/// dbs3-cancel-check-in-consume-loop: a loop that pops activations
/// (ActivationQueue::PopBatch) or streams spill chunks
/// (SpillFile::ReadChunk) must consult a CancelToken (ShouldStop() or
/// cancelled()) every iteration — otherwise cancellation latency scales
/// with queue depth or spill-file size. The check binds to the innermost
/// enclosing loop; an outer loop's check does not cover an inner drain.
class CancelCheckInConsumeLoopCheck : public clang::tidy::ClangTidyCheck {
 public:
  CancelCheckInConsumeLoopCheck(llvm::StringRef Name,
                                clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;

 private:
  /// Loops already reported, to collapse multi-consume loops to one diag.
  std::set<const clang::Stmt*> Reported_;
};

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PLUGIN_CANCELCHECKINCONSUMELOOPCHECK_H_

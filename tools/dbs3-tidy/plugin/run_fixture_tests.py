#!/usr/bin/env python3
"""Validates the dbs3-tidy clang-tidy plugin against the shared fixtures.

Runs `clang-tidy -load <plugin> -checks=dbs3-*` over every fixture under
../fixtures/ and compares emitted (line, check) findings against the
`// DBS3-TIDY: <check>` annotations — the same contract check_dbs3_tidy
enforces for the portable engine. Violation fixtures must fire on every
annotated line with no extras; clean twins must stay silent.

Usage:
  run_fixture_tests.py --plugin build/libdbs3-tidy.so \
      [--clang-tidy clang-tidy-15] [--fixtures ../fixtures]

Exit status: 0 when every fixture matches, 1 otherwise.
"""

import argparse
import pathlib
import re
import subprocess
import sys

ANNOTATION = re.compile(r"//\s*DBS3-TIDY:\s*([a-z0-9-]+(?:\s+[a-z0-9-]+)*)")
DIAGNOSTIC = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+):\d+: "
                        r"(?:warning|error): .* \[(?P<check>dbs3-[a-z-]+)\]")


def expected_findings(path: pathlib.Path) -> set[tuple[int, str]]:
    expected = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = ANNOTATION.search(text)
        if match:
            for check in match.group(1).split():
                expected.add((lineno, check))
    return expected


def actual_findings(clang_tidy: str, plugin: str, fixture: pathlib.Path,
                    include_dir: pathlib.Path) -> set[tuple[int, str]]:
    cmd = [
        clang_tidy,
        f"-load={plugin}",
        "-checks=-*,dbs3-*",
        str(fixture),
        "--",
        "-std=c++17",
        f"-I{include_dir}",
        # Map GUARDED_BY onto the clang attribute so the plugin's
        # AST-level check sees what -Wthread-safety builds see.
        "-DGUARDED_BY(x)=__attribute__((guarded_by(x)))",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    findings = set()
    for line in proc.stdout.splitlines():
        match = DIAGNOSTIC.match(line)
        if match and pathlib.Path(match.group("file")).name == fixture.name:
            findings.add((int(match.group("line")), match.group("check")))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument(
        "--fixtures",
        default=str(pathlib.Path(__file__).resolve().parent.parent /
                    "fixtures"))
    args = parser.parse_args()

    fixtures_dir = pathlib.Path(args.fixtures)
    fixtures = sorted(fixtures_dir.glob("*.cc"))
    if not fixtures:
        print(f"no fixtures found under {fixtures_dir}", file=sys.stderr)
        return 1

    failures = 0
    for fixture in fixtures:
        expected = expected_findings(fixture)
        actual = actual_findings(args.clang_tidy, args.plugin, fixture,
                                 fixtures_dir)
        missing = expected - actual
        extra = actual - expected
        status = "ok" if not missing and not extra else "FAIL"
        print(f"[{status}] {fixture.name}: expected {len(expected)}, "
              f"got {len(actual)}")
        for line, check in sorted(missing):
            print(f"    missing {fixture.name}:{line} [{check}]")
            failures += 1
        for line, check in sorted(extra):
            print(f"    unexpected {fixture.name}:{line} [{check}]")
            failures += 1

    if failures:
        print(f"{failures} fixture mismatch(es)", file=sys.stderr)
        return 1
    print(f"all {len(fixtures)} fixtures match")
    return 0


if __name__ == "__main__":
    sys.exit(main())

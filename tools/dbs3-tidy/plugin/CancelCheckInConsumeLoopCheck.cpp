#include "CancelCheckInConsumeLoopCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace dbs3_tidy {

namespace {

/// Innermost while/for/do/range-for ancestor of `S`, or null.
const Stmt* InnermostLoop(ASTContext& Ctx, const Stmt* S) {
  DynTypedNodeList Parents = Ctx.getParents(*S);
  while (!Parents.empty()) {
    const DynTypedNode& Node = Parents[0];
    if (const auto* Loop = Node.get<Stmt>()) {
      if (isa<WhileStmt>(Loop) || isa<ForStmt>(Loop) || isa<DoStmt>(Loop) ||
          isa<CXXForRangeStmt>(Loop)) {
        return Loop;
      }
    }
    if (Node.get<FunctionDecl>() != nullptr ||
        Node.get<LambdaExpr>() != nullptr) {
      return nullptr;
    }
    Parents = Ctx.getParents(Node);
  }
  return nullptr;
}

/// True when the loop (condition + body) contains a ShouldStop() or
/// cancelled() call anywhere.
bool LoopConsultsCancelToken(const Stmt* Loop) {
  struct Visitor : RecursiveASTVisitor<Visitor> {
    bool Found = false;
    bool VisitCXXMemberCallExpr(CXXMemberCallExpr* Call) {
      const auto* Method = Call->getMethodDecl();
      if (Method != nullptr &&
          (Method->getName() == "ShouldStop" ||
           Method->getName() == "cancelled")) {
        Found = true;
      }
      return !Found;
    }
  } V;
  V.TraverseStmt(const_cast<Stmt*>(Loop));
  return V.Found;
}

}  // namespace

void CancelCheckInConsumeLoopCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("PopBatch", "ReadChunk", "AcquireBatch"))))
          .bind("consume"),
      this);
}

void CancelCheckInConsumeLoopCheck::check(
    const MatchFinder::MatchResult& Result) {
  const auto* Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("consume");
  if (Call == nullptr) return;
  const Stmt* Loop = InnermostLoop(*Result.Context, Call);
  if (Loop == nullptr) return;
  if (LoopConsultsCancelToken(Loop)) return;
  if (!Reported_.insert(Loop).second) return;
  diag(Loop->getBeginLoc(),
       "loop consumes work (%0) but never consults a CancelToken; check "
       "ShouldStop()/cancelled() each iteration so cancellation latency "
       "stays bounded")
      << Call->getMethodDecl()->getName();
}

}  // namespace dbs3_tidy

#ifndef DBS3_TOOLS_TIDY_PLUGIN_NOALLOCINHOTPATHCHECK_H_
#define DBS3_TOOLS_TIDY_PLUGIN_NOALLOCINHOTPATHCHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace dbs3_tidy {

/// dbs3-no-alloc-in-hot-path: functions on the per-tuple kernel surface
/// (OnData, OnDataBatch, Probe/ProbeKeys/ProbeHashed, EvalPredAll, EvalRow,
/// HashColumn, EmitTagged — the shared scan's tagged-emit path) must not
/// reach operator new, malloc-family calls, or growing
/// container methods — except through ChunkPool / Arena receivers, the
/// engine's recycled storage. Placement new is the arena path and allowed.
class NoAllocInHotPathCheck : public clang::tidy::ClangTidyCheck {
 public:
  NoAllocInHotPathCheck(llvm::StringRef Name,
                        clang::tidy::ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(clang::ast_matchers::MatchFinder* Finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace dbs3_tidy

#endif  // DBS3_TOOLS_TIDY_PLUGIN_NOALLOCINHOTPATHCHECK_H_

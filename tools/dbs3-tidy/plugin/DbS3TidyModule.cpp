// The dbs3-tidy clang-tidy module: registers the five DBS3 invariant
// checks under the `dbs3-` prefix. Built as an out-of-tree plugin and
// loaded with `clang-tidy -load libdbs3-tidy.so -checks='dbs3-*'`.
//
// The portable engine (../portable/) implements the same checks without
// clang; the fixtures under ../fixtures/ pin the shared contract. Keep the
// two engines' semantics in lockstep when editing either.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CancelCheckInConsumeLoopCheck.h"
#include "GuardedMemberInitCheck.h"
#include "NoAllocInHotPathCheck.h"
#include "NoLockAcrossEmitCheck.h"
#include "QuotaPairingCheck.h"

namespace dbs3_tidy {

class DbS3TidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<NoLockAcrossEmitCheck>(
        "dbs3-no-lock-across-emit");
    CheckFactories.registerCheck<NoAllocInHotPathCheck>(
        "dbs3-no-alloc-in-hot-path");
    CheckFactories.registerCheck<QuotaPairingCheck>("dbs3-quota-pairing");
    CheckFactories.registerCheck<CancelCheckInConsumeLoopCheck>(
        "dbs3-cancel-check-in-consume-loop");
    CheckFactories.registerCheck<GuardedMemberInitCheck>(
        "dbs3-guarded-member-init");
  }
};

}  // namespace dbs3_tidy

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<dbs3_tidy::DbS3TidyModule> X(
    "dbs3-tidy-module", "Adds the DBS3 engine-invariant checks.");

// Anchor so `-load` keeps the registry entry alive.
volatile int DbS3TidyModuleAnchorSource = 0;

}  // namespace clang::tidy

#ifndef DBS3_MODEL_ANALYSIS_H_
#define DBS3_MODEL_ANALYSIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbs3 {

/// The cost shape of one operation execution, as seen by the analysis of
/// Section 4.1: `a` activations with mean processing time `P` (mean_cost)
/// and most expensive activation `Pmax` (max_cost). Cost units are
/// arbitrary but must be consistent.
struct OperationProfile {
  uint64_t activations = 0;  ///< a
  double mean_cost = 0.0;    ///< P
  double max_cost = 0.0;     ///< Pmax
  /// Total work a * P.
  double TotalWork() const {
    return static_cast<double>(activations) * mean_cost;
  }
};

/// Builds a profile from per-activation costs.
OperationProfile ProfileFromCosts(const std::vector<double>& costs);

/// Ideal execution time with `n` threads: Tideal = a·P / n (Equation 1,
/// all threads complete simultaneously). Requires n >= 1.
double TIdeal(const OperationProfile& p, size_t n);

/// Worst-case execution time with `n` threads (Equation 2):
/// Tworst = (a·P − Pmax)/n + Pmax — every activation but the most expensive
/// is processed first, then one thread alone runs the most expensive one.
double TWorst(const OperationProfile& p, size_t n);

/// Upper bound on the skew overhead v such that Tworst = (1+v)·Tideal
/// (Equation 3): v ≤ (Pmax/P)·(n−1)/a.
double OverheadBound(const OperationProfile& p, size_t n);

/// Maximum useful degree of parallelism (Section 5.5): past
/// nmax = a·P / Pmax the response time is bounded by the longest activation
/// and adding threads gains nothing.
double NMax(const OperationProfile& p);

/// Speed-up the model predicts for `n` threads on `processors` processors:
/// the sequential time a·P over the per-thread bound, additionally capped by
/// the longest activation — min(n, processors, nmax)-style ceiling with the
/// exact Tworst-driven shape:
///   speedup(n) = (a·P) / max(Tideal(min(n, processors)), Pmax).
double PredictedSpeedup(const OperationProfile& p, size_t n,
                        size_t processors);

/// Profile of a Zipf-skewed triggered operation: `a` activations whose costs
/// are proportional to ZipfCounts-style shares of `total_work` (the paper's
/// skewed IdealJoin, where activation cost follows fragment cardinality).
OperationProfile ZipfProfile(double total_work, size_t activations,
                             double theta);

}  // namespace dbs3

#endif  // DBS3_MODEL_ANALYSIS_H_

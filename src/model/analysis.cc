#include "model/analysis.h"

#include <algorithm>
#include <cassert>

#include "common/zipf.h"

namespace dbs3 {

OperationProfile ProfileFromCosts(const std::vector<double>& costs) {
  OperationProfile p;
  p.activations = costs.size();
  if (costs.empty()) return p;
  double sum = 0.0;
  for (double c : costs) {
    sum += c;
    p.max_cost = std::max(p.max_cost, c);
  }
  p.mean_cost = sum / static_cast<double>(costs.size());
  return p;
}

double TIdeal(const OperationProfile& p, size_t n) {
  assert(n >= 1);
  return p.TotalWork() / static_cast<double>(n);
}

double TWorst(const OperationProfile& p, size_t n) {
  assert(n >= 1);
  return (p.TotalWork() - p.max_cost) / static_cast<double>(n) + p.max_cost;
}

double OverheadBound(const OperationProfile& p, size_t n) {
  assert(n >= 1);
  if (p.activations == 0 || p.mean_cost == 0.0) return 0.0;
  return (p.max_cost / p.mean_cost) * static_cast<double>(n - 1) /
         static_cast<double>(p.activations);
}

double NMax(const OperationProfile& p) {
  if (p.max_cost == 0.0) return 0.0;
  return p.TotalWork() / p.max_cost;
}

double PredictedSpeedup(const OperationProfile& p, size_t n,
                        size_t processors) {
  assert(n >= 1);
  assert(processors >= 1);
  const double total = p.TotalWork();
  if (total == 0.0) return 1.0;
  const size_t effective = std::min(n, processors);
  const double bound =
      std::max(total / static_cast<double>(effective), p.max_cost);
  return total / bound;
}

OperationProfile ZipfProfile(double total_work, size_t activations,
                             double theta) {
  const std::vector<double> shares = ZipfShares(activations, theta);
  std::vector<double> costs(activations);
  for (size_t i = 0; i < activations; ++i) costs[i] = shares[i] * total_work;
  return ProfileFromCosts(costs);
}

}  // namespace dbs3

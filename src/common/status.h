#ifndef DBS3_COMMON_STATUS_H_
#define DBS3_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dbs3 {

/// Error categories used across the library. Mirrors the usual
/// database-engine convention (RocksDB/Arrow-style status codes): library
/// code never throws; fallible operations return a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message describing what went wrong (including offending values, so the
/// caller can report actionable errors).
///
/// [[nodiscard]]: a dropped Status is a swallowed error. Call sites that
/// genuinely cannot act on a failure must say so with an explicit
/// `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DBS3_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::dbs3::Status _dbs3_status = (expr);       \
    if (!_dbs3_status.ok()) return _dbs3_status; \
  } while (false)

}  // namespace dbs3

#endif  // DBS3_COMMON_STATUS_H_

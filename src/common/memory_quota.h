#ifndef DBS3_COMMON_MEMORY_QUOTA_H_
#define DBS3_COMMON_MEMORY_QUOTA_H_

#include <atomic>
#include <cstdint>

namespace dbs3 {

/// A per-query memory quota, denominated in tuple units — the same unit the
/// admission controller budgets in (one unit ~ one retained tuple or group
/// state). The runtime builds one per admitted query from its declared
/// `memory_units` and threads it through ExecOptions into the operator
/// logics, which charge retained state as it accumulates and release it when
/// the state is dropped or spilled. Unit-denominated (rather than byte-
/// denominated) accounting keeps enforcement deterministic across platforms
/// and allocator behavior, which is what lets the differential tests pin
/// spilled results byte-identical to the in-memory path.
///
/// Thread-safe: operators on different worker threads charge concurrently.
/// A limit of 0 means unlimited (charges are still tracked, so the
/// high-water mark reports the working set a budget would have needed).
class MemoryQuota {
 public:
  explicit MemoryQuota(uint64_t limit_units = 0) : limit_(limit_units) {}

  MemoryQuota(const MemoryQuota&) = delete;
  MemoryQuota& operator=(const MemoryQuota&) = delete;

  /// Charges `units` if the quota covers them; false (and nothing charged)
  /// otherwise. Operators react to a failed charge by spilling or erroring.
  bool TryCharge(uint64_t units) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    do {
      if (limit_ != 0 && used + units > limit_) return false;
    } while (!used_.compare_exchange_weak(used, used + units,
                                          std::memory_order_relaxed));
    BumpHighWater(used + units);
    return true;
  }

  /// Charges past the limit. The spill paths use this to guarantee forward
  /// progress (a batch must hold at least one tuple; a merge at the
  /// recursion cap must accept the group) — overshoot is bounded by the
  /// caller to O(1) units per operator instance.
  void ForceCharge(uint64_t units) {
    const uint64_t now =
        used_.fetch_add(units, std::memory_order_relaxed) + units;
    BumpHighWater(now);
  }

  /// Returns `units` to the quota (clamped: releasing more than is charged
  /// is a caller bug but must not wrap the counter).
  void Release(uint64_t units) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (!used_.compare_exchange_weak(used,
                                        used >= units ? used - units : 0,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Configured limit in units; 0 = unlimited.
  uint64_t limit() const { return limit_; }

  /// Units currently charged.
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  /// Largest `used()` ever observed — the query's working-set high-water
  /// mark, reported through QueryRunStats and the runtime metrics.
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// True when a budget is actually enforced.
  bool bounded() const { return limit_ != 0; }

 private:
  void BumpHighWater(uint64_t candidate) {
    uint64_t peak = high_water_.load(std::memory_order_relaxed);
    while (peak < candidate &&
           !high_water_.compare_exchange_weak(peak, candidate,
                                              std::memory_order_relaxed)) {
    }
  }

  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> high_water_{0};
};

}  // namespace dbs3

#endif  // DBS3_COMMON_MEMORY_QUOTA_H_

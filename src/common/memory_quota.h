#ifndef DBS3_COMMON_MEMORY_QUOTA_H_
#define DBS3_COMMON_MEMORY_QUOTA_H_

#include <atomic>
#include <cstdint>
#include <utility>

namespace dbs3 {

/// A per-query memory quota, denominated in tuple units — the same unit the
/// admission controller budgets in (one unit ~ one retained tuple or group
/// state). The runtime builds one per admitted query from its declared
/// `memory_units` and threads it through ExecOptions into the operator
/// logics, which charge retained state as it accumulates and release it when
/// the state is dropped or spilled. Unit-denominated (rather than byte-
/// denominated) accounting keeps enforcement deterministic across platforms
/// and allocator behavior, which is what lets the differential tests pin
/// spilled results byte-identical to the in-memory path.
///
/// Thread-safe: operators on different worker threads charge concurrently.
/// A limit of 0 means unlimited (charges are still tracked, so the
/// high-water mark reports the working set a budget would have needed).
class MemoryQuota {
 public:
  explicit MemoryQuota(uint64_t limit_units = 0) : limit_(limit_units) {}

  MemoryQuota(const MemoryQuota&) = delete;
  MemoryQuota& operator=(const MemoryQuota&) = delete;

  /// Charges `units` if the quota covers them; false (and nothing charged)
  /// otherwise. Operators react to a failed charge by spilling or erroring.
  /// [[nodiscard]]: ignoring the result means either leaking a charge (it
  /// succeeded and nobody will release it) or assuming memory that was
  /// never granted. Scoped charges should use ChargeGuard instead.
  [[nodiscard]] bool TryCharge(uint64_t units) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    do {
      if (limit_ != 0 && used + units > limit_) return false;
    } while (!used_.compare_exchange_weak(used, used + units,
                                          std::memory_order_relaxed));
    BumpHighWater(used + units);
    return true;
  }

  /// Charges past the limit. The spill paths use this to guarantee forward
  /// progress (a batch must hold at least one tuple; a merge at the
  /// recursion cap must accept the group) — overshoot is bounded by the
  /// caller to O(1) units per operator instance.
  void ForceCharge(uint64_t units) {
    const uint64_t now =
        used_.fetch_add(units, std::memory_order_relaxed) + units;
    BumpHighWater(now);
  }

  /// Returns `units` to the quota (clamped: releasing more than is charged
  /// is a caller bug but must not wrap the counter).
  void Release(uint64_t units) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    while (!used_.compare_exchange_weak(used,
                                        used >= units ? used - units : 0,
                                        std::memory_order_relaxed)) {
    }
  }

  /// Configured limit in units; 0 = unlimited.
  uint64_t limit() const { return limit_; }

  /// Units currently charged.
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  /// Largest `used()` ever observed — the query's working-set high-water
  /// mark, reported through QueryRunStats and the runtime metrics.
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// True when a budget is actually enforced.
  bool bounded() const { return limit_ != 0; }

 private:
  void BumpHighWater(uint64_t candidate) {
    uint64_t peak = high_water_.load(std::memory_order_relaxed);
    while (peak < candidate &&
           !high_water_.compare_exchange_weak(peak, candidate,
                                              std::memory_order_relaxed)) {
    }
  }

  const uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> high_water_{0};
};

/// RAII holder for a quota charge — the blessed pairing idiom, and what the
/// dbs3-quota-pairing static check (tools/dbs3-tidy) points violators at:
/// the constructor charges, the destructor releases whatever the guard
/// still holds, so no exit path can leak units. Charges whose lifetime
/// outlives the scope transfer responsibility to a long-lived ledger with
/// Disarm().
///
/// A null quota means "no accounting": the guard is vacuously ok() and
/// holds nothing, matching the operators' `quota == nullptr` convention.
class ChargeGuard {
 public:
  /// An empty guard holding no charge.
  ChargeGuard() = default;

  /// An empty guard bound to `quota` (may be null): charge incrementally
  /// with TryAdd/ForceAdd — the loop-accumulation form of the idiom.
  explicit ChargeGuard(MemoryQuota* quota) : quota_(quota) {}

  /// Tries to charge `units`; ok() reports whether the charge fit (always
  /// true when `quota` is null). On failure nothing is held.
  ChargeGuard(MemoryQuota* quota, uint64_t units) : quota_(quota) {
    ok_ = quota_ == nullptr || quota_->TryCharge(units);
    if (ok_ && quota_ != nullptr) held_ = units;
  }

  /// Charges `units` past the limit (MemoryQuota::ForceCharge): always
  /// ok(), always held — for the bounded-overshoot progress guarantees.
  static ChargeGuard Forced(MemoryQuota* quota, uint64_t units) {
    ChargeGuard g;
    g.quota_ = quota;
    g.ok_ = true;
    if (quota != nullptr) {
      quota->ForceCharge(units);
      g.held_ = units;
    }
    return g;
  }

  ChargeGuard(ChargeGuard&& other) noexcept { *this = std::move(other); }
  ChargeGuard& operator=(ChargeGuard&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      quota_ = other.quota_;
      held_ = other.held_;
      ok_ = other.ok_;
      other.quota_ = nullptr;
      other.held_ = 0;
      other.ok_ = false;
    }
    return *this;
  }
  ChargeGuard(const ChargeGuard&) = delete;
  ChargeGuard& operator=(const ChargeGuard&) = delete;

  ~ChargeGuard() { ReleaseNow(); }

  /// Whether the construction-time charge succeeded.
  bool ok() const { return ok_; }

  /// Units this guard currently holds responsibility for.
  uint64_t held() const { return held_; }

  /// Tries to grow the held charge by `units`; false (nothing charged) if
  /// the quota will not cover them.
  [[nodiscard]] bool TryAdd(uint64_t units) {
    if (quota_ == nullptr) return true;
    if (!quota_->TryCharge(units)) return false;
    held_ += units;
    return true;
  }

  /// Grows the held charge past the limit (MemoryQuota::ForceCharge) — the
  /// bounded-overshoot progress path; callers keep the overshoot O(1).
  void ForceAdd(uint64_t units) {
    if (quota_ == nullptr) return;
    quota_->ForceCharge(units);
    held_ += units;
  }

  /// Releases the held charge now (idempotent).
  void ReleaseNow() {
    if (quota_ != nullptr && held_ != 0) quota_->Release(held_);
    held_ = 0;
  }

  /// Forgets the held charge without releasing it, returning the unit
  /// count: the caller is transferring responsibility to a longer-lived
  /// ledger (e.g. an operator's per-partition `charged` counter).
  [[nodiscard]] uint64_t Disarm() {
    const uint64_t units = held_;
    held_ = 0;
    return units;
  }

 private:
  MemoryQuota* quota_ = nullptr;
  uint64_t held_ = 0;
  bool ok_ = true;
};

}  // namespace dbs3

#endif  // DBS3_COMMON_MEMORY_QUOTA_H_

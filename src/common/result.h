#ifndef DBS3_COMMON_RESULT_H_
#define DBS3_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbs3 {

/// A value-or-error type: holds either a `T` or a non-OK Status.
///
/// Typical use:
///
///   Result<Relation> r = catalog.Get("A");
///   if (!r.ok()) return r.status();
///   UseRelation(r.value());
///
/// [[nodiscard]] for the same reason Status is: dropping a Result loses
/// both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return MakeThing();`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error Status: `return Status::NotFound(...)`.
  /// Constructing from an OK status is a programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// The held value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define DBS3_ASSIGN_OR_RETURN(lhs, expr)               \
  auto DBS3_CONCAT_(_dbs3_result_, __LINE__) = (expr); \
  if (!DBS3_CONCAT_(_dbs3_result_, __LINE__).ok())     \
    return DBS3_CONCAT_(_dbs3_result_, __LINE__).status(); \
  lhs = std::move(DBS3_CONCAT_(_dbs3_result_, __LINE__)).value()

#define DBS3_CONCAT_INNER_(a, b) a##b
#define DBS3_CONCAT_(a, b) DBS3_CONCAT_INNER_(a, b)

}  // namespace dbs3

#endif  // DBS3_COMMON_RESULT_H_

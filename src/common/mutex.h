#ifndef DBS3_COMMON_MUTEX_H_
#define DBS3_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

/// DBS3_VERIFY_ENABLED gates the debug invariant layer (lock-order
/// recording here; tuple-conservation ledger and queue assertions in
/// engine/verify.h). The CMake option DBS3_VERIFY (default ON for Debug
/// builds) defines DBS3_VERIFY=1; release builds compile the hooks out
/// entirely, so the hot paths carry zero extra cost.
#if defined(DBS3_VERIFY) && DBS3_VERIFY
#define DBS3_VERIFY_ENABLED 1
#else
#define DBS3_VERIFY_ENABLED 0
#endif

namespace dbs3 {

class Mutex;

namespace verify {

/// Called on a violation (lock-order cycle, conservation breach...). The
/// default handler logs the message and aborts; tests install a collecting
/// handler to assert that detection fires.
using FailureHandler = std::function<void(const std::string&)>;

/// Runtime lock-order recorder (the dynamic complement to the static
/// -Wthread-safety annotations). Mutex::Lock/Unlock feed it when
/// DBS3_VERIFY_ENABLED; acquisitions build a global "A held while
/// acquiring B" graph keyed by mutex *name* (one node per lock class /
/// declaration site, the classic lockdep reduction), and an acquisition
/// that closes a cycle — or that takes a second lock of the same class —
/// invokes the failure handler with the offending path.
///
/// The recorder itself is compiled unconditionally so negative tests can
/// drive OnAcquire/OnRelease directly in any build; only the per-lock
/// hooks are debug-gated.
class LockOrderRecorder {
 public:
  static LockOrderRecorder& Instance();

  /// Records that the calling thread acquired `mu` (named `name`), adding
  /// held-before edges and checking them for cycles.
  void OnAcquire(const void* mu, const char* name);

  /// Records that the calling thread released `mu`.
  void OnRelease(const void* mu);

  /// Drops the accumulated edge graph (not the calling thread's held
  /// stack); for tests that need a clean slate.
  void ResetGraph();

  /// Installs `handler` for cycle reports; nullptr restores the default
  /// log-and-abort handler. Returns the previous handler.
  FailureHandler SetFailureHandler(FailureHandler handler);

  /// Number of distinct held-before edges recorded so far.
  size_t EdgeCount() const;

 private:
  LockOrderRecorder() = default;
  void Fail(const std::string& message);

  mutable std::mutex graph_mu_;  // Raw std::mutex: must not re-enter hooks.
  // Adjacency: names[i] holds the lock class; edges_[i] the classes
  // acquired at least once while names_[i] was held.
  std::vector<std::string> names_;
  std::vector<std::vector<size_t>> edges_;
  FailureHandler handler_;
};

}  // namespace verify

/// Annotated exclusive mutex wrapping std::mutex (libstdc++'s std::mutex
/// carries no capability annotations, so the clang thread-safety analysis
/// needs this wrapper — the LevelDB/Abseil port pattern). The `name`
/// identifies the lock *class* in lock-order reports; give every
/// distinctly-ordered mutex declaration its own name.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#if DBS3_VERIFY_ENABLED
    verify::LockOrderRecorder::Instance().OnAcquire(this, name_);
#endif
  }

  /// Non-blocking acquire. Recorded like Lock on success: a try-lock
  /// cannot deadlock by itself, but treating it as ordering keeps the
  /// graph conservative.
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if DBS3_VERIFY_ENABLED
    verify::LockOrderRecorder::Instance().OnAcquire(this, name_);
#endif
    return true;
  }

  void Unlock() RELEASE() {
#if DBS3_VERIFY_ENABLED
    verify::LockOrderRecorder::Instance().OnRelease(this);
#endif
    mu_.unlock();
  }

  /// No-op at runtime; tells the static analysis the lock is held (for
  /// code paths the analysis cannot follow).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "mutex";
};

/// RAII lock for Mutex, visible to the thread-safety analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// MutexLock that additionally counts acquisitions and contention (an
/// acquisition that found the mutex held) into relaxed atomics — the
/// producer/consumer interference signal of the activation queues.
class SCOPED_CAPABILITY CountingMutexLock {
 public:
  CountingMutexLock(Mutex* mu, std::atomic<uint64_t>* acquisitions,
                    std::atomic<uint64_t>* contended) ACQUIRE(mu) : mu_(mu) {
    acquisitions->fetch_add(1, std::memory_order_relaxed);
    if (!mu_->TryLock()) {
      contended->fetch_add(1, std::memory_order_relaxed);
      mu_->Lock();
    }
  }
  ~CountingMutexLock() RELEASE() { mu_->Unlock(); }

  CountingMutexLock(const CountingMutexLock&) = delete;
  CountingMutexLock& operator=(const CountingMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable for Mutex. Wait/WaitFor require the mutex held (the
/// analysis sees it as held across the call, matching the caller's view:
/// the wait releases and re-acquires internally).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex* mu,
                         std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbs3

#endif  // DBS3_COMMON_MUTEX_H_

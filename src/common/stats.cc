#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dbs3 {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // Vertical line; leave the zero fit.
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0.0, ss_tot = 0.0;
  const double ybar = sy / n;
  for (size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace dbs3

#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dbs3 {
namespace verify {

namespace {

/// One lock the calling thread currently holds: the instance pointer (for
/// release matching) and its interned lock-class index.
struct HeldLock {
  const void* mu;
  size_t name_index;
};

thread_local std::vector<HeldLock> tls_held;

}  // namespace

LockOrderRecorder& LockOrderRecorder::Instance() {
  // Leaked singleton: worker threads may still release locks during static
  // destruction.
  static LockOrderRecorder* recorder = new LockOrderRecorder();
  return *recorder;
}

void LockOrderRecorder::Fail(const std::string& message) {
  FailureHandler handler;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    handler = handler_;
  }
  if (handler) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "DBS3 VERIFY FAILURE: %s\n", message.c_str());
  std::abort();
}

void LockOrderRecorder::OnAcquire(const void* mu, const char* name) {
  std::string failure;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    // Intern the lock class.
    size_t idx = names_.size();
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        idx = i;
        break;
      }
    }
    if (idx == names_.size()) {
      names_.emplace_back(name);
      edges_.emplace_back();
    }

    for (const HeldLock& held : tls_held) {
      if (held.name_index == idx) {
        if (held.mu == mu) continue;  // Recursive self-lock: deadlocks on
                                      // its own; the analysis flags it too.
        failure = "lock-order: acquiring a second '" + names_[idx] +
                  "' while one is already held (same-class nesting has no "
                  "defined order)";
        break;
      }
      // New held-before edge held.name_index -> idx. Before recording it,
      // reject it if the reverse direction is already reachable: that
      // closes a wait-for cycle.
      std::vector<size_t>& out = edges_[held.name_index];
      bool known = false;
      for (size_t e : out) {
        if (e == idx) {
          known = true;
          break;
        }
      }
      if (known) continue;
      // DFS from idx looking for held.name_index, tracking parents so the
      // report can spell out the recorded path.
      std::vector<size_t> parent(names_.size(), SIZE_MAX);
      std::vector<size_t> stack{idx};
      std::vector<bool> seen(names_.size(), false);
      seen[idx] = true;
      bool cycle = false;
      while (!stack.empty() && !cycle) {
        const size_t node = stack.back();
        stack.pop_back();
        for (size_t next : edges_[node]) {
          if (seen[next]) continue;
          seen[next] = true;
          parent[next] = node;
          if (next == held.name_index) {
            cycle = true;
            break;
          }
          stack.push_back(next);
        }
      }
      if (cycle) {
        // The recorded chain runs idx -> ... -> held; the new acquisition
        // would add held -> idx, closing the cycle.
        std::string path = names_[held.name_index];
        for (size_t n = parent[held.name_index];; n = parent[n]) {
          path = names_[n] + " -> " + path;
          if (n == idx) break;
        }
        failure = "lock-order cycle: acquiring '" + names_[idx] +
                  "' while holding '" + names_[held.name_index] +
                  "', but the reverse order is already recorded (" + path +
                  ")";
        break;
      }
      out.push_back(idx);
    }
    tls_held.push_back(HeldLock{mu, idx});
  }
  if (!failure.empty()) Fail(failure);
}

void LockOrderRecorder::OnRelease(const void* mu) {
  for (size_t i = tls_held.size(); i-- > 0;) {
    if (tls_held[i].mu == mu) {
      tls_held.erase(tls_held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  // Released a lock acquired before recording started (or handed across
  // threads, which dbs3::CondVar never does): nothing to unwind.
}

void LockOrderRecorder::ResetGraph() {
  std::lock_guard<std::mutex> lock(graph_mu_);
  // Keep names_ interned: live threads hold indices into it.
  for (auto& out : edges_) out.clear();
}

FailureHandler LockOrderRecorder::SetFailureHandler(FailureHandler handler) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  FailureHandler previous = std::move(handler_);
  handler_ = std::move(handler);
  return previous;
}

size_t LockOrderRecorder::EdgeCount() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  size_t count = 0;
  for (const auto& out : edges_) count += out.size();
  return count;
}

}  // namespace verify
}  // namespace dbs3

#ifndef DBS3_COMMON_RNG_H_
#define DBS3_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <limits>

namespace dbs3 {

/// SplitMix64 step; also used to seed-expand Xoshiro. Public because it is a
/// convenient stateless mixer for hashing small integers.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every randomized component of the library takes an explicit seed and uses
/// this generator so that experiments and tests are exactly reproducible.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; two Rng instances with the same seed produce the
  /// same sequence on every platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next 64 random bits.
  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    // Lemire's unbiased multiply-shift rejection method.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return ((*this)() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace dbs3

#endif  // DBS3_COMMON_RNG_H_

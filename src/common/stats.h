#ifndef DBS3_COMMON_STATS_H_
#define DBS3_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dbs3 {

/// Summary statistics of a sample.
struct Summary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double sum = 0.0;
};

/// Computes Summary over `values`. An empty input yields a zero Summary.
Summary Summarize(const std::vector<double>& values);

/// Least-squares straight-line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination in [0, 1].
};

/// Fits a line through (x[i], y[i]). Requires x.size() == y.size() >= 2.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dbs3

#endif  // DBS3_COMMON_STATS_H_

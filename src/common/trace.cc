#include "common/trace.h"

#include <algorithm>
#include <cstdio>

namespace dbs3 {

namespace {

/// Escapes `s` for use inside a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceBuffer* ActivationTracer::AddBuffer(const std::string& op,
                                         uint32_t thread_id) {
  MutexLock lock(&mu_);
  uint32_t op_id = 0;
  const auto it = std::find(op_names_.begin(), op_names_.end(), op);
  if (it == op_names_.end()) {
    op_id = static_cast<uint32_t>(op_names_.size());
    op_names_.push_back(op);
  } else {
    op_id = static_cast<uint32_t>(it - op_names_.begin());
  }
  buffers_.emplace_back(
      new TraceBuffer(op, op_id, thread_id, origin_));
  return buffers_.back().get();
}

std::string ActivationTracer::ToChromeJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  // Metadata: name each chrome "process" after its operation and each
  // "thread" row after its worker, so chrome://tracing labels the timeline.
  for (size_t pid = 0; pid < op_names_.size(); ++pid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%zu,"
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", pid,
                  JsonEscape(op_names_[pid]).c_str());
    out += buf;
    first = false;
  }
  for (const auto& buffer : buffers_) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%u,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s/t%u\"}}",
                  first ? "" : ",", buffer->op_id(), buffer->thread_id(),
                  JsonEscape(buffer->op()).c_str(), buffer->thread_id());
    out += buf;
    first = false;
  }
  for (const auto& buffer : buffers_) {
    const std::string name = JsonEscape(buffer->op());
    for (const TraceSpan& span : buffer->spans()) {
      // Chrome timestamps/durations are microseconds (doubles).
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"activation\",\"ph\":\"X\","
          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
          "\"args\":{\"instance\":%u,\"units\":%u,\"activations\":%u}}",
          first ? "" : ",", name.c_str(),
          static_cast<double>(span.start_ns) * 1e-3,
          static_cast<double>(span.end_ns - span.start_ns) * 1e-3,
          buffer->op_id(), buffer->thread_id(), span.instance, span.units,
          span.activations);
      out += buf;
      first = false;
    }
  }
  out += "]}";
  return out;
}

Status ActivationTracer::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

std::vector<double> ActivationTracer::BusySecondsPerThread(
    const std::string& op) const {
  MutexLock lock(&mu_);
  std::vector<double> busy;
  for (const auto& buffer : buffers_) {
    if (buffer->op() != op) continue;
    if (buffer->thread_id() >= busy.size()) {
      busy.resize(buffer->thread_id() + 1, 0.0);
    }
    double ns = 0.0;
    for (const TraceSpan& span : buffer->spans()) {
      ns += static_cast<double>(span.end_ns - span.start_ns);
    }
    busy[buffer->thread_id()] += ns * 1e-9;
  }
  return busy;
}

std::vector<uint64_t> ActivationTracer::UnitsPerInstance(
    const std::string& op) const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> units;
  for (const auto& buffer : buffers_) {
    if (buffer->op() != op) continue;
    for (const TraceSpan& span : buffer->spans()) {
      if (span.instance >= units.size()) units.resize(span.instance + 1, 0);
      units[span.instance] += span.units;
    }
  }
  return units;
}

}  // namespace dbs3

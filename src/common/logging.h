#ifndef DBS3_COMMON_LOGGING_H_
#define DBS3_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbs3 {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the minimum severity that is emitted (default kWarning, so library
/// code is silent in tests and benches unless something is wrong).
void SetLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Builds one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define DBS3_LOG(level)                                          \
  if (::dbs3::LogLevel::level < ::dbs3::GetLogLevel()) {         \
  } else                                                         \
    ::dbs3::internal::LogMessage(::dbs3::LogLevel::level,        \
                                 __FILE__, __LINE__)             \
        .stream()

}  // namespace dbs3

#endif  // DBS3_COMMON_LOGGING_H_

#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dbs3 {

std::vector<double> ZipfShares(size_t n, double theta) {
  assert(n > 0);
  assert(theta >= 0.0);
  std::vector<double> shares(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    shares[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    sum += shares[i];
  }
  for (double& s : shares) s /= sum;
  return shares;
}

std::vector<uint64_t> ZipfCounts(uint64_t total, size_t n, double theta) {
  const std::vector<double> shares = ZipfShares(n, theta);
  std::vector<uint64_t> counts(n);
  uint64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    counts[i] = static_cast<uint64_t>(shares[i] * static_cast<double>(total));
    assigned += counts[i];
  }
  // Hand out the rounding remainder one item at a time, largest ranks first,
  // so the counts sum exactly to `total` and stay sorted descending.
  size_t i = 0;
  while (assigned < total) {
    ++counts[i % n];
    ++assigned;
    ++i;
  }
  return counts;
}

double ZipfMaxOverMean(size_t n, double theta) {
  const std::vector<double> shares = ZipfShares(n, theta);
  const double mean = 1.0 / static_cast<double>(n);
  return shares.front() / mean;
}

ZipfSampler::ZipfSampler(size_t n, double theta) : cdf_(n) {
  const std::vector<double> shares = ZipfShares(n, theta);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += shares[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace dbs3

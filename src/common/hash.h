#ifndef DBS3_COMMON_HASH_H_
#define DBS3_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace dbs3 {

/// Mixes a 64-bit integer into a well-distributed 64-bit hash
/// (SplitMix64 finalizer). Used for hash partitioning on integer keys: the
/// quality of this mix is what makes unskewed hash partitioning produce
/// near-equal fragments.
inline uint64_t HashInt64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes; used for string keys.
inline uint64_t HashBytes(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combines two hashes (boost::hash_combine-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dbs3

#endif  // DBS3_COMMON_HASH_H_

#ifndef DBS3_COMMON_TRACE_H_
#define DBS3_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbs3 {

/// Knobs for the per-execution observability layer. Off by default: with
/// `enabled == false` the engine records no spans and starts no sampler
/// thread, and the only per-batch cost it pays is the two steady_clock
/// reads of the busy-time accounting.
struct TraceOptions {
  /// Record activation spans and sample queue depths for this execution.
  bool enabled = false;
  /// Queue-depth sampling period of the background sampler thread.
  uint32_t sample_interval_us = 200;
  /// When non-empty (and `enabled`), the executor writes the Chrome
  /// trace_event JSON here after the run (chrome://tracing-loadable).
  std::string path;
};

/// One processed activation batch: thread `tid` of operation `op` worked on
/// instance `instance` from `start_ns` to `end_ns` (nanoseconds since the
/// tracer's origin), covering `units` tuple units in `activations`
/// activations.
struct TraceSpan {
  uint32_t instance = 0;
  uint32_t units = 0;
  uint32_t activations = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

class ActivationTracer;

/// Per-(operation, thread) span buffer. Created through
/// ActivationTracer::AddBuffer and then written by exactly one worker
/// thread; the tracer reads it only after that worker has been joined.
class TraceBuffer {
 public:
  void Record(uint32_t instance, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, uint32_t units,
              uint32_t activations) {
    using std::chrono::nanoseconds;
    using std::chrono::duration_cast;
    spans_.push_back(TraceSpan{
        instance, units, activations,
        duration_cast<nanoseconds>(start - origin_).count(),
        duration_cast<nanoseconds>(end - origin_).count()});
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::string& op() const { return op_; }
  uint32_t op_id() const { return op_id_; }
  uint32_t thread_id() const { return thread_id_; }

 private:
  friend class ActivationTracer;
  TraceBuffer(std::string op, uint32_t op_id, uint32_t thread_id,
              std::chrono::steady_clock::time_point origin)
      : op_(std::move(op)), op_id_(op_id), thread_id_(thread_id),
        origin_(origin) {}

  std::string op_;
  uint32_t op_id_;
  uint32_t thread_id_;
  std::chrono::steady_clock::time_point origin_;
  std::vector<TraceSpan> spans_;
};

/// Collects activation spans from every worker thread of an execution and
/// renders them as Chrome trace_event JSON: one "process" per operation,
/// one "thread" row per worker, one complete ("ph":"X") event per span with
/// instance/units/activations in args.
///
/// Concurrency contract: AddBuffer may be called from any thread (it locks);
/// each returned buffer is then single-writer. ToChromeJson/Aggregate* must
/// only run after the writing threads have been joined.
class ActivationTracer {
 public:
  ActivationTracer() : origin_(std::chrono::steady_clock::now()) {}

  ActivationTracer(const ActivationTracer&) = delete;
  ActivationTracer& operator=(const ActivationTracer&) = delete;

  /// Creates the span buffer for thread `thread_id` of operation `op`.
  /// The buffer pointer stays valid for the tracer's lifetime.
  TraceBuffer* AddBuffer(const std::string& op, uint32_t thread_id)
      EXCLUDES(mu_);

  std::chrono::steady_clock::time_point origin() const { return origin_; }

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string ToChromeJson() const EXCLUDES(mu_);

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const EXCLUDES(mu_);

  /// Sum of span durations per thread of operation `op`, in seconds,
  /// indexed by thread id (the tracer-side busy-time cross-check).
  std::vector<double> BusySecondsPerThread(const std::string& op) const
      EXCLUDES(mu_);

  /// Sum of span units per instance of operation `op` (index = instance).
  std::vector<uint64_t> UnitsPerInstance(const std::string& op) const
      EXCLUDES(mu_);

 private:
  const std::chrono::steady_clock::time_point origin_;
  mutable Mutex mu_{"ActivationTracer::mu"};
  /// The vector (not the pointed-to buffers: each is single-writer once
  /// handed out) is guarded.
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ GUARDED_BY(mu_);
  /// op name -> chrome pid, in AddBuffer discovery order.
  std::vector<std::string> op_names_ GUARDED_BY(mu_);
};

}  // namespace dbs3

#endif  // DBS3_COMMON_TRACE_H_

#ifndef DBS3_COMMON_ARENA_H_
#define DBS3_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dbs3 {

/// A bump allocator for transient kernel state (selection vectors, hash
/// arrays, column views) whose lifetime is one batch of work.
///
/// Durner et al. measure allocator traffic as a multi-factor swing for
/// parallel query processing; the ChunkPool already removed it from the
/// tuple transport, and the arena removes it from the vectorized kernels:
/// blocks are allocated once, Reset() rewinds the bump pointer without
/// freeing, and steady-state kernel invocations perform zero heap
/// allocations.
///
/// Only trivially destructible element types are supported — Reset() and
/// the destructor run no element destructors.
///
/// Not thread-safe: each thread uses its own arena (the kernels use the
/// per-thread arena returned by ThreadLocalKernelArena()).
class Arena {
 public:
  /// `min_block_bytes` sizes the first block; later blocks double until
  /// kMaxBlockBytes (requests larger than that get a dedicated block).
  explicit Arena(size_t min_block_bytes = 1 << 16)
      : next_block_bytes_(min_block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                           : min_block_bytes) {
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation of `bytes` aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align) {
    uintptr_t p = (cur_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > end_) {
      RefillFor(bytes, align);
      p = (cur_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cur_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// An uninitialized array of `n` elements of trivially destructible T.
  template <typename T>
  T* AllocateArrayOf(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena runs no destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the bump pointer to the first block. Blocks are retained, so
  /// a warmed arena serves subsequent batches without touching the heap.
  void Reset() {
    block_ = 0;
    if (blocks_.empty()) {
      cur_ = end_ = 0;
    } else {
      cur_ = reinterpret_cast<uintptr_t>(blocks_[0].data.get());
      end_ = cur_ + blocks_[0].bytes;
    }
  }

  /// A position the arena can later be rewound to (stack discipline).
  struct Mark {
    size_t block = 0;
    uintptr_t cur = 0;
  };

  Mark mark() const { return Mark{block_, cur_}; }

  /// Rewinds to `m`; allocations made after mark() are recycled. `m` must
  /// come from this arena and follow stack order.
  void Rewind(Mark m) {
    block_ = m.block;
    if (blocks_.empty()) {
      cur_ = end_ = 0;
      return;
    }
    const uintptr_t base =
        reinterpret_cast<uintptr_t>(blocks_[block_].data.get());
    // A mark taken before the first block existed has cur == 0; rewinding
    // to it means the start of (now-allocated) block 0, not address zero.
    cur_ = m.cur == 0 ? base : m.cur;
    end_ = base + blocks_[block_].bytes;
  }

  /// Total bytes of owned blocks (monotone; Reset does not shrink it).
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.bytes;
    return total;
  }

  /// Heap blocks allocated over the arena's lifetime. A steady-state
  /// workload holds this constant — the zero-allocation CI gate reads it.
  size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr size_t kMinBlockBytes = 1 << 12;
  static constexpr size_t kMaxBlockBytes = 1 << 22;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t bytes = 0;
  };

  /// Advances to the next retained block that fits, or allocates one.
  void RefillFor(size_t bytes, size_t align) {
    const size_t need = bytes + align;
    while (block_ + 1 < blocks_.size()) {
      ++block_;
      if (blocks_[block_].bytes >= need) {
        SetCursor();
        return;
      }
    }
    size_t size = next_block_bytes_;
    while (size < need) size <<= 1;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ <<= 1;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    block_ = blocks_.size() - 1;
    SetCursor();
  }

  void SetCursor() {
    cur_ = reinterpret_cast<uintptr_t>(blocks_[block_].data.get());
    end_ = cur_ + blocks_[block_].bytes;
  }

  std::vector<Block> blocks_;
  size_t block_ = 0;
  uintptr_t cur_ = 0;
  uintptr_t end_ = 0;
  size_t next_block_bytes_;
};

/// Rewinds an arena to its construction-time mark on scope exit, so nested
/// kernel invocations on one thread stack their transient state.
class ScopedArena {
 public:
  explicit ScopedArena(Arena* arena) : arena_(arena), mark_(arena->mark()) {}
  ~ScopedArena() { arena_->Rewind(mark_); }

  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

  Arena* get() const { return arena_; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

}  // namespace dbs3

#endif  // DBS3_COMMON_ARENA_H_

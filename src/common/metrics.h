#ifndef DBS3_COMMON_METRICS_H_
#define DBS3_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbs3 {

/// Monotonic event counter. Add() is wait-free (one relaxed atomic add);
/// readers see an eventually consistent total, which is exact once the
/// writers have been joined.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, bytes in flight...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Running summary of one sampled probe or recorded distribution (the
/// registry keeps the summary, not the raw samples, so a long execution
/// costs O(1) memory per probe).
struct SeriesStats {
  uint64_t samples = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t last = 0;
  double sum = 0.0;
  /// Nearest-rank percentiles over the summary's sliding reservoir (the
  /// most recent MetricSummary::kReservoirSize values). Valid only when
  /// has_percentiles — sampled probes fold without a reservoir.
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
  bool has_percentiles = false;

  double mean() const {
    return samples > 0 ? sum / static_cast<double>(samples) : 0.0;
  }
};

/// Explicitly recorded value distribution (per-query latencies, batch
/// sizes...): the push-model sibling of a sampled probe. Record() is a
/// handful of relaxed atomic ops, so hot paths can feed it directly; the
/// folded SeriesStats lands in MetricsSnapshot::series under the
/// summary's name. Values are integers — callers pick the unit (the
/// convention in this codebase is microseconds for durations, tuple
/// units for work).
class MetricSummary {
 public:
  /// Sliding reservoir behind the percentile estimates: the last
  /// kReservoirSize recorded values, in a fixed ring — Record stays
  /// wait-free (the ring slot is derived from the same count fetch_add
  /// the summary already pays) and value() sorts a bounded copy.
  static constexpr size_t kReservoirSize = 512;

  void Record(int64_t v) {
    const uint64_t seq = count_.fetch_add(1, std::memory_order_relaxed);
    ring_[seq % kReservoirSize].store(v, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    last_.store(v, std::memory_order_relaxed);
    int64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  /// Folded view; exact once writers are quiescent (same contract as the
  /// counters). Percentiles are nearest-rank over the reservoir — exact
  /// for distributions of up to kReservoirSize samples, a most-recent
  /// window beyond that.
  SeriesStats value() const {
    SeriesStats s;
    s.samples = count_.load(std::memory_order_relaxed);
    if (s.samples == 0) return s;
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.last = last_.load(std::memory_order_relaxed);
    s.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(s.samples, kReservoirSize));
    std::vector<int64_t> window(n);
    for (size_t i = 0; i < n; ++i) {
      window[i] = ring_[i].load(std::memory_order_relaxed);
    }
    std::sort(window.begin(), window.end());
    const auto rank = [&](double q) {
      size_t r = static_cast<size_t>(q * static_cast<double>(n));
      return window[std::min(r, n - 1)];
    };
    s.p50 = rank(0.50);
    s.p95 = rank(0.95);
    s.p99 = rank(0.99);
    s.has_percentiles = true;
    return s;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
  std::atomic<int64_t> last_{0};
  /// Last kReservoirSize values, slot = record sequence mod size. Default
  /// atomic init zeroes every slot.
  std::atomic<int64_t> ring_[kReservoirSize] = {};
};

/// Point-in-time copy of a registry, safe to keep after the registry (and
/// the operations its probes point into) are gone.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, SeriesStats> series;

  /// Multi-line "name value" rendering for logs and benches.
  std::string ToString() const;
};

/// Engine-wide registry of named counters, gauges, and sampled probes.
///
/// counter()/gauge() get-or-create under a mutex but return stable pointers:
/// hot paths resolve a metric once and then pay only the atomic op per
/// update. Probes are callbacks (e.g. an operation's queued tuple units)
/// sampled by a MetricsSampler background thread into SeriesStats.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* counter(const std::string& name) EXCLUDES(mu_);
  MetricGauge* gauge(const std::string& name) EXCLUDES(mu_);
  MetricSummary* summary(const std::string& name) EXCLUDES(mu_);

  /// Registers `probe` to be sampled into the series named `name`. The
  /// callback must stay valid until ClearProbes() (or registry destruction);
  /// callers whose probes capture shorter-lived objects must clear first.
  void RegisterProbe(const std::string& name, std::function<int64_t()> probe)
      EXCLUDES(mu_);

  /// Drops every probe callback (so objects they point into may be
  /// destroyed) while keeping the recorded SeriesStats for later snapshots.
  void ClearProbes() EXCLUDES(mu_);

  /// Runs every registered probe once, folding the values into their
  /// series. Called by the sampler thread; exposed for deterministic tests.
  /// Probes run under mu_, so they must be cheap and must not call back
  /// into this registry.
  void SamplePass() EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  struct Probe {
    std::function<int64_t()> fn;
    SeriesStats series;
  };

  mutable Mutex mu_{"MetricsRegistry::mu"};
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricSummary>> summaries_
      GUARDED_BY(mu_);
  std::map<std::string, Probe> probes_ GUARDED_BY(mu_);
};

/// Background thread that samples a registry's probes at a fixed period.
/// Start/Stop are idempotent and may race from different threads;
/// destruction stops the thread. Stop() returns only after the sampler
/// thread has exited, so it is safe to destroy the objects probes point
/// into right after Stop(). A Start() that races a Stop() in progress is
/// dropped (the sampler stays stopped) — the lifecycle never ends with a
/// leaked thread.
class MetricsSampler {
 public:
  MetricsSampler(MetricsRegistry* registry, std::chrono::microseconds period);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void Start() EXCLUDES(mu_);
  void Stop() EXCLUDES(mu_);

 private:
  void Loop() EXCLUDES(mu_);

  MetricsRegistry* registry_;
  const std::chrono::microseconds period_;
  Mutex mu_{"MetricsSampler::mu"};
  /// Signaled on stop_ (wakes Loop) and on running_ clearing (wakes
  /// concurrent Stop callers waiting for the join to finish).
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  /// True from Start() until the stopping Stop() has joined the thread.
  /// Distinct from thread_.joinable(): it stays true across the window
  /// where Stop() has moved the handle out to join it, which is exactly
  /// the window where a racing Start() must not spawn a second loop.
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);
};

}  // namespace dbs3

#endif  // DBS3_COMMON_METRICS_H_

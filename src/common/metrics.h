#ifndef DBS3_COMMON_METRICS_H_
#define DBS3_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace dbs3 {

/// Monotonic event counter. Add() is wait-free (one relaxed atomic add);
/// readers see an eventually consistent total, which is exact once the
/// writers have been joined.
class MetricCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, bytes in flight...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Running summary of one sampled probe (the registry keeps the summary,
/// not the raw samples, so a long execution costs O(1) memory per probe).
struct SeriesStats {
  uint64_t samples = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t last = 0;
  double sum = 0.0;

  double mean() const {
    return samples > 0 ? sum / static_cast<double>(samples) : 0.0;
  }
};

/// Point-in-time copy of a registry, safe to keep after the registry (and
/// the operations its probes point into) are gone.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, SeriesStats> series;

  /// Multi-line "name value" rendering for logs and benches.
  std::string ToString() const;
};

/// Engine-wide registry of named counters, gauges, and sampled probes.
///
/// counter()/gauge() get-or-create under a mutex but return stable pointers:
/// hot paths resolve a metric once and then pay only the atomic op per
/// update. Probes are callbacks (e.g. an operation's queued tuple units)
/// sampled by a MetricsSampler background thread into SeriesStats.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* counter(const std::string& name);
  MetricGauge* gauge(const std::string& name);

  /// Registers `probe` to be sampled into the series named `name`. The
  /// callback must stay valid until ClearProbes() (or registry destruction);
  /// callers whose probes capture shorter-lived objects must clear first.
  void RegisterProbe(const std::string& name, std::function<int64_t()> probe);

  /// Drops every probe callback (so objects they point into may be
  /// destroyed) while keeping the recorded SeriesStats for later snapshots.
  void ClearProbes();

  /// Runs every registered probe once, folding the values into their
  /// series. Called by the sampler thread; exposed for deterministic tests.
  void SamplePass();

  MetricsSnapshot Snapshot() const;

 private:
  struct Probe {
    std::function<int64_t()> fn;
    SeriesStats series;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, Probe> probes_;
};

/// Background thread that samples a registry's probes at a fixed period.
/// Start/Stop are idempotent; destruction stops the thread. Stop() returns
/// only after the sampler thread has exited, so it is safe to destroy the
/// objects probes point into right after Stop().
class MetricsSampler {
 public:
  MetricsSampler(MetricsRegistry* registry, std::chrono::microseconds period);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void Start();
  void Stop();

 private:
  void Loop();

  MetricsRegistry* registry_;
  const std::chrono::microseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dbs3

#endif  // DBS3_COMMON_METRICS_H_

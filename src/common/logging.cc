#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dbs3 {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }

LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
  (void)level_;
}

}  // namespace internal

}  // namespace dbs3

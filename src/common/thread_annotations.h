#ifndef DBS3_COMMON_THREAD_ANNOTATIONS_H_
#define DBS3_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis macros (Abseil/LevelDB style).
///
/// Annotating a member with GUARDED_BY(mu_) or a function with
/// REQUIRES(mu_) turns the engine's locking discipline into a
/// compiler-checked contract: building with
/// `clang++ -Wthread-safety -Werror=thread-safety` (CMake:
/// -DDBS3_THREAD_SAFETY=ON) rejects any access to protected state outside
/// its lock. Under GCC — or any compiler without the attributes — every
/// macro expands to nothing, so the annotations cost nothing to carry.
///
/// The analysis only understands capability-annotated lock types, so it is
/// wired to `dbs3::Mutex`/`dbs3::MutexLock` (common/mutex.h), not raw
/// std::mutex (libstdc++'s std::mutex carries no annotations).

#if defined(__clang__) && (!defined(SWIG))
#define DBS3_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DBS3_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a type to be a capability (a lock); required on the mutex class
/// itself for every other annotation to type-check.
#define CAPABILITY(x) DBS3_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY DBS3_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only while holding the given lock(s).
#define GUARDED_BY(x) DBS3_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given lock(s).
#define PT_GUARDED_BY(x) DBS3_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function that may only be called while holding the given lock(s).
#define REQUIRES(...) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function that may only be called while holding the locks *shared*.
#define REQUIRES_SHARED(...) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given lock(s) and does not release them.
#define ACQUIRE(...) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function that releases the given lock(s); they must be held on entry.
#define RELEASE(...) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function that acquires the lock(s) iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must be called *without* holding the given lock(s)
/// (deadlock prevention: the function acquires them itself).
#define EXCLUDES(...) DBS3_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function that asserts (at runtime) that the calling thread holds the
/// lock; tells the analysis to treat it as held from here on.
#define ASSERT_CAPABILITY(x) \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function whose return value is protected by the given lock.
#define LOCK_RETURNED(x) DBS3_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function (e.g. a lock
/// wrapper whose discipline the analysis cannot follow).
#define NO_THREAD_SAFETY_ANALYSIS \
  DBS3_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // DBS3_COMMON_THREAD_ANNOTATIONS_H_

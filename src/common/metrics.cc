#include "common/metrics.h"

#include <algorithm>

namespace dbs3 {

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, s] : series) {
    out += name + " samples=" + std::to_string(s.samples) +
           " min=" + std::to_string(s.min) + " max=" + std::to_string(s.max) +
           " mean=" + std::to_string(s.mean()) +
           " last=" + std::to_string(s.last) + "\n";
  }
  return out;
}

MetricCounter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricSummary* MetricsRegistry::summary(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = summaries_[name];
  if (slot == nullptr) slot = std::make_unique<MetricSummary>();
  return slot.get();
}

void MetricsRegistry::RegisterProbe(const std::string& name,
                                    std::function<int64_t()> probe) {
  MutexLock lock(&mu_);
  probes_[name].fn = std::move(probe);
}

void MetricsRegistry::ClearProbes() {
  MutexLock lock(&mu_);
  for (auto& [name, probe] : probes_) probe.fn = nullptr;
}

void MetricsRegistry::SamplePass() {
  // Probes run under the registry mutex: they must be cheap (an atomic load
  // or a couple of mutex-guarded size reads). This also serializes sampling
  // against registration and snapshots.
  MutexLock lock(&mu_);
  for (auto& [name, probe] : probes_) {
    if (!probe.fn) continue;
    const int64_t v = probe.fn();
    SeriesStats& s = probe.series;
    if (s.samples == 0) {
      s.min = v;
      s.max = v;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.last = v;
    s.sum += static_cast<double>(v);
    ++s.samples;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, p] : probes_) snap.series[name] = p.series;
  for (const auto& [name, s] : summaries_) snap.series[name] = s->value();
  return snap;
}

MetricsSampler::MetricsSampler(MetricsRegistry* registry,
                               std::chrono::microseconds period)
    : registry_(registry), period_(period) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  MutexLock lock(&mu_);
  // running_ (not thread_.joinable()) is the guard: it stays true while a
  // concurrent Stop() holds the moved-out handle to join it. Spawning in
  // that window would let the Stop reset be overwritten (stop_ = false
  // observed by the *old* loop), leaking a sampler thread no Stop() can
  // ever join — the old lost-shutdown race.
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  std::thread sampler;
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    if (!thread_.joinable()) {
      // Another Stop() is mid-join; wait for it so every Stop() returns
      // only once the sampler thread has really exited.
      while (running_) cv_.Wait(&mu_);
      return;
    }
    stop_ = true;
    sampler = std::move(thread_);
  }
  cv_.SignalAll();
  sampler.join();
  MutexLock lock(&mu_);
  running_ = false;
  cv_.SignalAll();
}

void MetricsSampler::Loop() {
  mu_.Lock();
  while (!stop_) {
    mu_.Unlock();
    registry_->SamplePass();
    mu_.Lock();
    if (!stop_) cv_.WaitFor(&mu_, period_);
  }
  mu_.Unlock();
}

}  // namespace dbs3

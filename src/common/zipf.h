#ifndef DBS3_COMMON_ZIPF_H_
#define DBS3_COMMON_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dbs3 {

/// Normalized Zipf shares over `n` ranks with exponent `theta` in [0, 1]:
/// share(i) ∝ 1 / (i+1)^theta, sum over all i equals 1.
///
/// This is the distribution the paper uses to skew fragment cardinalities
/// (Section 5.4, [Zipf49]): theta = 0 means no skew (uniform shares), theta =
/// 1 means high skew. Returns shares indexed by rank, largest first.
std::vector<double> ZipfShares(size_t n, double theta);

/// Splits `total` items over `n` ranks proportionally to ZipfShares,
/// distributing rounding remainders to the largest ranks so the counts sum
/// exactly to `total`. Largest count first.
std::vector<uint64_t> ZipfCounts(uint64_t total, size_t n, double theta);

/// Ratio of the largest Zipf share to the mean share: `Pmax / P` in the
/// paper's analysis (footnote of Section 5.5: Zipf = 1 over 200 buckets gives
/// Pmax = 34 P).
double ZipfMaxOverMean(size_t n, double theta);

/// Samples ranks with Zipf frequencies (used to generate attribute-value
/// skew, AVS). Precomputes the CDF once; Sample() is O(log n).
class ZipfSampler {
 public:
  /// Requires n > 0, theta >= 0.
  ZipfSampler(size_t n, double theta);

  /// A rank in [0, n), rank 0 most frequent.
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dbs3

#endif  // DBS3_COMMON_ZIPF_H_

#include "sched/reassign.h"

#include <algorithm>
#include <cmath>

#include "sched/scheduler.h"

namespace dbs3 {

ReassignPlan PlanReassign(const std::vector<ExecSnapshot>& execs,
                          size_t pool_threads, size_t free_threads,
                          bool pressure, size_t extra_load) {
  ReassignPlan plan;
  if (execs.empty() || pool_threads == 0) return plan;

  // The per-tick utilization recomputation (satellite fix): the same
  // 1/live_queries rule the admission path applies once, re-evaluated
  // against everyone currently competing for the pool.
  const double utilization =
      MultiUserUtilization(execs.size() + extra_load);
  const size_t fair = std::max<size_t>(
      1, static_cast<size_t>(
             std::floor(static_cast<double>(pool_threads) * utilization)));

  if (pressure) {
    // Shed down to the fair share; freed slots go to the waiters creating
    // the pressure, not to other registered executions.
    for (const ExecSnapshot& e : execs) {
      if (e.workers > fair) {
        plan.parks.push_back({e.id, e.workers - fair});
      }
    }
    return plan;
  }

  if (free_threads == 0) return plan;

  // No pressure: deal the idle threads to the widest deficits, one at a
  // time, so two equally-starved executions grow together instead of the
  // first one absorbing the whole surplus.
  struct Deficit {
    uint64_t id;
    size_t remaining;
  };
  std::vector<Deficit> deficits;
  for (const ExecSnapshot& e : execs) {
    if (e.desired > e.workers) {
      deficits.push_back({e.id, e.desired - e.workers});
    }
  }
  if (deficits.empty()) return plan;
  std::stable_sort(deficits.begin(), deficits.end(),
                   [](const Deficit& a, const Deficit& b) {
                     return a.remaining > b.remaining;
                   });
  std::vector<size_t> granted(deficits.size(), 0);
  size_t budget = free_threads;
  bool progressed = true;
  while (budget > 0 && progressed) {
    progressed = false;
    for (size_t i = 0; i < deficits.size() && budget > 0; ++i) {
      if (granted[i] >= deficits[i].remaining) continue;
      ++granted[i];
      --budget;
      progressed = true;
    }
  }
  for (size_t i = 0; i < deficits.size(); ++i) {
    if (granted[i] > 0) plan.grants.push_back({deficits[i].id, granted[i]});
  }
  return plan;
}

}  // namespace dbs3

#ifndef DBS3_SCHED_SUBQUERY_H_
#define DBS3_SCHED_SUBQUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace dbs3 {

/// A node of the subquery tree of Section 3 (Figure 5, step 2): the
/// execution graph of a query viewed as an inverted tree of pipelined
/// chains separated by result materializations.
struct SubqueryNode {
  std::string name;
  /// Estimated sequential complexity of this subquery alone (Ti).
  double complexity = 0.0;
  /// Child subqueries (producers of this subquery's materialized inputs).
  std::vector<size_t> children;
};

/// The subquery tree. Node 0 need not be the root; the root is the unique
/// node that is nobody's child.
class SubqueryTree {
 public:
  /// Adds a node and returns its id.
  size_t AddNode(std::string name, double complexity);

  /// Makes `child` a child of `parent`.
  Status AddChild(size_t parent, size_t child);

  size_t num_nodes() const { return nodes_.size(); }
  const SubqueryNode& node(size_t i) const { return nodes_[i]; }

  /// The unique root, or an error if the tree is malformed.
  Result<size_t> Root() const;

  /// Complexity of the subtree rooted at `i` (Ti plus all descendants) —
  /// the T1+T2+T3 term of the paper's equations.
  double SubtreeComplexity(size_t i) const;

  /// Step 2 of the paper: solves the proportional-allocation equations.
  /// The root gets all `total_threads`; each node's children split their
  /// parent's allocation proportionally to subtree complexity (this
  /// reproduces the paper's example system: N5 = N, N3 + N4 = N5 with
  /// (T1+T2+T3)/N3 = T4/N4, N1 + N2 = N3 with T1/N1 = T2/N2).
  /// Returns fractional thread counts per node, index-aligned with nodes.
  Result<std::vector<double>> SolveThreadAllocation(
      double total_threads) const;

 private:
  std::vector<SubqueryNode> nodes_;
  std::vector<int> parent_;
};

/// Step 3 of the paper: splits a chain's thread budget over its operators
/// proportionally to complexity: NbThreads(Op_i) = NbThreads(chain) *
/// Complexity(Op_i) / Complexity(chain). Returns integer counts, each >= 1,
/// summing to max(total, #ops) (largest-remainder rounding).
std::vector<size_t> SplitChainThreads(const std::vector<double>& complexities,
                                      size_t total);

}  // namespace dbs3

#endif  // DBS3_SCHED_SUBQUERY_H_

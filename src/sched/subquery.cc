#include "sched/subquery.h"

#include <algorithm>
#include <numeric>

namespace dbs3 {

size_t SubqueryTree::AddNode(std::string name, double complexity) {
  SubqueryNode n;
  n.name = std::move(name);
  n.complexity = complexity;
  nodes_.push_back(std::move(n));
  parent_.push_back(-1);
  return nodes_.size() - 1;
}

Status SubqueryTree::AddChild(size_t parent, size_t child) {
  if (parent >= nodes_.size() || child >= nodes_.size()) {
    return Status::InvalidArgument("subquery node id out of range");
  }
  if (parent_[child] != -1) {
    return Status::FailedPrecondition("subquery '" + nodes_[child].name +
                                      "' already has a parent");
  }
  if (parent == child) {
    return Status::InvalidArgument("subquery cannot be its own child");
  }
  nodes_[parent].children.push_back(child);
  parent_[child] = static_cast<int>(parent);
  return Status::OK();
}

Result<size_t> SubqueryTree::Root() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty subquery tree");
  int root = -1;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (parent_[i] == -1) {
      if (root != -1) {
        return Status::InvalidArgument("subquery tree has several roots");
      }
      root = static_cast<int>(i);
    }
  }
  if (root == -1) return Status::InvalidArgument("subquery tree is cyclic");
  return static_cast<size_t>(root);
}

double SubqueryTree::SubtreeComplexity(size_t i) const {
  double total = nodes_[i].complexity;
  for (size_t c : nodes_[i].children) total += SubtreeComplexity(c);
  return total;
}

Result<std::vector<double>> SubqueryTree::SolveThreadAllocation(
    double total_threads) const {
  DBS3_ASSIGN_OR_RETURN(const size_t root, Root());
  if (total_threads <= 0.0) {
    return Status::InvalidArgument("total_threads must be > 0");
  }
  std::vector<double> threads(nodes_.size(), 0.0);
  threads[root] = total_threads;
  // Top-down: children split the parent's full allocation proportionally to
  // subtree complexity (they execute in an earlier phase, when the parent's
  // CPU power is free for them — hence sum(children) == parent).
  std::vector<size_t> stack = {root};
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    const SubqueryNode& n = nodes_[i];
    if (n.children.empty()) continue;
    double denom = 0.0;
    for (size_t c : n.children) denom += SubtreeComplexity(c);
    for (size_t c : n.children) {
      threads[c] = denom > 0.0
                       ? threads[i] * SubtreeComplexity(c) / denom
                       : threads[i] / static_cast<double>(n.children.size());
      stack.push_back(c);
    }
  }
  return threads;
}

std::vector<size_t> SplitChainThreads(const std::vector<double>& complexities,
                                      size_t total) {
  const size_t n = complexities.size();
  std::vector<size_t> out(n, 1);
  if (n == 0) return out;
  if (total < n) total = n;  // Every operator pool needs >= 1 thread.
  double sum = std::accumulate(complexities.begin(), complexities.end(), 0.0);
  if (sum <= 0.0) {
    // Degenerate: spread evenly.
    size_t base = total / n, extra = total % n;
    for (size_t i = 0; i < n; ++i) out[i] = base + (i < extra ? 1 : 0);
    for (size_t& t : out) t = std::max<size_t>(t, 1);
    return out;
  }
  // Largest-remainder apportionment with a floor of 1 thread per operator.
  std::vector<double> ideal(n);
  size_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    ideal[i] = static_cast<double>(total) * complexities[i] / sum;
    out[i] = std::max<size_t>(1, static_cast<size_t>(ideal[i]));
    assigned += out[i];
  }
  // Distribute any remaining threads by largest fractional remainder;
  // if floors overshot (possible with many tiny operators), trim from the
  // smallest-remainder operators that still have > 1 thread.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ideal[a] - static_cast<double>(out[a]) >
           ideal[b] - static_cast<double>(out[b]);
  });
  size_t k = 0;
  while (assigned < total) {
    ++out[order[k % n]];
    ++assigned;
    ++k;
  }
  k = n;
  while (assigned > total) {
    const size_t i = order[(k - 1) % n];
    if (out[i] > 1) {
      --out[i];
      --assigned;
    }
    --k;
    if (k == 0) k = n;  // Wrap; loop terminates because total >= n.
  }
  return out;
}

}  // namespace dbs3

#ifndef DBS3_SCHED_REASSIGN_H_
#define DBS3_SCHED_REASSIGN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbs3 {

/// What the rebalancer knows about one running execution when planning a
/// tick: how many pool workers it holds right now and how many its
/// unclamped schedule wanted.
struct ExecSnapshot {
  uint64_t id = 0;
  size_t workers = 0;
  size_t desired = 0;
};

/// One tick's reassignment decisions: which executions give workers up
/// (parks) and which receive freed pool threads (grants). Counts are upper
/// bounds — the engine may deliver fewer (an operation always keeps one
/// worker; a grant can race a drain).
struct ReassignPlan {
  struct Move {
    uint64_t id = 0;
    size_t count = 0;
  };
  std::vector<Move> parks;
  std::vector<Move> grants;
};

/// Plans one steady-state rebalance tick over the running executions.
///
/// The fair share is recomputed from the *live* population each tick —
/// `pool_threads * MultiUserUtilization(execs + extra_load)` — which is the
/// steady-state fix for the admission-time staleness: a solo survivor's
/// fair share grows back to the whole pool as its cohort drains, and a
/// burst of waiters shrinks it again.
///
/// Under `pressure` (admission waiters or blocked slot reservations) the
/// plan only parks: every execution holding more than its fair share is
/// asked to shed down to it, freeing slots for the waiters. Without
/// pressure the plan only grants: `free_threads` are dealt round-robin to
/// the executions with the largest deficit against their desired width.
/// Parking and granting never happen in the same tick — that would churn
/// workers between executions with no one waiting to benefit.
///
/// `extra_load` counts consumers of pool capacity that are not (yet)
/// registered executions: queued admission waiters and queries blocked in
/// slot reservation. They dilute the fair share but cannot receive grants.
ReassignPlan PlanReassign(const std::vector<ExecSnapshot>& execs,
                          size_t pool_threads, size_t free_threads,
                          bool pressure, size_t extra_load);

}  // namespace dbs3

#endif  // DBS3_SCHED_REASSIGN_H_

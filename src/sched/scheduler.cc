#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>

#include "sched/subquery.h"

namespace dbs3 {

std::string ScheduleReport::ToString() const {
  std::string out = "schedule: " + std::to_string(total_threads) +
                    " threads, total work " + std::to_string(total_work) +
                    "\n";
  for (size_t i = 0; i < threads.size(); ++i) {
    out += "  node " + std::to_string(i) + ": work " +
           std::to_string(estimates[i].total_work) + ", threads " +
           std::to_string(threads[i]) + ", " +
           StrategyName(strategies[i]) + "\n";
  }
  return out;
}

double MultiUserUtilization(size_t live_queries) {
  return 1.0 / static_cast<double>(std::max<size_t>(1, live_queries));
}

ScheduleOptions ApplyUtilization(ScheduleOptions options, double factor) {
  factor = std::clamp(factor, 1e-9, 1.0);
  if (options.total_threads > 0) {
    options.total_threads = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               static_cast<double>(options.total_threads) * factor)));
  } else {
    options.utilization = std::max(options.utilization * factor, 1e-9);
  }
  return options;
}

Result<ScheduleReport> ScheduleQuery(Plan& plan, const CostModel& cost_model,
                                     const ScheduleOptions& options) {
  DBS3_RETURN_IF_ERROR(plan.Validate());
  if (options.processors == 0) {
    return Status::InvalidArgument("processors must be >= 1");
  }
  if (options.utilization <= 0.0 || options.utilization > 1.0) {
    return Status::InvalidArgument("utilization must be in (0, 1]");
  }
  DBS3_ASSIGN_OR_RETURN(std::vector<size_t> order, plan.TopologicalOrder());

  ScheduleReport report;
  report.estimates.resize(plan.num_nodes());
  report.threads.assign(plan.num_nodes(), 1);
  report.strategies.assign(plan.num_nodes(), Strategy::kRandom);

  // Estimate every node, propagating output cardinalities along data edges
  // (a pipelined node's activation count is the sum of its producers'
  // estimated outputs).
  std::vector<double> incoming(plan.num_nodes(), 0.0);
  for (size_t i : order) {
    const PlanNode& node = plan.node(i);
    report.estimates[i] = node.logic->Estimate(cost_model, incoming[i]);
    report.total_work += report.estimates[i].total_work;
    if (node.output >= 0) {
      incoming[static_cast<size_t>(node.output)] +=
          report.estimates[i].output_tuples;
    }
  }

  // Step 1: number of threads for the query. The Wilschut optimum minimizes
  // startup_cost * n + W / n, i.e. n* = sqrt(W / startup_cost); it is then
  // reduced by the multi-user utilization factor and capped by the
  // processor count.
  size_t n = options.total_threads;
  if (n == 0) {
    const double opt = std::sqrt(
        std::max(report.total_work, 1.0) / std::max(options.startup_cost, 1e-9));
    n = static_cast<size_t>(std::lround(
        std::max(1.0, opt * options.utilization)));
  }
  n = std::clamp<size_t>(n, 1, options.processors);
  report.total_threads = n;

  // Steps 2-3: this plan is one pipelined chain graph (materialization
  // boundaries produce separate plans), so the subquery equations reduce to
  // splitting n over the operators proportionally to complexity.
  std::vector<double> complexities(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    complexities[i] = report.estimates[i].total_work;
  }
  report.threads = SplitChainThreads(complexities, n);

  // The degree of partitioning must be >= the degree of parallelism: more
  // threads than instances would leave threads permanently idle for a
  // triggered operation, so cap per node.
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    report.threads[i] = std::min(report.threads[i], plan.node(i).instances);
  }

  // Step 4: consumption strategy. LPT pays off exactly where the analysis
  // of Section 4.1 says skew hurts: triggered operations (few activations)
  // with uneven per-instance work.
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    const PlanNode& node = plan.node(i);
    Strategy s = Strategy::kRandom;
    if (options.force_strategy.has_value()) {
      s = *options.force_strategy;
    } else if (node.mode == ActivationMode::kTriggered) {
      const std::vector<double>& w = report.estimates[i].per_instance_work;
      if (!w.empty()) {
        double max = 0.0, sum = 0.0;
        for (double v : w) {
          max = std::max(max, v);
          sum += v;
        }
        const double mean = sum / static_cast<double>(w.size());
        if (mean > 0.0 && max / mean > options.lpt_skew_threshold) {
          s = Strategy::kLpt;
        }
      }
    }
    report.strategies[i] = s;
  }

  // Write the decisions into the plan.
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    PlanNodeParams& params = plan.params(i);
    params.threads = report.threads[i];
    params.strategy = report.strategies[i];
    params.cache_size = options.cache_size;
    params.chunk_size = options.chunk_size;
    params.queue_capacity = options.queue_capacity;
    params.cost_estimates = report.estimates[i].per_instance_work;
  }
  plan.trace_options() = options.trace;
  return report;
}

}  // namespace dbs3

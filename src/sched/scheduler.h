#ifndef DBS3_SCHED_SCHEDULER_H_
#define DBS3_SCHED_SCHEDULER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "engine/cost_model.h"
#include "engine/plan.h"

namespace dbs3 {

/// Inputs to the 4-step thread allocation of Section 3.
struct ScheduleOptions {
  /// Fixed total thread count for the query. 0 = derive from the query's
  /// complexity (step 1): the Wilschut optimum n* = sqrt(W / startup_cost)
  /// of response(n) = startup_cost * n + W / n.
  size_t total_threads = 0;
  /// Processor count; the derived thread count never exceeds it (there is
  /// no benefit in allocating more threads than processors for a simple
  /// query, Section 5.5).
  size_t processors = 1;
  /// Sequential start-up work per thread, in CostModel units (step 1).
  double startup_cost = 50'000.0;
  /// Multi-user reduction factor in (0, 1]: scales the thread count down to
  /// raise throughput under concurrent load [Rahm93].
  double utilization = 1.0;
  /// Internal activation cache size given to every operation (consumer-side
  /// batching).
  size_t cache_size = 8;
  /// Tuples per emitted data activation (producer-side batching) given to
  /// every operation. Default 1 = the paper-faithful per-tuple mode; the
  /// figure benchmarks rely on it. Raise for throughput workloads.
  size_t chunk_size = 1;
  /// Per-queue capacity in tuple units (0 = unbounded).
  size_t queue_capacity = 0;
  /// Overrides step 4 for every node when set.
  std::optional<Strategy> force_strategy;
  /// A triggered node whose per-instance work spread (max/mean) exceeds
  /// this threshold gets LPT (step 4); others get Random.
  double lpt_skew_threshold = 1.2;
  /// Observability: activation tracing + queue-depth sampling for this
  /// query's execution (off by default; see common/trace.h).
  TraceOptions trace;
};

/// What the scheduler decided, for inspection and tests.
struct ScheduleReport {
  size_t total_threads = 0;
  double total_work = 0.0;
  /// Per plan node, index-aligned with the plan.
  std::vector<NodeEstimate> estimates;
  std::vector<size_t> threads;
  std::vector<Strategy> strategies;

  std::string ToString() const;
};

/// The [Rahm93] multi-user reduction as a feedback function: the
/// utilization factor for one of `live_queries` queries executing
/// concurrently. 1.0 for a single-user system; under load each query's
/// thread allocation shrinks with the live degree of multiprogramming so
/// aggregate thread pressure stays near the single-user level (throughput
/// over response time). The server's QueryRuntime feeds its live-query
/// count through this before every phase schedule.
double MultiUserUtilization(size_t live_queries);

/// Applies a utilization factor to `options` whether the caller fixed the
/// thread count or left it derived: a fixed total_threads is scaled
/// directly (the step-1 utilization input only affects derived counts),
/// a derived one compounds the factor into options.utilization.
ScheduleOptions ApplyUtilization(ScheduleOptions options, double factor);

/// Runs steps 1-4 of Section 3 on `plan`: estimates every node's complexity
/// (propagating cardinalities along pipeline edges), chooses the total
/// thread count, splits it over the plan's operators proportionally to
/// complexity, caps each operator's threads by its degree of partitioning
/// (the paper's invariant: partitioning degree >= parallelism degree),
/// picks each operator's consumption strategy, and writes the results into
/// plan.params().
Result<ScheduleReport> ScheduleQuery(Plan& plan, const CostModel& cost_model,
                                     const ScheduleOptions& options);

}  // namespace dbs3

#endif  // DBS3_SCHED_SCHEDULER_H_

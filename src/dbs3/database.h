#ifndef DBS3_DBS3_DATABASE_H_
#define DBS3_DBS3_DATABASE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "server/query_runtime.h"
#include "storage/catalog.h"
#include "storage/disk.h"
#include "storage/skew.h"
#include "storage/wisconsin.h"

namespace dbs3 {

/// The top-level database object: a catalog of statically partitioned
/// relations placed round-robin on simulated disks. Entry point of the
/// public API — see examples/quickstart.cc.
class Database {
 public:
  /// Creates a database with `num_disks` placement targets.
  explicit Database(size_t num_disks = 8);

  ~Database();

  /// Neither copyable nor movable: the query runtime and the queries in
  /// flight hold pointers to the metrics registry and catalog — moving the
  /// database out from under them would dangle every one of those.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = delete;
  Database& operator=(Database&&) = delete;

  /// Generates and registers a Wisconsin benchmark relation.
  Status CreateWisconsin(const std::string& name,
                         const WisconsinOptions& options);

  /// Generates and registers a skewed experiment pair per `spec`, under the
  /// names `a_name` and `b_name`.
  Status CreateSkewedPair(const SkewSpec& spec, const std::string& a_name,
                          const std::string& b_name);

  /// Registers an externally built relation (placing its fragments).
  Status AddRelation(std::unique_ptr<Relation> relation);

  /// The relation named `name`, or NotFound.
  Result<Relation*> relation(const std::string& name) const;

  /// Writes the relation named `name` to `path` (DBS3 binary format).
  Status SaveRelation(const std::string& name, const std::string& path) const;

  /// Reads a relation file written by SaveRelation and registers it
  /// (placing its fragments on the disks). Fails on duplicate names.
  Status LoadRelation(const std::string& path);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  DiskArray& disks() { return disks_; }

  /// Engine-wide metrics, accumulated across every query run against this
  /// database (engine.queries, engine.tuple_units, engine.busy_ns,
  /// engine.units_dropped, runtime.*...). Per-execution detail lives on
  /// each query's ExecutionResult; this registry is the long-running
  /// aggregate.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Starts the concurrent query runtime with explicit sizing. Optional:
  /// the first Submit (or runtime()) lazily starts one with defaults.
  /// Fails with FailedPrecondition once a runtime exists.
  /// `options.metrics` is overridden to this database's registry.
  Status StartRuntime(QueryRuntimeOptions options) EXCLUDES(runtime_mu_);

  /// The shared query runtime (lazily started with default sizing).
  QueryRuntime& runtime() EXCLUDES(runtime_mu_);

  /// Queues `spec` on the runtime and returns its future-like handle —
  /// the async entry point the synchronous query API is built on. See
  /// examples in README ("Concurrent sessions").
  QueryHandle Submit(QuerySpec spec) EXCLUDES(runtime_mu_);

 private:
  Catalog catalog_;
  DiskArray disks_;
  MetricsRegistry metrics_;
  /// Lazily started on first use; declared after everything queries touch
  /// so in-flight queries drain (runtime dtor) before any of it goes away.
  Mutex runtime_mu_{"Database::runtime_mu"};
  std::unique_ptr<QueryRuntime> runtime_ GUARDED_BY(runtime_mu_);
};

}  // namespace dbs3

#endif  // DBS3_DBS3_DATABASE_H_

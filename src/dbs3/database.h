#ifndef DBS3_DBS3_DATABASE_H_
#define DBS3_DBS3_DATABASE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/disk.h"
#include "storage/skew.h"
#include "storage/wisconsin.h"

namespace dbs3 {

/// The top-level database object: a catalog of statically partitioned
/// relations placed round-robin on simulated disks. Entry point of the
/// public API — see examples/quickstart.cc.
class Database {
 public:
  /// Creates a database with `num_disks` placement targets.
  explicit Database(size_t num_disks = 8);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Generates and registers a Wisconsin benchmark relation.
  Status CreateWisconsin(const std::string& name,
                         const WisconsinOptions& options);

  /// Generates and registers a skewed experiment pair per `spec`, under the
  /// names `a_name` and `b_name`.
  Status CreateSkewedPair(const SkewSpec& spec, const std::string& a_name,
                          const std::string& b_name);

  /// Registers an externally built relation (placing its fragments).
  Status AddRelation(std::unique_ptr<Relation> relation);

  /// The relation named `name`, or NotFound.
  Result<Relation*> relation(const std::string& name) const;

  /// Writes the relation named `name` to `path` (DBS3 binary format).
  Status SaveRelation(const std::string& name, const std::string& path) const;

  /// Reads a relation file written by SaveRelation and registers it
  /// (placing its fragments on the disks). Fails on duplicate names.
  Status LoadRelation(const std::string& path);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  DiskArray& disks() { return disks_; }

  /// Engine-wide metrics, accumulated across every query run against this
  /// database (engine.queries, engine.tuple_units, engine.busy_ns,
  /// engine.units_dropped...). Per-execution detail lives on each query's
  /// ExecutionResult; this registry is the long-running aggregate.
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

 private:
  Catalog catalog_;
  DiskArray disks_;
  /// unique_ptr keeps Database movable (the registry holds a mutex).
  std::unique_ptr<MetricsRegistry> metrics_ =
      std::make_unique<MetricsRegistry>();
};

}  // namespace dbs3

#endif  // DBS3_DBS3_DATABASE_H_

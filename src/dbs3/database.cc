#include "dbs3/database.h"

#include "storage/serialize.h"

namespace dbs3 {

Database::Database(size_t num_disks) : disks_(num_disks) {}

/// Out of line so the header does not need QueryRuntime's destructor;
/// runtime_ (declared last) drains in-flight queries before the catalog
/// and metrics go away.
Database::~Database() = default;

Status Database::StartRuntime(QueryRuntimeOptions options) {
  MutexLock lock(&runtime_mu_);
  if (runtime_ != nullptr) {
    return Status::FailedPrecondition(
        "query runtime already started for this database");
  }
  options.metrics = &metrics_;
  runtime_ = std::make_unique<QueryRuntime>(options);
  return Status::OK();
}

QueryRuntime& Database::runtime() {
  MutexLock lock(&runtime_mu_);
  if (runtime_ == nullptr) {
    QueryRuntimeOptions options;
    options.metrics = &metrics_;
    runtime_ = std::make_unique<QueryRuntime>(options);
  }
  return *runtime_;
}

QueryHandle Database::Submit(QuerySpec spec) {
  return runtime().Submit(std::move(spec));
}

Status Database::CreateWisconsin(const std::string& name,
                                 const WisconsinOptions& options) {
  auto relation = GenerateWisconsin(name, options);
  if (!relation.ok()) return relation.status();
  return AddRelation(std::move(relation).value());
}

Status Database::CreateSkewedPair(const SkewSpec& spec,
                                  const std::string& a_name,
                                  const std::string& b_name) {
  auto db = BuildSkewedDatabase(spec);
  if (!db.ok()) return db.status();
  // Rebuild under the requested names (the generator uses fixed names).
  SkewedDatabase pair = std::move(db).value();
  auto renamed_a = std::make_unique<Relation>(
      a_name, pair.a->schema(), pair.a->partition_column(),
      pair.a->partitioner());
  auto renamed_b = std::make_unique<Relation>(
      b_name, pair.b->schema(), pair.b->partition_column(),
      pair.b->partitioner());
  for (size_t f = 0; f < pair.a->degree(); ++f) {
    for (const Tuple& t : pair.a->fragment(f).tuples) {
      renamed_a->AppendToFragment(f, t);
    }
  }
  for (size_t f = 0; f < pair.b->degree(); ++f) {
    for (const Tuple& t : pair.b->fragment(f).tuples) {
      renamed_b->AppendToFragment(f, t);
    }
  }
  DBS3_RETURN_IF_ERROR(AddRelation(std::move(renamed_a)));
  return AddRelation(std::move(renamed_b));
}

Status Database::AddRelation(std::unique_ptr<Relation> relation) {
  disks_.Place(*relation);
  return catalog_.Add(std::move(relation));
}

Result<Relation*> Database::relation(const std::string& name) const {
  return catalog_.Get(name);
}

Status Database::SaveRelation(const std::string& name,
                              const std::string& path) const {
  auto rel = catalog_.Get(name);
  if (!rel.ok()) return rel.status();
  return WriteRelation(*rel.value(), path);
}

Status Database::LoadRelation(const std::string& path) {
  auto rel = ReadRelation(path);
  if (!rel.ok()) return rel.status();
  return AddRelation(std::move(rel).value());
}

}  // namespace dbs3

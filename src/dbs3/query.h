#ifndef DBS3_DBS3_QUERY_H_
#define DBS3_DBS3_QUERY_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "dbs3/database.h"
#include "engine/cancel.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "engine/plan.h"
#include "sched/scheduler.h"
#include "server/query_handle.h"

namespace dbs3 {

/// Knobs for running one query on the real engine.
struct QueryOptions {
  /// Thread allocation inputs (Section 3 steps 1-4).
  ScheduleOptions schedule;
  /// Operator complexity constants for the scheduler.
  CostModel cost_model;
  /// Join algorithm for join queries.
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
  /// Run the vectorized batch kernels (columnar predicate evaluation,
  /// batched index probes) when a predicate is lowerable and activations
  /// carry enough tuples. Off = always the per-row loops; results are
  /// identical either way, and chunk_size=1 executions take the row path
  /// automatically.
  bool vectorize = true;
  /// Name given to the materialized result relation.
  std::string result_name = "Res";

  /// Multi-user knobs, forwarded to the runtime's QuerySpec.
  /// Higher-priority queries leave the admission queue first.
  int priority = 0;
  /// Declared working-set tuple units charged against the runtime's
  /// memory budget. 0 = free.
  uint64_t memory_units = 0;
  /// Absolute deadline; expiry (even while queued) fails the query with
  /// DeadlineExceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancel token; default = fresh (cancel via the handle).
  std::optional<CancelToken> cancel;
  /// Run through the database's shared QueryRuntime (admission control,
  /// shared worker pool). false = legacy path: schedule and execute
  /// inline on the caller's thread with private per-operation threads.
  bool use_shared_runtime = true;
};

/// QueryResult (materialized relation + ExecutionResult + ScheduleReport)
/// lives in server/query_handle.h so the async API can return it through
/// QueryHandle; the synchronous RunXxx functions below return the same
/// type.

/// Runs the IdealJoin plan (Figure 10): `outer` and `inner` must be
/// co-partitioned on the join columns; join instance i joins fragment i
/// with fragment i and materializes into result fragment i.
Result<QueryResult> RunIdealJoin(Database& db, const std::string& outer,
                                 const std::string& outer_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options);

/// Runs the AssocJoin plan (Figure 11): `probe_rel` is redistributed on its
/// join column by a Transmit and pipelined into a join against `inner`
/// (which must be partitioned on its join column).
Result<QueryResult> RunAssocJoin(Database& db, const std::string& probe_rel,
                                 const std::string& probe_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options);

/// Runs the filter-join pipeline of Figure 1: filter `filtered` with
/// `predicate` (estimated `selectivity`), repartition the survivors on the
/// join column, join against `inner`, materialize.
Result<QueryResult> RunFilterJoin(Database& db, const std::string& filtered,
                                  Predicate predicate,
                                  double selectivity,
                                  const std::string& filter_join_column,
                                  const std::string& inner,
                                  const std::string& inner_column,
                                  const QueryOptions& options);

/// Runs a parallel selection: filter + materialize.
Result<QueryResult> RunSelect(Database& db, const std::string& input,
                              Predicate predicate, double selectivity,
                              const QueryOptions& options);

/// Async variants: queue the query on the database's shared runtime and
/// return immediately with a handle (wait / cancel / stats / Take). The
/// RunXxx functions above are Submit + Take when
/// options.use_shared_runtime (the default).
QueryHandle SubmitIdealJoin(Database& db, const std::string& outer,
                            const std::string& outer_column,
                            const std::string& inner,
                            const std::string& inner_column,
                            const QueryOptions& options);

QueryHandle SubmitAssocJoin(Database& db, const std::string& probe_rel,
                            const std::string& probe_column,
                            const std::string& inner,
                            const std::string& inner_column,
                            const QueryOptions& options);

QueryHandle SubmitFilterJoin(Database& db, const std::string& filtered,
                             Predicate predicate, double selectivity,
                             const std::string& filter_join_column,
                             const std::string& inner,
                             const std::string& inner_column,
                             const QueryOptions& options);

QueryHandle SubmitSelect(Database& db, const std::string& input,
                         Predicate predicate, double selectivity,
                         const QueryOptions& options);

}  // namespace dbs3

#endif  // DBS3_DBS3_QUERY_H_

#ifndef DBS3_DBS3_QUERY_H_
#define DBS3_DBS3_QUERY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "dbs3/database.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "engine/plan.h"
#include "sched/scheduler.h"

namespace dbs3 {

/// Knobs for running one query on the real engine.
struct QueryOptions {
  /// Thread allocation inputs (Section 3 steps 1-4).
  ScheduleOptions schedule;
  /// Operator complexity constants for the scheduler.
  CostModel cost_model;
  /// Join algorithm for join queries.
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
  /// Name given to the materialized result relation.
  std::string result_name = "Res";
};

/// Result of one query execution.
struct QueryResult {
  /// The materialized result, partitioned like the final operator.
  std::unique_ptr<Relation> result;
  /// Engine timing and per-operation load-balance statistics.
  ExecutionResult execution;
  /// What the scheduler decided (threads, strategies, estimates).
  ScheduleReport schedule;
};

/// Runs the IdealJoin plan (Figure 10): `outer` and `inner` must be
/// co-partitioned on the join columns; join instance i joins fragment i
/// with fragment i and materializes into result fragment i.
Result<QueryResult> RunIdealJoin(Database& db, const std::string& outer,
                                 const std::string& outer_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options);

/// Runs the AssocJoin plan (Figure 11): `probe_rel` is redistributed on its
/// join column by a Transmit and pipelined into a join against `inner`
/// (which must be partitioned on its join column).
Result<QueryResult> RunAssocJoin(Database& db, const std::string& probe_rel,
                                 const std::string& probe_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options);

/// Runs the filter-join pipeline of Figure 1: filter `filtered` with
/// `predicate` (estimated `selectivity`), repartition the survivors on the
/// join column, join against `inner`, materialize.
Result<QueryResult> RunFilterJoin(Database& db, const std::string& filtered,
                                  TuplePredicate predicate,
                                  double selectivity,
                                  const std::string& filter_join_column,
                                  const std::string& inner,
                                  const std::string& inner_column,
                                  const QueryOptions& options);

/// Runs a parallel selection: filter + materialize.
Result<QueryResult> RunSelect(Database& db, const std::string& input,
                              TuplePredicate predicate, double selectivity,
                              const QueryOptions& options);

}  // namespace dbs3

#endif  // DBS3_DBS3_QUERY_H_

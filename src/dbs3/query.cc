#include "dbs3/query.h"

#include <utility>

namespace dbs3 {

namespace {

/// Folds one execution's statistics into the database's engine-wide
/// metrics registry.
void AccumulateEngineMetrics(MetricsRegistry& metrics,
                             const ExecutionResult& execution) {
  metrics.counter("engine.queries")->Add(1);
  metrics.counter("engine.units_dropped")->Add(execution.units_dropped);
  uint64_t tuple_units = 0, activations = 0, emitted = 0;
  double busy = 0.0;
  for (const OperationStats& op : execution.op_stats) {
    for (uint64_t c : op.per_instance_processed) tuple_units += c;
    activations += op.activations;
    emitted += op.emitted;
    busy += op.busy_seconds;
  }
  metrics.counter("engine.tuple_units")->Add(tuple_units);
  metrics.counter("engine.activations")->Add(activations);
  metrics.counter("engine.emitted")->Add(emitted);
  metrics.counter("engine.busy_ns")->Add(static_cast<uint64_t>(busy * 1e9));
  metrics.counter("engine.wall_ns")
      ->Add(static_cast<uint64_t>(execution.seconds * 1e9));
}

/// Schedules and runs a finished plan, packaging the result.
Result<QueryResult> Finish(Database& db, Plan& plan,
                           std::unique_ptr<Relation> result,
                           const QueryOptions& options) {
  QueryResult out;
  DBS3_ASSIGN_OR_RETURN(
      out.schedule, ScheduleQuery(plan, options.cost_model, options.schedule));
  Executor executor;
  DBS3_ASSIGN_OR_RETURN(out.execution, executor.Run(plan));
  AccumulateEngineMetrics(db.metrics(), out.execution);
  out.result = std::move(result);
  return out;
}

Result<size_t> ColumnOf(const Relation* rel, const std::string& column) {
  return rel->schema().IndexOf(column);
}

}  // namespace

Result<QueryResult> RunIdealJoin(Database& db, const std::string& outer,
                                 const std::string& outer_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * outer_rel, db.relation(outer));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t outer_col,
                        ColumnOf(outer_rel, outer_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (outer_rel->degree() != inner_rel->degree()) {
    return Status::FailedPrecondition(
        "IdealJoin needs co-partitioned operands: '" + outer + "' has " +
        std::to_string(outer_rel->degree()) + " fragments, '" + inner +
        "' has " + std::to_string(inner_rel->degree()));
  }
  const size_t degree = outer_rel->degree();
  auto result = std::make_unique<Relation>(
      options.result_name, Schema::Concat(outer_rel->schema(),
                                          inner_rel->schema()),
      outer_col, Partitioner(outer_rel->partitioner().kind(), degree));

  Plan plan;
  const size_t join = plan.AddNode(
      "join", ActivationMode::kTriggered, degree,
      std::make_unique<TriggeredJoinLogic>(outer_rel, outer_col, inner_rel,
                                           inner_col, options.algorithm));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, degree,
                   std::make_unique<StoreLogic>(result.get()));
  DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(join, store));
  return Finish(db, plan, std::move(result), options);
}

Result<QueryResult> RunAssocJoin(Database& db, const std::string& probe_rel,
                                 const std::string& probe_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * probe, db.relation(probe_rel));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t probe_col,
                        ColumnOf(probe, probe_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (inner_rel->partition_column() != inner_col) {
    return Status::FailedPrecondition(
        "AssocJoin needs '" + inner + "' partitioned on '" + inner_column +
        "' (it is partitioned on column " +
        std::to_string(inner_rel->partition_column()) + ")");
  }
  const size_t degree = inner_rel->degree();
  auto result = std::make_unique<Relation>(
      options.result_name,
      Schema::Concat(probe->schema(), inner_rel->schema()), probe_col,
      Partitioner(inner_rel->partitioner().kind(), degree));

  Plan plan;
  const size_t transmit =
      plan.AddNode("transmit", ActivationMode::kTriggered, probe->degree(),
                   std::make_unique<TransmitLogic>(probe));
  const size_t join = plan.AddNode(
      "join", ActivationMode::kPipelined, degree,
      std::make_unique<PipelinedJoinLogic>(inner_rel, inner_col, probe_col,
                                           options.algorithm));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, degree,
                   std::make_unique<StoreLogic>(result.get()));
  DBS3_RETURN_IF_ERROR(plan.ConnectByColumn(transmit, join, probe_col,
                                            inner_rel->partitioner()));
  DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(join, store));
  return Finish(db, plan, std::move(result), options);
}

Result<QueryResult> RunFilterJoin(Database& db, const std::string& filtered,
                                  TuplePredicate predicate,
                                  double selectivity,
                                  const std::string& filter_join_column,
                                  const std::string& inner,
                                  const std::string& inner_column,
                                  const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * filtered_rel, db.relation(filtered));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t probe_col,
                        ColumnOf(filtered_rel, filter_join_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (inner_rel->partition_column() != inner_col) {
    return Status::FailedPrecondition(
        "FilterJoin needs '" + inner + "' partitioned on '" + inner_column +
        "'");
  }
  const size_t degree = inner_rel->degree();
  auto result = std::make_unique<Relation>(
      options.result_name,
      Schema::Concat(filtered_rel->schema(), inner_rel->schema()), probe_col,
      Partitioner(inner_rel->partitioner().kind(), degree));

  Plan plan;
  const size_t filter = plan.AddNode(
      "filter", ActivationMode::kTriggered, filtered_rel->degree(),
      std::make_unique<FilterLogic>(filtered_rel, std::move(predicate),
                                    selectivity));
  const size_t join = plan.AddNode(
      "join", ActivationMode::kPipelined, degree,
      std::make_unique<PipelinedJoinLogic>(inner_rel, inner_col, probe_col,
                                           options.algorithm));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, degree,
                   std::make_unique<StoreLogic>(result.get()));
  DBS3_RETURN_IF_ERROR(plan.ConnectByColumn(filter, join, probe_col,
                                            inner_rel->partitioner()));
  DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(join, store));
  return Finish(db, plan, std::move(result), options);
}

Result<QueryResult> RunSelect(Database& db, const std::string& input,
                              TuplePredicate predicate, double selectivity,
                              const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * input_rel, db.relation(input));
  const size_t degree = input_rel->degree();
  auto result = std::make_unique<Relation>(
      options.result_name, input_rel->schema(),
      input_rel->partition_column(),
      Partitioner(input_rel->partitioner().kind(), degree));

  Plan plan;
  const size_t filter = plan.AddNode(
      "filter", ActivationMode::kTriggered, degree,
      std::make_unique<FilterLogic>(input_rel, std::move(predicate),
                                    selectivity));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, degree,
                   std::make_unique<StoreLogic>(result.get()));
  DBS3_RETURN_IF_ERROR(plan.ConnectSameInstance(filter, store));
  return Finish(db, plan, std::move(result), options);
}

}  // namespace dbs3

#include "dbs3/query.h"

#include <functional>
#include <utility>

#include "common/memory_quota.h"
#include "server/query_runtime.h"

namespace dbs3 {

namespace {

/// Folds one execution's statistics into the database's engine-wide
/// metrics registry.
void AccumulateEngineMetrics(MetricsRegistry& metrics,
                             const ExecutionResult& execution) {
  metrics.counter("engine.queries")->Add(1);
  metrics.counter("engine.units_dropped")->Add(execution.units_dropped);
  metrics.counter("engine.units_cancelled")->Add(execution.units_cancelled);
  uint64_t tuple_units = 0, activations = 0, emitted = 0;
  double busy = 0.0;
  for (const OperationStats& op : execution.op_stats) {
    for (uint64_t c : op.per_instance_processed) tuple_units += c;
    activations += op.activations;
    emitted += op.emitted;
    busy += op.busy_seconds;
  }
  metrics.counter("engine.tuple_units")->Add(tuple_units);
  metrics.counter("engine.activations")->Add(activations);
  metrics.counter("engine.emitted")->Add(emitted);
  metrics.counter("engine.busy_ns")->Add(static_cast<uint64_t>(busy * 1e9));
  metrics.counter("engine.wall_ns")
      ->Add(static_cast<uint64_t>(execution.seconds * 1e9));
}

/// A built-but-not-yet-executed query: the dataflow graph plus the
/// relation its store node materializes into.
struct PlannedQuery {
  Plan plan;
  std::unique_ptr<Relation> result;
};

/// Deferred plan construction, run on the driver thread for submitted
/// queries (so catalog errors surface through the handle) and inline for
/// the legacy direct path.
using QueryPlanner = std::function<Result<PlannedQuery>()>;

/// The cancel token a direct (non-runtime) execution observes: the
/// caller's token if provided, a fresh one if only a deadline was set,
/// nothing otherwise.
CancelToken DirectToken(const QueryOptions& options) {
  if (!options.cancel.has_value() && !options.deadline.has_value()) {
    return CancelToken::None();
  }
  CancelToken token =
      options.cancel.has_value() ? *options.cancel : CancelToken();
  if (options.deadline.has_value()) token.set_deadline(*options.deadline);
  return token;
}

/// Legacy path: schedule and execute inline on the caller's thread with
/// private per-operation threads.
Result<QueryResult> FinishDirect(Database& db, PlannedQuery planned,
                                 const QueryOptions& options) {
  QueryResult out;
  DBS3_ASSIGN_OR_RETURN(out.schedule, ScheduleQuery(planned.plan,
                                                    options.cost_model,
                                                    options.schedule));
  ExecOptions exec;
  exec.cancel = DirectToken(options);
  // The legacy path has no QueryEnv, so the quota lives here; it outlives
  // the execution (and the plan's logics release against it on teardown).
  MemoryQuota quota(options.memory_units);
  exec.quota = &quota;
  Executor executor;
  DBS3_ASSIGN_OR_RETURN(out.execution, executor.Run(planned.plan, exec));
  AccumulateEngineMetrics(db.metrics(), out.execution);
  if (!out.execution.completion.ok()) return out.execution.completion;
  out.result = std::move(planned.result);
  return out;
}

/// Shared-runtime path: wrap the planner in a query body and submit it.
QueryHandle SubmitPlanned(Database& db, QueryPlanner planner,
                          const QueryOptions& options) {
  QuerySpec spec;
  spec.priority = options.priority;
  spec.memory_units = options.memory_units;
  // The CPU half of joint admission: the thread share the schedule would
  // ask for (0 = derived schedule, unknown until planning — always
  // CPU-fit).
  spec.threads_hint = options.schedule.total_threads;
  spec.deadline = options.deadline;
  spec.cancel = options.cancel;
  spec.body = [&db, planner = std::move(planner),
               options](QueryEnv& env) -> Result<QueryResult> {
    DBS3_ASSIGN_OR_RETURN(PlannedQuery planned, planner());
    DBS3_ASSIGN_OR_RETURN(
        PhaseOutcome phase,
        env.Run(planned.plan, options.cost_model, options.schedule));
    AccumulateEngineMetrics(db.metrics(), phase.execution);
    QueryResult out;
    out.result = std::move(planned.result);
    out.execution = std::move(phase.execution);
    out.schedule = std::move(phase.schedule);
    return out;
  };
  return db.Submit(std::move(spec));
}

/// Sync facade over a planner: submit + take on the shared runtime, or
/// the inline legacy path when the caller opted out.
Result<QueryResult> RunPlanned(Database& db, QueryPlanner planner,
                               const QueryOptions& options) {
  if (!options.use_shared_runtime) {
    DBS3_ASSIGN_OR_RETURN(PlannedQuery planned, planner());
    return FinishDirect(db, std::move(planned), options);
  }
  return SubmitPlanned(db, std::move(planner), options).Take();
}

Result<size_t> ColumnOf(const Relation* rel, const std::string& column) {
  return rel->schema().IndexOf(column);
}

Result<PlannedQuery> PlanIdealJoin(Database& db, const std::string& outer,
                                   const std::string& outer_column,
                                   const std::string& inner,
                                   const std::string& inner_column,
                                   const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * outer_rel, db.relation(outer));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t outer_col,
                        ColumnOf(outer_rel, outer_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (outer_rel->degree() != inner_rel->degree()) {
    return Status::FailedPrecondition(
        "IdealJoin needs co-partitioned operands: '" + outer + "' has " +
        std::to_string(outer_rel->degree()) + " fragments, '" + inner +
        "' has " + std::to_string(inner_rel->degree()));
  }
  const size_t degree = outer_rel->degree();
  PlannedQuery planned;
  planned.result = std::make_unique<Relation>(
      options.result_name, Schema::Concat(outer_rel->schema(),
                                          inner_rel->schema()),
      outer_col, Partitioner(outer_rel->partitioner().kind(), degree));

  const size_t join = planned.plan.AddNode(
      "join", ActivationMode::kTriggered, degree,
      std::make_unique<TriggeredJoinLogic>(outer_rel, outer_col, inner_rel,
                                           inner_col, options.algorithm,
                                           options.vectorize));
  const size_t store = planned.plan.AddNode(
      "store", ActivationMode::kPipelined, degree,
      std::make_unique<StoreLogic>(planned.result.get()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectSameInstance(join, store));
  return planned;
}

Result<PlannedQuery> PlanAssocJoin(Database& db, const std::string& probe_rel,
                                   const std::string& probe_column,
                                   const std::string& inner,
                                   const std::string& inner_column,
                                   const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * probe, db.relation(probe_rel));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t probe_col,
                        ColumnOf(probe, probe_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (inner_rel->partition_column() != inner_col) {
    return Status::FailedPrecondition(
        "AssocJoin needs '" + inner + "' partitioned on '" + inner_column +
        "' (it is partitioned on column " +
        std::to_string(inner_rel->partition_column()) + ")");
  }
  const size_t degree = inner_rel->degree();
  PlannedQuery planned;
  planned.result = std::make_unique<Relation>(
      options.result_name,
      Schema::Concat(probe->schema(), inner_rel->schema()), probe_col,
      Partitioner(inner_rel->partitioner().kind(), degree));

  const size_t transmit = planned.plan.AddNode(
      "transmit", ActivationMode::kTriggered, probe->degree(),
      std::make_unique<TransmitLogic>(probe));
  const size_t join = planned.plan.AddNode(
      "join", ActivationMode::kPipelined, degree,
      std::make_unique<PipelinedJoinLogic>(inner_rel, inner_col, probe_col,
                                           options.algorithm,
                                           options.vectorize));
  const size_t store = planned.plan.AddNode(
      "store", ActivationMode::kPipelined, degree,
      std::make_unique<StoreLogic>(planned.result.get()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectByColumn(
      transmit, join, probe_col, inner_rel->partitioner()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectSameInstance(join, store));
  return planned;
}

Result<PlannedQuery> PlanFilterJoin(Database& db, const std::string& filtered,
                                    Predicate predicate,
                                    double selectivity,
                                    const std::string& filter_join_column,
                                    const std::string& inner,
                                    const std::string& inner_column,
                                    const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * filtered_rel, db.relation(filtered));
  DBS3_ASSIGN_OR_RETURN(Relation * inner_rel, db.relation(inner));
  DBS3_ASSIGN_OR_RETURN(const size_t probe_col,
                        ColumnOf(filtered_rel, filter_join_column));
  DBS3_ASSIGN_OR_RETURN(const size_t inner_col,
                        ColumnOf(inner_rel, inner_column));
  if (inner_rel->partition_column() != inner_col) {
    return Status::FailedPrecondition(
        "FilterJoin needs '" + inner + "' partitioned on '" + inner_column +
        "'");
  }
  const size_t degree = inner_rel->degree();
  PlannedQuery planned;
  planned.result = std::make_unique<Relation>(
      options.result_name,
      Schema::Concat(filtered_rel->schema(), inner_rel->schema()), probe_col,
      Partitioner(inner_rel->partitioner().kind(), degree));

  const size_t filter = planned.plan.AddNode(
      "filter", ActivationMode::kTriggered, filtered_rel->degree(),
      std::make_unique<FilterLogic>(filtered_rel, std::move(predicate),
                                    selectivity, options.vectorize));
  const size_t join = planned.plan.AddNode(
      "join", ActivationMode::kPipelined, degree,
      std::make_unique<PipelinedJoinLogic>(inner_rel, inner_col, probe_col,
                                           options.algorithm,
                                           options.vectorize));
  const size_t store = planned.plan.AddNode(
      "store", ActivationMode::kPipelined, degree,
      std::make_unique<StoreLogic>(planned.result.get()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectByColumn(
      filter, join, probe_col, inner_rel->partitioner()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectSameInstance(join, store));
  return planned;
}

Result<PlannedQuery> PlanSelect(Database& db, const std::string& input,
                                Predicate predicate, double selectivity,
                                const QueryOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * input_rel, db.relation(input));
  const size_t degree = input_rel->degree();
  PlannedQuery planned;
  planned.result = std::make_unique<Relation>(
      options.result_name, input_rel->schema(),
      input_rel->partition_column(),
      Partitioner(input_rel->partitioner().kind(), degree));

  const size_t filter = planned.plan.AddNode(
      "filter", ActivationMode::kTriggered, degree,
      std::make_unique<FilterLogic>(input_rel, std::move(predicate),
                                    selectivity, options.vectorize));
  const size_t store = planned.plan.AddNode(
      "store", ActivationMode::kPipelined, degree,
      std::make_unique<StoreLogic>(planned.result.get()));
  DBS3_RETURN_IF_ERROR(planned.plan.ConnectSameInstance(filter, store));
  return planned;
}

}  // namespace

Result<QueryResult> RunIdealJoin(Database& db, const std::string& outer,
                                 const std::string& outer_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options) {
  return RunPlanned(
      db,
      [&db, outer, outer_column, inner, inner_column, options] {
        return PlanIdealJoin(db, outer, outer_column, inner, inner_column,
                             options);
      },
      options);
}

Result<QueryResult> RunAssocJoin(Database& db, const std::string& probe_rel,
                                 const std::string& probe_column,
                                 const std::string& inner,
                                 const std::string& inner_column,
                                 const QueryOptions& options) {
  return RunPlanned(
      db,
      [&db, probe_rel, probe_column, inner, inner_column, options] {
        return PlanAssocJoin(db, probe_rel, probe_column, inner,
                             inner_column, options);
      },
      options);
}

Result<QueryResult> RunFilterJoin(Database& db, const std::string& filtered,
                                  Predicate predicate,
                                  double selectivity,
                                  const std::string& filter_join_column,
                                  const std::string& inner,
                                  const std::string& inner_column,
                                  const QueryOptions& options) {
  return RunPlanned(
      db,
      [&db, filtered, predicate = std::move(predicate), selectivity,
       filter_join_column, inner, inner_column, options] {
        return PlanFilterJoin(db, filtered, predicate, selectivity,
                              filter_join_column, inner, inner_column,
                              options);
      },
      options);
}

Result<QueryResult> RunSelect(Database& db, const std::string& input,
                              Predicate predicate, double selectivity,
                              const QueryOptions& options) {
  return RunPlanned(
      db,
      [&db, input, predicate = std::move(predicate), selectivity, options] {
        return PlanSelect(db, input, predicate, selectivity, options);
      },
      options);
}

QueryHandle SubmitIdealJoin(Database& db, const std::string& outer,
                            const std::string& outer_column,
                            const std::string& inner,
                            const std::string& inner_column,
                            const QueryOptions& options) {
  return SubmitPlanned(
      db,
      [&db, outer, outer_column, inner, inner_column, options] {
        return PlanIdealJoin(db, outer, outer_column, inner, inner_column,
                             options);
      },
      options);
}

QueryHandle SubmitAssocJoin(Database& db, const std::string& probe_rel,
                            const std::string& probe_column,
                            const std::string& inner,
                            const std::string& inner_column,
                            const QueryOptions& options) {
  return SubmitPlanned(
      db,
      [&db, probe_rel, probe_column, inner, inner_column, options] {
        return PlanAssocJoin(db, probe_rel, probe_column, inner,
                             inner_column, options);
      },
      options);
}

QueryHandle SubmitFilterJoin(Database& db, const std::string& filtered,
                             Predicate predicate, double selectivity,
                             const std::string& filter_join_column,
                             const std::string& inner,
                             const std::string& inner_column,
                             const QueryOptions& options) {
  return SubmitPlanned(
      db,
      [&db, filtered, predicate = std::move(predicate), selectivity,
       filter_join_column, inner, inner_column, options] {
        return PlanFilterJoin(db, filtered, predicate, selectivity,
                              filter_join_column, inner, inner_column,
                              options);
      },
      options);
}

QueryHandle SubmitSelect(Database& db, const std::string& input,
                         Predicate predicate, double selectivity,
                         const QueryOptions& options) {
  return SubmitPlanned(
      db,
      [&db, input, predicate = std::move(predicate), selectivity, options] {
        return PlanSelect(db, input, predicate, selectivity, options);
      },
      options);
}

}  // namespace dbs3

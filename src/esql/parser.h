#ifndef DBS3_ESQL_PARSER_H_
#define DBS3_ESQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "esql/ast.h"

namespace dbs3 {

/// Parses one query of the ESQL subset:
///
///   SELECT { * | item [, item]* }
///   FROM relation
///   [JOIN relation ON col = col]
///   [WHERE col op literal [AND col op literal]*]
///   [GROUP BY col]
///   [ORDER BY col [ASC | DESC]]
///   [;]
///
/// where item is `col [AS alias]` or `AGG(col) [AS alias]` with AGG in
/// {COUNT, SUM, MIN, MAX} (COUNT(*) allowed), col is `name` or
/// `relation.name`, op is one of = <> != < <= > >=, and literal is an
/// integer or a 'string'. Keywords are case-insensitive.
///
/// Errors carry the byte position and what was expected.
Result<EsqlQuery> ParseEsql(const std::string& query);

}  // namespace dbs3

#endif  // DBS3_ESQL_PARSER_H_

#ifndef DBS3_ESQL_AST_H_
#define DBS3_ESQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/blocking_operators.h"
#include "storage/value.h"

namespace dbs3 {

/// A possibly-qualified column reference: `city` or `residents.city`.
struct ColumnRef {
  std::string relation;  ///< Empty when unqualified.
  std::string column;

  std::string ToString() const {
    return relation.empty() ? column : relation + "." + column;
  }
};

/// One item of the SELECT list.
struct SelectItem {
  enum class Kind { kStar, kColumn, kAggregate };
  Kind kind = Kind::kStar;
  ColumnRef column;              ///< For kColumn and kAggregate (arg).
  AggKind aggregate = AggKind::kCount;
  bool count_star = false;       ///< COUNT(*).
  std::string alias;             ///< Optional AS name.
};

/// A WHERE conjunct: `column op literal`.
struct Comparison {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  ColumnRef column;
  Op op = Op::kEq;
  Value literal;
};

const char* ComparisonOpName(Comparison::Op op);

/// An ORDER BY clause.
struct OrderBy {
  ColumnRef column;
  SortOrder order = SortOrder::kAscending;
};

/// A parsed ESQL query:
///   SELECT items FROM rel [JOIN rel2 ON a = b] [WHERE c (AND c)*]
///   [GROUP BY col] [ORDER BY col [ASC|DESC]]
struct EsqlQuery {
  std::vector<SelectItem> items;
  std::string from;
  struct JoinClause {
    std::string relation;
    ColumnRef left;
    ColumnRef right;
  };
  /// JOIN clauses in syntactic order (left-deep chain).
  std::vector<JoinClause> joins;
  std::vector<Comparison> where;  ///< AND-ed conjuncts.
  std::optional<ColumnRef> group_by;
  std::optional<OrderBy> order_by;

  /// Query rendering for logs / the shell.
  std::string ToString() const;
};

}  // namespace dbs3

#endif  // DBS3_ESQL_AST_H_

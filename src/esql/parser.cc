#include "esql/parser.h"

#include <algorithm>
#include <cctype>

#include "esql/lexer.h"

namespace dbs3 {

const char* ComparisonOpName(Comparison::Op op) {
  switch (op) {
    case Comparison::Op::kEq:
      return "=";
    case Comparison::Op::kNe:
      return "<>";
    case Comparison::Op::kLt:
      return "<";
    case Comparison::Op::kLe:
      return "<=";
    case Comparison::Op::kGt:
      return ">";
    case Comparison::Op::kGe:
      return ">=";
  }
  return "?";
}

std::string EsqlQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = items[i];
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        out += "*";
        break;
      case SelectItem::Kind::kColumn:
        out += item.column.ToString();
        break;
      case SelectItem::Kind::kAggregate:
        out += AggKindName(item.aggregate);
        out += "(";
        out += item.count_star ? "*" : item.column.ToString();
        out += ")";
        break;
    }
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM " + from;
  for (const JoinClause& join : joins) {
    out += " JOIN " + join.relation + " ON " + join.left.ToString() +
           " = " + join.right.ToString();
  }
  for (size_t i = 0; i < where.size(); ++i) {
    out += i == 0 ? " WHERE " : " AND ";
    out += where[i].column.ToString();
    out += " ";
    out += ComparisonOpName(where[i].op);
    out += " ";
    out += where[i].literal.is_int() ? where[i].literal.ToString()
                                     : "'" + where[i].literal.ToString() + "'";
  }
  if (group_by.has_value()) out += " GROUP BY " + group_by->ToString();
  if (order_by.has_value()) {
    out += " ORDER BY " + order_by->column.ToString();
    out += order_by->order == SortOrder::kDescending ? " DESC" : " ASC";
  }
  return out;
}

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<EsqlQuery> Parse() {
    EsqlQuery query;
    DBS3_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DBS3_RETURN_IF_ERROR(ParseSelectList(&query));
    DBS3_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DBS3_ASSIGN_OR_RETURN(query.from, ExpectIdent("relation name"));
    while (AcceptKeyword("JOIN")) {
      EsqlQuery::JoinClause join;
      DBS3_ASSIGN_OR_RETURN(join.relation, ExpectIdent("joined relation"));
      DBS3_RETURN_IF_ERROR(ExpectKeyword("ON"));
      DBS3_ASSIGN_OR_RETURN(join.left, ParseColumnRef());
      DBS3_RETURN_IF_ERROR(ExpectSymbol("="));
      DBS3_ASSIGN_OR_RETURN(join.right, ParseColumnRef());
      query.joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      do {
        DBS3_ASSIGN_OR_RETURN(Comparison cmp, ParseComparison());
        query.where.push_back(std::move(cmp));
      } while (AcceptKeyword("AND"));
    }
    if (AcceptKeyword("GROUP")) {
      DBS3_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DBS3_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
      query.group_by = std::move(col);
    }
    if (AcceptKeyword("ORDER")) {
      DBS3_RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy order;
      DBS3_ASSIGN_OR_RETURN(order.column, ParseColumnRef());
      if (AcceptKeyword("DESC")) {
        order.order = SortOrder::kDescending;
      } else {
        AcceptKeyword("ASC");
      }
      query.order_by = std::move(order);
    }
    AcceptSymbol(";");
    if (Current().kind != Token::Kind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        what + " at position " + std::to_string(Current().position) +
        (Current().kind == Token::Kind::kEnd
             ? " (end of query)"
             : " (near '" + Current().text + "')"));
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Current().kind == Token::Kind::kIdent &&
        Upper(Current().text) == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) return Error("expected " + keyword);
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& symbol) {
    if (Current().kind == Token::Kind::kSymbol && Current().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (!AcceptSymbol(symbol)) return Error("expected '" + symbol + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Current().kind != Token::Kind::kIdent) {
      return Error("expected " + what);
    }
    std::string text = Current().text;
    ++pos_;
    return text;
  }

  Result<ColumnRef> ParseColumnRef() {
    DBS3_ASSIGN_OR_RETURN(std::string first, ExpectIdent("column name"));
    ColumnRef ref;
    if (AcceptSymbol(".")) {
      ref.relation = std::move(first);
      DBS3_ASSIGN_OR_RETURN(ref.column, ExpectIdent("column name"));
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  static bool AggFromKeyword(const std::string& upper, AggKind* kind) {
    if (upper == "COUNT") *kind = AggKind::kCount;
    else if (upper == "SUM") *kind = AggKind::kSum;
    else if (upper == "MIN") *kind = AggKind::kMin;
    else if (upper == "MAX") *kind = AggKind::kMax;
    else return false;
    return true;
  }

  Status ParseSelectList(EsqlQuery* query) {
    if (AcceptSymbol("*")) {
      SelectItem star;
      star.kind = SelectItem::Kind::kStar;
      query->items.push_back(star);
      return Status::OK();
    }
    do {
      SelectItem item;
      // Initialized despite only being read when AggFromKeyword succeeds:
      // gcc's -Wmaybe-uninitialized cannot prove that, and -Werror builds
      // must stay clean.
      AggKind agg = AggKind::kCount;
      if (Current().kind == Token::Kind::kIdent &&
          AggFromKeyword(Upper(Current().text), &agg) &&
          pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].kind == Token::Kind::kSymbol &&
          tokens_[pos_ + 1].text == "(") {
        ++pos_;  // Aggregate keyword.
        DBS3_RETURN_IF_ERROR(ExpectSymbol("("));
        item.kind = SelectItem::Kind::kAggregate;
        item.aggregate = agg;
        if (AcceptSymbol("*")) {
          if (agg != AggKind::kCount) {
            return Error("only COUNT may take '*'");
          }
          item.count_star = true;
        } else {
          DBS3_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        }
        DBS3_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        item.kind = SelectItem::Kind::kColumn;
        DBS3_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      if (AcceptKeyword("AS")) {
        DBS3_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      }
      query->items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Result<Comparison> ParseComparison() {
    Comparison cmp;
    DBS3_ASSIGN_OR_RETURN(cmp.column, ParseColumnRef());
    if (Current().kind != Token::Kind::kSymbol) {
      return Error("expected comparison operator");
    }
    const std::string op = Current().text;
    if (op == "=") cmp.op = Comparison::Op::kEq;
    else if (op == "<>" || op == "!=") cmp.op = Comparison::Op::kNe;
    else if (op == "<") cmp.op = Comparison::Op::kLt;
    else if (op == "<=") cmp.op = Comparison::Op::kLe;
    else if (op == ">") cmp.op = Comparison::Op::kGt;
    else if (op == ">=") cmp.op = Comparison::Op::kGe;
    else return Error("expected comparison operator");
    ++pos_;
    if (Current().kind == Token::Kind::kInt) {
      cmp.literal = Value(Current().value);
      ++pos_;
    } else if (Current().kind == Token::Kind::kString) {
      cmp.literal = Value(Current().text);
      ++pos_;
    } else {
      return Error("expected integer or 'string' literal");
    }
    return cmp;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<EsqlQuery> ParseEsql(const std::string& query) {
  DBS3_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace dbs3

#ifndef DBS3_ESQL_PLANNER_H_
#define DBS3_ESQL_PLANNER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "dbs3/database.h"
#include "engine/cancel.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "esql/ast.h"
#include "sched/scheduler.h"
#include "server/query_handle.h"

namespace dbs3 {

/// Execution knobs of the ESQL layer.
struct EsqlOptions {
  ScheduleOptions schedule;
  CostModel cost_model;
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
  /// Run the vectorized batch kernels where the planner can lower WHERE
  /// conjuncts to the typed predicate IR and activations carry enough
  /// tuples. Off = always the per-row loops; results are identical either
  /// way (chunk_size=1 executions take the row path automatically).
  bool vectorize = true;
  std::string result_name = "esql_result";

  /// Multi-user knobs, forwarded to the runtime's QuerySpec (see
  /// QueryOptions in dbs3/query.h for semantics).
  int priority = 0;
  uint64_t memory_units = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::optional<CancelToken> cancel;
  /// Run every phase (repartition materializations and the final
  /// pipeline) through the database's shared QueryRuntime. false = legacy
  /// inline execution with private per-operation threads.
  bool use_shared_runtime = true;
  /// Allow the runtime to fold this query into a multi-query shared scan
  /// with compatible queries (same relation, same projection shape,
  /// scan-only, no declared memory). One relation pass then serves the
  /// whole batch; per-query results are identical to solo execution. The
  /// batch forms only when compatible queries are simultaneously queued
  /// (see QueryRuntimeOptions::shared_batch_window_us to also wait for
  /// stragglers). Only meaningful with use_shared_runtime.
  bool share_work = true;
};

/// Outcome of one ESQL query.
struct EsqlResult {
  /// The materialized result.
  std::unique_ptr<Relation> result;
  /// Execution stats of the final plan phase.
  ExecutionResult execution;
  /// Scheduling decisions of the final plan phase.
  ScheduleReport schedule;
  /// Human-readable physical strategy, e.g. "IdealJoin" or
  /// "repartition(B) ; AssocJoin(probe=A)".
  std::string physical_plan;
  /// Number of pipeline chains executed (materialization boundaries + 1).
  size_t phases = 1;
};

/// Compiles and executes `query` against `db`.
///
/// Physical planning follows the paper's repertoire: a join between
/// co-partitioned relations becomes an IdealJoin (Figure 10); a join where
/// one side is partitioned on its join attribute becomes an AssocJoin
/// probing with the other side (Figure 11); otherwise one side is first
/// repartitioned into a materialized temporary (a subquery boundary,
/// Figure 5) and an AssocJoin follows. WHERE conjuncts are pushed into the
/// probe-side scan where possible; GROUP BY repartitions on the grouping
/// attribute; ORDER BY sorts each result fragment.
Result<EsqlResult> ExecuteEsql(Database& db, const std::string& query,
                               const EsqlOptions& options = {});

/// Same, over an already-parsed query.
Result<EsqlResult> ExecuteEsql(Database& db, const EsqlQuery& query,
                               const EsqlOptions& options = {});

/// Async variant: queues the query on the database's shared runtime and
/// returns a handle immediately. Parse errors, like planning errors,
/// surface through the handle. The QueryResult's `detail` carries the
/// physical-plan rendering and `phases` the intermediate (repartition)
/// executions. ExecuteEsql above is Submit + Take when
/// options.use_shared_runtime (the default).
QueryHandle SubmitEsql(Database& db, const std::string& query,
                       const EsqlOptions& options = {});

/// Same, over an already-parsed query.
QueryHandle SubmitEsql(Database& db, const EsqlQuery& query,
                       const EsqlOptions& options = {});

}  // namespace dbs3

#endif  // DBS3_ESQL_PLANNER_H_

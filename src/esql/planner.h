#ifndef DBS3_ESQL_PLANNER_H_
#define DBS3_ESQL_PLANNER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "dbs3/database.h"
#include "engine/executor.h"
#include "engine/operators.h"
#include "esql/ast.h"
#include "sched/scheduler.h"

namespace dbs3 {

/// Execution knobs of the ESQL layer.
struct EsqlOptions {
  ScheduleOptions schedule;
  CostModel cost_model;
  JoinAlgorithm algorithm = JoinAlgorithm::kHash;
  std::string result_name = "esql_result";
};

/// Outcome of one ESQL query.
struct EsqlResult {
  /// The materialized result.
  std::unique_ptr<Relation> result;
  /// Execution stats of the final plan phase.
  ExecutionResult execution;
  /// Scheduling decisions of the final plan phase.
  ScheduleReport schedule;
  /// Human-readable physical strategy, e.g. "IdealJoin" or
  /// "repartition(B) ; AssocJoin(probe=A)".
  std::string physical_plan;
  /// Number of pipeline chains executed (materialization boundaries + 1).
  size_t phases = 1;
};

/// Compiles and executes `query` against `db`.
///
/// Physical planning follows the paper's repertoire: a join between
/// co-partitioned relations becomes an IdealJoin (Figure 10); a join where
/// one side is partitioned on its join attribute becomes an AssocJoin
/// probing with the other side (Figure 11); otherwise one side is first
/// repartitioned into a materialized temporary (a subquery boundary,
/// Figure 5) and an AssocJoin follows. WHERE conjuncts are pushed into the
/// probe-side scan where possible; GROUP BY repartitions on the grouping
/// attribute; ORDER BY sorts each result fragment.
Result<EsqlResult> ExecuteEsql(Database& db, const std::string& query,
                               const EsqlOptions& options = {});

/// Same, over an already-parsed query.
Result<EsqlResult> ExecuteEsql(Database& db, const EsqlQuery& query,
                               const EsqlOptions& options = {});

}  // namespace dbs3

#endif  // DBS3_ESQL_PLANNER_H_

#include "esql/lexer.h"

#include <cctype>

namespace dbs3 {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      token.kind = Token::Kind::kIdent;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      token.kind = Token::Kind::kInt;
      token.text = input.substr(i, j - i);
      token.value = std::stoll(token.text);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at position " + std::to_string(i));
      }
      token.kind = Token::Kind::kString;
      token.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      // Two-character operators first.
      static constexpr const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
      std::string two = input.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          token.kind = Token::Kind::kSymbol;
          token.text = two;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static constexpr const char kOneChar[] = "(),;.*=<>";
        if (std::string(kOneChar).find(c) == std::string::npos) {
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at position " +
              std::to_string(i));
        }
        token.kind = Token::Kind::kSymbol;
        token.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace dbs3

#include "esql/planner.h"

#include <algorithm>
#include <utility>

#include "common/memory_quota.h"
#include "engine/blocking_operators.h"
#include "engine/spill_join.h"
#include "esql/parser.h"
#include "server/query_runtime.h"
#include "server/shared/shared_query.h"

namespace dbs3 {

namespace {

/// How plan phases execute: through a QueryEnv when running under the
/// shared runtime (scheduler feedback, pooled workers, cancellation), or
/// inline with at most a cancel token on the legacy path.
struct EsqlExecContext {
  QueryEnv* env = nullptr;
  CancelToken cancel = CancelToken::None();
  /// When set, every non-final phase's execution is appended here (becomes
  /// QueryResult::phases).
  std::vector<ExecutionResult>* phase_execs = nullptr;
  /// Inline-path memory quota (the env path uses the env's own quota). Must
  /// outlive the phases' plans; may be null for unaccounted execution.
  MemoryQuota* quota = nullptr;
};

/// Schedules and runs one plan phase through the context.
Result<PhaseOutcome> RunEsqlPhase(Plan& plan, const CostModel& cost_model,
                                  const ScheduleOptions& schedule,
                                  EsqlExecContext& ctx) {
  if (ctx.env != nullptr) return ctx.env->Run(plan, cost_model, schedule);
  PhaseOutcome out;
  DBS3_ASSIGN_OR_RETURN(out.schedule,
                        ScheduleQuery(plan, cost_model, schedule));
  ExecOptions exec;
  exec.cancel = ctx.cancel;
  exec.quota = ctx.quota;
  Executor executor;
  DBS3_ASSIGN_OR_RETURN(out.execution, executor.Run(plan, exec));
  if (!out.execution.completion.ok()) return out.execution.completion;
  return out;
}

/// The cancel token the legacy inline path observes (mirrors the query
/// facade): caller's token, fresh-with-deadline, or none.
CancelToken InlineToken(const EsqlOptions& options) {
  if (!options.cancel.has_value() && !options.deadline.has_value()) {
    return CancelToken::None();
  }
  CancelToken token =
      options.cancel.has_value() ? *options.cancel : CancelToken();
  if (options.deadline.has_value()) token.set_deadline(*options.deadline);
  return token;
}

/// Provenance of one column of the working schema (for name resolution
/// across joins, where duplicate bare names may exist).
struct Binding {
  std::string relation;
  std::string column;
};

/// The plan under construction plus everything needed to extend it.
struct PipelineState {
  Plan plan;
  int tail = -1;  ///< Last node id.
  size_t instances = 0;
  Schema schema;
  std::vector<Binding> bindings;
  std::string description;

  /// Relations materialized for this query (repartition temporaries); must
  /// outlive execution.
  std::vector<std::unique_ptr<Relation>> temps;
};

Result<size_t> ResolveBinding(const std::vector<Binding>& bindings,
                              const ColumnRef& ref) {
  int found = -1;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].column != ref.column) continue;
    if (!ref.relation.empty() && bindings[i].relation != ref.relation) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column '" + ref.ToString() +
                                     "' (qualify it with the relation name)");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("unknown column '" + ref.ToString() + "'");
  }
  return static_cast<size_t>(found);
}

std::vector<Binding> BindingsOf(const Relation& rel) {
  std::vector<Binding> out;
  out.reserve(rel.schema().num_columns());
  for (const Column& c : rel.schema().columns()) {
    out.push_back({rel.name(), c.name});
  }
  return out;
}

TuplePredicate PredicateFor(size_t column, Comparison::Op op, Value literal) {
  return [column, op, literal = std::move(literal)](const Tuple& t) {
    const Value& v = t.at(column);
    switch (op) {
      case Comparison::Op::kEq:
        return v == literal;
      case Comparison::Op::kNe:
        return v != literal;
      case Comparison::Op::kLt:
        return v < literal;
      case Comparison::Op::kLe:
        return v < literal || v == literal;
      case Comparison::Op::kGt:
        return literal < v;
      case Comparison::Op::kGe:
        return literal < v || v == literal;
    }
    return false;
  };
}

double SelectivityGuess(Comparison::Op op) {
  switch (op) {
    case Comparison::Op::kEq:
      return 0.1;
    case Comparison::Op::kNe:
      return 0.9;
    default:
      return 0.3;
  }
}

/// Lowers one comparison to the vector IR when its shape is one the batch
/// kernels understand AND the column's declared type matches the literal.
/// The IR's leaves are typed and self-contained; the schema gate is what
/// keeps them equivalent to PredicateFor's Value-order semantics (Value's
/// total order ranks every string above every int, so e.g. `c > 3` on a
/// string value is true under PredicateFor but inexpressible as an int
/// range — such a comparison is only lowered when the column is declared
/// kInt64 and thus never holds strings).
std::optional<PredExpr> LowerComparison(size_t column, Comparison::Op op,
                                        const Value& literal,
                                        ValueType column_type) {
  const uint32_t col = static_cast<uint32_t>(column);
  if (literal.is_int() && column_type == ValueType::kInt64) {
    const int64_t v = literal.AsInt();
    switch (op) {
      case Comparison::Op::kEq:
        return PredExpr::IntEquals(col, v);
      case Comparison::Op::kNe:
        return PredExpr::IntNotEquals(col, v);
      case Comparison::Op::kLt:
        return PredExpr::IntLess(col, v);
      case Comparison::Op::kLe:
        return PredExpr::IntLessEq(col, v);
      case Comparison::Op::kGt:
        return PredExpr::IntGreater(col, v);
      case Comparison::Op::kGe:
        return PredExpr::IntGreaterEq(col, v);
    }
    return std::nullopt;
  }
  if (!literal.is_int() && column_type == ValueType::kString) {
    switch (op) {
      case Comparison::Op::kEq:
        return PredExpr::StringEquals(col, literal.AsString());
      case Comparison::Op::kNe:
        return PredExpr::StringNotEquals(col, literal.AsString());
      default:
        break;  // No string range leaves.
    }
  }
  return std::nullopt;
}

/// AND-combines comparisons resolved against `bindings` into one predicate
/// (MatchAll when empty) and multiplies their selectivity guesses. When
/// every conjunct lowers to the vector IR (typed against `schema`), the
/// result is vectorizable; otherwise the whole conjunction stays on the
/// generic row path.
Result<std::pair<Predicate, double>> CombinePredicates(
    const std::vector<Binding>& bindings, const Schema& schema,
    const std::vector<Comparison>& comparisons) {
  if (comparisons.empty()) {
    return std::make_pair(MatchAll(), 1.0);
  }
  double selectivity = 1.0;
  std::vector<size_t> cols;
  std::vector<PredExpr> lowered;
  bool lowerable = true;
  for (const Comparison& cmp : comparisons) {
    DBS3_ASSIGN_OR_RETURN(const size_t col,
                          ResolveBinding(bindings, cmp.column));
    cols.push_back(col);
    selectivity *= SelectivityGuess(cmp.op);
    if (lowerable) {
      std::optional<PredExpr> expr = LowerComparison(
          col, cmp.op, cmp.literal, schema.column(col).type);
      if (expr.has_value()) {
        lowered.push_back(std::move(*expr));
      } else {
        lowerable = false;
      }
    }
  }
  if (lowerable) {
    return std::make_pair(Predicate(PredExpr::And(std::move(lowered))),
                          selectivity);
  }
  std::vector<TuplePredicate> preds;
  for (size_t i = 0; i < comparisons.size(); ++i) {
    preds.push_back(
        PredicateFor(cols[i], comparisons[i].op, comparisons[i].literal));
  }
  TuplePredicate combined = [preds = std::move(preds)](const Tuple& t) {
    for (const TuplePredicate& p : preds) {
      if (!p(t)) return false;
    }
    return true;
  };
  return std::make_pair(Predicate(std::move(combined)), selectivity);
}

/// Whether the comparison's column belongs to relation `rel` (given the
/// bare column name exists there and, if qualified, the names agree).
bool BelongsTo(const Comparison& cmp, const Relation& rel) {
  if (!cmp.column.relation.empty() && cmp.column.relation != rel.name()) {
    return false;
  }
  return rel.schema().IndexOf(cmp.column.column).ok();
}

/// Materializes a repartition of `rel` on `column`, hash-partitioned with
/// the same degree — the subquery boundary of the general join case.
Result<std::unique_ptr<Relation>> MaterializeRepartition(
    const Relation& rel, size_t column, Predicate predicate,
    double selectivity, const EsqlOptions& options, EsqlExecContext& ctx) {
  auto temp = std::make_unique<Relation>(
      rel.name() + "_repart", rel.schema(), column,
      Partitioner(PartitionKind::kHash, rel.degree()));
  Plan plan;
  const size_t filter = plan.AddNode(
      "repartition-scan", ActivationMode::kTriggered, rel.degree(),
      std::make_unique<FilterLogic>(&rel, std::move(predicate), selectivity,
                                    options.vectorize));
  const size_t store =
      plan.AddNode("store", ActivationMode::kPipelined, rel.degree(),
                   std::make_unique<StoreLogic>(temp.get()));
  DBS3_RETURN_IF_ERROR(
      plan.ConnectByColumn(filter, store, column, temp->partitioner()));
  DBS3_ASSIGN_OR_RETURN(
      PhaseOutcome out,
      RunEsqlPhase(plan, CostModel{}, options.schedule, ctx));
  if (ctx.phase_execs != nullptr) {
    ctx.phase_execs->push_back(std::move(out.execution));
  }
  return temp;
}

/// Strips the repartition suffix so qualified references keep working.
std::string OriginalName(const Relation& rel) {
  const std::string& name = rel.name();
  constexpr const char* kSuffix = "_repart";
  constexpr size_t kSuffixLen = 7;
  if (name.size() > kSuffixLen &&
      name.substr(name.size() - kSuffixLen) == kSuffix) {
    return name.substr(0, name.size() - kSuffixLen);
  }
  return name;
}

/// Appends a pipelined filter node for `comparisons` (no-op when empty).
Status AppendFilter(const std::vector<Comparison>& comparisons,
                    const EsqlOptions& options, PipelineState* state) {
  if (comparisons.empty()) return Status::OK();
  DBS3_ASSIGN_OR_RETURN(
      auto pred,
      CombinePredicates(state->bindings, state->schema, comparisons));
  const size_t filter = state->plan.AddNode(
      "post-filter", ActivationMode::kPipelined, state->instances,
      std::make_unique<PipelinedFilterLogic>(std::move(pred.first),
                                             pred.second,
                                             options.vectorize));
  DBS3_RETURN_IF_ERROR(state->plan.ConnectSameInstance(
      static_cast<size_t>(state->tail), filter));
  state->tail = static_cast<int>(filter);
  state->description += " ; filter";
  return Status::OK();
}

/// Builds the scan/join stage of the pipeline into `state`: a left-deep
/// chain of pipelined joins, with the paper's IdealJoin shortcut for a
/// single co-partitioned join and repartition materializations (subquery
/// boundaries) for misaligned inners.
Status BuildSource(Database& db, const EsqlQuery& query,
                   const EsqlOptions& options, EsqlExecContext& ctx,
                   PipelineState* state, size_t* phases) {
  // Resolve the relation chain.
  std::vector<Relation*> rels;
  DBS3_ASSIGN_OR_RETURN(Relation * from_rel, db.relation(query.from));
  rels.push_back(from_rel);
  for (const EsqlQuery::JoinClause& jc : query.joins) {
    DBS3_ASSIGN_OR_RETURN(Relation * r, db.relation(jc.relation));
    rels.push_back(r);
  }

  // Classify WHERE conjuncts by the unique base relation they reference;
  // ambiguous ones run as a final post-filter (where resolution may still
  // demand qualification).
  std::vector<std::vector<Comparison>> rel_preds(rels.size());
  std::vector<Comparison> post_preds;
  for (const Comparison& cmp : query.where) {
    int owner = -1;
    bool ambiguous = false;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (BelongsTo(cmp, *rels[i])) {
        if (owner >= 0) ambiguous = true;
        owner = static_cast<int>(i);
      }
    }
    if (owner < 0 || ambiguous) {
      post_preds.push_back(cmp);
    } else {
      rel_preds[static_cast<size_t>(owner)].push_back(cmp);
    }
  }

  if (query.joins.empty()) {
    DBS3_ASSIGN_OR_RETURN(auto pred,
                          CombinePredicates(BindingsOf(*from_rel),
                                            from_rel->schema(),
                                            rel_preds[0]));
    state->tail = static_cast<int>(state->plan.AddNode(
        "scan(" + from_rel->name() + ")", ActivationMode::kTriggered,
        from_rel->degree(),
        std::make_unique<FilterLogic>(from_rel, std::move(pred.first),
                                      pred.second, options.vectorize)));
    state->instances = from_rel->degree();
    state->schema = from_rel->schema();
    state->bindings = BindingsOf(*from_rel);
    state->description = "scan(" + from_rel->name() + ")";
    return AppendFilter(post_preds, options, state);
  }

  // Resolve the first join's sides against the two base relations.
  auto side_of = [](const ColumnRef& ref, const Relation& a,
                    const Relation& b) -> Result<int> {
    const bool in_a = (ref.relation.empty() || ref.relation == a.name()) &&
                      a.schema().IndexOf(ref.column).ok();
    const bool in_b = (ref.relation.empty() || ref.relation == b.name()) &&
                      b.schema().IndexOf(ref.column).ok();
    if (in_a && in_b) {
      return Status::InvalidArgument("ambiguous join column '" +
                                     ref.ToString() + "'");
    }
    if (in_a) return 0;
    if (in_b) return 1;
    return Status::NotFound("unknown join column '" + ref.ToString() + "'");
  };
  {
    const EsqlQuery::JoinClause& jc = query.joins[0];
    DBS3_ASSIGN_OR_RETURN(const int ls, side_of(jc.left, *rels[0], *rels[1]));
    DBS3_ASSIGN_OR_RETURN(const int rs,
                          side_of(jc.right, *rels[0], *rels[1]));
    if (ls == rs) {
      return Status::InvalidArgument(
          "join condition must reference both relations");
    }
    const ColumnRef& left_ref = ls == 0 ? jc.left : jc.right;
    const ColumnRef& right_ref = ls == 0 ? jc.right : jc.left;
    DBS3_ASSIGN_OR_RETURN(const size_t left_col,
                          rels[0]->schema().IndexOf(left_ref.column));
    DBS3_ASSIGN_OR_RETURN(const size_t right_col,
                          rels[1]->schema().IndexOf(right_ref.column));

    const bool copartitioned =
        rels[0]->partitioner() == rels[1]->partitioner() &&
        rels[0]->partition_column() == left_col &&
        rels[1]->partition_column() == right_col && rel_preds[0].empty() &&
        rel_preds[1].empty();
    if (copartitioned && query.joins.size() == 1 &&
        options.memory_units == 0) {
      // IdealJoin (Figure 10): one triggered instance per fragment pair.
      // Skipped for budgeted queries: the triggered join's per-fragment
      // index is unaccounted, so a declared budget routes through the
      // quota-charging (and spilling) pipelined join instead.
      state->tail = static_cast<int>(state->plan.AddNode(
          "ideal-join", ActivationMode::kTriggered, rels[0]->degree(),
          std::make_unique<TriggeredJoinLogic>(rels[0], left_col, rels[1],
                                               right_col, options.algorithm,
                                               options.vectorize)));
      state->instances = rels[0]->degree();
      state->schema =
          Schema::Concat(rels[0]->schema(), rels[1]->schema());
      state->bindings = BindingsOf(*rels[0]);
      for (const Binding& b : BindingsOf(*rels[1])) {
        state->bindings.push_back(b);
      }
      state->description = "IdealJoin(" + rels[0]->name() + ", " +
                           rels[1]->name() + ")";
      return AppendFilter(post_preds, options, state);
    }

    // Orient the first join: prefer the side partitioned on its join
    // attribute (and free of pushdown predicates) as the inner.
    size_t probe_idx = 0, inner_idx = 1;
    size_t probe_col = left_col, inner_col = right_col;
    const bool right_inner_ok =
        rels[1]->partition_column() == right_col && rel_preds[1].empty();
    const bool left_inner_ok =
        rels[0]->partition_column() == left_col && rel_preds[0].empty();
    if (!right_inner_ok && left_inner_ok && query.joins.size() == 1) {
      std::swap(probe_idx, inner_idx);
      std::swap(probe_col, inner_col);
    }

    // Start the pipeline with the probe-side scan (pushdown predicates
    // applied in the scan — the FilterLogic generalization of Transmit).
    Relation* probe = rels[probe_idx];
    DBS3_ASSIGN_OR_RETURN(
        auto probe_pred,
        CombinePredicates(BindingsOf(*probe), probe->schema(),
                          rel_preds[probe_idx]));
    state->tail = static_cast<int>(state->plan.AddNode(
        "scan(" + probe->name() + ")", ActivationMode::kTriggered,
        probe->degree(),
        std::make_unique<FilterLogic>(probe, std::move(probe_pred.first),
                                      probe_pred.second,
                                      options.vectorize)));
    state->instances = probe->degree();
    state->schema = probe->schema();
    state->bindings = BindingsOf(*probe);
    state->description = "scan(" + probe->name() + ")";
    rel_preds[probe_idx].clear();

    // Make the first join clause reference the resolved inner.
    // Fall through to the generic chain below by rotating rels so the
    // remaining chain is [inner_idx, rest...]: handled via explicit
    // ordering vector.
    std::vector<size_t> chain = {inner_idx};
    for (size_t i = 2; i < rels.size(); ++i) chain.push_back(i);
    std::vector<size_t> probe_cols = {probe_col};
    std::vector<size_t> inner_cols = {inner_col};
    // Resolve the remaining joins against the accumulated pipeline.
    for (size_t j = 1; j < query.joins.size(); ++j) {
      probe_cols.push_back(0);  // Filled below, after bindings accumulate.
      inner_cols.push_back(0);
    }

    for (size_t step = 0; step < chain.size(); ++step) {
      Relation* inner = rels[chain[step]];
      size_t this_probe_col, this_inner_col;
      if (step == 0) {
        this_probe_col = probe_cols[0];
        this_inner_col = inner_cols[0];
      } else {
        // Resolve this join clause: one side in the pipeline bindings, the
        // other in the new relation.
        const EsqlQuery::JoinClause& clause = query.joins[step];
        auto resolve = [&](const ColumnRef& ref)
            -> Result<std::pair<bool, size_t>> {
          auto in_pipe = ResolveBinding(state->bindings, ref);
          if (!in_pipe.ok() &&
              in_pipe.status().code() == StatusCode::kInvalidArgument) {
            return in_pipe.status();  // Ambiguous within the pipeline.
          }
          const bool in_rel =
              (ref.relation.empty() || ref.relation == inner->name()) &&
              inner->schema().IndexOf(ref.column).ok();
          if (in_pipe.ok() && in_rel) {
            return Status::InvalidArgument("ambiguous join column '" +
                                           ref.ToString() + "'");
          }
          if (in_pipe.ok()) return std::make_pair(true, in_pipe.value());
          if (in_rel) {
            return std::make_pair(
                false, inner->schema().IndexOf(ref.column).value());
          }
          return Status::NotFound("unknown join column '" + ref.ToString() +
                                  "'");
        };
        DBS3_ASSIGN_OR_RETURN(auto a, resolve(clause.left));
        DBS3_ASSIGN_OR_RETURN(auto b, resolve(clause.right));
        if (a.first == b.first) {
          return Status::InvalidArgument(
              "join condition must reference the joined relation and the "
              "preceding pipeline");
        }
        this_probe_col = a.first ? a.second : b.second;
        this_inner_col = a.first ? b.second : a.second;
      }

      // Repartition the inner when it is not partitioned on its join
      // attribute or carries pushdown predicates (subquery boundary).
      const size_t rel_index = chain[step];
      if (inner->partition_column() != this_inner_col ||
          !rel_preds[rel_index].empty()) {
        DBS3_ASSIGN_OR_RETURN(
            auto inner_pred,
            CombinePredicates(BindingsOf(*inner), inner->schema(),
                              rel_preds[rel_index]));
        DBS3_ASSIGN_OR_RETURN(
            std::unique_ptr<Relation> temp,
            MaterializeRepartition(*inner, this_inner_col,
                                   std::move(inner_pred.first),
                                   inner_pred.second, options, ctx));
        state->description =
            "repartition(" + inner->name() + ") ; " + state->description;
        inner = temp.get();
        state->temps.push_back(std::move(temp));
        rel_preds[rel_index].clear();
        ++*phases;
      }

      // A declared budget swaps in the spilling hybrid hash join, which
      // charges its build side against the query's quota and degrades to
      // partition-wise disk passes instead of overshooting. Output rows
      // are identical to the in-memory join (same probe-then-inner
      // concatenation, same per-partition probe order).
      const bool budgeted = options.memory_units > 0;
      std::unique_ptr<OperatorLogic> join_logic;
      if (budgeted) {
        join_logic = std::make_unique<SpillingHashJoinLogic>(
            inner, this_inner_col, this_probe_col);
      } else {
        join_logic = std::make_unique<PipelinedJoinLogic>(
            inner, this_inner_col, this_probe_col, options.algorithm,
            options.vectorize);
      }
      const size_t join = state->plan.AddNode(
          "pipelined-join", ActivationMode::kPipelined, inner->degree(),
          std::move(join_logic));
      DBS3_RETURN_IF_ERROR(state->plan.ConnectByColumn(
          static_cast<size_t>(state->tail), join, this_probe_col,
          inner->partitioner()));
      state->tail = static_cast<int>(join);
      state->instances = inner->degree();
      state->schema = Schema::Concat(state->schema, inner->schema());
      const std::string inner_name = OriginalName(*inner);
      for (const Column& c : inner->schema().columns()) {
        state->bindings.push_back({inner_name, c.name});
      }
      const std::string probe_name =
          step == 0 ? rels[probe_idx]->name() : std::string("pipeline");
      state->description += " ; AssocJoin(probe=" + probe_name +
                            ", inner=" + inner->name() +
                            (budgeted ? ", spill)" : ")");
    }

    // A swapped first join produced (right, left) column order; restore the
    // SQL order (FROM relation first) with a projection.
    if (probe_idx == 1) {
      const size_t n_right = rels[1]->schema().num_columns();
      const size_t n_left = rels[0]->schema().num_columns();
      std::vector<size_t> reorder;
      for (size_t c = 0; c < n_left; ++c) reorder.push_back(n_right + c);
      for (size_t c = 0; c < n_right; ++c) reorder.push_back(c);
      std::vector<Column> columns;
      std::vector<Binding> bindings;
      for (size_t c : reorder) {
        columns.push_back(state->schema.column(c));
        bindings.push_back(state->bindings[c]);
      }
      const size_t project = state->plan.AddNode(
          "reorder", ActivationMode::kPipelined, state->instances,
          std::make_unique<ProjectLogic>(std::move(reorder)));
      DBS3_RETURN_IF_ERROR(state->plan.ConnectSameInstance(
          static_cast<size_t>(state->tail), project));
      state->tail = static_cast<int>(project);
      state->schema = Schema(std::move(columns));
      state->bindings = std::move(bindings);
    }
  }

  // Anything not pushed (ambiguous, or predicates on the first probe that
  // appeared after orientation) runs as a final pipelined filter.
  std::vector<Comparison> remaining = std::move(post_preds);
  for (std::vector<Comparison>& preds : rel_preds) {
    remaining.insert(remaining.end(), preds.begin(), preds.end());
  }
  return AppendFilter(remaining, options, state);
}

/// Appends the aggregation stage (global or grouped).
Status BuildAggregation(const EsqlQuery& query, PipelineState* state) {
  std::vector<AggSpec> aggs;
  std::vector<std::string> agg_names;
  for (const SelectItem& item : query.items) {
    if (item.kind != SelectItem::Kind::kAggregate) continue;
    AggSpec spec;
    spec.kind = item.aggregate;
    if (!item.count_star) {
      DBS3_ASSIGN_OR_RETURN(spec.column,
                            ResolveBinding(state->bindings, item.column));
    }
    aggs.push_back(spec);
    agg_names.push_back(
        !item.alias.empty()
            ? item.alias
            : std::string(AggKindName(item.aggregate)) + "_" +
                  (item.count_star ? "all" : item.column.column));
  }
  // Validate the non-aggregate select items against GROUP BY.
  for (const SelectItem& item : query.items) {
    if (item.kind == SelectItem::Kind::kAggregate) continue;
    if (item.kind == SelectItem::Kind::kStar ||
        !query.group_by.has_value() ||
        item.column.column != query.group_by->column) {
      return Status::InvalidArgument(
          "with aggregates, every plain select item must be the GROUP BY "
          "column");
    }
  }

  size_t group_col = 0;
  std::string group_name = "all";
  ValueType group_type = ValueType::kInt64;
  if (query.group_by.has_value()) {
    DBS3_ASSIGN_OR_RETURN(group_col,
                          ResolveBinding(state->bindings, *query.group_by));
    group_name = query.group_by->column;
    group_type = state->schema.column(group_col).type;
  } else {
    // Global aggregate: prepend a constant grouping key so every tuple
    // lands in the same group (and instance).
    // In-place map form: the constant key row is built once, and each call
    // overwrites the recycled scratch row via AssignConcat — no per-tuple
    // construction.
    const size_t map = state->plan.AddNode(
        "const-key", ActivationMode::kPipelined, state->instances,
        std::make_unique<MapLogic>([](const Tuple& t, Tuple* out) {
          static const Tuple kKey({Value(int64_t{0})});
          out->AssignConcat(kKey, t);
        }));
    DBS3_RETURN_IF_ERROR(state->plan.ConnectSameInstance(
        static_cast<size_t>(state->tail), map));
    state->tail = static_cast<int>(map);
    std::vector<Binding> bindings = {{"", "_const"}};
    for (Binding& b : state->bindings) bindings.push_back(std::move(b));
    state->bindings = std::move(bindings);
    for (AggSpec& spec : aggs) ++spec.column;  // Shifted by the new key.
    group_col = 0;
  }

  const size_t group = state->plan.AddNode(
      "group-by", ActivationMode::kPipelined, state->instances,
      std::make_unique<GroupByLogic>(group_col, aggs));
  // Repartition on the grouping key so equal keys meet in one instance.
  DBS3_RETURN_IF_ERROR(state->plan.ConnectByColumn(
      static_cast<size_t>(state->tail), group, group_col,
      Partitioner(PartitionKind::kHash, state->instances)));
  state->tail = static_cast<int>(group);

  // The grouping key keeps its input type; aggregates are integers.
  std::vector<Column> columns = {{group_name, group_type}};
  std::vector<Binding> bindings = {{"", group_name}};
  for (const std::string& name : agg_names) {
    columns.push_back({name, ValueType::kInt64});
    bindings.push_back({"", name});
  }
  state->schema = Schema(std::move(columns));
  state->bindings = std::move(bindings);
  state->description += " ; group-by(" + group_name + ")";
  return Status::OK();
}

/// Appends the projection stage for plain (non-aggregate) select lists.
Status BuildProjection(const EsqlQuery& query, PipelineState* state) {
  if (query.items.size() == 1 &&
      query.items[0].kind == SelectItem::Kind::kStar) {
    return Status::OK();
  }
  std::vector<size_t> columns;
  std::vector<Column> out_columns;
  std::vector<Binding> out_bindings;
  for (const SelectItem& item : query.items) {
    DBS3_ASSIGN_OR_RETURN(const size_t col,
                          ResolveBinding(state->bindings, item.column));
    columns.push_back(col);
    const std::string name =
        !item.alias.empty() ? item.alias : item.column.column;
    out_columns.push_back({name, state->schema.column(col).type});
    out_bindings.push_back({state->bindings[col].relation, name});
  }
  const size_t project = state->plan.AddNode(
      "project", ActivationMode::kPipelined, state->instances,
      std::make_unique<ProjectLogic>(std::move(columns)));
  DBS3_RETURN_IF_ERROR(state->plan.ConnectSameInstance(
      static_cast<size_t>(state->tail), project));
  state->tail = static_cast<int>(project);
  state->schema = Schema(std::move(out_columns));
  state->bindings = std::move(out_bindings);
  state->description += " ; project";
  return Status::OK();
}

/// Compiles and runs `query`, executing every phase through `ctx`.
Result<EsqlResult> ExecuteEsqlCore(Database& db, const EsqlQuery& query,
                                   const EsqlOptions& options,
                                   EsqlExecContext& ctx) {
  if (query.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  const bool has_aggregate =
      std::any_of(query.items.begin(), query.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });
  if (query.group_by.has_value() && !has_aggregate) {
    return Status::InvalidArgument("GROUP BY requires aggregates");
  }

  PipelineState state;
  size_t phases = 1;
  DBS3_RETURN_IF_ERROR(
      BuildSource(db, query, options, ctx, &state, &phases));
  if (has_aggregate) {
    DBS3_RETURN_IF_ERROR(BuildAggregation(query, &state));
  }
  if (query.order_by.has_value()) {
    DBS3_ASSIGN_OR_RETURN(
        const size_t sort_col,
        ResolveBinding(state.bindings, query.order_by->column));
    const size_t sort = state.plan.AddNode(
        "sort", ActivationMode::kPipelined, state.instances,
        std::make_unique<SortLogic>(sort_col, query.order_by->order));
    DBS3_RETURN_IF_ERROR(state.plan.ConnectSameInstance(
        static_cast<size_t>(state.tail), sort));
    state.tail = static_cast<int>(sort);
    state.description += " ; sort";
  }
  if (!has_aggregate) {
    DBS3_RETURN_IF_ERROR(BuildProjection(query, &state));
  }

  auto result = std::make_unique<Relation>(
      options.result_name, state.schema, /*partition_column=*/0,
      Partitioner(PartitionKind::kHash, state.instances));
  const size_t store = state.plan.AddNode(
      "store", ActivationMode::kPipelined, state.instances,
      std::make_unique<StoreLogic>(result.get()));
  DBS3_RETURN_IF_ERROR(state.plan.ConnectSameInstance(
      static_cast<size_t>(state.tail), store));

  EsqlResult out;
  DBS3_ASSIGN_OR_RETURN(
      PhaseOutcome final_phase,
      RunEsqlPhase(state.plan, options.cost_model, options.schedule, ctx));
  out.schedule = std::move(final_phase.schedule);
  out.execution = std::move(final_phase.execution);
  out.result = std::move(result);
  out.physical_plan = state.description + " ; store";
  out.phases = phases;
  return out;
}

/// Packages a core result as the runtime-facing QueryResult.
QueryResult ToQueryResult(EsqlResult esql,
                          std::vector<ExecutionResult> phase_execs) {
  QueryResult out;
  out.result = std::move(esql.result);
  out.execution = std::move(esql.execution);
  out.schedule = std::move(esql.schedule);
  out.detail = std::move(esql.physical_plan);
  out.phases = std::move(phase_execs);
  return out;
}

/// Whether the query's shape may ride a shared scan at all (cheap
/// pre-check before MakeSharedSpec does name resolution): scan-only — no
/// joins, aggregates, grouping or ordering — and no declared memory.
bool ShareableShape(const EsqlQuery& query, const EsqlOptions& options) {
  if (!options.share_work || !options.use_shared_runtime) return false;
  if (options.memory_units != 0) return false;
  if (!query.joins.empty()) return false;
  if (query.group_by.has_value() || query.order_by.has_value()) return false;
  for (const SelectItem& item : query.items) {
    if (item.kind == SelectItem::Kind::kAggregate) return false;
  }
  return !query.items.empty();
}

/// Builds the shared-scan payload for a shareable shape, mirroring the
/// solo plan exactly: CombinePredicates for the WHERE conjunction and
/// BuildProjection's naming for the result schema. Any resolution error
/// means "not shareable" — the caller falls back to the solo body, which
/// re-reports real errors through the normal path.
Result<std::shared_ptr<const SharedScanSpec>> MakeSharedSpec(
    Database& db, const EsqlQuery& query, const EsqlOptions& options) {
  DBS3_ASSIGN_OR_RETURN(Relation * rel, db.relation(query.from));
  auto spec = std::make_shared<SharedScanSpec>();
  spec->relation = rel;

  if (query.items.size() == 1 &&
      query.items[0].kind == SelectItem::Kind::kStar) {
    spec->result_schema = rel->schema();  // Empty projection = whole row.
  } else {
    const std::vector<Binding> bindings = BindingsOf(*rel);
    std::vector<Column> out_columns;
    for (const SelectItem& item : query.items) {
      if (item.kind != SelectItem::Kind::kColumn) {
        return Status::InvalidArgument("not a shareable select list");
      }
      DBS3_ASSIGN_OR_RETURN(const size_t col,
                            ResolveBinding(bindings, item.column));
      spec->projection.push_back(col);
      const std::string name =
          !item.alias.empty() ? item.alias : item.column.column;
      out_columns.push_back({name, rel->schema().column(col).type});
    }
    spec->result_schema = Schema(std::move(out_columns));
  }

  DBS3_ASSIGN_OR_RETURN(
      auto pred,
      CombinePredicates(BindingsOf(*rel), rel->schema(), query.where));
  spec->predicate = std::move(pred.first);
  spec->selectivity = pred.second;
  spec->result_name = options.result_name;
  spec->vectorize = options.vectorize;
  spec->schedule = options.schedule;
  spec->cost_model = options.cost_model;
  spec->share_class =
      ComputeShareClass(*rel, spec->projection, options.vectorize);
  return std::shared_ptr<const SharedScanSpec>(std::move(spec));
}

QueryHandle SubmitParsed(Database& db, EsqlQuery query,
                         const EsqlOptions& options) {
  QuerySpec spec;
  spec.priority = options.priority;
  spec.memory_units = options.memory_units;
  spec.deadline = options.deadline;
  spec.cancel = options.cancel;
  if (ShareableShape(query, options)) {
    Result<std::shared_ptr<const SharedScanSpec>> shared =
        MakeSharedSpec(db, query, options);
    if (shared.ok()) spec.shared = std::move(shared).value();
  }
  spec.body = [&db, query = std::move(query),
               options](QueryEnv& env) -> Result<QueryResult> {
    std::vector<ExecutionResult> phase_execs;
    EsqlExecContext ctx;
    ctx.env = &env;
    ctx.phase_execs = &phase_execs;
    DBS3_ASSIGN_OR_RETURN(EsqlResult esql,
                          ExecuteEsqlCore(db, query, options, ctx));
    return ToQueryResult(std::move(esql), std::move(phase_execs));
  };
  return db.Submit(std::move(spec));
}

}  // namespace

Result<EsqlResult> ExecuteEsql(Database& db, const EsqlQuery& query,
                               const EsqlOptions& options) {
  if (!options.use_shared_runtime) {
    EsqlExecContext ctx;
    ctx.cancel = InlineToken(options);
    // Declared outside the core call so it outlives the phases' plans
    // (operator destructors release their remaining charges into it).
    MemoryQuota quota(options.memory_units);
    ctx.quota = &quota;
    return ExecuteEsqlCore(db, query, options, ctx);
  }
  QueryHandle handle = SubmitEsql(db, query, options);
  DBS3_ASSIGN_OR_RETURN(QueryResult result, handle.Take());
  EsqlResult out;
  out.result = std::move(result.result);
  out.execution = std::move(result.execution);
  out.schedule = std::move(result.schedule);
  out.physical_plan = std::move(result.detail);
  out.phases = result.phases.size() + 1;
  return out;
}

Result<EsqlResult> ExecuteEsql(Database& db, const std::string& query,
                               const EsqlOptions& options) {
  DBS3_ASSIGN_OR_RETURN(EsqlQuery parsed, ParseEsql(query));
  return ExecuteEsql(db, parsed, options);
}

QueryHandle SubmitEsql(Database& db, const EsqlQuery& query,
                       const EsqlOptions& options) {
  return SubmitParsed(db, query, options);
}

QueryHandle SubmitEsql(Database& db, const std::string& query,
                       const EsqlOptions& options) {
  // Parse eagerly so shareable queries get their shared-scan payload
  // attached; a syntax error still surfaces through the handle like every
  // other query failure.
  Result<EsqlQuery> parsed = ParseEsql(query);
  if (parsed.ok()) {
    return SubmitParsed(db, std::move(parsed).value(), options);
  }
  QuerySpec spec;
  spec.priority = options.priority;
  spec.memory_units = options.memory_units;
  spec.deadline = options.deadline;
  spec.cancel = options.cancel;
  spec.body = [error = parsed.status()](QueryEnv&) -> Result<QueryResult> {
    return error;
  };
  return db.Submit(std::move(spec));
}

}  // namespace dbs3

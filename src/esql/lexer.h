#ifndef DBS3_ESQL_LEXER_H_
#define DBS3_ESQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dbs3 {

/// One lexical token of the ESQL subset.
struct Token {
  enum class Kind {
    kIdent,    ///< Bare identifier or keyword (keywords resolved upward).
    kInt,      ///< Integer literal.
    kString,   ///< 'single-quoted' string literal (quotes stripped).
    kSymbol,   ///< Punctuation / operator: one of ( ) , ; . * = <> != <= >= < >
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;   ///< Identifier/symbol text (identifiers keep case).
  int64_t value = 0;  ///< For kInt.
  size_t position = 0;  ///< Byte offset in the query, for error messages.
};

/// Splits `input` into tokens. Fails with the offending position on
/// unterminated strings or unexpected characters.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace dbs3

#endif  // DBS3_ESQL_LEXER_H_

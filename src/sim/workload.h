#ifndef DBS3_SIM_WORKLOAD_H_
#define DBS3_SIM_WORKLOAD_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "engine/operators.h"
#include "model/analysis.h"
#include "sim/allcache.h"
#include "sim/costs.h"
#include "sim/spec.h"

namespace dbs3 {

/// Parameters of one simulated join experiment — the knobs Section 5
/// sweeps: skew factor (theta), degree of parallelism (threads) and degree
/// of partitioning (degree).
struct JoinWorkloadSpec {
  uint64_t a_cardinality = 100'000;
  uint64_t b_cardinality = 10'000;
  /// Degree of partitioning of both relations.
  size_t degree = 200;
  /// Zipf skew factor of A's fragment cardinalities, in [0, 1].
  double theta = 0.0;
  JoinAlgorithm algorithm = JoinAlgorithm::kNestedLoop;
  /// Total threads for the query (AssocJoin splits them over transmit and
  /// join proportionally to complexity, per the scheduler's step 3).
  size_t threads = 10;
  Strategy strategy = Strategy::kRandom;
  /// Internal activation cache size of the pipelined join.
  size_t cache_size = 1;
};

/// Builds the simulated IdealJoin plan (Figure 10): one triggered join
/// operation, co-partitioned operands, one activation per fragment. Result
/// materialization cost is folded into the join activations (see
/// DESIGN.md).
Result<SimPlanSpec> BuildIdealJoinSim(const JoinWorkloadSpec& spec,
                                      const SimCosts& costs);

/// Builds the simulated AssocJoin plan (Figure 11): a triggered transmit
/// redistributing B' (one activation per B' fragment, pipelined emissions)
/// feeding a pipelined join (one data activation per redistributed tuple).
Result<SimPlanSpec> BuildAssocJoinSim(const JoinWorkloadSpec& spec,
                                      const SimCosts& costs);

/// The analytical profile (a, P, Pmax of Section 4.1) of the operation that
/// dominates the plan: the join. Used to overlay Tworst / nmax curves on the
/// measurements.
Result<OperationProfile> JoinProfile(const JoinWorkloadSpec& spec,
                                     const SimCosts& costs, bool pipelined);

/// Parameters of the simulated parallel selection of Section 5.2
/// (Figures 8/9).
struct ScanWorkloadSpec {
  uint64_t cardinality = 200'000;
  /// Bytes per tuple (Wisconsin tuples are 208 bytes).
  uint64_t tuple_bytes = 208;
  size_t degree = 200;
  size_t threads = 10;
  /// When true, the relation starts in remote caches and every subpage is
  /// shipped on first touch (Tr); when false all data is already local (Tl).
  bool remote = false;
  AllcacheModel allcache;
};

/// Builds the simulated selection: one triggered filter, one activation per
/// fragment, with the Allcache surcharge in remote mode.
Result<SimPlanSpec> BuildScanSim(const ScanWorkloadSpec& spec,
                                 const SimCosts& costs);

}  // namespace dbs3

#endif  // DBS3_SIM_WORKLOAD_H_

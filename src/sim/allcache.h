#ifndef DBS3_SIM_ALLCACHE_H_
#define DBS3_SIM_ALLCACHE_H_

#include <cstddef>
#include <cstdint>

namespace dbs3 {

/// Model of the KSR1 Allcache virtual shared memory (Section 5.1/5.2).
///
/// Memory is physically distributed: each processor owns a 32 MB local
/// cache; touching a data item that is not cached locally ships its 128-byte
/// subpage from the owning cache, at roughly 6x the cost of a local access.
/// Once shipped, accesses are local (DBS3's fragment-per-instance model
/// means a thread keeps working on the data it pulled).
struct AllcacheModel {
  uint64_t local_cache_bytes = 32ull << 20;
  uint64_t subpage_bytes = 128;
  /// Extra virtual seconds to ship one subpage from a remote cache (the
  /// 5x-over-local surcharge; the 1x local access is part of the scan cost).
  double remote_subpage_cost = 3.7e-6;

  /// Extra cost for a thread to first-touch `bytes` of remote data: every
  /// subpage is shipped exactly once.
  double RemoteExtraCost(uint64_t bytes) const {
    const uint64_t subpages = (bytes + subpage_bytes - 1) / subpage_bytes;
    return static_cast<double>(subpages) * remote_subpage_cost;
  }

  /// Whether `bytes` of working set fit in the local caches of `threads`
  /// processors (the paper could not obtain a local execution under 5
  /// threads for the 200K-tuple selection: each thread's share no longer
  /// fit its local cache).
  bool LocalFeasible(uint64_t bytes, size_t threads) const {
    if (threads == 0) return false;
    // Ceiling division: a thread's share must fully fit its local cache.
    return (bytes + threads - 1) / threads <= local_cache_bytes;
  }
};

}  // namespace dbs3

#endif  // DBS3_SIM_ALLCACHE_H_

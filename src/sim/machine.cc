#include "sim/machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace dbs3 {

namespace {

constexpr double kEps = 1e-9;

/// A scheduled delivery of data activations to the consumer, expressed as a
/// work threshold within the producing activation (pipelining: tuples flow
/// while the producer is still running).
struct Chunk {
  double at_work = 0.0;
  uint32_t dest_inst = 0;
  uint64_t count = 0;
};

/// The activation (or batch of identical data activations) a thread is
/// currently executing.
struct RunningAct {
  double total = 0.0;
  double done = 0.0;
  std::vector<Chunk> chunks;
  size_t next_chunk = 0;
  size_t instance = 0;
  uint64_t units = 1;
};

struct ThreadState {
  size_t op = 0;
  size_t local_id = 0;
  double alive_at = 0.0;
  bool running = false;
  RunningAct act;
  double work_done = 0.0;
  uint64_t processed = 0;
};

struct OpState {
  const SimOpSpec* spec = nullptr;
  std::vector<uint8_t> trigger_pending;
  std::vector<uint64_t> data_pending;
  std::vector<uint8_t> setup_charged;
  std::vector<double> emit_accum;
  uint64_t queued = 0;
  size_t open_producers = 0;
  size_t running = 0;
  bool completed = false;
  double complete_time = 0.0;
  std::vector<uint32_t> visit_order;
  std::vector<uint64_t> per_instance_processed;
};

Status ValidateSpec(const SimPlanSpec& plan) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("sim plan has no operations");
  }
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const SimOpSpec& op = plan.ops[i];
    if (op.instances == 0 || op.threads == 0 || op.cache_size == 0) {
      return Status::InvalidArgument("sim op '" + op.name +
                                     "' has a zero instance/thread/cache");
    }
    if (op.triggered()) {
      if (op.triggers.size() != op.instances) {
        return Status::InvalidArgument(
            "triggered sim op '" + op.name + "' needs one trigger per " +
            "instance: " + std::to_string(op.triggers.size()) + " vs " +
            std::to_string(op.instances));
      }
    } else {
      if (op.data_cost.size() != op.instances) {
        return Status::InvalidArgument(
            "pipelined sim op '" + op.name +
            "' needs data_cost per instance");
      }
      bool has_producer = false;
      for (const SimOpSpec& other : plan.ops) {
        if (other.output == static_cast<int>(i)) has_producer = true;
      }
      if (!has_producer) {
        return Status::InvalidArgument("pipelined sim op '" + op.name +
                                       "' has no producer");
      }
    }
    if (!op.data_setup_cost.empty() &&
        op.data_setup_cost.size() != op.instances) {
      return Status::InvalidArgument("sim op '" + op.name +
                                     "' data_setup_cost size mismatch");
    }
    if (op.output >= 0) {
      if (static_cast<size_t>(op.output) >= plan.ops.size() ||
          static_cast<size_t>(op.output) == i) {
        return Status::InvalidArgument("sim op '" + op.name +
                                       "' has an invalid output index");
      }
      for (const SimTriggerActivation& t : op.triggers) {
        for (const SimEmission& e : t.emissions) {
          if (e.dest_instance >=
              plan.ops[static_cast<size_t>(op.output)].instances) {
            return Status::InvalidArgument(
                "sim op '" + op.name + "' emits to out-of-range instance");
          }
        }
      }
    }
  }
  return Status::OK();
}

/// Expands a trigger's emission groups into pipelined delivery chunks,
/// spread uniformly over the activation's execution.
std::vector<Chunk> BuildChunks(const SimTriggerActivation& trigger,
                               double total_cost) {
  std::vector<Chunk> chunks;
  for (const SimEmission& e : trigger.emissions) {
    if (e.count == 0) continue;
    const uint64_t nchunks = e.count <= 4 ? 1 : std::min<uint64_t>(8, e.count);
    const uint64_t base = e.count / nchunks;
    uint64_t extra = e.count % nchunks;
    for (uint64_t k = 0; k < nchunks; ++k) {
      Chunk c;
      c.dest_inst = e.dest_instance;
      c.count = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      chunks.push_back(c);
    }
  }
  const size_t n = chunks.size();
  for (size_t k = 0; k < n; ++k) {
    chunks[k].at_work =
        total_cost * static_cast<double>(k + 1) / static_cast<double>(n + 1);
  }
  return chunks;
}

}  // namespace

SimMachine::SimMachine(SimMachineConfig config) : config_(config) {}

Result<SimResult> SimMachine::Run(const SimPlanSpec& plan) {
  DBS3_RETURN_IF_ERROR(ValidateSpec(plan));
  if (config_.processors == 0) {
    return Status::InvalidArgument("simulated machine needs >= 1 processor");
  }
  Rng rng(config_.seed);

  // --- Build operation and thread state.
  const size_t nops = plan.ops.size();
  std::vector<OpState> ops(nops);
  size_t total_queues = 0;
  for (size_t i = 0; i < nops; ++i) {
    const SimOpSpec& spec = plan.ops[i];
    OpState& op = ops[i];
    op.spec = &spec;
    op.trigger_pending.assign(spec.instances, 0);
    op.data_pending.assign(spec.instances, 0);
    op.setup_charged.assign(spec.instances, 0);
    op.emit_accum.assign(spec.instances, 0.0);
    op.per_instance_processed.assign(spec.instances, 0);
    total_queues += spec.instances;
    // LPT estimates default to the trigger costs / per-instance data costs.
    std::vector<double> estimates = spec.cost_estimates;
    if (estimates.empty()) {
      if (spec.triggered()) {
        for (const SimTriggerActivation& t : spec.triggers) {
          estimates.push_back(t.cost);
        }
      } else {
        estimates = spec.data_cost;
      }
    }
    op.visit_order = QueueVisitOrder(spec.strategy, estimates, spec.instances);
    if (spec.triggered()) {
      for (size_t q = 0; q < spec.instances; ++q) op.trigger_pending[q] = 1;
      op.queued = spec.instances;
    }
  }
  // Producer counts: one per upstream op (the executor's trigger source is
  // instantaneous, so triggered ops start with zero open producers).
  for (size_t i = 0; i < nops; ++i) {
    if (plan.ops[i].output >= 0) {
      ++ops[static_cast<size_t>(plan.ops[i].output)].open_producers;
    }
  }

  const double init_time =
      config_.queue_create_cost * static_cast<double>(total_queues);
  std::vector<ThreadState> threads;
  std::vector<std::vector<size_t>> op_threads(nops);
  size_t global_tid = 0;
  for (size_t i = 0; i < nops; ++i) {
    for (size_t t = 0; t < plan.ops[i].threads; ++t) {
      ThreadState ts;
      ts.op = i;
      ts.local_id = t;
      ts.alive_at = init_time + config_.thread_startup_cost *
                                    static_cast<double>(global_tid + 1);
      op_threads[i].push_back(threads.size());
      threads.push_back(ts);
      ++global_tid;
    }
  }

  // --- Acquisition: pick a queue per strategy, main queues first.
  auto acquire = [&](ThreadState& ts) -> bool {
    OpState& op = ops[ts.op];
    const SimOpSpec& spec = *op.spec;
    if (op.queued == 0) return false;
    const size_t m = spec.instances;
    const size_t start =
        spec.strategy == Strategy::kRandom ? rng.Below(m) : 0;
    int found = -1;
    for (int pass = 0; pass < 2 && found < 0; ++pass) {
      const bool main_only =
          pass == 0 && config_.use_main_queues && spec.threads > 1;
      if (pass == 1 && !(config_.use_main_queues && spec.threads > 1)) break;
      for (size_t k = 0; k < m; ++k) {
        const uint32_t q = op.visit_order[(start + k) % m];
        if (main_only && q % spec.threads != ts.local_id) continue;
        if (op.trigger_pending[q] || op.data_pending[q] > 0) {
          found = static_cast<int>(q);
          break;
        }
      }
      if (!config_.use_main_queues || spec.threads <= 1) break;
    }
    if (found < 0) return false;
    const size_t q = static_cast<size_t>(found);

    RunningAct act;
    act.instance = q;
    const double scan_overhead =
        config_.queue_scan_cost * static_cast<double>(m);
    if (op.trigger_pending[q]) {
      op.trigger_pending[q] = 0;
      op.queued -= 1;
      const SimTriggerActivation& trig = spec.triggers[q];
      act.total = trig.cost + scan_overhead;
      act.units = 1;
      act.chunks = BuildChunks(trig, act.total);
    } else {
      const uint64_t batch =
          std::min<uint64_t>(spec.cache_size, op.data_pending[q]);
      op.data_pending[q] -= batch;
      op.queued -= batch;
      act.total =
          static_cast<double>(batch) * spec.data_cost[q] + scan_overhead;
      if (!op.setup_charged[q] && !spec.data_setup_cost.empty()) {
        act.total += spec.data_setup_cost[q];
        op.setup_charged[q] = 1;
      }
      act.units = batch;
      if (spec.output >= 0 && spec.data_fanout > 0.0) {
        op.emit_accum[q] += static_cast<double>(batch) * spec.data_fanout;
        const uint64_t emit = static_cast<uint64_t>(op.emit_accum[q]);
        op.emit_accum[q] -= static_cast<double>(emit);
        if (emit > 0) {
          Chunk c;
          c.at_work = act.total;
          c.dest_inst = static_cast<uint32_t>(q);
          c.count = emit;
          act.chunks.push_back(c);
        }
      }
    }
    ts.act = std::move(act);
    ts.running = true;
    ++op.running;
    return true;
  };

  // --- Completion cascade.
  double now = 0.0;
  auto check_complete = [&](size_t start_op) {
    size_t i = start_op;
    while (true) {
      OpState& op = ops[i];
      if (op.completed || op.open_producers > 0 || op.queued > 0 ||
          op.running > 0) {
        return;
      }
      op.completed = true;
      op.complete_time = now;
      const int out = op.spec->output;
      if (out < 0) return;
      OpState& consumer = ops[static_cast<size_t>(out)];
      assert(consumer.open_producers > 0);
      --consumer.open_producers;
      i = static_cast<size_t>(out);
    }
  };

  // --- Event loop (processor-sharing fluid model).
  SimResult result;
  result.init_time = init_time;
  const double P = static_cast<double>(config_.processors);
  size_t completed_ops = 0;
  // Initial cascade for ops that never get work (defensive).
  for (size_t i = 0; i < nops; ++i) check_complete(i);
  for (size_t i = 0; i < nops; ++i) completed_ops += ops[i].completed ? 1 : 0;

  size_t safety = 0;
  const size_t kMaxEvents = 200'000'000;
  while (completed_ops < nops) {
    if (++safety > kMaxEvents) {
      return Status::Internal("simulation exceeded event budget");
    }
    // Dispatch idle, alive threads.
    for (ThreadState& ts : threads) {
      if (!ts.running && ts.alive_at <= now + kEps && !ops[ts.op].completed) {
        acquire(ts);
      }
    }
    // Count busy threads and find the next event.
    size_t busy = 0;
    for (const ThreadState& ts : threads) busy += ts.running ? 1 : 0;
    double next_alive = std::numeric_limits<double>::infinity();
    for (const ThreadState& ts : threads) {
      if (!ts.running && ts.alive_at > now + kEps && !ops[ts.op].completed) {
        next_alive = std::min(next_alive, ts.alive_at);
      }
    }
    if (busy == 0) {
      if (std::isinf(next_alive)) {
        return Status::Internal(
            "simulation stalled: queued work but no runnable thread");
      }
      now = next_alive;
      continue;
    }
    double rate = std::min(1.0, P / static_cast<double>(busy));
    if (static_cast<double>(busy) > P && config_.context_switch_overhead > 0.0) {
      const double ratio = static_cast<double>(busy) / P;
      rate /= 1.0 + config_.context_switch_overhead * (ratio - 1.0);
    }
    double dt = std::numeric_limits<double>::infinity();
    for (const ThreadState& ts : threads) {
      if (!ts.running) continue;
      const RunningAct& a = ts.act;
      const double boundary = a.next_chunk < a.chunks.size()
                                  ? std::min(a.chunks[a.next_chunk].at_work,
                                             a.total)
                                  : a.total;
      dt = std::min(dt, (boundary - a.done) / rate);
    }
    if (next_alive < now + dt) dt = next_alive - now;
    dt = std::max(dt, 0.0);
    now += dt;
    // Advance all running activations and handle boundary crossings.
    for (ThreadState& ts : threads) {
      if (!ts.running) continue;
      RunningAct& a = ts.act;
      a.done += rate * dt;
      while (a.next_chunk < a.chunks.size() &&
             a.chunks[a.next_chunk].at_work <= a.done + kEps) {
        const Chunk& c = a.chunks[a.next_chunk];
        OpState& consumer =
            ops[static_cast<size_t>(ops[ts.op].spec->output)];
        consumer.data_pending[c.dest_inst] += c.count;
        consumer.queued += c.count;
        ++a.next_chunk;
      }
      if (a.done + kEps >= a.total) {
        // Completion.
        OpState& op = ops[ts.op];
        ts.work_done += a.total;
        ts.processed += a.units;
        op.per_instance_processed[a.instance] += a.units;
        --op.running;
        ts.running = false;
        const size_t before = completed_ops;
        check_complete(ts.op);
        (void)before;
      }
    }
    completed_ops = 0;
    for (size_t i = 0; i < nops; ++i) completed_ops += ops[i].completed ? 1 : 0;
  }

  // --- Collect results.
  result.ops.resize(nops);
  for (size_t i = 0; i < nops; ++i) {
    SimOpStats& s = result.ops[i];
    s.name = plan.ops[i].name;
    s.complete_time = ops[i].complete_time;
    s.per_thread_work.assign(plan.ops[i].threads, 0.0);
    s.per_thread_processed.assign(plan.ops[i].threads, 0);
    for (size_t tid : op_threads[i]) {
      s.per_thread_work[threads[tid].local_id] = threads[tid].work_done;
      s.per_thread_processed[threads[tid].local_id] = threads[tid].processed;
      result.total_work += threads[tid].work_done;
    }
    s.per_instance_processed = ops[i].per_instance_processed;
    result.elapsed = std::max(result.elapsed, ops[i].complete_time);
  }
  return result;
}

}  // namespace dbs3

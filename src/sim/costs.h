#ifndef DBS3_SIM_COSTS_H_
#define DBS3_SIM_COSTS_H_

namespace dbs3 {

/// Calibrated virtual-time cost constants (seconds per elementary
/// operation) of the simulated DBS3-on-KSR1.
///
/// Calibration anchors (see EXPERIMENTS.md): the sequential times the paper
/// states for the Figure 14/15 databases — IdealJoin (nested loop, 200K x
/// 20K, 200 fragments) Tseq = 956 s and AssocJoin Tseq = 1048 s — and the
/// Figure 16 partitioning-overhead slopes (~0.45 ms/degree triggered,
/// ~4 ms/degree pipelined). One 40-MIPS KSR1 processor interpreting tuples
/// is slow by modern standards; these constants reflect that machine, not
/// the host.
struct SimCosts {
  /// Applying a selection predicate to one tuple (Figure 8 scan).
  double select_tuple = 1.5e-4;
  /// Reading one tuple during a join or transmit scan.
  double scan_tuple = 2.5e-5;
  /// Redistributing one tuple (send + receive through an activation queue).
  /// Calibrated for the paper-faithful chunk_size=1 engine, where every
  /// pipelined tuple pays a full queue round-trip (mutex + notify + move).
  /// The real engine's chunked mode (PlanNodeParams::chunk_size > 1)
  /// amortizes that round-trip over the chunk, so its effective per-tuple
  /// transfer cost is lower than this constant; the figure benches simulate
  /// the per-tuple mode the paper measured.
  double transfer_tuple = 1.0e-4;
  /// Comparing one nested-loop pair in a triggered join.
  double nl_pair = 4.74e-5;
  /// Comparing one nested-loop pair in a pipelined join: tuple-at-a-time
  /// probing pays a small interpretation surcharge per pair — this is what
  /// accounts for the paper's AssocJoin Tseq (1048 s) exceeding IdealJoin's
  /// (956 s) on identical pair counts.
  double nl_pair_pipelined = 5.14e-5;
  /// Materializing one result tuple.
  double store_tuple = 2.0e-5;
  /// Inserting one tuple into a temporary index, per log2(1+|fragment|).
  double index_build_tuple = 2.0e-5;
  /// Probing a temporary index once, per log2(1+|fragment|).
  double index_probe = 3.0e-5;
  /// Creating one activation queue (sequential initialization).
  double queue_create = 2.0e-4;
  /// Finding work, per queue of the operation, per batch acquisition.
  double queue_scan = 6.0e-6;
  /// Spawning one thread (sequential initialization).
  double thread_startup = 1.5e-2;
};

}  // namespace dbs3

#endif  // DBS3_SIM_COSTS_H_

#ifndef DBS3_SIM_MACHINE_H_
#define DBS3_SIM_MACHINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/spec.h"

namespace dbs3 {

/// The virtual shared-memory multiprocessor the experiments run on — the
/// stand-in for the 72-node KSR1.
///
/// Processors are modeled as a processor-sharing pool: when more threads
/// are runnable than processors, every runnable thread progresses at rate
/// P / busy (fluid timeslicing). Start-up (a paper barrier: "proportional
/// to the degree of parallelism") is a sequential initialization phase:
/// queue creation plus a per-thread spawn cost staggering thread
/// availability.
struct SimMachineConfig {
  size_t processors = 70;
  /// Sequential start-up cost per thread (virtual seconds): thread k of the
  /// query becomes available at init_time + (k+1) * this.
  double thread_startup_cost = 0.0;
  /// Sequential initialization cost per activation queue created.
  double queue_create_cost = 0.0;
  /// Queue-access overhead added to every batch acquisition, per queue of
  /// the operation (the cost of finding work among many queues — what makes
  /// a very high degree of partitioning eventually counterproductive,
  /// Section 5.6.1).
  double queue_scan_cost = 0.0;
  /// Disable the main/secondary queue split (ablation: all queues shared).
  bool use_main_queues = true;
  /// Throughput lost to scheduling/cache interference when more threads are
  /// runnable than processors: with oversubscription ratio r = busy/P > 1,
  /// every thread's rate is additionally divided by
  /// 1 + context_switch_overhead * (r - 1). 0 = pure processor sharing
  /// (work-conserving, the default for the single-query figures).
  double context_switch_overhead = 0.0;
  uint64_t seed = 42;
};

/// Per-operation outcome of a simulation.
struct SimOpStats {
  std::string name;
  /// Virtual CPU work executed by each thread of the pool (the
  /// load-balance signal: ideal balance = equal entries).
  std::vector<double> per_thread_work;
  /// Activations processed by each thread.
  std::vector<uint64_t> per_thread_processed;
  /// Activations processed per instance.
  std::vector<uint64_t> per_instance_processed;
  /// Virtual time at which the operation completed.
  double complete_time = 0.0;
};

/// Outcome of one simulated execution.
struct SimResult {
  /// Virtual seconds from time zero (init start) to the completion of the
  /// last operation.
  double elapsed = 0.0;
  /// Sequential initialization time (queue creation; thread start-up is
  /// staggered on top).
  double init_time = 0.0;
  /// Total CPU work of all activations (virtual seconds); elapsed >=
  /// work / processors.
  double total_work = 0.0;
  std::vector<SimOpStats> ops;
};

/// Discrete-event simulator executing a SimPlanSpec with DBS3's scheduling
/// policies (per-operation thread pools, main/secondary queues, Random and
/// LPT consumption) under virtual time.
class SimMachine {
 public:
  explicit SimMachine(SimMachineConfig config);

  /// Runs the plan to completion. Deterministic for a given config seed.
  Result<SimResult> Run(const SimPlanSpec& plan);

 private:
  SimMachineConfig config_;
};

}  // namespace dbs3

#endif  // DBS3_SIM_MACHINE_H_

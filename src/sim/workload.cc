#include "sim/workload.h"

#include <algorithm>
#include <limits>
#include <cmath>

#include "common/zipf.h"

namespace dbs3 {

namespace {

Status ValidateJoinSpec(const JoinWorkloadSpec& spec) {
  if (spec.degree == 0) {
    return Status::InvalidArgument("join workload degree must be > 0");
  }
  if (spec.theta < 0.0 || spec.theta > 1.0) {
    return Status::InvalidArgument("join workload theta must be in [0, 1]");
  }
  if (spec.threads == 0) {
    return Status::InvalidArgument("join workload threads must be > 0");
  }
  if (spec.b_cardinality < spec.degree) {
    return Status::InvalidArgument(
        "join workload needs b_cardinality >= degree");
  }
  return Status::OK();
}

double Log2Size(uint64_t n) {
  return std::log2(1.0 + static_cast<double>(n));
}

/// Per-activation join cost for fragment pair (|a|, |b|): nested loop
/// compares all pairs; the temporary index is built over the A fragment and
/// probed by the B tuples. Result materialization (|a| matches, the
/// foreign-key join cardinality) is folded in.
double TriggeredJoinCost(uint64_t a, uint64_t b, JoinAlgorithm algorithm,
                         const SimCosts& costs) {
  const double scan = static_cast<double>(a + b) * costs.scan_tuple;
  const double store = static_cast<double>(a) * costs.store_tuple;
  if (algorithm == JoinAlgorithm::kNestedLoop) {
    return scan + store +
           static_cast<double>(a) * static_cast<double>(b) * costs.nl_pair;
  }
  const double lg = Log2Size(a);
  return scan + store + static_cast<double>(a) * lg * costs.index_build_tuple +
         static_cast<double>(b) * lg * costs.index_probe;
}

}  // namespace

Result<SimPlanSpec> BuildIdealJoinSim(const JoinWorkloadSpec& spec,
                                      const SimCosts& costs) {
  DBS3_RETURN_IF_ERROR(ValidateJoinSpec(spec));
  const std::vector<uint64_t> a =
      ZipfCounts(spec.a_cardinality, spec.degree, spec.theta);
  const std::vector<uint64_t> b =
      ZipfCounts(spec.b_cardinality, spec.degree, 0.0);

  SimOpSpec join;
  join.name = "join";
  join.instances = spec.degree;
  join.threads = std::min(spec.threads, spec.degree);
  join.strategy = spec.strategy;
  join.triggers.resize(spec.degree);
  for (size_t i = 0; i < spec.degree; ++i) {
    join.triggers[i].cost =
        TriggeredJoinCost(a[i], b[i], spec.algorithm, costs);
  }
  SimPlanSpec plan;
  plan.ops.push_back(std::move(join));
  return plan;
}

Result<SimPlanSpec> BuildAssocJoinSim(const JoinWorkloadSpec& spec,
                                      const SimCosts& costs) {
  DBS3_RETURN_IF_ERROR(ValidateJoinSpec(spec));
  const size_t m = spec.degree;
  const std::vector<uint64_t> a =
      ZipfCounts(spec.a_cardinality, m, spec.theta);
  const std::vector<uint64_t> b_store = ZipfCounts(spec.b_cardinality, m, 0.0);

  // B' is not partitioned on the join attribute; redistributing it sends
  // each fragment's tuples across all join instances. Fragment f's j-th
  // tuple goes to instance (f + j) mod m — each residue class of the key
  // domain holds b/m keys, so instance loads stay uniform while fragment
  // offsets stagger the delivery order (mild redistribution noise, like a
  // real hash function).
  std::vector<std::vector<uint64_t>> dest_counts(
      m, std::vector<uint64_t>(m, 0));
  std::vector<uint64_t> probes_at(m, 0);
  for (size_t f = 0; f < m; ++f) {
    for (uint64_t j = 0; j < b_store[f]; ++j) {
      const size_t dest = (f + j) % m;
      ++dest_counts[f][dest];
      ++probes_at[dest];
    }
  }

  SimOpSpec transmit;
  transmit.name = "transmit";
  transmit.instances = m;
  transmit.strategy = spec.strategy;
  transmit.output = 1;
  transmit.triggers.resize(m);
  for (size_t f = 0; f < m; ++f) {
    transmit.triggers[f].cost =
        static_cast<double>(b_store[f]) *
        (costs.scan_tuple + costs.transfer_tuple);
    for (size_t d = 0; d < m; ++d) {
      if (dest_counts[f][d] == 0) continue;
      transmit.triggers[f].emissions.push_back(
          {static_cast<uint32_t>(d), dest_counts[f][d]});
    }
  }

  SimOpSpec join;
  join.name = "join";
  join.instances = m;
  join.strategy = spec.strategy;
  join.cache_size = spec.cache_size;
  join.data_cost.resize(m);
  join.data_setup_cost.assign(m, 0.0);
  double transmit_work = 0.0, join_work = 0.0;
  for (size_t i = 0; i < m; ++i) {
    // One probe against A fragment i: scan (nested loop) or index probe,
    // plus the fragment's share of result materialization.
    const double matches_per_probe =
        probes_at[i] > 0
            ? static_cast<double>(a[i]) / static_cast<double>(probes_at[i])
            : 0.0;
    const double store = matches_per_probe * costs.store_tuple;
    if (spec.algorithm == JoinAlgorithm::kNestedLoop) {
      join.data_cost[i] =
          static_cast<double>(a[i]) * costs.nl_pair_pipelined + store;
    } else {
      const double lg = Log2Size(a[i]);
      join.data_cost[i] = lg * costs.index_probe + store;
      join.data_setup_cost[i] =
          static_cast<double>(a[i]) * lg * costs.index_build_tuple;
    }
    join_work += join.data_cost[i] * static_cast<double>(probes_at[i]) +
                 join.data_setup_cost[i];
  }
  for (const SimTriggerActivation& t : transmit.triggers) {
    transmit_work += t.cost;
  }
  // Include the queue-access overhead each pool will pay (it scales with
  // the degree and can dominate at d ~ 1000+), so the thread split reflects
  // the real per-pool load.
  transmit_work += static_cast<double>(m) * costs.queue_scan *
                   static_cast<double>(m);
  const double join_acquisitions =
      static_cast<double>(spec.b_cardinality) /
      static_cast<double>(spec.cache_size);
  join_work += join_acquisitions * costs.queue_scan * static_cast<double>(m);

  // Scheduler step 3: split the thread budget over the two pools. The
  // proportional rule of the paper targets equal per-thread work; with
  // integer pools we pick the split that minimizes the bottleneck
  // max(w_t/n_t, w_j/n_j) directly.
  size_t transmit_threads = 1, join_threads = 1;
  if (spec.threads > 1) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t nt = 1; nt < spec.threads; ++nt) {
      const double makespan =
          std::max(transmit_work / static_cast<double>(nt),
                   join_work / static_cast<double>(spec.threads - nt));
      if (makespan < best) {
        best = makespan;
        transmit_threads = nt;
      }
    }
    join_threads = spec.threads - transmit_threads;
  }
  transmit.threads = std::min(transmit_threads, m);
  join.threads = std::min(join_threads, m);

  SimPlanSpec plan;
  plan.ops.push_back(std::move(transmit));
  plan.ops.push_back(std::move(join));
  return plan;
}

Result<OperationProfile> JoinProfile(const JoinWorkloadSpec& spec,
                                     const SimCosts& costs, bool pipelined) {
  DBS3_RETURN_IF_ERROR(ValidateJoinSpec(spec));
  const size_t m = spec.degree;
  const std::vector<uint64_t> a =
      ZipfCounts(spec.a_cardinality, m, spec.theta);
  const std::vector<uint64_t> b = ZipfCounts(spec.b_cardinality, m, 0.0);
  std::vector<double> activation_costs;
  if (!pipelined) {
    activation_costs.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      activation_costs.push_back(
          TriggeredJoinCost(a[i], b[i], spec.algorithm, costs));
    }
  } else {
    // One activation per redistributed tuple; b/m probes hit fragment i,
    // each costing one scan of A_i (nested loop) or one index probe.
    activation_costs.reserve(spec.b_cardinality);
    for (size_t i = 0; i < m; ++i) {
      const double matches =
          b[i] > 0 ? static_cast<double>(a[i]) / static_cast<double>(b[i])
                   : 0.0;
      double cost = matches * costs.store_tuple;
      if (spec.algorithm == JoinAlgorithm::kNestedLoop) {
        cost += static_cast<double>(a[i]) * costs.nl_pair_pipelined;
      } else {
        cost += Log2Size(a[i]) * costs.index_probe;
      }
      for (uint64_t j = 0; j < b[i]; ++j) activation_costs.push_back(cost);
    }
  }
  return ProfileFromCosts(activation_costs);
}

Result<SimPlanSpec> BuildScanSim(const ScanWorkloadSpec& spec,
                                 const SimCosts& costs) {
  if (spec.degree == 0 || spec.threads == 0 || spec.cardinality == 0) {
    return Status::InvalidArgument(
        "scan workload needs cardinality, degree and threads > 0");
  }
  const std::vector<uint64_t> frags =
      ZipfCounts(spec.cardinality, spec.degree, 0.0);
  SimOpSpec filter;
  filter.name = "filter";
  filter.instances = spec.degree;
  filter.threads = std::min(spec.threads, spec.degree);
  filter.triggers.resize(spec.degree);
  for (size_t i = 0; i < spec.degree; ++i) {
    double cost = static_cast<double>(frags[i]) * costs.select_tuple;
    if (spec.remote) {
      cost += spec.allcache.RemoteExtraCost(frags[i] * spec.tuple_bytes);
    }
    filter.triggers[i].cost = cost;
  }
  SimPlanSpec plan;
  plan.ops.push_back(std::move(filter));
  return plan;
}

}  // namespace dbs3

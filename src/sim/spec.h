#ifndef DBS3_SIM_SPEC_H_
#define DBS3_SIM_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/strategy.h"

namespace dbs3 {

/// Tuples emitted to one consumer instance while an activation executes.
struct SimEmission {
  uint32_t dest_instance = 0;
  uint64_t count = 0;
};

/// One control activation of a triggered simulated operation.
struct SimTriggerActivation {
  /// CPU cost in virtual seconds.
  double cost = 0.0;
  /// Data activations this activation produces, delivered in chunks spread
  /// across its execution (pipelining).
  std::vector<SimEmission> emissions;
};

/// One operation of a simulated plan.
///
/// A triggered operation lists one SimTriggerActivation per instance. A
/// pipelined operation is described by per-instance costs: every data
/// activation arriving at instance i costs `data_cost[i]` virtual seconds
/// (the granularity the analysis of Section 4.1 works at).
struct SimOpSpec {
  std::string name = "op";
  size_t instances = 1;
  size_t threads = 1;
  Strategy strategy = Strategy::kRandom;
  /// Internal activation cache: a thread drains up to this many data
  /// activations from one queue as a single sequential batch.
  size_t cache_size = 1;
  /// Consumer operation index in the plan, or -1 for a terminal operation.
  int output = -1;

  /// Triggered form: exactly `instances` entries (activation i starts in
  /// queue i). Empty for pipelined operations.
  std::vector<SimTriggerActivation> triggers;

  /// Pipelined form: cost of one data activation at instance i.
  std::vector<double> data_cost;
  /// One-time extra cost charged to the first batch acquired at instance i
  /// (e.g. building a temporary index on first probe).
  std::vector<double> data_setup_cost;
  /// Tuples emitted downstream per data activation processed (delivered to
  /// the same consumer instance, like join_i -> store_i). May be
  /// fractional; the simulator carries remainders.
  double data_fanout = 0.0;

  /// Per-instance cost estimates used for LPT queue ordering. When empty,
  /// trigger costs (triggered) or data_cost (pipelined) are used.
  std::vector<double> cost_estimates;

  bool triggered() const { return !triggers.empty(); }
};

/// A simulated plan: operations wired by their `output` indices.
struct SimPlanSpec {
  std::vector<SimOpSpec> ops;
};

}  // namespace dbs3

#endif  // DBS3_SIM_SPEC_H_

#ifndef DBS3_ENGINE_VERIFY_H_
#define DBS3_ENGINE_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace dbs3 {
namespace verify {

/// Debug invariant layer for the engine (see DBS3_VERIFY_ENABLED in
/// common/mutex.h). Three pieces:
///
///  1. Tuple-conservation ledger (this header): at Executor::Run exit,
///     every unit pushed into an operation must be accounted for —
///     processed, or dropped on a closed queue with the drop recorded.
///  2. Queue state-machine assertions (activation_queue.cc): rejected
///     pushes are tallied, SizeUnits() never exceeds peak_units, the unit
///     sum matches the buffered activations at close.
///  3. Lock-order recorder (common/mutex.{h,cc}): aborts on a cyclic
///     held-before relation between lock classes. It lives below the
///     engine because every dbs3::Mutex — including the ones in
///     common/metrics and common/trace — feeds it.
///
/// The check *implementations* compile in every build so negative tests
/// can exercise detection anywhere; only the engine-side hooks (and the
/// Mutex hooks) are gated on DBS3_VERIFY_ENABLED.

/// Per-operation row of the conservation ledger, filled by the executor
/// from OperationStats after all pools have been joined.
struct LedgerEntry {
  std::string name;
  /// Index of the consuming entry, -1 for a terminal operation.
  int64_t consumer = -1;
  /// Tuple units emitted through the output edge (Emitter::Emit calls,
  /// including OnFinish flushes).
  uint64_t emitted = 0;
  /// Tuple units dequeued and processed (sum of per-instance counters;
  /// includes control activations, one unit per trigger).
  uint64_t processed = 0;
  /// Tuple units counted as dropped by the operation (closed-queue pushes).
  uint64_t dropped = 0;
  /// Tuple units drained after the execution's cancel token fired (disposed
  /// without invoking operator logic). A third units-out bucket next to
  /// `processed` and `dropped`; 0 for uncancelled executions.
  uint64_t cancelled = 0;
  /// Tuple units the operation's queues rejected after close — must equal
  /// `dropped`, or a drop went unaccounted.
  uint64_t rejected = 0;
  /// Control-activation units injected by the executor (instances of a
  /// triggered operation; 0 for pipelined operations).
  uint64_t triggers = 0;
};

/// Checks conservation over a completed execution's ledger: for every
/// entry `c`, units-in (producers' emissions routed to `c` plus `c`'s
/// triggers) must equal units-out (processed plus cancelled plus dropped),
/// and every
/// queue-rejected unit must appear in the drop counter. Returns one
/// human-readable violation per broken entry (empty = conserved). Pure
/// bookkeeping over already-joined counters: O(entries), no locking.
std::vector<std::string> CheckTupleConservation(
    const std::vector<LedgerEntry>& ledger);

/// Reports an invariant violation through the failure handler: the one
/// installed by SetVerifyFailureHandler, else log-and-abort.
void Fail(const std::string& message);

/// Installs `handler` for every verify-layer report (conservation ledger
/// and lock-order recorder alike); nullptr restores log-and-abort.
/// Returns the previous ledger handler. Not thread-safe against concurrent
/// verification; meant for test setup.
FailureHandler SetVerifyFailureHandler(FailureHandler handler);

}  // namespace verify
}  // namespace dbs3

#endif  // DBS3_ENGINE_VERIFY_H_

#ifndef DBS3_ENGINE_STRATEGY_H_
#define DBS3_ENGINE_STRATEGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbs3 {

/// Queue consumption strategies (Section 3, step 4).
///
/// For every strategy a thread considers its *main* queues before any
/// *secondary* queue; the strategy decides the order within each group.
enum class Strategy {
  /// Default: choose uniformly at random among non-empty queues. Good when
  /// activations are plentiful or fragments even.
  kRandom,
  /// Longest Processing Time first [Graham69]: visit queues in decreasing
  /// order of estimated activation cost. The paper implements LPT without
  /// per-activation timing by ordering operation instances by estimated
  /// fragment size — same here, via static per-instance cost estimates.
  kLpt,
};

const char* StrategyName(Strategy s);

/// Precomputed queue visit order for one strategy.
///
/// Given per-instance cost estimates, yields the permutation of queue
/// indices a thread should scan. For kRandom the permutation is the identity
/// and callers randomize the starting point per scan; for kLpt it is the
/// instance indices sorted by decreasing estimate (stable, so equal
/// estimates keep instance order).
std::vector<uint32_t> QueueVisitOrder(Strategy strategy,
                                      const std::vector<double>& estimates,
                                      size_t num_queues);

/// Visit order for the secondary (stealing) scan of an LPT thread.
///
/// The static QueueVisitOrder freezes the scan at construction from the
/// cost estimates; mid-execution that is stale — a queue whose estimate was
/// large may already be drained while a small-estimate queue backs up. This
/// order follows the paper's LPT intent on *live* state: queues sorted by
/// decreasing currently queued tuple units (largest remaining work first),
/// ties broken by decreasing static estimate, remaining ties by a scan
/// sequence rotated by `start` so concurrently stealing threads fan out
/// over equally loaded queues instead of herding onto queue 0.
std::vector<uint32_t> LiveLptOrder(const std::vector<size_t>& live_units,
                                   const std::vector<double>& estimates,
                                   size_t start);

}  // namespace dbs3

#endif  // DBS3_ENGINE_STRATEGY_H_

#include "engine/plan.h"

#include <deque>

namespace dbs3 {

const char* ActivationModeName(ActivationMode mode) {
  switch (mode) {
    case ActivationMode::kTriggered:
      return "triggered";
    case ActivationMode::kPipelined:
      return "pipelined";
  }
  return "unknown";
}

size_t Plan::AddNode(std::string name, ActivationMode mode, size_t instances,
                     std::unique_ptr<OperatorLogic> logic) {
  PlanNode node;
  node.name = std::move(name);
  node.mode = mode;
  node.instances = instances;
  node.logic = std::move(logic);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

Status Plan::ConnectSameInstance(size_t from, size_t to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("ConnectSameInstance: node id out of range");
  }
  if (nodes_[from].output != -1) {
    return Status::FailedPrecondition("node '" + nodes_[from].name +
                                      "' already has an output edge");
  }
  if (nodes_[to].instances < nodes_[from].instances) {
    return Status::InvalidArgument(
        "same-instance edge needs consumer '" + nodes_[to].name +
        "' to have at least " + std::to_string(nodes_[from].instances) +
        " instances, has " + std::to_string(nodes_[to].instances));
  }
  nodes_[from].output = static_cast<int>(to);
  nodes_[from].route = DataOutput::Route::kSameInstance;
  nodes_[to].producers.push_back(from);
  return Status::OK();
}

Status Plan::ConnectByColumn(size_t from, size_t to, size_t column,
                             Partitioner partitioner) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("ConnectByColumn: node id out of range");
  }
  if (nodes_[from].output != -1) {
    return Status::FailedPrecondition("node '" + nodes_[from].name +
                                      "' already has an output edge");
  }
  if (partitioner.degree() != nodes_[to].instances) {
    return Status::InvalidArgument(
        "routing partitioner degree " + std::to_string(partitioner.degree()) +
        " must equal consumer '" + nodes_[to].name + "' instance count " +
        std::to_string(nodes_[to].instances));
  }
  nodes_[from].output = static_cast<int>(to);
  nodes_[from].route = DataOutput::Route::kByColumn;
  nodes_[from].route_column = column;
  nodes_[from].route_partitioner = partitioner;
  nodes_[to].producers.push_back(from);
  return Status::OK();
}

Status Plan::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("plan has no nodes");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanNode& n = nodes_[i];
    if (n.instances == 0) {
      return Status::InvalidArgument("node '" + n.name +
                                     "' has zero instances");
    }
    if (n.params.threads == 0) {
      return Status::InvalidArgument("node '" + n.name + "' has zero threads");
    }
    if (n.params.cache_size == 0) {
      return Status::InvalidArgument("node '" + n.name +
                                     "' has zero cache size");
    }
    if (n.params.chunk_size == 0) {
      return Status::InvalidArgument("node '" + n.name +
                                     "' has zero chunk size");
    }
    if (n.logic == nullptr) {
      return Status::InvalidArgument("node '" + n.name + "' has no logic");
    }
    if (n.mode == ActivationMode::kTriggered && !n.producers.empty()) {
      return Status::InvalidArgument(
          "triggered node '" + n.name +
          "' must not have data producers (it is started by the trigger)");
    }
    if (n.mode == ActivationMode::kPipelined && n.producers.empty()) {
      return Status::InvalidArgument("pipelined node '" + n.name +
                                     "' has no data producer");
    }
  }
  return TopologicalOrder().status().ok()
             ? Status::OK()
             : Status::InvalidArgument("plan graph is cyclic");
}

Result<std::vector<size_t>> Plan::TopologicalOrder() const {
  std::vector<size_t> in_degree(nodes_.size(), 0);
  for (const PlanNode& n : nodes_) {
    if (n.output >= 0) ++in_degree[static_cast<size_t>(n.output)];
  }
  std::deque<size_t> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const size_t i = ready.front();
    ready.pop_front();
    order.push_back(i);
    const int out = nodes_[i].output;
    if (out >= 0 && --in_degree[static_cast<size_t>(out)] == 0) {
      ready.push_back(static_cast<size_t>(out));
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("plan graph is cyclic");
  }
  return order;
}

std::string Plan::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanNode& n = nodes_[i];
    out += "[" + std::to_string(i) + "] " + n.name + " (" +
           ActivationModeName(n.mode) + ", " + n.logic->name() + ", " +
           std::to_string(n.instances) + " instances, " +
           std::to_string(n.params.threads) + " threads, " +
           StrategyName(n.params.strategy) + ")";
    if (n.output >= 0) {
      out += " -> [" + std::to_string(n.output) + "]";
      out += n.route == DataOutput::Route::kSameInstance
                 ? " same-instance"
                 : " repartition(col " + std::to_string(n.route_column) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace dbs3

#include "engine/operation.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace dbs3 {

/// Routes tuples emitted while processing an activation to the consumer
/// operation, per the plan edge (same-instance or repartition-by-column).
///
/// With chunk_size > 1 the emitter keeps one buffer per destination
/// instance and pushes a whole TupleChunk when a buffer fills, amortizing
/// the consumer's queue-mutex acquisition and condition-variable notify
/// over the chunk (the producer-side mirror of the paper's internal
/// activation cache). chunk_size == 1 bypasses the buffers entirely and is
/// bit-for-bit the paper's per-tuple behavior.
class OperationEmitter : public Emitter {
 public:
  explicit OperationEmitter(Operation* op) : op_(op) {
    const Operation* consumer = op_->output_.consumer;
    if (consumer != nullptr) {
      chunk_size_ = std::max<size_t>(1, op_->config_.chunk_size);
      // Split-chunks contract: never emit a chunk a bounded consumer queue
      // could not admit within its capacity.
      const size_t cap = consumer->config_.queue_capacity;
      if (cap > 0 && chunk_size_ > cap) chunk_size_ = cap;
      if (chunk_size_ > 1) buffers_.resize(consumer->config_.num_instances);
    }
  }

  ~OperationEmitter() override { Flush(); }

  void Emit(size_t producer_instance, Tuple tuple) override {
    op_->emitted_.fetch_add(1, std::memory_order_relaxed);
    const DataOutput& out = op_->output_;
    if (out.consumer == nullptr) return;  // Terminal operation: discard.
    size_t dest = producer_instance;
    if (out.route == DataOutput::Route::kByColumn) {
      dest = out.partitioner.FragmentOf(tuple.at(out.column));
    }
    if (chunk_size_ <= 1) {
      out.consumer->PushData(dest, std::move(tuple));
      return;
    }
    TupleChunk& buffer = buffers_[dest];
    if (buffer.empty()) buffer.reserve(chunk_size_);
    buffer.push_back(std::move(tuple));
    if (buffer.size() >= chunk_size_) {
      out.consumer->PushDataChunk(dest, std::move(buffer));
      buffer.clear();
    }
  }

  /// Pushes every residual (partially filled) buffer downstream. Called
  /// when the producing worker exits and after OnFinish emissions, so no
  /// tuple outlives its producer inside an emitter buffer.
  void Flush() {
    for (size_t dest = 0; dest < buffers_.size(); ++dest) {
      if (buffers_[dest].empty()) continue;
      op_->output_.consumer->PushDataChunk(dest, std::move(buffers_[dest]));
      buffers_[dest].clear();
    }
  }

 private:
  Operation* op_;
  size_t chunk_size_ = 1;
  /// One pending chunk per consumer instance; empty when chunk_size_ <= 1.
  std::vector<TupleChunk> buffers_;
};

Operation::Operation(OperationConfig config, OperatorLogic* logic,
                     DataOutput output)
    : config_(std::move(config)), logic_(logic), output_(output) {
  assert(config_.num_instances >= 1);
  assert(config_.num_threads >= 1);
  assert(config_.cache_size >= 1);
  assert(config_.chunk_size >= 1);
  queues_.reserve(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    queues_.push_back(
        std::make_unique<ActivationQueue>(config_.queue_capacity));
  }
  visit_order_ = QueueVisitOrder(config_.strategy, config_.cost_estimates,
                                 config_.num_instances);
  per_thread_processed_.assign(config_.num_threads, 0);
  per_instance_processed_ =
      std::make_unique<std::atomic<uint64_t>[]>(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    per_instance_processed_[i].store(0);
  }
}

Operation::~Operation() {
  // Defensive: a well-formed executor always Joins explicitly.
  if (!threads_.empty()) {
    producers_done_.store(true);
    for (auto& q : queues_) q->Close();
    work_cv_.notify_all();
    Join();
  }
}

void Operation::AddProducer() {
  assert(threads_.empty() && "producers must be wired before Start()");
  open_producers_.fetch_add(1);
}

void Operation::ProducerDone() {
  const int64_t left = open_producers_.fetch_sub(1) - 1;
  assert(left >= 0);
  if (left == 0) {
    for (auto& q : queues_) q->Close();
    {
      // Pairing the flag write with the wait mutex prevents a lost wakeup
      // between a worker's predicate check and its wait.
      std::lock_guard<std::mutex> lock(wait_mu_);
      producers_done_.store(true);
    }
    work_cv_.notify_all();
  }
}

void Operation::PushActivation(size_t instance, Activation a,
                               const char* what) {
  assert(instance < queues_.size());
  const int64_t units = static_cast<int64_t>(a.unit_count());
  if (!queues_[instance]->Push(std::move(a))) {
    DBS3_LOG(kWarning) << what << " dropped: queue " << instance
                       << " of operation '" << config_.name << "' is closed";
    return;
  }
  {
    // Pairing the counter update with the wait mutex prevents a lost
    // wakeup: without it, a worker that just evaluated the wait predicate
    // (pending == 0) could miss this notify and sleep through the last
    // activation (same discipline as ProducerDone).
    std::lock_guard<std::mutex> lock(wait_mu_);
    pending_.fetch_add(units, std::memory_order_release);
  }
  work_cv_.notify_one();
}

void Operation::PushData(size_t instance, Tuple tuple) {
  PushActivation(instance, Activation::Data(std::move(tuple)),
                 "data activation");
}

void Operation::PushDataChunk(size_t instance, TupleChunk tuples) {
  if (tuples.empty()) return;
  PushActivation(instance, Activation::DataChunk(std::move(tuples)),
                 "data chunk");
}

void Operation::PushTrigger(size_t instance) {
  PushActivation(instance, Activation::Trigger(), "trigger");
}

void Operation::Start() {
  assert(threads_.empty());
  start_time_ = std::chrono::steady_clock::now();
  threads_.reserve(config_.num_threads);
  for (size_t t = 0; t < config_.num_threads; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

void Operation::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Operation::Finish() {
  OperationEmitter emitter(this);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    logic_->OnFinish(i, &emitter);
  }
  emitter.Flush();
}

OperationStats Operation::stats() const {
  OperationStats s;
  s.name = config_.name;
  s.per_thread_processed = per_thread_processed_;
  s.per_instance_processed.resize(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    s.per_instance_processed[i] = per_instance_processed_[i].load();
  }
  s.activations = activations_.load();
  s.emitted = emitted_.load();
  s.busy_seconds = static_cast<double>(busy_ns_.load()) * 1e-9;
  for (const auto& q : queues_) {
    s.queue_acquisitions += q->total_acquisitions();
    s.queue_contended += q->contended_acquisitions();
  }
  return s;
}

void Operation::WorkerLoop(size_t thread_id) {
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + thread_id + 1);
  OperationEmitter emitter(this);
  std::vector<Activation> batch;
  batch.reserve(config_.cache_size);
  while (true) {
    batch.clear();
    size_t instance = 0;
    size_t units = 0;
    const size_t got = AcquireBatch(thread_id, rng, &batch, &instance,
                                    &units);
    if (got == 0) {
      std::unique_lock<std::mutex> lock(wait_mu_);
      work_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) > 0 ||
               producers_done_.load();
      });
      if (pending_.load(std::memory_order_acquire) <= 0 &&
          producers_done_.load()) {
        break;
      }
      continue;
    }
    for (Activation& a : batch) {
      if (a.is_trigger()) {
        logic_->OnTrigger(instance, &emitter);
      } else {
        logic_->OnDataBatch(instance, std::span<Tuple>(a.tuples), &emitter);
      }
    }
    per_thread_processed_[thread_id] += units;
    per_instance_processed_[instance].fetch_add(units,
                                                std::memory_order_relaxed);
    activations_.fetch_add(got, std::memory_order_relaxed);
  }
  // Residual chunks must reach the consumer before this producer counts as
  // exited (the executor signals the consumer's ProducerDone after Join).
  emitter.Flush();
  // Track the exit time of the slowest worker as the operation's busy span.
  const auto now = std::chrono::steady_clock::now();
  const int64_t span =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_time_)
          .count();
  int64_t prev = busy_ns_.load();
  while (prev < span && !busy_ns_.compare_exchange_weak(prev, span)) {
  }
}

size_t Operation::AcquireBatch(size_t thread_id, Rng& rng,
                               std::vector<Activation>* batch,
                               size_t* instance, size_t* units) {
  const size_t start = config_.strategy == Strategy::kRandom
                           ? rng.Below(queues_.size())
                           : 0;
  // Main queues first; fall back to any queue (the paper's secondary scan).
  size_t got = 0;
  if (config_.use_main_queues) {
    got = ScanQueues(start, thread_id, /*main_only=*/true, batch, instance);
  }
  if (got == 0) {
    got = ScanQueues(start, thread_id, /*main_only=*/false, batch, instance);
  }
  *units = 0;
  if (got > 0) {
    for (size_t k = batch->size() - got; k < batch->size(); ++k) {
      *units += (*batch)[k].unit_count();
    }
    pending_.fetch_sub(static_cast<int64_t>(*units));
  }
  return got;
}

size_t Operation::ScanQueues(size_t start, size_t thread_id, bool main_only,
                             std::vector<Activation>* batch,
                             size_t* instance) {
  const size_t n = queues_.size();
  for (size_t k = 0; k < n; ++k) {
    const uint32_t q = visit_order_[(start + k) % n];
    // Queues are distributed to threads round-robin: queue q is the main
    // queue of thread q mod ThreadNb (paper: "all activation queues are
    // equally distributed among the associated threads").
    if (main_only && q % config_.num_threads != thread_id) continue;
    const size_t got = queues_[q]->PopBatch(config_.cache_size, batch);
    if (got > 0) {
      *instance = q;
      return got;
    }
  }
  return 0;
}

}  // namespace dbs3

#include "engine/operation.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/mutex.h"

namespace dbs3 {

/// Routes tuples emitted while processing an activation to the consumer
/// operation, per the plan edge (same-instance or repartition-by-column).
///
/// The emitter keeps one buffer per destination instance and pushes a whole
/// TupleChunk when a buffer reaches chunk_size, amortizing the consumer's
/// queue-mutex acquisition and condition-variable notify over the chunk
/// (the producer-side mirror of the paper's internal activation cache).
/// chunk_size == 1 flushes after every tuple — the paper's per-tuple mode.
///
/// Buffers come from the execution's ChunkPool: a recycled buffer arrives
/// with its Tuple elements intact, and the emitter overwrites those slots in
/// place (EmitCopy / EmitConcat assign into the slot; Emit move-assigns), so
/// a warm producer->consumer->pool cycle allocates neither chunk vectors nor
/// — when slot capacities suffice — tuple value storage.
class OperationEmitter : public Emitter {
 public:
  explicit OperationEmitter(Operation* op)
      : op_(op),
        consumer_(op->output_.consumer),
        pool_(op->config_.chunk_pool) {
    if (consumer_ != nullptr) {
      chunk_size_ = std::max<size_t>(1, op_->config_.chunk_size);
      // Split-chunks contract: never emit a chunk a bounded consumer queue
      // could not admit within its capacity.
      const size_t cap = consumer_->config_.queue_capacity;
      if (cap > 0 && chunk_size_ > cap) chunk_size_ = cap;
      buffers_.resize(consumer_->config_.num_instances);
    }
  }

  ~OperationEmitter() override { Flush(); }

  void Emit(size_t producer_instance, Tuple tuple) override {
    op_->emitted_.fetch_add(1, std::memory_order_relaxed);
    if (consumer_ == nullptr) return;  // Terminal operation: discard.
    const size_t dest = DestOf(producer_instance, tuple);
    // Move-assign into the slot: adopts the tuple's storage, no copy.
    *NextSlot(dest) = std::move(tuple);
    CommitSlot(dest);
  }

  void EmitCopy(size_t producer_instance, const Tuple& tuple) override {
    op_->emitted_.fetch_add(1, std::memory_order_relaxed);
    if (consumer_ == nullptr) return;
    const size_t dest = DestOf(producer_instance, tuple);
    NextSlot(dest)->AssignFrom(tuple);
    CommitSlot(dest);
  }

  void EmitConcat(size_t producer_instance, const Tuple& left,
                  const Tuple& right) override {
    op_->emitted_.fetch_add(1, std::memory_order_relaxed);
    if (consumer_ == nullptr) return;
    const DataOutput& out = op_->output_;
    size_t dest = producer_instance;
    if (out.route == DataOutput::Route::kByColumn) {
      // The route column indexes the concatenated output row; resolve it
      // against the half it falls in without materializing the row.
      const Value& key = out.column < left.size()
                             ? left.at(out.column)
                             : right.at(out.column - left.size());
      dest = out.partitioner.FragmentOf(key);
    }
    NextSlot(dest)->AssignConcat(left, right);
    CommitSlot(dest);
  }

  void EmitSelect(size_t producer_instance, const Tuple& src,
                  std::span<const size_t> columns) override {
    op_->emitted_.fetch_add(1, std::memory_order_relaxed);
    if (consumer_ == nullptr) return;
    const DataOutput& out = op_->output_;
    size_t dest = producer_instance;
    if (out.route == DataOutput::Route::kByColumn) {
      // The route column indexes the projected output row; resolve it to
      // the source column without materializing the row.
      dest = out.partitioner.FragmentOf(src.at(columns[out.column]));
    }
    NextSlot(dest)->AssignSelect(src, columns);
    CommitSlot(dest);
  }

  /// Pushes every residual (partially filled) buffer downstream. Called
  /// when the producing worker exits and after OnFinish emissions, so no
  /// tuple outlives its producer inside an emitter buffer.
  void Flush() {
    for (size_t dest = 0; dest < buffers_.size(); ++dest) {
      FlushBuffer(dest);
    }
  }

 private:
  /// One outgoing chunk per consumer instance. `used` is the logical fill:
  /// a recycled chunk may hold more (reusable) elements than have been
  /// overwritten so far.
  struct Buffer {
    TupleChunk chunk;
    size_t used = 0;
  };

  size_t DestOf(size_t producer_instance, const Tuple& tuple) const {
    const DataOutput& out = op_->output_;
    if (out.route == DataOutput::Route::kByColumn) {
      return out.partitioner.FragmentOf(tuple.at(out.column));
    }
    return producer_instance;
  }

  /// The next output slot of `dest`'s buffer: a recycled element to
  /// overwrite when one is available, else a freshly appended Tuple.
  /// Acquires a buffer (from the pool when the operation has one) on first
  /// use after a flush.
  Tuple* NextSlot(size_t dest) {
    Buffer& b = buffers_[dest];
    if (b.used == 0 && b.chunk.capacity() == 0) {
      if (pool_ != nullptr) {
        b.chunk = pool_->Acquire(chunk_size_);
      } else {
        b.chunk.reserve(chunk_size_);
      }
    }
    if (b.used < b.chunk.size()) return &b.chunk[b.used];
    return &b.chunk.emplace_back();
  }

  void CommitSlot(size_t dest) {
    Buffer& b = buffers_[dest];
    ++b.used;
    if (b.used >= chunk_size_) FlushBuffer(dest);
  }

  void FlushBuffer(size_t dest) {
    Buffer& b = buffers_[dest];
    if (b.used == 0) return;
    // Trim leftover recycled elements so the activation's unit count is
    // exactly the tuples written this round.
    if (b.chunk.size() > b.used) b.chunk.resize(b.used);
    consumer_->PushDataChunk(dest, std::move(b.chunk));
    b.chunk = TupleChunk{};
    b.used = 0;
  }

  Operation* op_;
  Operation* consumer_;
  ChunkPool* pool_;
  size_t chunk_size_ = 1;
  std::vector<Buffer> buffers_;
};

Operation::Operation(OperationConfig config, OperatorLogic* logic,
                     DataOutput output)
    : config_(std::move(config)), logic_(logic), output_(output) {
  assert(config_.num_instances >= 1);
  assert(config_.num_threads >= 1);
  assert(config_.cache_size >= 1);
  assert(config_.chunk_size >= 1);
  queues_.reserve(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    queues_.push_back(
        std::make_unique<ActivationQueue>(config_.queue_capacity));
  }
  visit_order_ = QueueVisitOrder(config_.strategy, config_.cost_estimates,
                                 config_.num_instances);
  // Stat slots are pre-sized to the worker capacity (threads plus any
  // mid-run grants up to the instance count) so a granted worker never
  // races a vector reallocation with running peers.
  worker_capacity_ = std::max(config_.num_threads, config_.num_instances);
  worker_high_water_.store(config_.num_threads, std::memory_order_relaxed);
  per_thread_processed_.assign(worker_capacity_, 0);
  per_thread_busy_ns_.assign(worker_capacity_, 0);
  per_thread_idle_ns_.assign(worker_capacity_, 0);
  per_instance_processed_ =
      std::make_unique<std::atomic<uint64_t>[]>(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    per_instance_processed_[i].store(0);
  }
}

Operation::~Operation() {
  // Defensive: a well-formed executor always Joins explicitly.
  if (started_) {
    for (auto& q : queues_) q->Close();
    {
      // The flag write must pair with wait_mu_, exactly like ProducerDone:
      // an unpaired store+notify can land between a worker's predicate
      // check and its wait, losing the wakeup and hanging the Join below.
      MutexLock lock(&wait_mu_);
      producers_done_.store(true);
    }
    work_cv_.SignalAll();
    Join();
  }
}

void Operation::AddProducer() {
  assert(threads_.empty() && "producers must be wired before Start()");
  open_producers_.fetch_add(1);
}

void Operation::ProducerDone() {
  const int64_t left = open_producers_.fetch_sub(1) - 1;
  assert(left >= 0);
  if (left == 0) {
    for (auto& q : queues_) q->Close();
    {
      // Pairing the flag write with the wait mutex prevents a lost wakeup
      // between a worker's predicate check and its wait.
      MutexLock lock(&wait_mu_);
      producers_done_.store(true);
    }
    work_cv_.SignalAll();
  }
}

void Operation::PushActivation(size_t instance, Activation a,
                               const char* what) {
  assert(instance < queues_.size());
  const int64_t units = static_cast<int64_t>(a.unit_count());
  if (!queues_[instance]->Push(std::move(a))) {
    // Only cancelled/abandoned executions reach this; the drop is counted
    // (stats().dropped, surfaced per execution) so it is never silent.
    dropped_.fetch_add(units > 0 ? static_cast<uint64_t>(units) : 1,
                       std::memory_order_relaxed);
    DBS3_LOG(kWarning) << what << " dropped: queue " << instance
                       << " of operation '" << config_.name << "' is closed";
    // A rejected Push leaves the activation intact — reclaim its buffer so
    // cancellation doesn't leak chunks out of the recycling cycle.
    if (!a.is_trigger() && config_.chunk_pool != nullptr) {
      config_.chunk_pool->Release(std::move(a.tuples));
    }
    return;
  }
  // Eventcount fast path: publish the units (seq_cst), then only pay the
  // mutex + signal when a worker is actually parked. A worker announces
  // itself in waiting_workers_ (seq_cst, under wait_mu_) *before* its final
  // predicate check, so either that check sees these units or this load
  // sees the waiter — the lost-wakeup window stays closed without
  // serializing every push through wait_mu_.
  pending_.fetch_add(units, std::memory_order_seq_cst);
  if (waiting_workers_.load(std::memory_order_seq_cst) > 0) {
    // Taking (and releasing) the mutex fences against a waiter between its
    // predicate check and its wait; signal after unlock per the codebase's
    // discipline.
    { MutexLock lock(&wait_mu_); }
    work_cv_.Signal();
  }
}

void Operation::PushData(size_t instance, Tuple tuple) {
  PushActivation(instance, Activation::Data(std::move(tuple)),
                 "data activation");
}

void Operation::PushDataChunk(size_t instance, TupleChunk tuples) {
  if (tuples.empty()) return;
  PushActivation(instance, Activation::DataChunk(std::move(tuples)),
                 "data chunk");
}

void Operation::PushTrigger(size_t instance) {
  PushActivation(instance, Activation::Trigger(), "trigger");
}

void Operation::BeginWorkers(size_t count) {
  MutexLock lock(&exit_mu_);
  live_workers_ = count;
  next_worker_id_ = count;
}

void Operation::Start() {
  assert(!started_);
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  BeginWorkers(config_.num_threads);
  threads_.reserve(config_.num_threads);
  for (size_t t = 0; t < config_.num_threads; ++t) {
    threads_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

void Operation::StartOn(ThreadSource* source) {
  assert(!started_);
  assert(source != nullptr);
  started_ = true;
  // Remembering the source lets the rebalancer grant extra workers into
  // this operation mid-run (TryGrantWorker dispatches on it). Published
  // under exit_mu_: the rebalance tick may probe concurrently.
  {
    MutexLock lock(&exit_mu_);
    thread_source_ = source;
  }
  start_time_ = std::chrono::steady_clock::now();
  // All workers are marked live before the first dispatch: a worker that
  // runs and exits immediately must not let Join() observe a 0 count while
  // later workers are still being handed to the pool.
  BeginWorkers(config_.num_threads);
  for (size_t t = 0; t < config_.num_threads; ++t) {
    source->Dispatch([this, t] { WorkerLoop(t); });
  }
}

void Operation::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  {
    // Pool-dispatched workers have no thread handle; their exit is the
    // count reaching zero. Private-thread runs pass through trivially.
    MutexLock lock(&exit_mu_);
    while (live_workers_ > 0) exit_cv_.Wait(&exit_mu_);
  }
  started_ = false;
}

size_t Operation::RequestPark(size_t n) {
  size_t granted = 0;
  {
    MutexLock lock(&exit_mu_);
    if (live_workers_ == 0) return 0;
    const size_t active = live_workers_ - parking_;
    const size_t outstanding = park_requests_.load(std::memory_order_relaxed);
    // Never ask for more parks than would leave one active worker after all
    // outstanding requests are honored — the last worker must keep draining.
    const size_t parkable =
        active > outstanding + 1 ? active - outstanding - 1 : 0;
    granted = std::min(n, parkable);
    if (granted == 0) return 0;
    park_requests_.store(outstanding + granted, std::memory_order_release);
  }
  // Wake idle workers so they observe the request at their wait predicate;
  // empty critical section fences against a waiter between its predicate
  // check and its wait (same pattern as PushActivation).
  { MutexLock lock(&wait_mu_); }
  work_cv_.SignalAll();
  return granted;
}

bool Operation::TryClaimPark() {
  MutexLock lock(&exit_mu_);
  const size_t outstanding = park_requests_.load(std::memory_order_relaxed);
  if (outstanding == 0) return false;
  if (live_workers_ - parking_ <= 1) {
    // Last active worker: drop the stale request entirely rather than
    // retaining it — a retained request would spin this worker between its
    // wait predicate (which the request satisfies) and this refusal.
    park_requests_.store(outstanding - 1, std::memory_order_release);
    return false;
  }
  park_requests_.store(outstanding - 1, std::memory_order_release);
  ++parking_;
  return true;
}

bool Operation::TryGrantWorker() {
  size_t id = 0;
  ThreadSource* source = nullptr;
  {
    MutexLock lock(&exit_mu_);
    // Only pool-dispatched operations can grow; private threads (Start())
    // have nowhere to dispatch a new loop. Read under exit_mu_ — the
    // rebalance tick can race StartOn publishing the source.
    source = thread_source_;
    if (source == nullptr) return false;
    // live_workers_ > 0 doubles as the "still running" check: reading
    // started_ here would race the executor's Join epilogue.
    if (live_workers_ == 0) return false;
    if (producers_done_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) <= 0) {
      return false;  // Drained: a new worker would exit immediately.
    }
    if (!free_worker_ids_.empty()) {
      id = free_worker_ids_.back();
      free_worker_ids_.pop_back();
    } else if (next_worker_id_ < worker_capacity_) {
      id = next_worker_id_++;
      worker_high_water_.store(next_worker_id_, std::memory_order_release);
    } else {
      return false;  // At capacity: no free stat slot for another worker.
    }
    ++live_workers_;
  }
  source->Dispatch([this, id] { WorkerLoop(id); });
  return true;
}

size_t Operation::active_workers() const {
  MutexLock lock(&exit_mu_);
  return live_workers_ - parking_;
}

void Operation::Finish() {
  OperationEmitter emitter(this);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    logic_->OnFinish(i, &emitter);
  }
  emitter.Flush();
}

OperationStats Operation::stats() const {
  OperationStats s;
  s.name = config_.name;
  s.per_thread_processed = per_thread_processed_;
  s.per_instance_processed.resize(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    s.per_instance_processed[i] = per_instance_processed_[i].load();
  }
  s.activations = activations_.load();
  s.emitted = emitted_.load();
  s.dropped = dropped_.load();
  s.cancelled_units = cancelled_units_.load();
  s.main_queue_acquisitions = main_acquisitions_.load();
  s.secondary_queue_acquisitions = secondary_acquisitions_.load();
  s.wall_span_seconds = static_cast<double>(wall_span_ns_.load()) * 1e-9;
  for (const auto& q : queues_) s.queue_rejected_units += q->rejected_units();
  // Report one slot per distinct worker id ever used: granted workers get
  // their own slots past num_threads (reused ids accumulate in place).
  const size_t workers =
      std::max(config_.num_threads,
               worker_high_water_.load(std::memory_order_acquire));
  s.per_thread_processed.resize(workers);
  s.per_thread_busy_seconds.reserve(workers);
  s.per_thread_idle_seconds.reserve(workers);
  for (size_t t = 0; t < workers; ++t) {
    const double busy = static_cast<double>(per_thread_busy_ns_[t]) * 1e-9;
    s.per_thread_busy_seconds.push_back(busy);
    s.per_thread_idle_seconds.push_back(
        static_cast<double>(per_thread_idle_ns_[t]) * 1e-9);
    s.busy_seconds += busy;
  }
  for (const auto& q : queues_) {
    s.queue_acquisitions += q->total_acquisitions();
    s.queue_contended += q->contended_acquisitions();
    s.peak_queue_units = std::max(s.peak_queue_units, q->peak_units());
  }
  return s;
}

void Operation::WorkerLoop(size_t thread_id) {
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + thread_id + 1);
  OperationEmitter emitter(this);
  TraceBuffer* trace =
      config_.tracer != nullptr
          ? config_.tracer->AddBuffer(config_.name,
                                      static_cast<uint32_t>(thread_id))
          : nullptr;
  const auto worker_start = std::chrono::steady_clock::now();
  int64_t busy_ns = 0;
  bool parked = false;
  std::vector<Activation> batch;
  batch.reserve(config_.cache_size);
  while (true) {
    // Park point: activation boundaries are the only places a worker gives
    // its thread back, mirroring how cancellation drains between batches.
    // The claim is refused (and the stale request dropped) when this is the
    // operation's last active worker.
    if (park_requests_.load(std::memory_order_acquire) > 0 &&
        TryClaimPark()) {
      parked = true;
      break;
    }
    batch.clear();
    size_t instance = 0;
    size_t units = 0;
    const size_t got = AcquireBatch(thread_id, rng, &batch, &instance,
                                    &units);
    if (got == 0) {
      bool drained_and_done = false;
      {
        MutexLock lock(&wait_mu_);
        // Announce the (imminent) wait before re-checking the predicate —
        // the producer-side eventcount in PushActivation relies on this
        // order (see the waiting_workers_ comment in the header).
        // A pending park request also ends the wait: parking must not stall
        // behind an idle (but not yet done) producer.
        waiting_workers_.fetch_add(1, std::memory_order_seq_cst);
        while (pending_.load(std::memory_order_seq_cst) <= 0 &&
               !producers_done_.load() &&
               park_requests_.load(std::memory_order_acquire) == 0) {
          work_cv_.Wait(&wait_mu_);
        }
        waiting_workers_.fetch_sub(1, std::memory_order_seq_cst);
        drained_and_done = pending_.load(std::memory_order_acquire) <= 0 &&
                           producers_done_.load();
      }
      if (drained_and_done) break;
      continue;
    }
    if (config_.cancel.ShouldStop()) {
      // Cancelled execution: keep draining so bounded queues unblock their
      // producers and the executor's drain protocol terminates, but dispose
      // of the units without invoking operator logic. They land in their
      // own conservation-ledger bucket instead of `processed`.
      cancelled_units_.fetch_add(units, std::memory_order_relaxed);
      ReleaseBatchChunks(&batch);
      continue;
    }
    // Busy time is measured per acquired batch, not per tuple: two clock
    // reads amortized over the whole batch keep the accounting overhead off
    // the per-tuple path.
    const auto t_begin = std::chrono::steady_clock::now();
    for (Activation& a : batch) {
      if (a.is_trigger()) {
        logic_->OnTrigger(instance, &emitter);
      } else {
        logic_->OnDataBatch(instance, std::span<Tuple>(a.tuples), &emitter);
      }
    }
    const auto t_end = std::chrono::steady_clock::now();
    busy_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t_end - t_begin)
                   .count();
    if (trace != nullptr) {
      trace->Record(static_cast<uint32_t>(instance), t_begin, t_end,
                    static_cast<uint32_t>(units),
                    static_cast<uint32_t>(got));
    }
    per_thread_processed_[thread_id] += units;
    per_instance_processed_[instance].fetch_add(units,
                                                std::memory_order_relaxed);
    activations_.fetch_add(got, std::memory_order_relaxed);
    ReleaseBatchChunks(&batch);
  }
  // Residual chunks must reach the consumer before this producer counts as
  // exited (the executor signals the consumer's ProducerDone after Join).
  emitter.Flush();
  const auto now = std::chrono::steady_clock::now();
  // Accumulate (not assign): a granted worker may reuse the id of an
  // earlier, already-exited worker. The reuse is exit-ordered through
  // exit_mu_ (the id is only handed out after the previous holder's exit
  // section below), so plain += does not race.
  per_thread_busy_ns_[thread_id] += busy_ns;
  per_thread_idle_ns_[thread_id] +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - worker_start)
          .count() -
      busy_ns;
  // Track the exit time of the slowest worker as the operation's wall span.
  const int64_t span =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_time_)
          .count();
  int64_t prev = wall_span_ns_.load();
  while (prev < span && !wall_span_ns_.compare_exchange_weak(prev, span)) {
  }
  // The exit callback fires before the exit becomes visible to Join(): the
  // board must credit the freed pool slot before the executor can finish
  // joining and unregister this execution.
  if (exit_callback_) exit_callback_(parked);
  {
    MutexLock lock(&exit_mu_);
    if (parked) --parking_;
    free_worker_ids_.push_back(thread_id);
    --live_workers_;
    // Signal while still holding exit_mu_ — the exception to the
    // signal-after-unlock discipline. Once live_workers_ hits 0, Join()
    // may return and the Operation be destroyed the moment we drop the
    // lock; signaling after the unlock would touch a dead CondVar. Under
    // the lock, the waiter cannot observe the decrement (and destroy us)
    // until SignalAll has already returned.
    exit_cv_.SignalAll();
  }
}

void Operation::ReleaseBatchChunks(std::vector<Activation>* batch) {
  if (config_.chunk_pool == nullptr) return;
  for (Activation& a : *batch) {
    if (!a.is_trigger()) config_.chunk_pool->Release(std::move(a.tuples));
  }
}

size_t Operation::AcquireBatch(size_t thread_id, Rng& rng,
                               std::vector<Activation>* batch,
                               size_t* instance, size_t* units) {
  // Random threads scan from a random queue; LPT threads from a start
  // staggered by thread id, so concurrent scans fan out instead of every
  // thread hammering visit_order_[0]'s mutex first. Granted workers (ids
  // beyond num_threads) fold onto a lane so the stagger and main-queue
  // ownership math stay within the original thread count.
  const size_t lane = thread_id % config_.num_threads;
  const size_t start = config_.strategy == Strategy::kRandom
                           ? rng.Below(queues_.size())
                           : (lane * queues_.size()) / config_.num_threads;
  // Main queues first; fall back to any queue (the paper's secondary scan).
  size_t got = 0;
  bool from_main = false;
  if (config_.use_main_queues) {
    got = ScanQueues(start, thread_id, /*main_only=*/true, batch, instance);
    from_main = got > 0;
  }
  if (got == 0) {
    // LPT steals by live remaining work, not the frozen construction-time
    // estimate order: mid-run, what matters is which queue is fullest now.
    got = config_.strategy == Strategy::kLpt
              ? ScanQueuesLiveLpt(start, batch, instance)
              : ScanQueues(start, thread_id, /*main_only=*/false, batch,
                           instance);
  }
  *units = 0;
  if (got > 0) {
    (from_main ? main_acquisitions_ : secondary_acquisitions_)
        .fetch_add(1, std::memory_order_relaxed);
    for (size_t k = batch->size() - got; k < batch->size(); ++k) {
      *units += (*batch)[k].unit_count();
    }
    pending_.fetch_sub(static_cast<int64_t>(*units));
  }
  return got;
}

size_t Operation::ScanQueuesLiveLpt(size_t start,
                                    std::vector<Activation>* batch,
                                    size_t* instance) {
  // A failed main scan usually means the operation is drained (the worker
  // is about to sleep on work_cv_); don't pay a full size snapshot of every
  // queue just to confirm that. Same predicate as the wait loop, so a push
  // racing past this check still wakes a worker for a fresh scan.
  if (pending_.load(std::memory_order_acquire) <= 0) {
    return 0;
  }
  const size_t n = queues_.size();
  std::vector<size_t> live(n);
  // Advisory lock-free sizes: the snapshot only orders the scan, and stale
  // entries are tolerated below either way.
  for (size_t q = 0; q < n; ++q) live[q] = queues_[q]->ApproxUnits();
  const std::vector<uint32_t> order =
      LiveLptOrder(live, config_.cost_estimates, start);
  // NOLINTNEXTLINE(dbs3-cancel-check-in-consume-loop) // bounded single sweep (one PopBatch attempt per queue); WorkerLoop consults the token between batches
  for (uint32_t q : order) {
    // The snapshot is advisory: a queue seen non-empty may have been drained
    // by a peer, so keep scanning past stale entries (empty queues sort
    // last, which also makes this a full fallback scan).
    const size_t got = queues_[q]->PopBatch(config_.cache_size, batch);
    if (got > 0) {
      *instance = q;
      return got;
    }
  }
  return 0;
}

size_t Operation::ScanQueues(size_t start, size_t thread_id, bool main_only,
                             std::vector<Activation>* batch,
                             size_t* instance) {
  const size_t n = queues_.size();
  // Granted workers share the main-queue lane of the thread id they fold
  // onto (see AcquireBatch).
  const size_t lane = thread_id % config_.num_threads;
  // NOLINTNEXTLINE(dbs3-cancel-check-in-consume-loop) // bounded single sweep (one PopBatch attempt per queue); WorkerLoop consults the token between batches
  for (size_t k = 0; k < n; ++k) {
    const uint32_t q = visit_order_[(start + k) % n];
    // Queues are distributed to threads round-robin: queue q is the main
    // queue of thread q mod ThreadNb (paper: "all activation queues are
    // equally distributed among the associated threads").
    if (main_only && q % config_.num_threads != lane) continue;
    // Lock-free emptiness peek: sweeping all-idle queues must not cost one
    // mutex acquisition per queue. A push racing past the peek is caught by
    // the pending/work_cv re-scan, never lost.
    if (queues_[q]->ApproxUnits() == 0) continue;
    const size_t got = queues_[q]->PopBatch(config_.cache_size, batch);
    if (got > 0) {
      *instance = q;
      return got;
    }
  }
  return 0;
}

}  // namespace dbs3

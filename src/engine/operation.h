#ifndef DBS3_ENGINE_OPERATION_H_
#define DBS3_ENGINE_OPERATION_H_

#include <cstddef>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/activation.h"
#include "engine/activation_queue.h"
#include "engine/cancel.h"
#include "engine/chunk_pool.h"
#include "engine/operator_logic.h"
#include "engine/strategy.h"
#include "engine/thread_source.h"
#include "storage/partitioner.h"

namespace dbs3 {

class Operation;

/// Where an operation sends its result tuples.
struct DataOutput {
  enum class Route {
    /// Tuple from producer instance i goes to consumer instance i
    /// (join_i -> store_i in Figures 10/11).
    kSameInstance,
    /// Tuple goes to the consumer instance chosen by applying `partitioner`
    /// to column `column` of the tuple (dynamic repartitioning: the Transmit
    /// -> Join edge of AssocJoin, or Filter -> Join in Figure 1).
    kByColumn,
  };

  Operation* consumer = nullptr;
  Route route = Route::kSameInstance;
  size_t column = 0;
  Partitioner partitioner{PartitionKind::kHash, 1};
};

/// Execution statistics of one operation, for load-balance analysis.
struct OperationStats {
  std::string name;
  /// Tuple units processed (a trigger counts 1, a data activation counts
  /// its tuples) — identical to activation counts in the paper-faithful
  /// chunk_size=1 mode.
  std::vector<uint64_t> per_thread_processed;
  std::vector<uint64_t> per_instance_processed;
  /// Activations dequeued and processed (triggers + data chunks).
  /// per-thread totals / activations = mean tuples per activation, the
  /// direct measure of the chunking win.
  uint64_t activations = 0;
  uint64_t emitted = 0;
  /// True processing time: the sum over all workers of the time spent
  /// inside OnTrigger/OnDataBatch (activation spans). Idle waits excluded —
  /// this is the numerator of a per-thread load-balance fraction.
  double busy_seconds = 0.0;
  /// Seconds between Start() and the exit of the slowest worker (what
  /// busy_seconds used to report): start-up + processing + idle waits.
  double wall_span_seconds = 0.0;
  /// Per-thread split of busy_seconds, and the complementary idle time
  /// (each worker's lifetime minus its busy time). busy/(busy+idle) per
  /// thread is the paper's load-balance signal.
  std::vector<double> per_thread_busy_seconds;
  std::vector<double> per_thread_idle_seconds;
  /// Tuple units dropped because their queue was already closed (a trigger
  /// counts 1, a data chunk counts its tuples). Always 0 on a well-formed
  /// plan; non-zero only for cancelled/abandoned executions, and surfaced
  /// so it can never again be silent data loss.
  uint64_t dropped = 0;
  /// Tuple units the instance queues rejected after close, summed over the
  /// queues. Must equal `dropped` — the verify ledger cross-checks the two
  /// tallies after every execution.
  uint64_t queue_rejected_units = 0;
  /// Tuple units acquired after the execution's cancel token fired: the
  /// worker disposed of them without invoking operator logic. Kept in its
  /// own bucket (not `processed`) so the conservation ledger balances as
  /// units_in == processed + cancelled + dropped.
  uint64_t cancelled_units = 0;
  /// Batch acquisitions served from one of the consuming thread's own main
  /// queues vs. stolen from a secondary queue (load-balancing traffic).
  uint64_t main_queue_acquisitions = 0;
  uint64_t secondary_queue_acquisitions = 0;
  /// High-water mark of queued tuple units across the instance queues.
  uint64_t peak_queue_units = 0;
  /// Queue-mutex acquisitions across all instance queues, and how many of
  /// them hit a held mutex (producer/consumer interference).
  uint64_t queue_acquisitions = 0;
  uint64_t queue_contended = 0;
};

/// Runtime configuration of one operation (the `operation` struct of
/// Figure 4: QueueNb, ThreadNb, CacheSize, StrategyId...).
struct OperationConfig {
  std::string name = "op";
  /// Number of instances == number of activation queues (QueueNb).
  size_t num_instances = 1;
  /// Size of the thread pool (ThreadNb). The pool is shared by all
  /// instances — this decoupling of parallelism from partitioning is the
  /// paper's central mechanism.
  size_t num_threads = 1;
  Strategy strategy = Strategy::kRandom;
  /// Internal activation cache size (CacheSize): activations fetched from a
  /// queue under one mutex acquisition (consumer-side batching).
  size_t cache_size = 1;
  /// Tuples per emitted data activation (producer-side batching): the
  /// emitter buffers output per destination instance and flushes a chunk
  /// when it reaches this size. 1 = the paper-faithful per-tuple mode.
  /// When the consumer's queues are bounded, the effective chunk size is
  /// clamped to the consumer's queue capacity (chunks are split rather
  /// than deadlocking the bounded queue).
  size_t chunk_size = 1;
  /// Per-queue capacity in tuple units; 0 = unbounded.
  size_t queue_capacity = 0;
  /// Per-instance cost estimates for LPT ordering (empty = all equal).
  std::vector<double> cost_estimates;
  /// Prefer main queues before stealing from secondary queues (disable for
  /// interference ablation only).
  bool use_main_queues = true;
  uint64_t seed = 1;
  /// When set, every worker records its activation spans here (one span per
  /// acquired batch). Must outlive the operation. Null = tracing off; the
  /// only per-batch cost left is the busy-time clock reads.
  ActivationTracer* tracer = nullptr;
  /// Cooperative cancellation, checked after every batch acquisition. Once
  /// stopped, workers keep draining their queues but route the units into
  /// `cancelled_units` instead of the operator logic. The default None()
  /// token costs one null check per batch.
  CancelToken cancel = CancelToken::None();
  /// Chunk-buffer recycling (usually the executor's per-execution pool,
  /// shared by every operation of the plan). Emitters acquire outgoing
  /// chunk buffers here and workers release each drained data chunk back —
  /// including on the cancellation drain and the closed-queue drop path —
  /// so steady-state pipelining allocates no chunk buffers. Null = every
  /// chunk is a fresh vector (the pre-pool behavior).
  ChunkPool* chunk_pool = nullptr;
};

/// One node of the executing plan: a table of activation queues (one per
/// instance) plus a pool of consumer threads that can all consume from all
/// queues, preferring their main queues.
class Operation {
 public:
  /// `logic` must outlive the operation. `output.consumer == nullptr` for
  /// terminal operations.
  Operation(OperationConfig config, OperatorLogic* logic, DataOutput output);
  ~Operation();

  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;

  const OperationConfig& config() const { return config_; }

  /// Registers one upstream producer. Must be called before Start(); the
  /// executor registers each incoming plan edge (and itself, for the
  /// trigger source of a triggered operation).
  void AddProducer();

  /// Signals that one producer will push no more activations. When the last
  /// producer finishes, queues are closed and idle workers drain and exit.
  void ProducerDone() EXCLUDES(wait_mu_);

  /// Enqueues a single-tuple data activation for `instance`.
  void PushData(size_t instance, Tuple tuple) EXCLUDES(wait_mu_);

  /// Enqueues a chunked data activation for `instance`. Empty chunks are
  /// ignored.
  void PushDataChunk(size_t instance, TupleChunk tuples) EXCLUDES(wait_mu_);

  /// Enqueues the control activation for `instance`.
  void PushTrigger(size_t instance) EXCLUDES(wait_mu_);

  /// Spawns the worker pool. Prepare() of the logic must have succeeded.
  void Start();

  /// Runs the worker loops on threads borrowed from `source` instead of
  /// spawning private ones. The caller must guarantee the source has enough
  /// threads for every concurrently-blocking worker it dispatches across
  /// all operations (the server's admission controller reserves slots for
  /// exactly this). `source` must outlive Join().
  void StartOn(ThreadSource* source) EXCLUDES(exit_mu_);

  /// Blocks until every worker has exited (i.e. all producers done and all
  /// queues drained).
  void Join() EXCLUDES(exit_mu_);

  /// Runs the logic's OnFinish hook for every instance (emitting through
  /// this operation's output edge). Must be called after Join() and before
  /// the consumer's ProducerDone().
  void Finish();

  /// Statistics; valid after Join().
  OperationStats stats() const;

  /// Total tuple units currently queued (approximate, for monitoring; can
  /// be transiently negative during producer/consumer races).
  int64_t pending() const { return pending_.load(); }

  /// --- Steady-state malleability (mid-query worker reallocation) ---
  ///
  /// The server's rebalancer shrinks a running operation by asking surplus
  /// workers to *park*: at its next activation boundary (top of the worker
  /// loop — the same cooperative grain as cancellation) a worker claims one
  /// outstanding park request and exits early, returning its thread to the
  /// shared pool. It grows an operation by *granting*: dispatching one
  /// extra worker loop onto the operation's ThreadSource mid-run. Join()
  /// needs no changes — parked workers exit through the normal protocol,
  /// granted workers are counted live before dispatch.

  /// Asks up to `n` workers to park. Returns how many were actually
  /// requested: the operation always keeps at least one worker (liveness
  /// with bounded queues requires a consumer), and requests the current
  /// workers cannot absorb are not made. Wakes idle workers so a request
  /// is seen promptly even on a starved operation.
  size_t RequestPark(size_t n) EXCLUDES(exit_mu_, wait_mu_);

  /// Dispatches one extra worker loop onto the StartOn source. False when
  /// the operation runs private threads, has not started / already joined,
  /// is drained, or is at its worker capacity (max(num_threads,
  /// num_instances) live workers). Thread ids of exited workers are
  /// recycled, so repeated park/grant cycles never exhaust the stat slots.
  bool TryGrantWorker() EXCLUDES(exit_mu_);

  /// Worker loops currently live and not claiming a park (the
  /// rebalancer's activity signal).
  size_t active_workers() const EXCLUDES(exit_mu_);

  /// All producers done and queues drained: remaining workers are exiting
  /// on their own.
  bool drained() const {
    return producers_done_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_acquire) <= 0;
  }

  /// Installs a hook invoked once per worker exit (natural drain or park;
  /// the flag says which), from the exiting worker itself, *before* the
  /// exit becomes visible to Join(). The executor points it at the
  /// ExecutionBoard so the pool slot backing the worker is credited back
  /// exactly when the thread frees. Must be set before Start()/StartOn().
  void set_exit_callback(std::function<void(bool parked)> cb) {
    exit_callback_ = std::move(cb);
  }

 private:
  friend class OperationEmitter;

  void WorkerLoop(size_t thread_id) EXCLUDES(wait_mu_, exit_mu_);

  /// Claims one outstanding park request for the calling worker. False
  /// when none are outstanding or the worker is the operation's last
  /// active one (the stale request is dropped then, so a lone worker
  /// never spins on an undeliverable request).
  bool TryClaimPark() EXCLUDES(exit_mu_);

  /// Marks `count` workers as live before any of them runs, so Join() can
  /// wait for pool-dispatched workers that have no joinable thread handle.
  void BeginWorkers(size_t count) EXCLUDES(exit_mu_);

  /// Enqueues `a` on `instance` and wakes a worker; the pending-counter
  /// update is paired with wait_mu_ so the wakeup cannot be lost between a
  /// worker's predicate check and its wait.
  void PushActivation(size_t instance, Activation a, const char* what)
      EXCLUDES(wait_mu_);

  /// Pops a batch from the best queue per the strategy; returns the number
  /// of activations, sets `*instance` to the queue the batch came from and
  /// `*units` to the tuple units acquired.
  size_t AcquireBatch(size_t thread_id, Rng& rng,
                      std::vector<Activation>* batch, size_t* instance,
                      size_t* units);

  /// Secondary scan for LPT threads: consult live queue sizes (largest
  /// remaining work first) instead of the frozen construction-time order.
  size_t ScanQueuesLiveLpt(size_t start, std::vector<Activation>* batch,
                           size_t* instance);

  /// Scans the visit order starting at `start`, pops from the first
  /// non-empty queue, restricted to main queues of `thread_id` when
  /// `main_only`.
  size_t ScanQueues(size_t start, size_t thread_id, bool main_only,
                    std::vector<Activation>* batch, size_t* instance);

  /// Returns every data activation's chunk buffer in `batch` to the
  /// execution's pool (no-op without one). Called after processing a batch
  /// and on the cancellation drain, closing the recycling cycle.
  void ReleaseBatchChunks(std::vector<Activation>* batch);

  OperationConfig config_;
  OperatorLogic* logic_;
  DataOutput output_;

  std::vector<std::unique_ptr<ActivationQueue>> queues_;
  /// Strategy-determined queue visit order (identity for Random, cost-sorted
  /// for LPT).
  std::vector<uint32_t> visit_order_;

  std::vector<std::thread> threads_;

  /// Worker-exit tracking: counts live worker loops regardless of whether
  /// they run on private threads or on a shared ThreadSource. Join() waits
  /// on this (plus the private-thread joins) so both start modes share one
  /// lifetime protocol. `started_` arms the destructor's defensive drain
  /// for pool-backed runs, where threads_ stays empty.
  mutable Mutex exit_mu_{"Operation::exit_mu"};
  CondVar exit_cv_;
  size_t live_workers_ GUARDED_BY(exit_mu_) = 0;
  bool started_ = false;

  /// Malleability state. park_requests_ is an atomic so the worker loop's
  /// fast path (one relaxed load per batch) stays lock-free; every write
  /// pairs with exit_mu_, which serializes it against the claim/grant
  /// bookkeeping. parking_ counts claims whose workers have not exited
  /// yet — the claim guard live_workers_ - parking_ > 1 is what keeps two
  /// workers from both taking the last park and leaving the operation
  /// consumer-less. Worker ids of exited workers recycle through
  /// free_worker_ids_ (the previous holder's exit happens-before the
  /// grant under exit_mu_, so per-thread stat slots accumulate safely).
  std::atomic<size_t> park_requests_{0};
  size_t parking_ GUARDED_BY(exit_mu_) = 0;
  size_t next_worker_id_ GUARDED_BY(exit_mu_) = 0;
  std::vector<size_t> free_worker_ids_ GUARDED_BY(exit_mu_);
  /// max(num_threads, num_instances): grants beyond the degree of
  /// partitioning would only idle (paper invariant), so the stat vectors
  /// are pre-sized to this and never reallocate under concurrency.
  size_t worker_capacity_ = 0;
  /// Distinct worker ids ever used (== num_threads without grants);
  /// stats() reports this many per-thread slots.
  std::atomic<size_t> worker_high_water_{0};
  /// The StartOn source, kept for mid-run grants (null = private threads,
  /// grants refused). Guarded by exit_mu_: the rebalance tick can probe
  /// TryGrantWorker before StartOn has published the source.
  ThreadSource* thread_source_ GUARDED_BY(exit_mu_) = nullptr;
  std::function<void(bool parked)> exit_callback_;

  /// Producer/consumer synchronization across all queues. pending_ counts
  /// queued tuple units (not activations) so bounded-queue back-pressure
  /// and drain detection keep their meaning under chunking. pending_ and
  /// producers_done_ stay atomics rather than GUARDED_BY(wait_mu_):
  /// workers read them lock-free on the acquire fast path; writes pair
  /// with wait_mu_ only to close the lost-wakeup window against a waiting
  /// worker's predicate check.
  ///
  /// waiting_workers_ is the push fast path's eventcount: a producer only
  /// pays the wait_mu_ acquisition and the condvar signal when a worker is
  /// actually parked. Both sides use seq_cst (Dekker pattern): the worker
  /// publishes waiting_workers_ before re-reading pending_, the producer
  /// publishes pending_ before reading waiting_workers_, so at least one
  /// of them sees the other — a worker can sleep through a push only if
  /// the push already saw and signalled a waiter.
  Mutex wait_mu_{"Operation::wait_mu"};
  CondVar work_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<size_t> waiting_workers_{0};
  std::atomic<int64_t> open_producers_{0};
  std::atomic<bool> producers_done_{false};

  /// Stats. The per-thread vectors are written each by its own worker
  /// thread only and read after Join() (the join is the happens-before
  /// edge), so they need no atomics.
  std::vector<uint64_t> per_thread_processed_;
  std::vector<int64_t> per_thread_busy_ns_;
  std::vector<int64_t> per_thread_idle_ns_;
  std::unique_ptr<std::atomic<uint64_t>[]> per_instance_processed_;
  std::atomic<uint64_t> activations_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> cancelled_units_{0};
  std::atomic<uint64_t> main_acquisitions_{0};
  std::atomic<uint64_t> secondary_acquisitions_{0};
  std::chrono::steady_clock::time_point start_time_;
  /// Nanoseconds from Start() to the slowest worker's exit (wall span).
  std::atomic<int64_t> wall_span_ns_{0};
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_OPERATION_H_

#ifndef DBS3_ENGINE_CHUNK_POOL_H_
#define DBS3_ENGINE_CHUNK_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/activation.h"

namespace dbs3 {

/// A per-execution free list of TupleChunk buffers.
///
/// The activation pipeline is a producer/consumer ring: an emitter fills a
/// chunk, the consumer's worker drains it and hands the buffer back. Without
/// recycling, every chunk is a fresh heap vector (and, one layer down, every
/// slot a fresh Tuple), so the steady-state data path is dominated by
/// allocator traffic — precisely the multi-factor swing Durner et al.
/// measure for parallel query processing. With the pool, a buffer cycles
/// emitter -> queue -> worker -> pool -> emitter; after warm-up the chunk
/// path performs zero allocations.
///
/// Released buffers keep their Tuple elements (and those keep their value
/// storage): emitters overwrite recycled slots in place via
/// Tuple::AssignFrom/AssignConcat, which is what extends the zero-allocation
/// property from the chunk vectors down to the tuple payloads.
///
/// Thread safety: shared by every operation of an execution; all methods are
/// safe to call concurrently. In front of the shared (mutex-protected) free
/// list sits a small per-thread cache, refilled and spilled in batches: at
/// chunk_size 1 — the paper-faithful default, one chunk per tuple — the pool
/// sees two calls per tuple from different threads, and a single shared
/// mutex there would serialize the whole data path. With the cache, the
/// steady-state Acquire/Release pair is two thread-local vector operations;
/// the mutex is touched once per kTlsBatch buffers.
///
/// The cache is deliberately not tied to a pool instance: buffers are plain
/// self-owning vectors, so one execution's thread may hand its cached
/// buffers to the next execution on that thread. Pool stats stay exact for
/// allocated/reused/released; `free_buffers` counts only the shared list.
class ChunkPool {
 public:
  /// Buffers moved between the thread-local cache and the shared free list
  /// per refill/spill (one mutex acquisition amortized over the batch). The
  /// cache holds at most 2 * kTlsBatch buffers.
  static constexpr size_t kTlsBatch = 16;

  /// `max_free` bounds the buffers retained for reuse on the shared list;
  /// spills beyond the bound free their buffers instead (counted as
  /// discarded).
  explicit ChunkPool(size_t max_free = 1024) : max_free_(max_free) {}

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  /// Hands out a buffer: a recycled one when available (its elements are
  /// kept — callers overwrite slots in place), else a fresh vector with
  /// `reserve_hint` capacity.
  TupleChunk Acquire(size_t reserve_hint) EXCLUDES(mu_);

  /// Returns a drained buffer to the pool. Capacity-less chunks (moved-from
  /// or never filled) are ignored; beyond max_free the buffer is freed.
  void Release(TupleChunk&& chunk) EXCLUDES(mu_);

  struct Stats {
    /// Acquire calls that had to allocate a fresh buffer.
    uint64_t allocated = 0;
    /// Acquire calls served from the free list (steady-state hits).
    uint64_t reused = 0;
    /// Buffers handed back by consumers (drain, cancellation, rejection).
    uint64_t released = 0;
    /// Releases dropped because the free list was at max_free.
    uint64_t discarded = 0;
    /// Buffers currently idle in the free list.
    size_t free_buffers = 0;
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  /// The calling thread's buffer cache (shared across pool instances; see
  /// the class comment for why that is sound).
  static std::vector<TupleChunk>& TlsCache();

  mutable Mutex mu_{"ChunkPool::mu"};
  std::vector<TupleChunk> free_ GUARDED_BY(mu_);
  const size_t max_free_;
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> reused_{0};
  std::atomic<uint64_t> released_{0};
  std::atomic<uint64_t> discarded_{0};
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_CHUNK_POOL_H_

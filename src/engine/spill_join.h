#ifndef DBS3_ENGINE_SPILL_JOIN_H_
#define DBS3_ENGINE_SPILL_JOIN_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/operator_logic.h"
#include "storage/relation.h"
#include "storage/spill.h"
#include "storage/temp_index.h"

namespace dbs3 {

/// Knobs of the spilling join's partitioning scheme.
struct SpillJoinOptions {
  /// Build-side hash partitions per instance (and per recursion level).
  size_t fanout = 8;
  /// Recursion levels before an unsplittable partition (a single hot key
  /// defeats every rehash) falls back to the block nested-loop pass.
  size_t max_recursion = 6;
};

/// A memory-bounded dynamic hybrid hash join (per *Design Trade-offs for a
/// Robust Dynamic Hybrid Hash Join*), drop-in for PipelinedJoinLogic when
/// the query declared a memory budget.
///
/// Build: on the first activation of an instance, the inner fragment is
/// hash-partitioned into `fanout` partitions. Each retained build tuple is
/// charged one unit against the bound MemoryQuota; when a charge fails the
/// largest in-memory partition is spilled (tuples streamed to an unlinked
/// temp file, units released) and the build continues — the dynamic part:
/// how many partitions stay memory-resident is decided by the data, not up
/// front. In-memory partitions get a TempIndex; when everything fits the
/// probe path is row-identical to PipelinedJoinLogic (same probe, same
/// EmitConcat output shape: probe columns then inner columns).
///
/// Probe: tuples route to their partition by the same hash. In-memory
/// partitions probe and emit immediately (pipelined); probes of spilled
/// partitions are deferred to the partition's probe file.
///
/// Flush (OnFinish, sequential): each spilled build/probe file pair is
/// joined with bounded memory — the build side reloads under quota if it
/// now fits; otherwise it recursively repartitions with a level-salted
/// hash; at the recursion cap (or when a level fails to split) a block
/// nested-loop pass joins quota-sized build batches against rescans of the
/// probe file, which terminates under any skew.
///
/// Without a bound quota (BindExecution saw nullptr or limit 0 with no
/// pressure) nothing ever spills and the join is purely in-memory.
class SpillingHashJoinLogic : public OperatorLogic {
 public:
  SpillingHashJoinLogic(const Relation* inner, size_t inner_column,
                        size_t probe_column,
                        SpillJoinOptions options = SpillJoinOptions{});
  ~SpillingHashJoinLogic() override;

  void BindExecution(const ExecResources& resources) override;
  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  void OnFinish(size_t instance, Emitter* out) override;
  Status error() const override;
  std::string name() const override { return "spill-join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  /// One build partition of one instance. `spilled` is decided during the
  /// build (inside the instance's call_once) and read-only afterwards;
  /// probe-file appends are the only post-build mutation and take the
  /// instance lock.
  struct Partition {
    Fragment build;                    ///< In-memory build rows.
    std::unique_ptr<TempIndex> index;  ///< Over `build`, post-build.
    bool spilled = false;
    std::unique_ptr<SpillFile> build_file;
    std::unique_ptr<SpillFile> probe_file;
    uint64_t charged = 0;  ///< Quota units held by `build`.
  };

  struct InstanceState {
    Mutex mu{"SpillingHashJoinLogic::instance_mu"};
    std::once_flag built;
    /// Sized/filled inside the call_once; structurally immutable after.
    std::vector<Partition> parts;
    Status error GUARDED_BY(mu);
  };

  /// The partition of `v` at recursion `level`. Level-salted and remixed so
  /// it is independent of the upstream repartition edge's hash (which
  /// already constrained every key this instance sees).
  size_t PartitionOf(const Value& v, size_t level) const;

  void EnsureBuilt(size_t instance);
  void BuildPartitions(size_t instance);
  /// Spills the largest in-memory partition with build rows; when none has
  /// any, marks `current` itself spilled. Returns non-OK on IO failure.
  Status SpillVictim(InstanceState& state, size_t current);
  Status SpillPartition(Partition& part);

  void RecordError(InstanceState& state, Status status) EXCLUDES(state.mu);

  /// Joins one spilled build/probe file pair with bounded memory.
  Status ProcessSpilledPair(size_t instance, SpillFile* build_file,
                            SpillFile* probe_file, size_t level,
                            Emitter* out);
  /// Streams `probe_file` against an in-memory build fragment + index.
  Status StreamProbeFile(size_t instance, SpillFile* probe_file,
                         const Fragment& build, const TempIndex& index,
                         Emitter* out);
  /// Splits the pair into `fanout` sub-pairs at `level` and recurses.
  Status Repartition(size_t instance, SpillFile* build_file,
                     SpillFile* probe_file, size_t level, Emitter* out);
  /// Quota-sized build batches, each joined against a full probe rescan.
  Status BlockNestedLoop(size_t instance, SpillFile* build_file,
                         SpillFile* probe_file, Emitter* out);

  /// Publishes the counters' growth since the last publish into the bound
  /// metrics registry (called from the sequential OnFinish).
  void PublishMetrics();

  const Relation* inner_;
  size_t inner_column_;
  size_t probe_column_;
  SpillJoinOptions options_;
  ExecResources resources_;
  SpillCounters counters_;
  /// spill.* counter values already published to the metrics registry.
  uint64_t published_bytes_written_ = 0;
  uint64_t published_bytes_read_ = 0;
  uint64_t published_partitions_ = 0;
  uint64_t published_recursions_ = 0;
  std::atomic<uint64_t> partitions_spilled_{0};
  std::atomic<uint64_t> recursions_{0};
  std::vector<std::unique_ptr<InstanceState>> instances_;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_SPILL_JOIN_H_

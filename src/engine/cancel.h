#ifndef DBS3_ENGINE_CANCEL_H_
#define DBS3_ENGINE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dbs3 {

/// Cooperative cancellation handle for one query execution.
///
/// A token is a cheap copyable view of shared state: every copy observes
/// the same flag, so the caller keeps one copy to Cancel() from any thread
/// while the engine's workers poll ShouldStop() at activation-consumption
/// boundaries. A deadline folded into the token turns into cancellation
/// with kDeadlineExceeded the first time a checkpoint runs past it.
///
/// Cancellation is cooperative and drains rather than kills: workers that
/// observe a stopped token keep consuming queued activations but dispose
/// of them into the operation's `cancelled_units` bucket instead of
/// invoking operator logic, so queues empty, the drain protocol completes,
/// and the conservation ledger stays balanced (see engine/verify.h).
class CancelToken {
 public:
  /// A fresh, independently cancellable token.
  CancelToken() : state_(std::make_shared<State>()) {}

  /// A token that can never be cancelled (shared null state; zero-cost
  /// checks). The default for executions that opt out of cancellation.
  static CancelToken None() { return CancelToken(nullptr); }

  /// Latches cancellation (first cause wins: a Cancel after a deadline
  /// expiry keeps reporting DeadlineExceeded, and vice versa). No-op on a
  /// None() token.
  void Cancel() const {
    if (state_ == nullptr) return;
    int expected = kNone;
    state_->code.compare_exchange_strong(expected, kCancelled,
                                         std::memory_order_relaxed);
  }

  /// Sets the absolute deadline checked by ShouldStop(). Meant to be set
  /// once, before the execution starts; a later call moves the deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline) const {
    if (state_ == nullptr) return;
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// True once Cancel() ran or a checkpoint saw the deadline expire.
  bool cancelled() const {
    return state_ != nullptr &&
           state_->code.load(std::memory_order_relaxed) != kNone;
  }

  /// The engine's checkpoint: true when the execution must stop (explicit
  /// cancel, or deadline expired — which latches DeadlineExceeded so later
  /// calls are flag-only).
  bool ShouldStop() const {
    if (state_ == nullptr) return false;
    if (state_->code.load(std::memory_order_relaxed) != kNone) return true;
    const int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    if (now < deadline) return false;
    int expected = kNone;
    state_->code.compare_exchange_strong(expected, kDeadline,
                                         std::memory_order_relaxed);
    return true;
  }

  /// OK while running; Cancelled or DeadlineExceeded once stopped.
  Status ToStatus() const {
    if (state_ == nullptr) return Status::OK();
    switch (state_->code.load(std::memory_order_relaxed)) {
      case kCancelled:
        return Status::Cancelled("query cancelled");
      case kDeadline:
        return Status::DeadlineExceeded("query deadline exceeded");
      default:
        return Status::OK();
    }
  }

  /// The absolute steady_clock deadline in ns since epoch, 0 when none is
  /// set (or on a None() token). Lets a waiter that skips polling (the
  /// admission queue's blocked PopNext) size a timed wait to the nearest
  /// deadline instead of spinning on ShouldStop.
  int64_t deadline_ns() const {
    if (state_ == nullptr) return 0;
    return state_->deadline_ns.load(std::memory_order_relaxed);
  }

  /// False for None() tokens (nothing can ever stop them).
  bool can_cancel() const { return state_ != nullptr; }

 private:
  enum : int { kNone = 0, kCancelled = 1, kDeadline = 2 };

  struct State {
    std::atomic<int> code{kNone};
    /// Absolute steady_clock deadline in ns since epoch; 0 = none.
    std::atomic<int64_t> deadline_ns{0};
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_CANCEL_H_

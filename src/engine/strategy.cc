#include "engine/strategy.h"

#include <algorithm>
#include <numeric>

namespace dbs3 {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kRandom:
      return "Random";
    case Strategy::kLpt:
      return "LPT";
  }
  return "unknown";
}

std::vector<uint32_t> QueueVisitOrder(Strategy strategy,
                                      const std::vector<double>& estimates,
                                      size_t num_queues) {
  std::vector<uint32_t> order(num_queues);
  std::iota(order.begin(), order.end(), 0);
  if (strategy == Strategy::kLpt && !estimates.empty()) {
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       const double ea = a < estimates.size() ? estimates[a] : 0.0;
                       const double eb = b < estimates.size() ? estimates[b] : 0.0;
                       return ea > eb;
                     });
  }
  return order;
}

std::vector<uint32_t> LiveLptOrder(const std::vector<size_t>& live_units,
                                   const std::vector<double>& estimates,
                                   size_t start) {
  const size_t n = live_units.size();
  std::vector<uint32_t> order(n);
  for (size_t k = 0; k < n; ++k) {
    order[k] = static_cast<uint32_t>((start + k) % n);
  }
  // stable_sort keeps the rotated sequence among full ties, which is what
  // staggers concurrent threads.
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (live_units[a] != live_units[b]) return live_units[a] > live_units[b];
    const double ea = a < estimates.size() ? estimates[a] : 0.0;
    const double eb = b < estimates.size() ? estimates[b] : 0.0;
    return ea > eb;
  });
  return order;
}

}  // namespace dbs3

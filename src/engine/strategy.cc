#include "engine/strategy.h"

#include <algorithm>
#include <numeric>

namespace dbs3 {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kRandom:
      return "Random";
    case Strategy::kLpt:
      return "LPT";
  }
  return "unknown";
}

std::vector<uint32_t> QueueVisitOrder(Strategy strategy,
                                      const std::vector<double>& estimates,
                                      size_t num_queues) {
  std::vector<uint32_t> order(num_queues);
  std::iota(order.begin(), order.end(), 0);
  if (strategy == Strategy::kLpt && !estimates.empty()) {
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       const double ea = a < estimates.size() ? estimates[a] : 0.0;
                       const double eb = b < estimates.size() ? estimates[b] : 0.0;
                       return ea > eb;
                     });
  }
  return order;
}

}  // namespace dbs3

#include "engine/chunk_pool.h"

#include <utility>

namespace dbs3 {

std::vector<TupleChunk>& ChunkPool::TlsCache() {
  thread_local std::vector<TupleChunk> cache;
  return cache;
}

TupleChunk ChunkPool::Acquire(size_t reserve_hint) {
  std::vector<TupleChunk>& tls = TlsCache();
  if (tls.empty()) {
    // Refill a batch under one lock; amortizes the mutex over kTlsBatch
    // subsequent thread-local hits.
    MutexLock lock(&mu_);
    const size_t take = free_.size() < kTlsBatch ? free_.size() : kTlsBatch;
    for (size_t i = 0; i < take; ++i) {
      tls.push_back(std::move(free_.back()));
      free_.pop_back();
    }
  }
  if (!tls.empty()) {
    TupleChunk chunk = std::move(tls.back());
    tls.pop_back();
    reused_.fetch_add(1, std::memory_order_relaxed);
    return chunk;
  }
  allocated_.fetch_add(1, std::memory_order_relaxed);
  TupleChunk chunk;
  chunk.reserve(reserve_hint);
  return chunk;
}

void ChunkPool::Release(TupleChunk&& chunk) {
  if (chunk.capacity() == 0) return;
  released_.fetch_add(1, std::memory_order_relaxed);
  std::vector<TupleChunk>& tls = TlsCache();
  tls.push_back(std::move(chunk));
  if (tls.size() < 2 * kTlsBatch) return;
  // Spill half the cache so a pure-releaser thread (a pipeline's sink) keeps
  // feeding buffers back to the acquiring threads.
  size_t overflow = 0;
  {
    MutexLock lock(&mu_);
    while (tls.size() > kTlsBatch && free_.size() < max_free_) {
      free_.push_back(std::move(tls.back()));
      tls.pop_back();
    }
    overflow = tls.size() > kTlsBatch ? tls.size() - kTlsBatch : 0;
  }
  if (overflow > 0) {
    // Shared list full: free the overflow outside the pool lock.
    discarded_.fetch_add(overflow, std::memory_order_relaxed);
    tls.resize(kTlsBatch);
  }
}

ChunkPool::Stats ChunkPool::stats() const {
  Stats s;
  s.allocated = allocated_.load(std::memory_order_relaxed);
  s.reused = reused_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  MutexLock lock(&mu_);
  s.free_buffers = free_.size();
  return s;
}

}  // namespace dbs3

#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "common/logging.h"
#include "engine/verify.h"

namespace dbs3 {
namespace {

/// The executor's view of its own plan as a malleable job: load snapshots
/// per operation, park requests routed to the operation with the largest
/// worker surplus, grants dispatched into the hottest (most queued work)
/// operation. Called concurrently with the execution by the server's
/// rebalance tick; every Operation method used here is thread-safe.
class PlanMalleable final : public MalleableExecution {
 public:
  PlanMalleable(std::vector<std::unique_ptr<Operation>>* ops,
                size_t grant_quantum)
      : ops_(ops), quantum_(std::max<size_t>(1, grant_quantum)) {}

  std::vector<OpLoad> SampleLoad() override {
    std::vector<OpLoad> loads;
    loads.reserve(ops_->size());
    for (const auto& op : *ops_) {
      OpLoad load;
      load.name = op->config().name;
      load.instances = op->config().num_instances;
      load.active_workers = op->active_workers();
      load.pending_units =
          static_cast<uint64_t>(std::max<int64_t>(0, op->pending()));
      load.drained = op->drained();
      loads.push_back(std::move(load));
    }
    return loads;
  }

  size_t RequestPark(size_t n) override {
    // Largest surplus first, one pass: each operation already clamps its
    // own outstanding requests, so a single sweep cannot over-request.
    std::vector<std::pair<size_t, Operation*>> by_surplus;
    for (const auto& op : *ops_) {
      const size_t surplus = SurplusOf(*op);
      if (surplus > 0) by_surplus.emplace_back(surplus, op.get());
    }
    std::sort(by_surplus.begin(), by_surplus.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    size_t requested = 0;
    for (const auto& [surplus, op] : by_surplus) {
      if (requested >= n) break;
      requested += op->RequestPark(std::min(n - requested, surplus));
    }
    return requested;
  }

  bool TryGrantWorker() override {
    std::vector<Operation*> targets;
    for (const auto& op : *ops_) {
      if (!op->drained()) targets.push_back(op.get());
    }
    std::sort(targets.begin(), targets.end(), [](Operation* a, Operation* b) {
      return a->pending() > b->pending();
    });
    for (Operation* op : targets) {
      if (op->TryGrantWorker()) return true;
    }
    return false;
  }

 private:
  /// Workers the operation could give up right now: everything beyond one
  /// worker per `quantum_` queued units (always keeping one). A drained
  /// operation has no surplus — its workers are exiting on their own and
  /// their slots come back through the exit path anyway.
  size_t SurplusOf(const Operation& op) const {
    if (op.drained()) return 0;
    const size_t active = op.active_workers();
    if (active <= 1) return 0;
    const uint64_t pending =
        static_cast<uint64_t>(std::max<int64_t>(0, op.pending()));
    size_t needed =
        static_cast<size_t>((pending + quantum_ - 1) / quantum_);
    needed = std::clamp<size_t>(needed, 1, active);
    return active - needed;
  }

  std::vector<std::unique_ptr<Operation>>* ops_;
  size_t quantum_;
};

}  // namespace

Result<ExecutionResult> Executor::Run(Plan& plan) {
  return Run(plan, ExecOptions{});
}

Result<ExecutionResult> Executor::Run(Plan& plan,
                                      const ExecOptions& options) {
  DBS3_RETURN_IF_ERROR(plan.Validate());
  DBS3_ASSIGN_OR_RETURN(std::vector<size_t> order, plan.TopologicalOrder());

  const TraceOptions& trace = plan.trace_options();
  std::unique_ptr<ActivationTracer> tracer;
  if (trace.enabled) tracer = std::make_unique<ActivationTracer>();

  // Chunk pool shared by every operation: emitters draw their outgoing
  // buffers here and workers return drained ones, so a pipeline in steady
  // state cycles a bounded working set of chunks instead of allocating per
  // activation. The caller may supply a longer-lived pool (ExecOptions),
  // which keeps the free list warm across executions; otherwise a
  // per-execution pool is used. Declared before `ops` so the fallback
  // outlives the operations that hold a pointer to it.
  ChunkPool local_pool;
  ChunkPool* chunk_pool =
      options.chunk_pool != nullptr ? options.chunk_pool : &local_pool;
  const ChunkPool::Stats pool_before = chunk_pool->stats();

  // Per-execution metric registry, declared before the operations so the
  // operator logics may write (spill) counters from any execution callback.
  // The background sampler (queue depth in tuple units per operation) only
  // runs when tracing is enabled; counters are aggregated after the run
  // either way.
  MetricsRegistry registry;

  // Resources shared by every operator logic this run: the query's memory
  // quota (nullptr = unaccounted), the registry above, and the cancel
  // token. Bound before Prepare so per-instance state can be sized with the
  // budget in view.
  ExecResources resources;
  resources.quota = options.quota;
  resources.metrics = &registry;
  resources.cancel = options.cancel;

  // Instantiate operations consumers-first so producers can hold their
  // consumer's pointer in the output edge.
  std::vector<std::unique_ptr<Operation>> ops(plan.num_nodes());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const size_t i = *it;
    PlanNode& node = plan.node(i);
    node.logic->BindExecution(resources);
    DBS3_RETURN_IF_ERROR(node.logic->Prepare(node.instances));

    OperationConfig config;
    config.name = node.name;
    config.num_instances = node.instances;
    config.num_threads = node.params.threads;
    config.strategy = node.params.strategy;
    config.cache_size = node.params.cache_size;
    config.chunk_size = node.params.chunk_size;
    config.queue_capacity = node.params.queue_capacity;
    config.cost_estimates = node.params.cost_estimates;
    config.use_main_queues = node.params.use_main_queues;
    config.seed = 0x5bd1e995u + i;
    config.tracer = tracer.get();
    config.cancel = options.cancel;
    config.chunk_pool = chunk_pool;

    DataOutput output;
    if (node.output >= 0) {
      output.consumer = ops[static_cast<size_t>(node.output)].get();
      output.route = node.route;
      output.column = node.route_column;
      if (node.route_partitioner.has_value()) {
        output.partitioner = *node.route_partitioner;
      }
    }
    ops[i] = std::make_unique<Operation>(std::move(config), node.logic.get(),
                                         output);
  }

  // Wire producer counts: one per incoming data edge, plus the executor
  // itself as the trigger source of each triggered operation.
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    const PlanNode& node = plan.node(i);
    for (size_t p : node.producers) {
      (void)p;
      ops[i]->AddProducer();
    }
    if (node.mode == ActivationMode::kTriggered) ops[i]->AddProducer();
  }

  MetricsSampler sampler(
      &registry,
      std::chrono::microseconds(std::max<uint32_t>(1,
                                                   trace.sample_interval_us)));
  if (trace.enabled) {
    for (size_t i = 0; i < plan.num_nodes(); ++i) {
      Operation* op = ops[i].get();
      registry.RegisterProbe(
          "op." + plan.node(i).name + ".queued_units",
          [op] { return std::max<int64_t>(0, op->pending()); });
    }
    sampler.Start();
  }

  // Steady-state malleability: a pool-backed execution registers on the
  // caller's board before any worker starts, so every worker exit — park
  // or natural drain — credits its pool slot back through the board. The
  // exit callbacks must be installed before StartOn (a worker could run
  // and exit during the start loop).
  const bool adaptive =
      options.board != nullptr && options.workers != nullptr;
  PlanMalleable malleable(&ops, options.grant_quantum);
  uint64_t board_id = 0;
  if (adaptive) {
    size_t reserved = 0;
    for (size_t i = 0; i < plan.num_nodes(); ++i) {
      reserved += plan.node(i).params.threads;
    }
    board_id = options.board->Register(
        &malleable, reserved, std::max(options.desired_threads, reserved));
    ExecutionBoard* board = options.board;
    const uint64_t id = board_id;
    for (auto& op : ops) {
      op->set_exit_callback(
          [board, id](bool parked) { board->OnWorkerExit(id, parked); });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Producers start before their consumers (topological order), so on a
  // FIFO thread source every dispatched worker either runs or is preceded
  // only by workers it does not wait on.
  for (size_t i : order) {
    if (options.workers != nullptr) {
      ops[i]->StartOn(options.workers);
    } else {
      ops[i]->Start();
    }
  }

  // Fire the control activations (Figure 2: one trigger per instance).
  for (size_t i : order) {
    const PlanNode& node = plan.node(i);
    if (node.mode != ActivationMode::kTriggered) continue;
    for (size_t inst = 0; inst < node.instances; ++inst) {
      ops[i]->PushTrigger(inst);
    }
    ops[i]->ProducerDone();
  }

  // Drain in topological order: once a producer's pool has exited, its
  // consumer sees ProducerDone and can itself drain and exit. Blocking
  // operators flush their per-instance results (OnFinish) between their own
  // drain and the downstream close.
  for (size_t i : order) {
    ops[i]->Join();
    // A cancelled execution withholds OnFinish: the blocking operators'
    // buffered results are partial, and emitting them would only feed
    // downstream cancelled buckets. ProducerDone still runs so every
    // consumer sees its producers close and the drain terminates.
    if (!options.cancel.ShouldStop()) ops[i]->Finish();
    const PlanNode& node = plan.node(i);
    if (node.output >= 0) {
      ops[static_cast<size_t>(node.output)]->ProducerDone();
    }
  }

  const auto t1 = std::chrono::steady_clock::now();

  // Every worker has exited (and credited its slot through the board's
  // exit path); unregister before anything can error out below so the
  // caller's slot accounting settles on every return path. The board
  // serializes this against any in-flight rebalance tick.
  RebalanceTotals rebalance;
  if (adaptive) rebalance = options.board->Unregister(board_id);
  if (options.rebalance_out != nullptr) *options.rebalance_out = rebalance;

  // The sampler's probes point into the operations: stop it (and drop the
  // probes) before the operations can go away.
  sampler.Stop();
  registry.ClearProbes();

  // Operator-level failures (spill IO, quota exhaustion without a spill
  // path) have no return channel in the activation callbacks; surface the
  // first one as the run's error. A cancelled run skips the check — its
  // partial state is expected to be inconsistent and `completion` already
  // reports why.
  if (!options.cancel.ShouldStop()) {
    for (size_t i : order) {
      DBS3_RETURN_IF_ERROR(plan.node(i).logic->error());
    }
  }

  ExecutionResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.op_stats.reserve(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    OperationStats stats = ops[i]->stats();
    const std::string prefix = "op." + stats.name + ".";
    registry.counter(prefix + "tuple_units")
        ->Add(std::accumulate(stats.per_instance_processed.begin(),
                              stats.per_instance_processed.end(),
                              uint64_t{0}));
    registry.counter(prefix + "activations")->Add(stats.activations);
    registry.counter(prefix + "emitted")->Add(stats.emitted);
    registry.counter(prefix + "dropped_units")->Add(stats.dropped);
    registry.counter(prefix + "cancelled_units")->Add(stats.cancelled_units);
    registry.counter(prefix + "busy_ns")
        ->Add(static_cast<uint64_t>(stats.busy_seconds * 1e9));
    registry.counter(prefix + "main_queue_acquisitions")
        ->Add(stats.main_queue_acquisitions);
    registry.counter(prefix + "secondary_queue_acquisitions")
        ->Add(stats.secondary_queue_acquisitions);
    registry.counter(prefix + "peak_queue_units")
        ->Add(stats.peak_queue_units);
    result.units_dropped += stats.dropped;
    result.units_cancelled += stats.cancelled_units;
    result.op_stats.push_back(std::move(stats));
  }
  {
    // This execution's recycling activity: the delta over the pool's
    // counters (exact for a private pool, approximate under sharing).
    const ChunkPool::Stats after = chunk_pool->stats();
    result.chunk_pool.allocated = after.allocated - pool_before.allocated;
    result.chunk_pool.reused = after.reused - pool_before.reused;
    result.chunk_pool.released = after.released - pool_before.released;
    result.chunk_pool.discarded = after.discarded - pool_before.discarded;
    result.chunk_pool.free_buffers = after.free_buffers;
  }
  registry.counter("engine.chunks_allocated")->Add(result.chunk_pool.allocated);
  registry.counter("engine.chunks_reused")->Add(result.chunk_pool.reused);
  registry.counter("engine.chunks_discarded")
      ->Add(result.chunk_pool.discarded);
  result.threads_granted = rebalance.granted;
  result.threads_parked = rebalance.parked;
  result.completion = options.cancel.ToStatus();
  result.metrics = registry.Snapshot();

#if DBS3_VERIFY_ENABLED
  // Tuple-conservation ledger (debug builds): every unit pushed into an
  // operation — producer emissions plus executor triggers — must come back
  // out as processed or accounted-dropped, and every closed-queue
  // rejection must be mirrored in the drop counter. All pools are joined,
  // so the counters are exact.
  {
    std::vector<verify::LedgerEntry> ledger(plan.num_nodes());
    for (size_t i = 0; i < plan.num_nodes(); ++i) {
      const PlanNode& node = plan.node(i);
      const OperationStats& stats = result.op_stats[i];
      verify::LedgerEntry& entry = ledger[i];
      entry.name = stats.name;
      entry.consumer = node.output;
      entry.emitted = stats.emitted;
      entry.processed = std::accumulate(stats.per_instance_processed.begin(),
                                        stats.per_instance_processed.end(),
                                        uint64_t{0});
      entry.dropped = stats.dropped;
      entry.cancelled = stats.cancelled_units;
      entry.rejected = stats.queue_rejected_units;
      if (node.mode == ActivationMode::kTriggered) {
        entry.triggers = node.instances;
      }
    }
    for (const std::string& violation :
         verify::CheckTupleConservation(ledger)) {
      verify::Fail(violation);
    }
  }
#endif

  if (tracer != nullptr) {
    result.trace_json = tracer->ToChromeJson();
    if (!trace.path.empty()) {
      const Status written = tracer->WriteChromeJson(trace.path);
      if (!written.ok()) {
        DBS3_LOG(kWarning) << "trace dump failed: " << written.ToString();
      }
    }
  }
  return result;
}

}  // namespace dbs3

#ifndef DBS3_ENGINE_THREAD_SOURCE_H_
#define DBS3_ENGINE_THREAD_SOURCE_H_

#include <functional>

namespace dbs3 {

/// Where an execution's worker loops run. The engine's default is one
/// private std::thread per worker (Operation::Start); a ThreadSource lets
/// the executor borrow threads from an engine-wide pool instead
/// (Operation::StartOn), so concurrent queries share workers without
/// per-query spawn/teardown — see server/worker_pool.h.
class ThreadSource {
 public:
  virtual ~ThreadSource() = default;

  /// Runs `fn` on some worker thread, asynchronously. Dispatched functions
  /// may block (a worker loop waits for activations until its producers
  /// finish), so callers must never dispatch more concurrently-blocking
  /// work than the source has threads — the server's admission controller
  /// reserves worker slots per query phase to enforce exactly that.
  virtual void Dispatch(std::function<void()> fn) = 0;

  /// Number of threads backing the source (capacity for the caller's
  /// reservation arithmetic).
  virtual size_t num_threads() const = 0;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_THREAD_SOURCE_H_

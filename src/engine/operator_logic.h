#ifndef DBS3_ENGINE_OPERATOR_LOGIC_H_
#define DBS3_ENGINE_OPERATOR_LOGIC_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/cancel.h"
#include "engine/cost_model.h"
#include "storage/tuple.h"

namespace dbs3 {

class MemoryQuota;
class MetricsRegistry;

/// Per-execution resources the executor hands to every operator logic
/// before Prepare (see OperatorLogic::BindExecution). Pointers stay valid
/// for the duration of Executor::Run only — logics must touch `metrics`
/// exclusively from execution callbacks. `quota` is the one exception: when
/// non-null the caller guarantees it outlives the plan's logics, so
/// destructors can release charges a cancelled run left behind.
struct ExecResources {
  /// The query's memory quota, or nullptr when the execution runs without
  /// accounting (no budget declared and no caller-provided tracker).
  MemoryQuota* quota = nullptr;
  /// The execution's metric registry (spill counters land here).
  MetricsRegistry* metrics = nullptr;
  /// The execution's cancel token; long-running OnFinish work (spill
  /// drains) checks it between partitions.
  CancelToken cancel = CancelToken::None();
};

/// Sink for tuples produced while processing one activation. The Operation
/// implements this by routing the tuple to the consumer operation's instance
/// queue (data activation), per the plan's edge routing rule.
class Emitter {
 public:
  virtual ~Emitter() = default;

  /// Sends one result tuple downstream. `producer_instance` is the instance
  /// whose activation is being processed (needed for same-instance routing,
  /// e.g. join_i -> store_i in the paper's plans).
  virtual void Emit(size_t producer_instance, Tuple tuple) = 0;

  /// Sends a copy of `tuple` downstream. Operators that keep the original
  /// (scans emitting from an immutable fragment) use this so the engine can
  /// copy straight into a recycled output slot instead of materializing a
  /// fresh Tuple first.
  virtual void EmitCopy(size_t producer_instance, const Tuple& tuple) {
    Emit(producer_instance, Tuple(tuple));
  }

  /// Sends the concatenation of `left` and `right` (a join output row)
  /// downstream. The default materializes via Tuple::Concat; the engine's
  /// emitter overrides it to write both halves into a recycled output slot
  /// in place — the join kernels' zero-allocation emit path.
  virtual void EmitConcat(size_t producer_instance, const Tuple& left,
                          const Tuple& right) {
    Emit(producer_instance, left.Concat(right));
  }

  /// Sends the listed columns of `src`, in order (a projection output row).
  /// The default materializes a fresh tuple; the engine's emitter overrides
  /// it to Tuple::AssignSelect into a recycled output slot — the projection
  /// counterpart of EmitConcat's zero-allocation path.
  virtual void EmitSelect(size_t producer_instance, const Tuple& src,
                          std::span<const size_t> columns) {
    std::vector<Value> values;
    values.reserve(columns.size());
    for (size_t c : columns) values.push_back(src.at(c));
    Emit(producer_instance, Tuple(std::move(values)));
  }
};

/// The database function of an operation (the `DBFunc` field of Figure 4):
/// filter, join, transmit, store...
///
/// Thread-safety contract: after Prepare(), OnTrigger/OnData are called
/// concurrently by the operation's thread pool, possibly concurrently for
/// the *same* instance (several threads may drain one queue). Implementations
/// must synchronize any per-instance mutable state.
class OperatorLogic {
 public:
  virtual ~OperatorLogic() = default;

  /// Called once per execution, before Prepare, with the run's shared
  /// resources. The default ignores them; memory-aware operators (spilling
  /// join, group-by, sort) keep the quota/metrics pointers and charge
  /// retained state against the quota as they buffer it.
  virtual void BindExecution(const ExecResources& resources) {
    (void)resources;
  }

  /// First error the logic hit while processing (spill IO failure, quota
  /// exhaustion with no spill path). The executor checks every logic after
  /// the drain and fails the run with the first non-OK status — operator
  /// callbacks have no return channel of their own.
  virtual Status error() const { return Status::OK(); }

  /// Called once, before any activation, with the operation's instance
  /// count. Allocate per-instance state here.
  virtual Status Prepare(size_t num_instances) {
    (void)num_instances;
    return Status::OK();
  }

  /// Processes the control activation of `instance` (triggered operations:
  /// the whole fragment is the unit of work).
  virtual void OnTrigger(size_t instance, Emitter* out) {
    (void)instance;
    (void)out;
  }

  /// Processes one tuple of a data activation (pipelined operations).
  virtual void OnData(size_t instance, Tuple tuple, Emitter* out) {
    (void)instance;
    (void)tuple;
    (void)out;
  }

  /// Processes one *chunked* data activation: a span of tuples delivered
  /// under a single queue acquisition. The default loops over OnData; an
  /// operator overrides it to hoist per-activation setup (index lookup,
  /// fragment lock, predicate bind) out of the per-tuple loop. Tuples in the
  /// span are owned by the caller and may be moved from.
  virtual void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                           Emitter* out) {
    for (Tuple& t : tuples) OnData(instance, std::move(t), out);
  }

  /// Called exactly once per instance after every activation of the
  /// operation has been processed and before downstream operations are
  /// closed. Blocking operators (group-by, sort) emit their results here.
  /// Invoked sequentially (no concurrent OnFinish calls).
  virtual void OnFinish(size_t instance, Emitter* out) {
    (void)instance;
    (void)out;
  }

  /// Operator name for plan display ("filter", "join", ...).
  virtual std::string name() const = 0;

  /// Static complexity estimate, used by the scheduler (Section 3, steps
  /// 1-3) and to derive LPT cost estimates. `input_tuples` is the estimated
  /// number of data activations this node will receive (0 for triggered
  /// operations). The default says "free operator, passes tuples through".
  virtual NodeEstimate Estimate(const CostModel& cost_model,
                                double input_tuples) const {
    (void)cost_model;
    NodeEstimate e;
    e.activations = input_tuples;
    e.output_tuples = input_tuples;
    return e;
  }
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_OPERATOR_LOGIC_H_

#ifndef DBS3_ENGINE_OPERATORS_H_
#define DBS3_ENGINE_OPERATORS_H_

#include <cstddef>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "engine/operator_logic.h"
#include "engine/vector/pred.h"
#include "storage/relation.h"
#include "storage/temp_index.h"

namespace dbs3 {

/// A predicate over tuples as an arbitrary function — the engine's fully
/// general row form.
using TuplePredicate = std::function<bool(const Tuple&)>;

/// The predicate an operator runs: always the row form, plus — when the
/// predicate is one of the comparison shapes the vector kernels understand —
/// its lowered PredExpr. Filter operators run the batch kernels when `expr`
/// is present and the activation carries enough tuples; the row form remains
/// the single-tuple / custom-predicate path (chunk_size=1 stays the
/// paper-faithful per-tuple mode automatically).
struct Predicate {
  TuplePredicate row;
  std::optional<PredExpr> expr;

  Predicate() = default;

  /// An arbitrary row predicate: stays on the per-tuple path.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<bool, F, const Tuple&> &&
                !std::is_same_v<std::decay_t<F>, Predicate> &&
                !std::is_same_v<std::decay_t<F>, PredExpr>>>
  Predicate(F fn) : row(std::move(fn)) {}  // NOLINT: implicit by design.

  /// A lowered comparison: vectorizable. The row form is derived from the
  /// expression, so both paths share one definition of truth.
  Predicate(PredExpr e);  // NOLINT: implicit by design.

  bool vectorizable() const { return expr.has_value(); }
};

/// Predicate `tuple[column] == value`.
Predicate ColumnEquals(size_t column, Value value);

/// Predicate `lo <= tuple[column] <= hi` (int column).
Predicate ColumnBetween(size_t column, int64_t lo, int64_t hi);

/// Matches every tuple.
Predicate MatchAll();

/// Triggered selection: the control activation for instance i scans fragment
/// i of the input relation and emits every tuple matching the predicate
/// (the `filter` of Figure 1/2).
class FilterLogic : public OperatorLogic {
 public:
  /// `input` must outlive the execution. `selectivity` is the estimated
  /// fraction of tuples the predicate keeps (compiler statistic, used only
  /// for scheduling). `vectorize` enables the tiled batch kernel when the
  /// predicate is lowerable (off = always the row loop, for comparisons).
  FilterLogic(const Relation* input, Predicate predicate,
              double selectivity = 1.0, bool vectorize = true);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "filter"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* input_;
  Predicate predicate_;
  double selectivity_;
  bool vectorize_;
};

/// Triggered redistribution: the control activation for instance i scans
/// fragment i of the input relation and emits every tuple; the plan edge
/// repartitions them to the consumer (the `transmit` of Figure 11).
class TransmitLogic : public OperatorLogic {
 public:
  explicit TransmitLogic(const Relation* input);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "transmit"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* input_;
};

/// Join algorithms. The paper uses nested loop when the join algorithm has
/// no impact (to slow down small-database runs) and an on-the-fly temporary
/// index for the 500K databases; a classic build/probe hash join is included
/// as the production default.
enum class JoinAlgorithm { kNestedLoop, kHash, kTempIndex };

const char* JoinAlgorithmName(JoinAlgorithm a);

/// Triggered join (IdealJoin node, Figure 10): both operands are
/// co-partitioned on the join attribute; the control activation for
/// instance i joins outer fragment i with inner fragment i.
class TriggeredJoinLogic : public OperatorLogic {
 public:
  /// Joins `outer` and `inner` on outer.column(outer_column) ==
  /// inner.column(inner_column). Requires equal degrees. `vectorize`
  /// enables the tiled batch-probe kernel for the indexed algorithms.
  TriggeredJoinLogic(const Relation* outer, size_t outer_column,
                     const Relation* inner, size_t inner_column,
                     JoinAlgorithm algorithm, bool vectorize = true);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* outer_;
  size_t outer_column_;
  const Relation* inner_;
  size_t inner_column_;
  JoinAlgorithm algorithm_;
  bool vectorize_;
};

/// Pipelined join (AssocJoin node, Figure 11): the inner operand is bound
/// statically; each data activation conveys one probe tuple, joined against
/// the inner fragment of the receiving instance.
class PipelinedJoinLogic : public OperatorLogic {
 public:
  /// Probes column `probe_column` of incoming tuples against
  /// inner.column(inner_column) on inner fragment `instance`. `vectorize`
  /// enables the batched prefetching probe when a data activation carries
  /// enough tuples (single-tuple activations always take the row path).
  PipelinedJoinLogic(const Relation* inner, size_t inner_column,
                     size_t probe_column, JoinAlgorithm algorithm,
                     bool vectorize = true);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked probe: resolves the inner fragment / temp index once per
  /// activation instead of once per tuple, and for large chunks hashes the
  /// whole probe-key column up front and runs the batched prefetching probe.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  /// Lazily built per-instance temp index (kHash / kTempIndex algorithms).
  const TempIndex* IndexFor(size_t instance);

  const Relation* inner_;
  size_t inner_column_;
  size_t probe_column_;
  JoinAlgorithm algorithm_;
  bool vectorize_;
  std::vector<std::unique_ptr<std::once_flag>> index_once_;
  std::vector<std::unique_ptr<TempIndex>> indexes_;
};

/// Pipelined materialization: appends each incoming tuple to fragment
/// `instance` of the result relation (the `store` at the end of a pipeline
/// chain).
class StoreLogic : public OperatorLogic {
 public:
  /// `result` must have at least as many fragments as the operation has
  /// instances and must outlive the execution.
  explicit StoreLogic(Relation* result);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked append: takes the fragment lock once per activation.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "store"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  Relation* result_;
  /// One lock per result fragment. Dynamically indexed, so per-element
  /// GUARDED_BY is not expressible; AppendToFragment calls happen only
  /// under the matching fragment's lock.
  std::vector<std::unique_ptr<Mutex>> fragment_mu_;
};

/// Pipelined filter: forwards each incoming tuple iff it matches the
/// predicate (post-join / post-repartition selections).
class PipelinedFilterLogic : public OperatorLogic {
 public:
  /// `selectivity` is the scheduling estimate of the kept fraction.
  /// `vectorize` enables the batch kernel for lowered predicates on large
  /// chunks (single-tuple activations always take the row path).
  explicit PipelinedFilterLogic(Predicate predicate, double selectivity = 1.0,
                                bool vectorize = true);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked filter: hoists the predicate dispatch out of the loop — lowered
  /// predicates evaluate via PredExpr::EvalRow (no std::function call per
  /// tuple), large chunks via the selection-vector kernel.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "filter"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  Predicate predicate_;
  double selectivity_;
  bool vectorize_;
};

/// Pipelined projection: emits the listed columns of each incoming tuple,
/// in order. Emission goes through Emitter::EmitSelect, which writes the
/// selected columns straight into a recycled output slot — no per-row
/// output tuple is materialized.
class ProjectLogic : public OperatorLogic {
 public:
  explicit ProjectLogic(std::vector<size_t> columns);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked projection: hoists the column-list span out of the loop.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "project"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  std::vector<size_t> columns_;
};

/// Pipelined map: emits f(tuple) for each incoming tuple.
class MapLogic : public OperatorLogic {
 public:
  /// Materializing form: emits fn(tuple). Each call constructs the output
  /// row; prefer the in-place form on hot paths.
  explicit MapLogic(std::function<Tuple(Tuple)> fn);

  /// Allocation-lean form: fn overwrites a recycled per-thread scratch row
  /// (via Tuple::AssignFrom / AssignConcat) which is then EmitCopy'd into a
  /// recycled chunk slot — no per-row construction in steady state.
  explicit MapLogic(std::function<void(const Tuple&, Tuple*)> fn);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked map: hoists the form dispatch out of the loop.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "map"; }

 private:
  std::function<Tuple(Tuple)> fn_;
  std::function<void(const Tuple&, Tuple*)> in_place_;
};

/// Pipelined aggregate sink: counts tuples and optionally sums one int
/// column. Results readable after execution completes.
class AggregateLogic : public OperatorLogic {
 public:
  /// Pass std::nullopt to only count.
  explicit AggregateLogic(std::optional<size_t> sum_column = std::nullopt);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked aggregate: one atomic add per counter per activation instead
  /// of one per tuple.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "aggregate"; }

  uint64_t count() const { return count_.load(); }
  int64_t sum() const { return sum_.load(); }

 private:
  std::optional<size_t> sum_column_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_OPERATORS_H_

#ifndef DBS3_ENGINE_OPERATORS_H_
#define DBS3_ENGINE_OPERATORS_H_

#include <cstddef>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "engine/operator_logic.h"
#include "storage/relation.h"
#include "storage/temp_index.h"

namespace dbs3 {

/// A predicate over tuples. Wraps an arbitrary function; the factory helpers
/// build the common column-comparison forms.
using TuplePredicate = std::function<bool(const Tuple&)>;

/// Predicate `tuple[column] == value`.
TuplePredicate ColumnEquals(size_t column, Value value);

/// Predicate `lo <= tuple[column] <= hi` (int column).
TuplePredicate ColumnBetween(size_t column, int64_t lo, int64_t hi);

/// Matches every tuple.
TuplePredicate MatchAll();

/// Triggered selection: the control activation for instance i scans fragment
/// i of the input relation and emits every tuple matching the predicate
/// (the `filter` of Figure 1/2).
class FilterLogic : public OperatorLogic {
 public:
  /// `input` must outlive the execution. `selectivity` is the estimated
  /// fraction of tuples the predicate keeps (compiler statistic, used only
  /// for scheduling).
  FilterLogic(const Relation* input, TuplePredicate predicate,
              double selectivity = 1.0);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "filter"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* input_;
  TuplePredicate predicate_;
  double selectivity_;
};

/// Triggered redistribution: the control activation for instance i scans
/// fragment i of the input relation and emits every tuple; the plan edge
/// repartitions them to the consumer (the `transmit` of Figure 11).
class TransmitLogic : public OperatorLogic {
 public:
  explicit TransmitLogic(const Relation* input);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "transmit"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* input_;
};

/// Join algorithms. The paper uses nested loop when the join algorithm has
/// no impact (to slow down small-database runs) and an on-the-fly temporary
/// index for the 500K databases; a classic build/probe hash join is included
/// as the production default.
enum class JoinAlgorithm { kNestedLoop, kHash, kTempIndex };

const char* JoinAlgorithmName(JoinAlgorithm a);

/// Triggered join (IdealJoin node, Figure 10): both operands are
/// co-partitioned on the join attribute; the control activation for
/// instance i joins outer fragment i with inner fragment i.
class TriggeredJoinLogic : public OperatorLogic {
 public:
  /// Joins `outer` and `inner` on outer.column(outer_column) ==
  /// inner.column(inner_column). Requires equal degrees.
  TriggeredJoinLogic(const Relation* outer, size_t outer_column,
                     const Relation* inner, size_t inner_column,
                     JoinAlgorithm algorithm);

  Status Prepare(size_t num_instances) override;
  void OnTrigger(size_t instance, Emitter* out) override;
  std::string name() const override { return "join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const Relation* outer_;
  size_t outer_column_;
  const Relation* inner_;
  size_t inner_column_;
  JoinAlgorithm algorithm_;
};

/// Pipelined join (AssocJoin node, Figure 11): the inner operand is bound
/// statically; each data activation conveys one probe tuple, joined against
/// the inner fragment of the receiving instance.
class PipelinedJoinLogic : public OperatorLogic {
 public:
  /// Probes column `probe_column` of incoming tuples against
  /// inner.column(inner_column) on inner fragment `instance`.
  PipelinedJoinLogic(const Relation* inner, size_t inner_column,
                     size_t probe_column, JoinAlgorithm algorithm);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked probe: resolves the inner fragment / temp index once per
  /// activation instead of once per tuple.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  /// Lazily built per-instance temp index (kHash / kTempIndex algorithms).
  const TempIndex* IndexFor(size_t instance);

  const Relation* inner_;
  size_t inner_column_;
  size_t probe_column_;
  JoinAlgorithm algorithm_;
  std::vector<std::unique_ptr<std::once_flag>> index_once_;
  std::vector<std::unique_ptr<TempIndex>> indexes_;
};

/// Pipelined materialization: appends each incoming tuple to fragment
/// `instance` of the result relation (the `store` at the end of a pipeline
/// chain).
class StoreLogic : public OperatorLogic {
 public:
  /// `result` must have at least as many fragments as the operation has
  /// instances and must outlive the execution.
  explicit StoreLogic(Relation* result);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked append: takes the fragment lock once per activation.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "store"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  Relation* result_;
  /// One lock per result fragment. Dynamically indexed, so per-element
  /// GUARDED_BY is not expressible; AppendToFragment calls happen only
  /// under the matching fragment's lock.
  std::vector<std::unique_ptr<Mutex>> fragment_mu_;
};

/// Pipelined filter: forwards each incoming tuple iff it matches the
/// predicate (post-join / post-repartition selections).
class PipelinedFilterLogic : public OperatorLogic {
 public:
  /// `selectivity` is the scheduling estimate of the kept fraction.
  explicit PipelinedFilterLogic(TuplePredicate predicate,
                                double selectivity = 1.0);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked filter: binds the predicate once and loops without the
  /// per-tuple virtual dispatch.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "filter"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  TuplePredicate predicate_;
  double selectivity_;
};

/// Pipelined projection: emits the listed columns of each incoming tuple,
/// in order.
class ProjectLogic : public OperatorLogic {
 public:
  explicit ProjectLogic(std::vector<size_t> columns);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  std::string name() const override { return "project"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  std::vector<size_t> columns_;
};

/// Pipelined map: emits f(tuple) for each incoming tuple.
class MapLogic : public OperatorLogic {
 public:
  explicit MapLogic(std::function<Tuple(Tuple)> fn);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  std::string name() const override { return "map"; }

 private:
  std::function<Tuple(Tuple)> fn_;
};

/// Pipelined aggregate sink: counts tuples and optionally sums one int
/// column. Results readable after execution completes.
class AggregateLogic : public OperatorLogic {
 public:
  /// Pass std::nullopt to only count.
  explicit AggregateLogic(std::optional<size_t> sum_column = std::nullopt);

  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked aggregate: one atomic add per counter per activation instead
  /// of one per tuple.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return "aggregate"; }

  uint64_t count() const { return count_.load(); }
  int64_t sum() const { return sum_.load(); }

 private:
  std::optional<size_t> sum_column_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_OPERATORS_H_

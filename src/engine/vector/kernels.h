#ifndef DBS3_ENGINE_VECTOR_KERNELS_H_
#define DBS3_ENGINE_VECTOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/arena.h"
#include "common/hash.h"
#include "engine/vector/column_batch.h"
#include "storage/value.h"

namespace dbs3 {

/// Hashes a whole int64 key column in one pass (SplitMix64 finalizer —
/// identical to Value::Hash on integers, so batch and row paths agree on
/// every hash-dependent decision: bucket choice, partition routing).
inline void HashInt64Column(const int64_t* keys, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashInt64(static_cast<uint64_t>(keys[i]));
  }
}

/// Hash fallback for mixed or string key columns: Value::Hash per row.
inline void HashValueColumn(const Value* const* keys, size_t n,
                            uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = keys[i]->Hash();
}

/// Hashes column `col` of `batch` into an arena array: the int64 one-pass
/// kernel when the column is all-integer, Value::Hash per row otherwise.
inline const uint64_t* HashColumn(ColumnBatch& batch, size_t col,
                                  Arena* arena) {
  const size_t n = batch.num_rows();
  uint64_t* out = arena->AllocateArrayOf<uint64_t>(n);
  const int64_t* ints = batch.Ints(col);
  if (ints != nullptr) {
    HashInt64Column(ints, n, out);
  } else {
    HashValueColumn(batch.Values(col), n, out);
  }
  return out;
}

}  // namespace dbs3

#endif  // DBS3_ENGINE_VECTOR_KERNELS_H_

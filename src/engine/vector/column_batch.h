#ifndef DBS3_ENGINE_VECTOR_COLUMN_BATCH_H_
#define DBS3_ENGINE_VECTOR_COLUMN_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/arena.h"
#include "storage/tuple.h"

namespace dbs3 {

/// The rows a kernel stage operates on, as indices into a ColumnBatch.
///
/// Kernels thread one of these through the stages of a vectorized pipeline:
/// a predicate kernel writes the surviving row ids (always ascending), the
/// next stage reads them, and the emit loop walks the final selection. The
/// id array lives in the batch's arena, so building one allocates nothing
/// once the arena is warm.
class SelectionVector {
 public:
  /// An empty selection with room for `capacity` ids in `arena`.
  SelectionVector(Arena* arena, size_t capacity)
      : ids_(arena->AllocateArrayOf<uint32_t>(capacity)), size_(0) {}

  /// Identity selection [0, n): every row selected, in order.
  static SelectionVector All(Arena* arena, size_t n) {
    SelectionVector sel(arena, n);
    for (size_t i = 0; i < n; ++i) sel.ids_[i] = static_cast<uint32_t>(i);
    sel.size_ = n;
    return sel;
  }

  uint32_t* data() { return ids_; }
  const uint32_t* data() const { return ids_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](size_t i) const { return ids_[i]; }

  /// Sets the logical size after a kernel filled data() directly.
  void set_size(size_t n) { size_ = n; }

 private:
  uint32_t* ids_;
  size_t size_;
};

/// A column-major view over one chunk of row tuples, materialized lazily:
/// a column's array is built on first access (one pass over the chunk) and
/// cached for the remaining kernel stages of the batch.
///
/// Two views exist per column. Ints() is the hot one: a contiguous int64
/// array the type-specialized kernels stream over branch-free; it is
/// available iff every row holds an integer in that column (the
/// schema-typed case). Values() always works: an array of pointers to the
/// rows' Value slots, used by string comparisons, hash fallback, and the
/// batched index probe (which needs the Value for hash-collision key
/// confirmation).
///
/// All arrays live in the supplied arena; the viewed tuples must outlive
/// the batch. Not thread-safe — one batch per worker per activation.
class ColumnBatch {
 public:
  ColumnBatch(std::span<const Tuple> rows, Arena* arena)
      : rows_(rows),
        arena_(arena),
        num_columns_(rows.empty() ? 0 : rows.front().size()),
        columns_(arena->AllocateArrayOf<ColumnView>(num_columns_)) {
    for (size_t c = 0; c < num_columns_; ++c) columns_[c] = ColumnView{};
  }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return num_columns_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// The column as a contiguous int64 array, or nullptr when any row holds
  /// a non-integer there. Built on first call.
  const int64_t* Ints(size_t col) {
    assert(col < num_columns_);
    ColumnView& view = columns_[col];
    if (!view.ints_built) BuildInts(col, view);
    return view.ints;
  }

  /// Pointers to each row's Value in the column. Built on first call.
  const Value* const* Values(size_t col) {
    assert(col < num_columns_);
    ColumnView& view = columns_[col];
    if (!view.values_built) BuildValues(col, view);
    return view.values;
  }

 private:
  struct ColumnView {
    const int64_t* ints = nullptr;
    const Value** values = nullptr;
    bool ints_built = false;
    bool values_built = false;
  };

  void BuildInts(size_t col, ColumnView& view) {
    const size_t n = rows_.size();
    int64_t* out = arena_->AllocateArrayOf<int64_t>(n);
    for (size_t i = 0; i < n; ++i) {
      const int64_t* v = rows_[i].at(col).TryInt();
      if (v == nullptr) {
        view.ints_built = true;  // Mixed column: remember the miss.
        return;
      }
      out[i] = *v;
    }
    view.ints = out;
    view.ints_built = true;
  }

  void BuildValues(size_t col, ColumnView& view) {
    const size_t n = rows_.size();
    const Value** out = arena_->AllocateArrayOf<const Value*>(n);
    for (size_t i = 0; i < n; ++i) out[i] = &rows_[i].at(col);
    view.values = out;
    view.values_built = true;
  }

  std::span<const Tuple> rows_;
  Arena* arena_;
  size_t num_columns_;
  ColumnView* columns_;
};

/// The calling thread's kernel arena. Every vectorized OnDataBatch /
/// OnTrigger tile opens a ScopedArena on it, builds its ColumnBatch,
/// selection vectors, and hash arrays inside, and rewinds on exit — after
/// the first few batches warm the blocks, the kernels stop touching the
/// heap entirely.
Arena& ThreadLocalKernelArena();

}  // namespace dbs3

#endif  // DBS3_ENGINE_VECTOR_COLUMN_BATCH_H_

#include "engine/vector/pred.h"

namespace dbs3 {

bool PredExpr::EvalValue(const Value& v) const {
  switch (kind) {
    case Kind::kAll:
      return true;
    case Kind::kNone:
      return false;
    case Kind::kIntRange: {
      const int64_t* i = v.TryInt();
      return i != nullptr && *i >= lo && *i <= hi;
    }
    case Kind::kIntNotEquals: {
      const int64_t* i = v.TryInt();
      return i == nullptr || *i != lo;
    }
    case Kind::kStringEquals:
      return !v.is_int() && v.AsString() == literal;
    case Kind::kStringNotEquals:
      return v.is_int() || v.AsString() != literal;
    case Kind::kAnd:
      break;  // Not a leaf; fall through to the assert-equivalent below.
  }
  return false;
}

bool PredExpr::EvalRow(const Tuple& t) const {
  if (kind == Kind::kAnd) {
    for (const PredExpr& child : children) {
      if (!child.EvalRow(t)) return false;
    }
    return true;
  }
  if (kind == Kind::kAll) return true;
  if (kind == Kind::kNone) return false;
  return EvalValue(t.at(column));
}

std::string PredExpr::ToString() const {
  switch (kind) {
    case Kind::kAll:
      return "true";
    case Kind::kNone:
      return "false";
    case Kind::kIntRange:
      if (lo == hi) return "c" + std::to_string(column) + " == " +
                           std::to_string(lo);
      return "c" + std::to_string(column) + " in [" + std::to_string(lo) +
             ", " + std::to_string(hi) + "]";
    case Kind::kIntNotEquals:
      return "c" + std::to_string(column) + " != " + std::to_string(lo);
    case Kind::kStringEquals:
      return "c" + std::to_string(column) + " == '" + literal + "'";
    case Kind::kStringNotEquals:
      return "c" + std::to_string(column) + " != '" + literal + "'";
    case Kind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " && ";
        out += children[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

/// Leaf kernel over all rows: the int-range form streams the column array
/// with a branchless select; everything else tests per row via Values().
size_t LeafAll(const PredExpr& pred, ColumnBatch& batch, uint32_t* sel_out) {
  const size_t n = batch.num_rows();
  size_t k = 0;
  if (pred.kind == PredExpr::Kind::kIntRange) {
    const int64_t* v = batch.Ints(pred.column);
    if (v != nullptr) {
      const int64_t lo = pred.lo, hi = pred.hi;
      for (size_t i = 0; i < n; ++i) {
        sel_out[k] = static_cast<uint32_t>(i);
        k += static_cast<size_t>((v[i] >= lo) & (v[i] <= hi));
      }
      return k;
    }
  }
  if (pred.kind == PredExpr::Kind::kIntNotEquals) {
    const int64_t* v = batch.Ints(pred.column);
    if (v != nullptr) {
      const int64_t x = pred.lo;
      for (size_t i = 0; i < n; ++i) {
        sel_out[k] = static_cast<uint32_t>(i);
        k += static_cast<size_t>(v[i] != x);
      }
      return k;
    }
  }
  const Value* const* vals = batch.Values(pred.column);
  for (size_t i = 0; i < n; ++i) {
    if (pred.EvalValue(*vals[i])) sel_out[k++] = static_cast<uint32_t>(i);
  }
  return k;
}

/// Leaf kernel over a selection, in place.
size_t LeafFilter(const PredExpr& pred, ColumnBatch& batch, uint32_t* sel,
                  size_t count) {
  size_t k = 0;
  if (pred.kind == PredExpr::Kind::kIntRange) {
    const int64_t* v = batch.Ints(pred.column);
    if (v != nullptr) {
      const int64_t lo = pred.lo, hi = pred.hi;
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = sel[i];
        sel[k] = row;
        k += static_cast<size_t>((v[row] >= lo) & (v[row] <= hi));
      }
      return k;
    }
  }
  if (pred.kind == PredExpr::Kind::kIntNotEquals) {
    const int64_t* v = batch.Ints(pred.column);
    if (v != nullptr) {
      const int64_t x = pred.lo;
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = sel[i];
        sel[k] = row;
        k += static_cast<size_t>(v[row] != x);
      }
      return k;
    }
  }
  const Value* const* vals = batch.Values(pred.column);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t row = sel[i];
    if (pred.EvalValue(*vals[row])) sel[k++] = row;
  }
  return k;
}

}  // namespace

size_t EvalPredAll(const PredExpr& pred, ColumnBatch& batch,
                   uint32_t* sel_out) {
  const size_t n = batch.num_rows();
  switch (pred.kind) {
    case PredExpr::Kind::kAll:
      for (size_t i = 0; i < n; ++i) sel_out[i] = static_cast<uint32_t>(i);
      return n;
    case PredExpr::Kind::kNone:
      return 0;
    case PredExpr::Kind::kAnd: {
      if (pred.children.empty()) {
        for (size_t i = 0; i < n; ++i) sel_out[i] = static_cast<uint32_t>(i);
        return n;
      }
      size_t count = EvalPredAll(pred.children.front(), batch, sel_out);
      for (size_t c = 1; c < pred.children.size() && count > 0; ++c) {
        count = EvalPredFilter(pred.children[c], batch, sel_out, count);
      }
      return count;
    }
    default:
      return LeafAll(pred, batch, sel_out);
  }
}

size_t EvalPredFilter(const PredExpr& pred, ColumnBatch& batch,
                      uint32_t* sel, size_t count) {
  switch (pred.kind) {
    case PredExpr::Kind::kAll:
      return count;
    case PredExpr::Kind::kNone:
      return 0;
    case PredExpr::Kind::kAnd: {
      for (const PredExpr& child : pred.children) {
        if (count == 0) break;
        count = EvalPredFilter(child, batch, sel, count);
      }
      return count;
    }
    default:
      return LeafFilter(pred, batch, sel, count);
  }
}

}  // namespace dbs3

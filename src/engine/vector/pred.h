#ifndef DBS3_ENGINE_VECTOR_PRED_H_
#define DBS3_ENGINE_VECTOR_PRED_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "engine/vector/column_batch.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace dbs3 {

/// A small predicate IR for the comparison forms the planner and the
/// ColumnEquals/ColumnBetween helpers produce: integer range tests, string
/// equality, and conjunctions, over typed columns.
///
/// The IR exists so the batch filter kernel can evaluate a chunk with one
/// type-specialized, branch-light loop per leaf instead of one
/// std::function indirect call per tuple; arbitrary predicates stay on the
/// cold TuplePredicate path.
///
/// Leaf semantics are self-contained (they do not inherit the Value
/// total-order quirks for cross-type comparisons): an integer leaf matches
/// only integer values, kStringEquals only equal strings, and the negated
/// forms match everything else. The planner guarantees equivalence with
/// its row predicates by lowering a comparison only when the column's
/// declared schema type matches the literal (see LowerableFor).
struct PredExpr {
  enum class Kind : uint8_t {
    kAll,              ///< Matches every tuple.
    kNone,             ///< Matches nothing (unsatisfiable range).
    kIntRange,         ///< Value is an integer in [lo, hi].
    kIntNotEquals,     ///< Value is not the integer `lo` (non-ints match).
    kStringEquals,     ///< Value is the string `literal`.
    kStringNotEquals,  ///< Value is not the string `literal`.
    kAnd,              ///< Every child matches.
  };

  Kind kind = Kind::kAll;
  uint32_t column = 0;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  std::string literal;
  std::vector<PredExpr> children;

  static PredExpr All() { return PredExpr{}; }
  static PredExpr None() {
    PredExpr e;
    e.kind = Kind::kNone;
    return e;
  }
  static PredExpr IntBetween(uint32_t column, int64_t lo, int64_t hi) {
    if (lo > hi) return None();
    PredExpr e;
    e.kind = Kind::kIntRange;
    e.column = column;
    e.lo = lo;
    e.hi = hi;
    return e;
  }
  static PredExpr IntEquals(uint32_t column, int64_t v) {
    return IntBetween(column, v, v);
  }
  static PredExpr IntNotEquals(uint32_t column, int64_t v) {
    PredExpr e;
    e.kind = Kind::kIntNotEquals;
    e.column = column;
    e.lo = v;
    return e;
  }
  static PredExpr IntLess(uint32_t column, int64_t v) {
    if (v == std::numeric_limits<int64_t>::min()) return None();
    return IntBetween(column, std::numeric_limits<int64_t>::min(), v - 1);
  }
  static PredExpr IntLessEq(uint32_t column, int64_t v) {
    return IntBetween(column, std::numeric_limits<int64_t>::min(), v);
  }
  static PredExpr IntGreater(uint32_t column, int64_t v) {
    if (v == std::numeric_limits<int64_t>::max()) return None();
    return IntBetween(column, v + 1, std::numeric_limits<int64_t>::max());
  }
  static PredExpr IntGreaterEq(uint32_t column, int64_t v) {
    return IntBetween(column, v, std::numeric_limits<int64_t>::max());
  }
  static PredExpr StringEquals(uint32_t column, std::string s) {
    PredExpr e;
    e.kind = Kind::kStringEquals;
    e.column = column;
    e.literal = std::move(s);
    return e;
  }
  static PredExpr StringNotEquals(uint32_t column, std::string s) {
    PredExpr e;
    e.kind = Kind::kStringNotEquals;
    e.column = column;
    e.literal = std::move(s);
    return e;
  }
  /// Conjunction. Single-child conjunctions collapse to the child.
  static PredExpr And(std::vector<PredExpr> children) {
    if (children.size() == 1) return std::move(children.front());
    PredExpr e;
    e.kind = Kind::kAnd;
    e.children = std::move(children);
    return e;
  }

  /// Evaluates this node against one value (leaves only; kAll/kNone ok).
  bool EvalValue(const Value& v) const;

  /// Row-path evaluation: one switch-dispatched walk per tuple, no
  /// std::function indirection. This is what the row path of the filter
  /// operators calls when a PredExpr is available (one virtual call into
  /// OnDataBatch per chunk, then direct calls per tuple).
  bool EvalRow(const Tuple& t) const;

  /// Debug rendering, e.g. "(c0 in [3, 7] && c2 == 'x')".
  std::string ToString() const;
};

/// Evaluates `pred` over every row of `batch`, writing the matching row
/// ids (ascending) into `sel_out` (capacity >= batch.num_rows()). Returns
/// the match count. Integer leaves over all-int columns run branch-free;
/// other leaves fall back to per-row Value evaluation.
size_t EvalPredAll(const PredExpr& pred, ColumnBatch& batch,
                   uint32_t* sel_out);

/// Filters an existing selection in place (reads and writes `sel`, output
/// index never passes the read index). Returns the surviving count.
size_t EvalPredFilter(const PredExpr& pred, ColumnBatch& batch,
                      uint32_t* sel, size_t count);

}  // namespace dbs3

#endif  // DBS3_ENGINE_VECTOR_PRED_H_

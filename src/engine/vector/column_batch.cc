#include "engine/vector/column_batch.h"

namespace dbs3 {

Arena& ThreadLocalKernelArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace dbs3

#include "engine/verify.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace dbs3 {
namespace verify {

namespace {

FailureHandler* LedgerHandler() {
  // Leaked: verification hooks may fire during static destruction.
  static FailureHandler* handler = new FailureHandler();
  return handler;
}

}  // namespace

std::vector<std::string> CheckTupleConservation(
    const std::vector<LedgerEntry>& ledger) {
  std::vector<std::string> violations;
  // Units-in per entry: triggers plus every producer's emissions.
  std::vector<uint64_t> units_in(ledger.size(), 0);
  for (size_t i = 0; i < ledger.size(); ++i) {
    units_in[i] += ledger[i].triggers;
    const int64_t c = ledger[i].consumer;
    if (c < 0) continue;
    if (static_cast<size_t>(c) >= ledger.size()) {
      violations.push_back("ledger entry '" + ledger[i].name +
                           "' names consumer index " + std::to_string(c) +
                           " outside the ledger");
      continue;
    }
    units_in[static_cast<size_t>(c)] += ledger[i].emitted;
  }
  for (size_t i = 0; i < ledger.size(); ++i) {
    const LedgerEntry& e = ledger[i];
    const uint64_t units_out = e.processed + e.cancelled + e.dropped;
    if (units_in[i] != units_out) {
      violations.push_back(
          "tuple conservation broken at operation '" + e.name + "': " +
          std::to_string(units_in[i]) + " units in (" +
          std::to_string(e.triggers) + " triggers + " +
          std::to_string(units_in[i] - e.triggers) +
          " produced) vs " + std::to_string(units_out) + " units out (" +
          std::to_string(e.processed) + " processed + " +
          std::to_string(e.cancelled) + " cancelled + " +
          std::to_string(e.dropped) + " dropped)");
    }
    if (e.dropped != e.rejected) {
      violations.push_back(
          "drop accounting broken at operation '" + e.name + "': queues "
          "rejected " + std::to_string(e.rejected) + " units after close "
          "but the drop counter recorded " + std::to_string(e.dropped));
    }
  }
  return violations;
}

void Fail(const std::string& message) {
  const FailureHandler& handler = *LedgerHandler();
  if (handler) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "DBS3 VERIFY FAILURE: %s\n", message.c_str());
  std::abort();
}

FailureHandler SetVerifyFailureHandler(FailureHandler handler) {
  LockOrderRecorder::Instance().SetFailureHandler(handler);
  return std::exchange(*LedgerHandler(), std::move(handler));
}

}  // namespace verify
}  // namespace dbs3

#ifndef DBS3_ENGINE_COST_MODEL_H_
#define DBS3_ENGINE_COST_MODEL_H_

#include <cstddef>
#include <vector>

namespace dbs3 {

/// Abstract work units for complexity estimation. One unit ~ one elementary
/// tuple operation; the scheduler only uses *ratios* of complexities, so
/// this unit never needs calibrating against wall-clock time (the simulator
/// has its own calibrated unit, see sim/workload.h).
struct CostModel {
  /// Scanning / filtering one tuple.
  double scan_tuple = 1.0;
  /// Transferring one tuple through an activation queue (send + receive).
  double transfer_tuple = 2.0;
  /// Comparing one nested-loop pair.
  double nl_pair = 1.0;
  /// Inserting one tuple into an on-the-fly index / hash table.
  double index_build_tuple = 4.0;
  /// Probing an index / hash table once.
  double index_probe = 4.0;
  /// Materializing one result tuple.
  double store_tuple = 2.0;
};

/// Work estimates for one plan node, derived by its OperatorLogic. All in
/// CostModel units. The compiler of the paper produces these statically
/// ("based on the complexity of the query, as estimated by the compiler");
/// here each operator derives them from catalog statistics (fragment
/// cardinalities).
struct NodeEstimate {
  /// Estimated total sequential work of the node.
  double total_work = 0.0;
  /// Estimated number of activations the node will process (fragments for
  /// triggered nodes, tuples for pipelined nodes).
  double activations = 0.0;
  /// Estimated tuples emitted downstream.
  double output_tuples = 0.0;
  /// Per-instance work estimates (the LPT ordering key; static information
  /// on fragment sizes, per Section 4.1).
  std::vector<double> per_instance_work;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_COST_MODEL_H_

#ifndef DBS3_ENGINE_BLOCKING_OPERATORS_H_
#define DBS3_ENGINE_BLOCKING_OPERATORS_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/operator_logic.h"
#include "engine/operators.h"
#include "storage/relation.h"
#include "storage/temp_index.h"

namespace dbs3 {

/// Aggregate kinds supported by GroupByLogic.
enum class AggKind { kCount, kSum, kMin, kMax };

const char* AggKindName(AggKind kind);

/// One aggregate column specification: `kind` over input column `column`
/// (column is ignored for kCount).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  size_t column = 0;
};

/// Pipelined hash group-by: data activations accumulate into per-instance
/// hash tables; OnFinish emits one tuple per group —
/// [group_key, agg_0, agg_1, ...].
///
/// Grouping is local to each instance: correct global groups require the
/// input to be partitioned (or repartitioned by a kByColumn edge) on the
/// grouping column, the same co-location argument as IdealJoin.
class GroupByLogic : public OperatorLogic {
 public:
  GroupByLogic(size_t group_column, std::vector<AggSpec> aggregates);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked accumulate: takes the instance lock once per activation.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  void OnFinish(size_t instance, Emitter* out) override;
  std::string name() const override { return "group-by"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  struct GroupState {
    int64_t count = 0;
    std::vector<int64_t> values;  ///< One accumulator per aggregate.
    std::vector<bool> seen;       ///< Min/max initialization flags.
  };
  struct InstanceState {
    Mutex mu{"GroupByLogic::instance_mu"};
    std::map<Value, GroupState> groups GUARDED_BY(mu);
  };

  /// Folds one tuple into `state`; the caller must hold state.mu (a
  /// compiler-checked contract under -Wthread-safety).
  void AccumulateLocked(InstanceState& state, const Tuple& tuple)
      REQUIRES(state.mu);

  size_t group_column_;
  std::vector<AggSpec> aggregates_;
  std::vector<std::unique_ptr<InstanceState>> instances_;
};

/// Sort direction for SortLogic.
enum class SortOrder { kAscending, kDescending };

/// Pipelined sort: gathers its input per instance and emits it ordered by
/// `column` at OnFinish. Each instance's output is locally sorted (the
/// partitioned-parallel sort of a fragmented relation; a global order
/// additionally needs range partitioning upstream).
class SortLogic : public OperatorLogic {
 public:
  SortLogic(size_t column, SortOrder order = SortOrder::kAscending);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  void OnFinish(size_t instance, Emitter* out) override;
  std::string name() const override { return "sort"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  struct InstanceState {
    Mutex mu{"SortLogic::instance_mu"};
    std::vector<Tuple> rows GUARDED_BY(mu);
  };

  size_t column_;
  SortOrder order_;
  std::vector<std::unique_ptr<InstanceState>> instances_;
};

/// Pipelined semi-join (or anti-join): emits the probe tuple iff the inner
/// fragment of the receiving instance contains (semi) / lacks (anti) a
/// matching key. The existential form of the AssocJoin probe.
class PipelinedSemiJoinLogic : public OperatorLogic {
 public:
  /// `vectorize` enables the batched prefetching existence probe for large
  /// data activations (single-tuple activations always take the row path).
  PipelinedSemiJoinLogic(const Relation* inner, size_t inner_column,
                         size_t probe_column, bool anti = false,
                         bool vectorize = true);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked probe: hashes the whole probe-key column up front and resolves
  /// every key's existence with one batched, prefetching index probe.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return anti_ ? "anti-join" : "semi-join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const TempIndex* IndexFor(size_t instance);

  const Relation* inner_;
  size_t inner_column_;
  size_t probe_column_;
  bool anti_;
  bool vectorize_;
  std::vector<std::unique_ptr<std::once_flag>> index_once_;
  std::vector<std::unique_ptr<TempIndex>> indexes_;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_BLOCKING_OPERATORS_H_

#ifndef DBS3_ENGINE_BLOCKING_OPERATORS_H_
#define DBS3_ENGINE_BLOCKING_OPERATORS_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/operator_logic.h"
#include "engine/operators.h"
#include "storage/relation.h"
#include "storage/spill.h"
#include "storage/temp_index.h"

namespace dbs3 {

/// Aggregate kinds supported by GroupByLogic.
enum class AggKind { kCount, kSum, kMin, kMax };

const char* AggKindName(AggKind kind);

/// One aggregate column specification: `kind` over input column `column`
/// (column is ignored for kCount).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  size_t column = 0;
};

/// Pipelined hash group-by: data activations accumulate into per-instance
/// hash tables; OnFinish emits one tuple per group —
/// [group_key, agg_0, agg_1, ...].
///
/// A min/max aggregate whose column never held an int for a group emits the
/// empty string (Value ranks every string above every int, so the sentinel
/// cannot collide with a real extremum); sum and count emit 0 as before.
///
/// Grouping is local to each instance: correct global groups require the
/// input to be partitioned (or repartitioned by a kByColumn edge) on the
/// grouping column, the same co-location argument as IdealJoin.
///
/// When BindExecution supplies a bounded MemoryQuota, each resident group
/// costs one unit. A failed charge spills the instance's table as *partial
/// aggregate* rows — [key, count, (acc, seen)*] — hash-partitioned across
/// temp files, and accumulation restarts empty (two-phase aggregation's
/// local phase, made adaptive). OnFinish re-aggregates each partition under
/// the same quota, recursively splitting partitions that still do not fit;
/// merging only ever shrinks a partition, so the recursion terminates (a
/// residual force-charge at the cap keeps progress under adversarial skew).
class GroupByLogic : public OperatorLogic {
 public:
  GroupByLogic(size_t group_column, std::vector<AggSpec> aggregates);
  ~GroupByLogic() override;

  void BindExecution(const ExecResources& resources) override;
  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked accumulate: takes the instance lock once per activation.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  void OnFinish(size_t instance, Emitter* out) override;
  Status error() const override;
  std::string name() const override { return "group-by"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  /// Spill fanout and the re-aggregation recursion cap. Level L splits with
  /// a different hash salt than level L-1, so a partition that collided at
  /// one level spreads at the next.
  static constexpr size_t kSpillFanout = 8;
  static constexpr size_t kMaxMergeLevels = 6;

  struct GroupState {
    int64_t count = 0;
    std::vector<int64_t> values;  ///< One accumulator per aggregate.
    std::vector<bool> seen;       ///< Min/max initialization flags.
  };
  struct InstanceState {
    Mutex mu{"GroupByLogic::instance_mu"};
    std::map<Value, GroupState> groups GUARDED_BY(mu);
    /// Partial-aggregate partitions, keyed by level-0 hash. Entries are
    /// created on the first spill; null means the partition never spilled.
    std::vector<std::unique_ptr<SpillFile>> spill_files GUARDED_BY(mu);
    uint64_t charged GUARDED_BY(mu) = 0;  ///< Quota units held by `groups`.
    Status error GUARDED_BY(mu);
  };

  size_t PartitionOf(const Value& key, size_t level) const;

  /// Folds one tuple into `state`; the caller must hold state.mu (a
  /// compiler-checked contract under -Wthread-safety).
  void AccumulateLocked(InstanceState& state, const Tuple& tuple)
      REQUIRES(state.mu);

  /// Reserves one quota unit for a new group, spilling the table when the
  /// budget is exhausted. Returns false only on spill IO failure (recorded
  /// in state.error).
  bool ChargeNewGroupLocked(InstanceState& state) REQUIRES(state.mu);

  /// Writes every resident group as a partial-aggregate row into the
  /// instance's partition files, clears the table and releases its units.
  Status SpillGroupsLocked(InstanceState& state) REQUIRES(state.mu);

  /// Encodes `group` as a partial row; EmitGroup's spill-side counterpart.
  Tuple EncodePartial(const Value& key, const GroupState& group) const;
  /// Folds a partial row into `group` (the merge of two-phase aggregation).
  void MergePartial(const Tuple& row, GroupState* group) const;
  /// Emits the final [key, agg...] row, applying the min/max sentinel.
  void EmitGroup(size_t instance, const Value& key, const GroupState& group,
                 Emitter* out) const;

  /// Re-aggregates one spilled partition file under the quota, recursively
  /// splitting at `level` when the merged table overflows.
  Status MergeSpilledFile(size_t instance, SpillFile* file, size_t level,
                          Emitter* out);

  /// Publishes counter growth since the last publish (sequential OnFinish).
  void PublishMetrics();

  size_t group_column_;
  std::vector<AggSpec> aggregates_;
  ExecResources resources_;
  SpillCounters counters_;
  std::atomic<uint64_t> spill_events_{0};
  std::atomic<uint64_t> merge_recursions_{0};
  uint64_t published_bytes_written_ = 0;
  uint64_t published_bytes_read_ = 0;
  uint64_t published_spill_events_ = 0;
  uint64_t published_recursions_ = 0;
  std::vector<std::unique_ptr<InstanceState>> instances_;
};

/// Sort direction for SortLogic.
enum class SortOrder { kAscending, kDescending };

/// Pipelined sort: gathers its input per instance and emits it ordered by
/// `column` at OnFinish. Each instance's output is locally sorted (the
/// partitioned-parallel sort of a fragmented relation; a global order
/// additionally needs range partitioning upstream).
///
/// Buffered rows are charged against a bound MemoryQuota one unit apiece.
/// Sort has no spill path (no ESQL surface reaches it today): exceeding the
/// budget fails the query with kResourceExhausted instead of silently
/// blowing past the declaration — fail-fast is the documented behavior.
class SortLogic : public OperatorLogic {
 public:
  SortLogic(size_t column, SortOrder order = SortOrder::kAscending);
  ~SortLogic() override;

  void BindExecution(const ExecResources& resources) override;
  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  void OnFinish(size_t instance, Emitter* out) override;
  Status error() const override;
  std::string name() const override { return "sort"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  struct InstanceState {
    Mutex mu{"SortLogic::instance_mu"};
    std::vector<Tuple> rows GUARDED_BY(mu);
    uint64_t charged GUARDED_BY(mu) = 0;
    Status error GUARDED_BY(mu);
  };

  size_t column_;
  SortOrder order_;
  ExecResources resources_;
  std::vector<std::unique_ptr<InstanceState>> instances_;
};

/// Pipelined semi-join (or anti-join): emits the probe tuple iff the inner
/// fragment of the receiving instance contains (semi) / lacks (anti) a
/// matching key. The existential form of the AssocJoin probe.
class PipelinedSemiJoinLogic : public OperatorLogic {
 public:
  /// `vectorize` enables the batched prefetching existence probe for large
  /// data activations (single-tuple activations always take the row path).
  PipelinedSemiJoinLogic(const Relation* inner, size_t inner_column,
                         size_t probe_column, bool anti = false,
                         bool vectorize = true);

  Status Prepare(size_t num_instances) override;
  void OnData(size_t instance, Tuple tuple, Emitter* out) override;
  /// Chunked probe: hashes the whole probe-key column up front and resolves
  /// every key's existence with one batched, prefetching index probe.
  void OnDataBatch(size_t instance, std::span<Tuple> tuples,
                   Emitter* out) override;
  std::string name() const override { return anti_ ? "anti-join" : "semi-join"; }
  NodeEstimate Estimate(const CostModel& cost_model,
                        double input_tuples) const override;

 private:
  const TempIndex* IndexFor(size_t instance);

  const Relation* inner_;
  size_t inner_column_;
  size_t probe_column_;
  bool anti_;
  bool vectorize_;
  std::vector<std::unique_ptr<std::once_flag>> index_once_;
  std::vector<std::unique_ptr<TempIndex>> indexes_;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_BLOCKING_OPERATORS_H_

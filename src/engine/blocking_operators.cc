#include "engine/blocking_operators.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/arena.h"
#include "common/hash.h"
#include "common/memory_quota.h"
#include "common/metrics.h"
#include "engine/vector/column_batch.h"
#include "engine/vector/kernels.h"

namespace dbs3 {

namespace {

/// Group-by's spill-partition salt; distinct from the join's so co-planned
/// operators never correlate their partition placement.
constexpr uint64_t kGroupSpillSalt = 0x6a09e667f3bcc909ull;

}  // namespace

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "unknown";
}

// ---------------------------------------------------------------- GroupBy

GroupByLogic::GroupByLogic(size_t group_column,
                           std::vector<AggSpec> aggregates)
    : group_column_(group_column), aggregates_(std::move(aggregates)) {}

GroupByLogic::~GroupByLogic() {
  // A cancelled run skips OnFinish; the quota outlives the logics by
  // contract, so leftover charges are returned here.
  if (resources_.quota == nullptr) return;
  for (const auto& state : instances_) {
    MutexLock lock(&state->mu);
    resources_.quota->Release(state->charged);
    state->charged = 0;
  }
}

void GroupByLogic::BindExecution(const ExecResources& resources) {
  resources_ = resources;
}

Status GroupByLogic::Prepare(size_t num_instances) {
  if (resources_.quota != nullptr) {
    for (const auto& state : instances_) {
      MutexLock lock(&state->mu);
      resources_.quota->Release(state->charged);
      state->charged = 0;
    }
  }
  instances_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.push_back(std::make_unique<InstanceState>());
  }
  return Status::OK();
}

Status GroupByLogic::error() const {
  for (const auto& state : instances_) {
    MutexLock lock(&state->mu);
    if (!state->error.ok()) return state->error;
  }
  return Status::OK();
}

size_t GroupByLogic::PartitionOf(const Value& key, size_t level) const {
  const uint64_t salt =
      kGroupSpillSalt + static_cast<uint64_t>(level) * 0x9e3779b97f4a7c15ull;
  return static_cast<size_t>(HashInt64(HashCombine(key.Hash(), salt)) %
                             kSpillFanout);
}

void GroupByLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  AccumulateLocked(state, tuple);
}

void GroupByLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                               Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  for (const Tuple& t : tuples) AccumulateLocked(state, t);
}

bool GroupByLogic::ChargeNewGroupLocked(InstanceState& state) {
  MemoryQuota* quota = resources_.quota;
  if (quota == nullptr) return true;
  if (!quota->TryCharge(1)) {
    const Status spilled = SpillGroupsLocked(state);
    if (!spilled.ok()) {
      if (state.error.ok()) state.error = spilled;
      return false;
    }
    // The table is empty now; a second failure means other operators hold
    // the whole budget. One forced unit keeps this instance progressing
    // (bounded overshoot: at most one group per instance at a time).
    if (!quota->TryCharge(1)) quota->ForceCharge(1);
  }
  ++state.charged;
  return true;
}

Status GroupByLogic::SpillGroupsLocked(InstanceState& state) {
  if (state.groups.empty()) return Status::OK();
  if (state.spill_files.empty()) state.spill_files.resize(kSpillFanout);
  for (const auto& [key, group] : state.groups) {
    const size_t p = PartitionOf(key, 0);
    if (state.spill_files[p] == nullptr) {
      DBS3_ASSIGN_OR_RETURN(state.spill_files[p],
                            SpillFile::Create(&counters_));
    }
    DBS3_RETURN_IF_ERROR(
        state.spill_files[p]->Append(EncodePartial(key, group)));
  }
  state.groups.clear();
  if (resources_.quota != nullptr) resources_.quota->Release(state.charged);
  state.charged = 0;
  spill_events_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Tuple GroupByLogic::EncodePartial(const Value& key,
                                  const GroupState& group) const {
  // [key, count, (accumulator, seen)*] — mergeable by MergePartial, which
  // makes re-aggregation associative across any spill/split order.
  std::vector<Value> values;
  values.reserve(2 + 2 * aggregates_.size());
  values.push_back(key);
  values.emplace_back(group.count);
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    values.emplace_back(a < group.values.size() ? group.values[a] : 0);
    values.emplace_back(
        static_cast<int64_t>(a < group.seen.size() && group.seen[a] ? 1 : 0));
  }
  return Tuple(std::move(values));
}

void GroupByLogic::MergePartial(const Tuple& row, GroupState* group) const {
  if (group->values.empty()) {
    group->values.assign(aggregates_.size(), 0);
    group->seen.assign(aggregates_.size(), false);
  }
  group->count += row.at(1).AsInt();
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const int64_t acc = row.at(2 + 2 * a).AsInt();
    const bool seen = row.at(3 + 2 * a).AsInt() != 0;
    switch (aggregates_[a].kind) {
      case AggKind::kCount:
      case AggKind::kSum:
        group->values[a] += acc;
        break;
      case AggKind::kMin:
        if (seen) {
          group->values[a] =
              group->seen[a] ? std::min(group->values[a], acc) : acc;
          group->seen[a] = true;
        }
        break;
      case AggKind::kMax:
        if (seen) {
          group->values[a] =
              group->seen[a] ? std::max(group->values[a], acc) : acc;
          group->seen[a] = true;
        }
        break;
    }
  }
}

void GroupByLogic::EmitGroup(size_t instance, const Value& key,
                             const GroupState& group, Emitter* out) const {
  std::vector<Value> values;
  values.reserve(1 + aggregates_.size());
  values.push_back(key);
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const AggKind kind = aggregates_[a].kind;
    const bool extremum = kind == AggKind::kMin || kind == AggKind::kMax;
    if (extremum && (a >= group.seen.size() || !group.seen[a])) {
      // No int ever reached this min/max: the empty string, which Value's
      // total order places above every int, so it cannot shadow a real
      // extremum (previously this emitted a spurious 0).
      values.emplace_back(std::string());
    } else {
      values.emplace_back(a < group.values.size() ? group.values[a] : 0);
    }
  }
  out->Emit(instance, Tuple(std::move(values)));
}

void GroupByLogic::AccumulateLocked(InstanceState& state,
                                    const Tuple& tuple) {
  if (!state.error.ok()) return;  // Failed instance: stop accumulating.
  auto it = state.groups.find(tuple.at(group_column_));
  if (it == state.groups.end()) {
    if (!ChargeNewGroupLocked(state)) return;
    it = state.groups.emplace(tuple.at(group_column_), GroupState{}).first;
  }
  GroupState& group = it->second;
  if (group.values.empty()) {
    group.values.assign(aggregates_.size(), 0);
    group.seen.assign(aggregates_.size(), false);
  }
  ++group.count;
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const AggSpec& spec = aggregates_[a];
    if (spec.kind == AggKind::kCount) {
      ++group.values[a];
      continue;
    }
    const Value& v = tuple.at(spec.column);
    if (!v.is_int()) continue;  // Numeric aggregates skip string cells.
    const int64_t x = v.AsInt();
    switch (spec.kind) {
      case AggKind::kSum:
        group.values[a] += x;
        break;
      case AggKind::kMin:
        group.values[a] = group.seen[a] ? std::min(group.values[a], x) : x;
        break;
      case AggKind::kMax:
        group.values[a] = group.seen[a] ? std::max(group.values[a], x) : x;
        break;
      case AggKind::kCount:
        break;
    }
    group.seen[a] = true;
  }
}

void GroupByLogic::OnFinish(size_t instance, Emitter* out) {
  InstanceState& state = *instances_[instance];
  // Take ownership of the instance's table / partition files under the
  // lock, then emit without it: Emit can block on downstream back-pressure
  // and holding an instance mutex there is the engine's canonical deadlock
  // shape (dbs3-no-lock-across-emit). OnFinish runs sequentially
  // post-drain, but the invariant is enforced uniformly.
  std::map<Value, GroupState> groups;
  std::vector<std::unique_ptr<SpillFile>> files;
  uint64_t charged = 0;
  Status status;
  {
    MutexLock lock(&state.mu);
    bool spilled = false;
    for (const auto& file : state.spill_files) {
      if (file != nullptr) spilled = true;
    }
    if (spilled) {
      // Flush the residual table so each partition file holds *all*
      // partial rows of its keys; the unlocked merge below re-aggregates
      // partition by partition (global phase of two-phase aggregation).
      // SpillGroupsLocked releases the flushed table's units itself.
      status = SpillGroupsLocked(state);
      files.swap(state.spill_files);
    } else {
      // Pure in-memory fast path: emit straight out of the (moved) table.
      groups.swap(state.groups);
      charged = state.charged;
      state.charged = 0;
    }
    state.groups.clear();
    state.spill_files.clear();
  }
  if (status.ok()) {
    for (const auto& [key, group] : groups) {
      EmitGroup(instance, key, group, out);
    }
    for (auto& file : files) {
      if (file == nullptr) continue;
      if (resources_.cancel.ShouldStop()) break;
      status = MergeSpilledFile(instance, file.get(), 1, out);
      file.reset();
      if (!status.ok()) break;
    }
  }
  groups.clear();
  if (resources_.quota != nullptr) resources_.quota->Release(charged);
  if (!status.ok()) {
    MutexLock lock(&state.mu);
    if (state.error.ok()) state.error = status;
  }
  PublishMetrics();
}

Status GroupByLogic::MergeSpilledFile(size_t instance, SpillFile* file,
                                      size_t level, Emitter* out) {
  MemoryQuota* quota = resources_.quota;
  DBS3_RETURN_IF_ERROR(file->Rewind());
  std::map<Value, GroupState> merged;
  // The guard owns the merged table's units; every error return in the
  // chunk loop below releases them on unwind (the previous hand-rolled
  // ledger leaked the charge across those exits — dbs3-quota-pairing).
  ChargeGuard charge(quota);
  bool overflow = false;
  std::vector<std::unique_ptr<SpillFile>> subs;

  auto route_to_sub = [&](const Tuple& row) -> Status {
    const size_t p = PartitionOf(row.at(0), level);
    if (subs[p] == nullptr) {
      DBS3_ASSIGN_OR_RETURN(subs[p], SpillFile::Create(&counters_));
    }
    return subs[p]->Append(row);
  };

  std::vector<Tuple> chunk;
  bool cancelled = false;
  while (!cancelled) {
    if (resources_.cancel.ShouldStop()) {
      cancelled = true;
      break;
    }
    DBS3_ASSIGN_OR_RETURN(const bool more, file->ReadChunk(&chunk));
    if (!more) break;
    for (const Tuple& row : chunk) {
      if (overflow) {
        DBS3_RETURN_IF_ERROR(route_to_sub(row));
        continue;
      }
      auto it = merged.find(row.at(0));
      if (it == merged.end()) {
        bool fits = charge.TryAdd(1);
        if (!fits && level >= kMaxMergeLevels) {
          // Merging a partition only ever shrinks it, so by this depth a
          // still-overflowing partition is a quota starved by the rest of
          // the plan; force the residual so the merge terminates.
          charge.ForceAdd(1);
          fits = true;
        }
        if (!fits) {
          // Switch to split mode: dump what merged so far as partial rows
          // into level-salted sub-partitions and stream the rest through.
          overflow = true;
          merge_recursions_.fetch_add(1, std::memory_order_relaxed);
          subs.resize(kSpillFanout);
          for (const auto& [key, group] : merged) {
            DBS3_RETURN_IF_ERROR(route_to_sub(EncodePartial(key, group)));
          }
          merged.clear();
          charge.ReleaseNow();
          DBS3_RETURN_IF_ERROR(route_to_sub(row));
          continue;
        }
        it = merged.emplace(row.at(0), GroupState{}).first;
      }
      MergePartial(row, &it->second);
    }
  }
  if (!overflow && !cancelled) {
    for (const auto& [key, group] : merged) {
      EmitGroup(instance, key, group, out);
    }
  }
  // Return the budget before recursing into sub-partitions (which merge
  // under the same quota).
  charge.ReleaseNow();
  if (cancelled || !overflow) return Status::OK();
  for (const auto& sub : subs) {
    if (sub == nullptr) continue;
    if (resources_.cancel.ShouldStop()) return Status::OK();
    DBS3_RETURN_IF_ERROR(MergeSpilledFile(instance, sub.get(), level + 1, out));
  }
  return Status::OK();
}

void GroupByLogic::PublishMetrics() {
  if (resources_.metrics == nullptr) return;
  const uint64_t bw = counters_.bytes_written.load(std::memory_order_relaxed);
  const uint64_t br = counters_.bytes_read.load(std::memory_order_relaxed);
  const uint64_t events = spill_events_.load(std::memory_order_relaxed);
  const uint64_t recs = merge_recursions_.load(std::memory_order_relaxed);
  resources_.metrics->counter("spill.bytes_written")
      ->Add(bw - published_bytes_written_);
  resources_.metrics->counter("spill.bytes_read")
      ->Add(br - published_bytes_read_);
  resources_.metrics->counter("spill.groupby_flushes")
      ->Add(events - published_spill_events_);
  resources_.metrics->counter("spill.recursions")
      ->Add(recs - published_recursions_);
  published_bytes_written_ = bw;
  published_bytes_read_ = br;
  published_spill_events_ = events;
  published_recursions_ = recs;
}

NodeEstimate GroupByLogic::Estimate(const CostModel& cost_model,
                                    double input_tuples) const {
  NodeEstimate e;
  e.total_work = input_tuples * cost_model.index_build_tuple;
  e.activations = input_tuples;
  // Without statistics on the grouping column, assume moderate reduction.
  e.output_tuples = input_tuples * 0.1;
  return e;
}

// ------------------------------------------------------------------- Sort

SortLogic::SortLogic(size_t column, SortOrder order)
    : column_(column), order_(order) {}

SortLogic::~SortLogic() {
  if (resources_.quota == nullptr) return;
  for (const auto& state : instances_) {
    MutexLock lock(&state->mu);
    resources_.quota->Release(state->charged);
    state->charged = 0;
  }
}

void SortLogic::BindExecution(const ExecResources& resources) {
  resources_ = resources;
}

Status SortLogic::Prepare(size_t num_instances) {
  if (resources_.quota != nullptr) {
    for (const auto& state : instances_) {
      MutexLock lock(&state->mu);
      resources_.quota->Release(state->charged);
      state->charged = 0;
    }
  }
  instances_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.push_back(std::make_unique<InstanceState>());
  }
  return Status::OK();
}

Status SortLogic::error() const {
  for (const auto& state : instances_) {
    MutexLock lock(&state->mu);
    if (!state->error.ok()) return state->error;
  }
  return Status::OK();
}

void SortLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  if (!state.error.ok()) return;  // Already over budget: drop quietly.
  if (resources_.quota != nullptr && !resources_.quota->TryCharge(1)) {
    state.error = Status::ResourceExhausted(
        "sort buffer exceeded the query's declared memory budget "
        "(sort has no spill path; raise memory_units)");
    resources_.quota->Release(state.charged);
    state.charged = 0;
    std::vector<Tuple>().swap(state.rows);
    return;
  }
  ++state.charged;
  // NOLINTNEXTLINE(dbs3-no-alloc-in-hot-path) // sort is a blocking operator: it materializes its input by design, and the unit charged above is the budget gate for this growth
  state.rows.push_back(std::move(tuple));
}

void SortLogic::OnFinish(size_t instance, Emitter* out) {
  InstanceState& state = *instances_[instance];
  // Move the buffered rows out under the lock and emit without it: Emit
  // can block on downstream back-pressure, and blocking while holding an
  // instance mutex is the engine's canonical deadlock shape
  // (dbs3-no-lock-across-emit). OnFinish runs sequentially post-drain, but
  // the invariant is enforced uniformly so the static check stays clean.
  std::vector<Tuple> rows;
  uint64_t charged = 0;
  {
    MutexLock lock(&state.mu);
    if (!state.error.ok()) return;  // Executor surfaces the error after drain.
    rows.swap(state.rows);
    charged = state.charged;
    state.charged = 0;
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     if (order_ == SortOrder::kAscending) {
                       return a.at(column_) < b.at(column_);
                     }
                     return b.at(column_) < a.at(column_);
                   });
  for (Tuple& t : rows) out->Emit(instance, std::move(t));
  rows.clear();
  if (resources_.quota != nullptr) resources_.quota->Release(charged);
}

NodeEstimate SortLogic::Estimate(const CostModel& cost_model,
                                 double input_tuples) const {
  NodeEstimate e;
  const double lg = std::max(1.0, std::log2(1.0 + input_tuples));
  e.total_work = input_tuples * lg * cost_model.scan_tuple;
  e.activations = input_tuples;
  e.output_tuples = input_tuples;
  return e;
}

// --------------------------------------------------------------- SemiJoin

PipelinedSemiJoinLogic::PipelinedSemiJoinLogic(const Relation* inner,
                                               size_t inner_column,
                                               size_t probe_column, bool anti,
                                               bool vectorize)
    : inner_(inner),
      inner_column_(inner_column),
      probe_column_(probe_column),
      anti_(anti),
      vectorize_(vectorize) {}

Status PipelinedSemiJoinLogic::Prepare(size_t num_instances) {
  if (num_instances > inner_->degree()) {
    return Status::InvalidArgument(
        "semi-join has " + std::to_string(num_instances) +
        " instances but inner relation '" + inner_->name() + "' has only " +
        std::to_string(inner_->degree()) + " fragments");
  }
  index_once_.clear();
  indexes_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    index_once_.push_back(std::make_unique<std::once_flag>());
    indexes_.push_back(nullptr);
  }
  return Status::OK();
}

const TempIndex* PipelinedSemiJoinLogic::IndexFor(size_t instance) {
  std::call_once(*index_once_[instance], [&] {
    indexes_[instance] = std::make_unique<TempIndex>(
        inner_->fragment(instance), inner_column_);
  });
  return indexes_[instance].get();
}

void PipelinedSemiJoinLogic::OnData(size_t instance, Tuple tuple,
                                    Emitter* out) {
  // Probe() materializes no match list — existence is the head of the
  // chain, found without allocating.
  const bool match =
      !IndexFor(instance)->Probe(tuple.at(probe_column_)).empty();
  if (match != anti_) out->Emit(instance, std::move(tuple));
}

void PipelinedSemiJoinLogic::OnDataBatch(size_t instance,
                                         std::span<Tuple> tuples,
                                         Emitter* out) {
  constexpr size_t kMinBatchRows = 4;
  if (!vectorize_ || tuples.size() < kMinBatchRows) {
    for (Tuple& t : tuples) OnData(instance, std::move(t), out);
    return;
  }
  // Existence only needs each key's first match: one batched, prefetching
  // probe resolves the whole chunk, then the emit loop moves out the
  // keepers in order (identical to the row loop's output).
  const TempIndex* index = IndexFor(instance);
  const size_t n = tuples.size();
  Arena& arena = ThreadLocalKernelArena();
  ScopedArena scope(&arena);
  ColumnBatch batch(std::span<const Tuple>(tuples.data(), n), &arena);
  uint32_t* first = arena.AllocateArrayOf<uint32_t>(n);
  const int64_t* int_keys =
      index->int_keyed() ? batch.Ints(probe_column_) : nullptr;
  if (int_keys != nullptr) {
    index->ProbeKeys(std::span<const int64_t>(int_keys, n), first);
  } else {
    const uint64_t* hashes = HashColumn(batch, probe_column_, &arena);
    const Value* const* keys = batch.Values(probe_column_);
    index->ProbeHashed(std::span<const uint64_t>(hashes, n), keys, first);
  }
  for (size_t i = 0; i < n; ++i) {
    const bool match = first[i] != TempIndex::kNone;
    if (match != anti_) out->Emit(instance, std::move(tuples[i]));
  }
}

NodeEstimate PipelinedSemiJoinLogic::Estimate(const CostModel& cost_model,
                                              double input_tuples) const {
  NodeEstimate e;
  const double build = static_cast<double>(inner_->cardinality()) *
                       cost_model.index_build_tuple;
  e.total_work = build + input_tuples * cost_model.index_probe;
  e.activations = input_tuples;
  e.output_tuples = input_tuples * 0.5;  // Unknown selectivity.
  return e;
}

}  // namespace dbs3

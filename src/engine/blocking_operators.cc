#include "engine/blocking_operators.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "engine/vector/column_batch.h"
#include "engine/vector/kernels.h"

namespace dbs3 {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "unknown";
}

// ---------------------------------------------------------------- GroupBy

GroupByLogic::GroupByLogic(size_t group_column,
                           std::vector<AggSpec> aggregates)
    : group_column_(group_column), aggregates_(std::move(aggregates)) {}

Status GroupByLogic::Prepare(size_t num_instances) {
  instances_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.push_back(std::make_unique<InstanceState>());
  }
  return Status::OK();
}

void GroupByLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  AccumulateLocked(state, tuple);
}

void GroupByLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                               Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  for (const Tuple& t : tuples) AccumulateLocked(state, t);
}

void GroupByLogic::AccumulateLocked(InstanceState& state,
                                    const Tuple& tuple) {
  GroupState& group = state.groups[tuple.at(group_column_)];
  if (group.values.empty()) {
    group.values.assign(aggregates_.size(), 0);
    group.seen.assign(aggregates_.size(), false);
  }
  ++group.count;
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const AggSpec& spec = aggregates_[a];
    if (spec.kind == AggKind::kCount) {
      ++group.values[a];
      continue;
    }
    const Value& v = tuple.at(spec.column);
    if (!v.is_int()) continue;  // Numeric aggregates skip string cells.
    const int64_t x = v.AsInt();
    switch (spec.kind) {
      case AggKind::kSum:
        group.values[a] += x;
        break;
      case AggKind::kMin:
        group.values[a] = group.seen[a] ? std::min(group.values[a], x) : x;
        break;
      case AggKind::kMax:
        group.values[a] = group.seen[a] ? std::max(group.values[a], x) : x;
        break;
      case AggKind::kCount:
        break;
    }
    group.seen[a] = true;
  }
}

void GroupByLogic::OnFinish(size_t instance, Emitter* out) {
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  for (const auto& [key, group] : state.groups) {
    std::vector<Value> values;
    values.reserve(1 + aggregates_.size());
    values.push_back(key);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      values.emplace_back(group.values[a]);
    }
    out->Emit(instance, Tuple(std::move(values)));
  }
  state.groups.clear();
}

NodeEstimate GroupByLogic::Estimate(const CostModel& cost_model,
                                    double input_tuples) const {
  NodeEstimate e;
  e.total_work = input_tuples * cost_model.index_build_tuple;
  e.activations = input_tuples;
  // Without statistics on the grouping column, assume moderate reduction.
  e.output_tuples = input_tuples * 0.1;
  return e;
}

// ------------------------------------------------------------------- Sort

SortLogic::SortLogic(size_t column, SortOrder order)
    : column_(column), order_(order) {}

Status SortLogic::Prepare(size_t num_instances) {
  instances_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.push_back(std::make_unique<InstanceState>());
  }
  return Status::OK();
}

void SortLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)out;
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  state.rows.push_back(std::move(tuple));
}

void SortLogic::OnFinish(size_t instance, Emitter* out) {
  InstanceState& state = *instances_[instance];
  MutexLock lock(&state.mu);
  std::stable_sort(state.rows.begin(), state.rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     if (order_ == SortOrder::kAscending) {
                       return a.at(column_) < b.at(column_);
                     }
                     return b.at(column_) < a.at(column_);
                   });
  for (Tuple& t : state.rows) out->Emit(instance, std::move(t));
  state.rows.clear();
}

NodeEstimate SortLogic::Estimate(const CostModel& cost_model,
                                 double input_tuples) const {
  NodeEstimate e;
  const double lg = std::max(1.0, std::log2(1.0 + input_tuples));
  e.total_work = input_tuples * lg * cost_model.scan_tuple;
  e.activations = input_tuples;
  e.output_tuples = input_tuples;
  return e;
}

// --------------------------------------------------------------- SemiJoin

PipelinedSemiJoinLogic::PipelinedSemiJoinLogic(const Relation* inner,
                                               size_t inner_column,
                                               size_t probe_column, bool anti,
                                               bool vectorize)
    : inner_(inner),
      inner_column_(inner_column),
      probe_column_(probe_column),
      anti_(anti),
      vectorize_(vectorize) {}

Status PipelinedSemiJoinLogic::Prepare(size_t num_instances) {
  if (num_instances > inner_->degree()) {
    return Status::InvalidArgument(
        "semi-join has " + std::to_string(num_instances) +
        " instances but inner relation '" + inner_->name() + "' has only " +
        std::to_string(inner_->degree()) + " fragments");
  }
  index_once_.clear();
  indexes_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    index_once_.push_back(std::make_unique<std::once_flag>());
    indexes_.push_back(nullptr);
  }
  return Status::OK();
}

const TempIndex* PipelinedSemiJoinLogic::IndexFor(size_t instance) {
  std::call_once(*index_once_[instance], [&] {
    indexes_[instance] = std::make_unique<TempIndex>(
        inner_->fragment(instance), inner_column_);
  });
  return indexes_[instance].get();
}

void PipelinedSemiJoinLogic::OnData(size_t instance, Tuple tuple,
                                    Emitter* out) {
  // Probe() materializes no match list — existence is the head of the
  // chain, found without allocating.
  const bool match =
      !IndexFor(instance)->Probe(tuple.at(probe_column_)).empty();
  if (match != anti_) out->Emit(instance, std::move(tuple));
}

void PipelinedSemiJoinLogic::OnDataBatch(size_t instance,
                                         std::span<Tuple> tuples,
                                         Emitter* out) {
  constexpr size_t kMinBatchRows = 4;
  if (!vectorize_ || tuples.size() < kMinBatchRows) {
    for (Tuple& t : tuples) OnData(instance, std::move(t), out);
    return;
  }
  // Existence only needs each key's first match: one batched, prefetching
  // probe resolves the whole chunk, then the emit loop moves out the
  // keepers in order (identical to the row loop's output).
  const TempIndex* index = IndexFor(instance);
  const size_t n = tuples.size();
  Arena& arena = ThreadLocalKernelArena();
  ScopedArena scope(&arena);
  ColumnBatch batch(std::span<const Tuple>(tuples.data(), n), &arena);
  uint32_t* first = arena.AllocateArrayOf<uint32_t>(n);
  const int64_t* int_keys =
      index->int_keyed() ? batch.Ints(probe_column_) : nullptr;
  if (int_keys != nullptr) {
    index->ProbeKeys(std::span<const int64_t>(int_keys, n), first);
  } else {
    const uint64_t* hashes = HashColumn(batch, probe_column_, &arena);
    const Value* const* keys = batch.Values(probe_column_);
    index->ProbeHashed(std::span<const uint64_t>(hashes, n), keys, first);
  }
  for (size_t i = 0; i < n; ++i) {
    const bool match = first[i] != TempIndex::kNone;
    if (match != anti_) out->Emit(instance, std::move(tuples[i]));
  }
}

NodeEstimate PipelinedSemiJoinLogic::Estimate(const CostModel& cost_model,
                                              double input_tuples) const {
  NodeEstimate e;
  const double build = static_cast<double>(inner_->cardinality()) *
                       cost_model.index_build_tuple;
  e.total_work = build + input_tuples * cost_model.index_probe;
  e.activations = input_tuples;
  e.output_tuples = input_tuples * 0.5;  // Unknown selectivity.
  return e;
}

}  // namespace dbs3

#ifndef DBS3_ENGINE_REBALANCE_H_
#define DBS3_ENGINE_REBALANCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbs3 {

/// Live load of one operation of a running plan, as sampled by the
/// steady-state rebalancer (engine-side view of the server's
/// PoolLoadBoard).
struct OpLoad {
  std::string name;
  size_t instances = 0;
  /// Worker loops currently consuming (parked claims excluded).
  size_t active_workers = 0;
  /// Queued tuple units, clamped at 0 (pending can be transiently
  /// negative during producer/consumer races).
  uint64_t pending_units = 0;
  /// All producers done and queues drained: the remaining workers are
  /// exiting on their own and are not worth parking.
  bool drained = false;
};

/// A running execution as the rebalancer sees it: a malleable job whose
/// worker count can shrink (cooperative parks at activation boundaries)
/// or grow (extra workers dispatched into its hottest operation)
/// mid-query. Implemented by the executor over the plan's Operations;
/// every method is safe to call concurrently with the execution itself.
class MalleableExecution {
 public:
  virtual ~MalleableExecution() = default;

  /// Snapshot of per-operation load (advisory; lock-free reads).
  virtual std::vector<OpLoad> SampleLoad() = 0;

  /// Asks up to `n` surplus workers to park at their next activation
  /// boundary and return their threads to the pool. Returns how many were
  /// actually requested — every operation always keeps at least one
  /// worker, so the deliverable count can be smaller than `n`.
  virtual size_t RequestPark(size_t n) = 0;

  /// Dispatches one extra worker into the hottest (most queued work)
  /// operation. The caller must already hold a pool thread slot for it;
  /// false = no operation could accept (all drained or at capacity), and
  /// the caller returns the slot.
  virtual bool TryGrantWorker() = 0;
};

/// What the steady-state rebalancer did to one execution over its
/// lifetime. `active` distinguishes "registered on a board" from the
/// static paths (no board, or private-thread fallback), because the two
/// settle their pool-slot accounting differently: a board-registered
/// execution credits one slot back per worker exit, a static one releases
/// its whole reservation at the end.
struct RebalanceTotals {
  bool active = false;
  /// Extra workers granted into the execution mid-query.
  size_t granted = 0;
  /// Workers parked (released back to the pool before their natural
  /// drain).
  size_t parked = 0;
};

/// Registry of running executions eligible for mid-query thread
/// reallocation. Engine-side interface only; the implementation
/// (PoolLoadBoard) lives in the server layer next to the WorkerPool it
/// rebalances. The registered MalleableExecution must stay valid until
/// Unregister returns — the board serializes in-flight grants/parks
/// against Unregister internally.
class ExecutionBoard {
 public:
  virtual ~ExecutionBoard() = default;

  /// Announces a starting execution holding `reserved` pool slots and
  /// wanting `desired` (its unclamped schedule). Returns the registration
  /// id for the other calls.
  virtual uint64_t Register(MalleableExecution* exec, size_t reserved,
                            size_t desired) = 0;

  /// Removes the execution (all its workers have exited) and returns what
  /// the rebalancer did to it.
  virtual RebalanceTotals Unregister(uint64_t id) = 0;

  /// One worker loop of execution `id` exited and its pool thread is free
  /// again — a park (`parked` = true) or a natural drain. The board
  /// credits the slot back to the pool.
  virtual void OnWorkerExit(uint64_t id, bool parked) = 0;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_REBALANCE_H_

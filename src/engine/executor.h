#ifndef DBS3_ENGINE_EXECUTOR_H_
#define DBS3_ENGINE_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "engine/operation.h"
#include "engine/plan.h"

namespace dbs3 {

/// Outcome of one plan execution on the real multithreaded engine.
struct ExecutionResult {
  /// Wall-clock seconds from thread-pool start to the exit of the last
  /// worker (includes start-up time, one of the paper's three barriers).
  double seconds = 0.0;
  /// Per-operation statistics, in plan node order.
  std::vector<OperationStats> op_stats;
};

/// Runs a Plan with real threads on the host machine.
///
/// Execution follows Section 3: every operation gets its own pool of
/// threads; triggered operations receive one control activation per
/// instance; pipelined operations consume data activations pushed by their
/// producers; an operation completes when all its producers have completed
/// and its queues have drained.
class Executor {
 public:
  Executor() = default;

  /// Executes `plan` to completion. The plan's relations are read and (for
  /// Store nodes) written. Returns timing and per-operation stats.
  Result<ExecutionResult> Run(Plan& plan);
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_EXECUTOR_H_

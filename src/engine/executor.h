#ifndef DBS3_ENGINE_EXECUTOR_H_
#define DBS3_ENGINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/memory_quota.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "engine/cancel.h"
#include "engine/chunk_pool.h"
#include "engine/operation.h"
#include "engine/plan.h"
#include "engine/rebalance.h"
#include "engine/thread_source.h"

namespace dbs3 {

/// How a plan execution runs: on private per-operation threads (default)
/// or on a shared ThreadSource, and under which cancel token.
struct ExecOptions {
  /// When set, every operation's workers run on this source instead of
  /// spawning private threads. The caller must reserve at least the plan's
  /// total thread count on the source (see ThreadSource::Dispatch); the
  /// server's admission controller does so before submitting.
  ThreadSource* workers = nullptr;
  /// Cooperative cancellation/deadline for the whole execution. Once it
  /// fires, remaining queued units drain into the per-operation
  /// `cancelled_units` bucket, OnFinish hooks are skipped, and the result's
  /// `completion` reports Cancelled or DeadlineExceeded.
  CancelToken cancel = CancelToken::None();
  /// When set, chunk buffers recycle through this pool instead of a
  /// per-execution one, carrying the warmed-up free list across executions
  /// (the server's QueryRuntime passes its own). The pool must outlive the
  /// call; the result's `chunk_pool` stats then report this execution's
  /// delta (approximate when executions share the pool concurrently).
  ChunkPool* chunk_pool = nullptr;
  /// When set, memory-aware operators (spilling join, group-by, sort)
  /// charge their retained tuple/group state here and spill or error when a
  /// charge fails — the enforcement half of the admission controller's
  /// declared `memory_units`. Must outlive the plan's logics (their
  /// destructors release charges a cancelled run leaves behind). nullptr =
  /// no accounting: every operator stays on its unbounded in-memory path.
  MemoryQuota* quota = nullptr;
  /// When set (pool-backed runs only), the execution registers on this
  /// board for steady-state rebalancing: the server may park surplus
  /// workers mid-run (their pool slots are credited back per exit through
  /// the board) or grant extra workers into the hottest operation. The
  /// board must outlive the call. Null = static allocation (default).
  ExecutionBoard* board = nullptr;
  /// The unclamped thread count the schedule wanted before any utilization
  /// clamp (the grant headroom the rebalancer may restore). 0 or less than
  /// the reserved count = no headroom beyond the reservation.
  size_t desired_threads = 0;
  /// Queued tuple units one worker is considered enough for when deciding
  /// how many workers an operation can give up (the rebalancer's min grant
  /// quantum).
  size_t grant_quantum = 256;
  /// When set, receives what the rebalancer did to this execution — written
  /// even when Run returns an error after the workers joined, so the caller
  /// can settle pool-slot accounting on every path.
  RebalanceTotals* rebalance_out = nullptr;
};

/// Outcome of one plan execution on the real multithreaded engine.
struct ExecutionResult {
  /// Wall-clock seconds from thread-pool start to the exit of the last
  /// worker (includes start-up time, one of the paper's three barriers).
  double seconds = 0.0;
  /// Per-operation statistics, in plan node order.
  std::vector<OperationStats> op_stats;
  /// Tuple units dropped on closed queues, summed over all operations.
  /// Always 0 for a completed well-formed plan; surfaced so data loss is
  /// never silent.
  uint64_t units_dropped = 0;
  /// Tuple units drained into the cancelled bucket across all operations
  /// (0 unless the execution's cancel token fired).
  uint64_t units_cancelled = 0;
  /// OK for a run that completed normally; Cancelled or DeadlineExceeded
  /// when the cancel token fired. The execution still drained cleanly
  /// either way — results are merely partial or withheld.
  Status completion = Status::OK();
  /// Per-execution metric snapshot: engine counters aggregated from the
  /// operations plus (when tracing was enabled) the background sampler's
  /// queue-depth series.
  MetricsSnapshot metrics;
  /// Chrome trace_event JSON of every activation span
  /// (chrome://tracing-loadable). Empty unless the plan's TraceOptions
  /// enabled tracing.
  std::string trace_json;
  /// The execution's chunk-recycling counters: in an allocation-lean steady
  /// state `chunk_pool.reused` dominates `chunk_pool.allocated` (each
  /// emitter buffer is allocated at most once and then cycles through
  /// producer -> consumer queue -> pool -> producer).
  ChunkPool::Stats chunk_pool;
  /// Steady-state rebalancing activity (0 without an ExecOptions board):
  /// extra workers granted into this execution mid-query, and workers
  /// parked (released back to the pool before their natural drain).
  uint64_t threads_granted = 0;
  uint64_t threads_parked = 0;
};

/// Runs a Plan with real threads on the host machine.
///
/// Execution follows Section 3: every operation gets its own pool of
/// threads; triggered operations receive one control activation per
/// instance; pipelined operations consume data activations pushed by their
/// producers; an operation completes when all its producers have completed
/// and its queues have drained.
class Executor {
 public:
  Executor() = default;

  /// Executes `plan` to completion. The plan's relations are read and (for
  /// Store nodes) written. Returns timing and per-operation stats.
  Result<ExecutionResult> Run(Plan& plan);

  /// As Run(plan), on shared workers and/or under a cancel token. A
  /// cancelled execution is not an error at this layer: the result carries
  /// a non-OK `completion` plus the partial stats gathered so far.
  Result<ExecutionResult> Run(Plan& plan, const ExecOptions& options);
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_EXECUTOR_H_

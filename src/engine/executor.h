#ifndef DBS3_ENGINE_EXECUTOR_H_
#define DBS3_ENGINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "engine/operation.h"
#include "engine/plan.h"

namespace dbs3 {

/// Outcome of one plan execution on the real multithreaded engine.
struct ExecutionResult {
  /// Wall-clock seconds from thread-pool start to the exit of the last
  /// worker (includes start-up time, one of the paper's three barriers).
  double seconds = 0.0;
  /// Per-operation statistics, in plan node order.
  std::vector<OperationStats> op_stats;
  /// Tuple units dropped on closed queues, summed over all operations.
  /// Always 0 for a completed well-formed plan; surfaced so data loss is
  /// never silent.
  uint64_t units_dropped = 0;
  /// Per-execution metric snapshot: engine counters aggregated from the
  /// operations plus (when tracing was enabled) the background sampler's
  /// queue-depth series.
  MetricsSnapshot metrics;
  /// Chrome trace_event JSON of every activation span
  /// (chrome://tracing-loadable). Empty unless the plan's TraceOptions
  /// enabled tracing.
  std::string trace_json;
};

/// Runs a Plan with real threads on the host machine.
///
/// Execution follows Section 3: every operation gets its own pool of
/// threads; triggered operations receive one control activation per
/// instance; pipelined operations consume data activations pushed by their
/// producers; an operation completes when all its producers have completed
/// and its queues have drained.
class Executor {
 public:
  Executor() = default;

  /// Executes `plan` to completion. The plan's relations are read and (for
  /// Store nodes) written. Returns timing and per-operation stats.
  Result<ExecutionResult> Run(Plan& plan);
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_EXECUTOR_H_

#include "engine/activation_queue.h"

namespace dbs3 {

ActivationQueue::ActivationQueue(size_t capacity) : capacity_(capacity) {}

std::unique_lock<std::mutex> ActivationQueue::Lock() const {
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

bool ActivationQueue::Push(Activation a) {
  std::unique_lock<std::mutex> lock = Lock();
  if (capacity_ > 0) {
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
  }
  if (closed_) return false;
  items_.push_back(std::move(a));
  return true;
}

size_t ActivationQueue::PopBatch(size_t max, std::vector<Activation>* out) {
  std::unique_lock<std::mutex> lock = Lock();
  size_t popped = 0;
  while (popped < max && !items_.empty()) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  if (popped > 0 && capacity_ > 0) not_full_.notify_all();
  return popped;
}

void ActivationQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
}

bool ActivationQueue::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.empty();
}

size_t ActivationQueue::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool ActivationQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dbs3

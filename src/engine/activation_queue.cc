#include "engine/activation_queue.h"

#include "engine/verify.h"

namespace dbs3 {

ActivationQueue::ActivationQueue(size_t capacity) : capacity_(capacity) {}

void ActivationQueue::CheckInvariants(bool deep) const {
#if DBS3_VERIFY_ENABLED
  if (static_cast<uint64_t>(units_) > peak_units_) {
    verify::Fail("activation queue unit counter " + std::to_string(units_) +
                 " exceeds its recorded peak " + std::to_string(peak_units_));
  }
  if (deep) {
    size_t sum = 0;
    for (const Activation& a : items_) sum += a.unit_count();
    if (sum != units_) {
      verify::Fail("activation queue unit counter " +
                   std::to_string(units_) + " does not match the " +
                   std::to_string(sum) + " units actually buffered");
    }
  }
#else
  (void)deep;
#endif
}

bool ActivationQueue::Push(Activation&& a) {
  const size_t units = a.unit_count();
  CountingMutexLock lock(&mu_, &acquisitions_, &contended_);
  if (capacity_ > 0) {
    // Wait until the whole activation fits. An activation larger than the
    // capacity itself is admitted once the queue is empty (overshooting the
    // bound once) so an oversized chunk can never deadlock the pipeline.
    while (!closed_ && units_ + units > capacity_ && !items_.empty()) {
      not_full_.Wait(&mu_);
    }
  }
  if (closed_) {
    rejected_units_ += units;
    return false;
  }
  items_.push_back(std::move(a));
  units_ += units;
  approx_units_.store(units_, std::memory_order_release);
  if (units_ > peak_units_) peak_units_ = units_;
  CheckInvariants(/*deep=*/false);
  return true;
}

size_t ActivationQueue::PopBatch(size_t max, std::vector<Activation>* out) {
  CountingMutexLock lock(&mu_, &acquisitions_, &contended_);
  size_t popped = 0;
  while (popped < max && !items_.empty()) {
    units_ -= items_.front().unit_count();
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  if (popped > 0) approx_units_.store(units_, std::memory_order_release);
  CheckInvariants(/*deep=*/false);
  if (popped > 0 && capacity_ > 0) not_full_.SignalAll();
  return popped;
}

void ActivationQueue::Close() {
  MutexLock lock(&mu_);
  closed_ = true;
  CheckInvariants(/*deep=*/true);
  not_full_.SignalAll();
}

bool ActivationQueue::Empty() const {
  MutexLock lock(&mu_);
  return items_.empty();
}

size_t ActivationQueue::Size() const {
  MutexLock lock(&mu_);
  return items_.size();
}

uint64_t ActivationQueue::peak_units() const {
  MutexLock lock(&mu_);
  return peak_units_;
}

uint64_t ActivationQueue::rejected_units() const {
  MutexLock lock(&mu_);
  return rejected_units_;
}

size_t ActivationQueue::SizeUnits() const {
  MutexLock lock(&mu_);
  return units_;
}

bool ActivationQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

}  // namespace dbs3

#include "engine/activation_queue.h"

namespace dbs3 {

ActivationQueue::ActivationQueue(size_t capacity) : capacity_(capacity) {}

std::unique_lock<std::mutex> ActivationQueue::Lock() const {
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

bool ActivationQueue::Push(Activation a) {
  const size_t units = a.unit_count();
  std::unique_lock<std::mutex> lock = Lock();
  if (capacity_ > 0) {
    // Wait until the whole activation fits. An activation larger than the
    // capacity itself is admitted once the queue is empty (overshooting the
    // bound once) so an oversized chunk can never deadlock the pipeline.
    not_full_.wait(lock, [&] {
      return closed_ || units_ + units <= capacity_ || items_.empty();
    });
  }
  if (closed_) return false;
  items_.push_back(std::move(a));
  units_ += units;
  if (units_ > peak_units_) peak_units_ = units_;
  return true;
}

size_t ActivationQueue::PopBatch(size_t max, std::vector<Activation>* out) {
  std::unique_lock<std::mutex> lock = Lock();
  size_t popped = 0;
  while (popped < max && !items_.empty()) {
    units_ -= items_.front().unit_count();
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  if (popped > 0 && capacity_ > 0) not_full_.notify_all();
  return popped;
}

void ActivationQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
}

bool ActivationQueue::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.empty();
}

size_t ActivationQueue::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

uint64_t ActivationQueue::peak_units() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_units_;
}

size_t ActivationQueue::SizeUnits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return units_;
}

bool ActivationQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace dbs3

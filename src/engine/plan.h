#ifndef DBS3_ENGINE_PLAN_H_
#define DBS3_ENGINE_PLAN_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/operation.h"
#include "engine/operator_logic.h"
#include "engine/strategy.h"
#include "storage/partitioner.h"

namespace dbs3 {

/// Whether an operation is started by one control activation per instance
/// (triggered) or fed one tuple at a time (pipelined). Section 2, Figures
/// 2 and 3.
enum class ActivationMode { kTriggered, kPipelined };

const char* ActivationModeName(ActivationMode mode);

/// Per-node scheduling knobs. Defaults are safe; the scheduler (src/sched)
/// fills them from the query's complexity estimates.
struct PlanNodeParams {
  /// Thread pool size (degree of parallelism of this operation).
  size_t threads = 1;
  Strategy strategy = Strategy::kRandom;
  /// Internal activation cache size (consumer-side batching).
  size_t cache_size = 1;
  /// Tuples per emitted data activation (producer-side batching). 1 = the
  /// paper-faithful per-tuple mode used by the figure benchmarks; larger
  /// values amortize queue synchronization over the chunk. Clamped to the
  /// consumer's queue capacity when that queue is bounded.
  size_t chunk_size = 1;
  /// Per-queue capacity in tuple units; 0 = unbounded.
  size_t queue_capacity = 0;
  /// Per-instance cost estimates (for LPT). Empty = uniform.
  std::vector<double> cost_estimates;
  /// Prefer main queues before secondary queues (ablation knob).
  bool use_main_queues = true;
};

/// One node of a Lera-par dataflow graph.
struct PlanNode {
  std::string name;
  ActivationMode mode = ActivationMode::kTriggered;
  /// Number of operation instances (one per input fragment).
  size_t instances = 1;
  std::unique_ptr<OperatorLogic> logic;

  /// Output data edge (-1 = terminal node).
  int output = -1;
  DataOutput::Route route = DataOutput::Route::kSameInstance;
  size_t route_column = 0;
  std::optional<Partitioner> route_partitioner;

  PlanNodeParams params;

  /// Node ids of data producers (derived from Connect calls).
  std::vector<size_t> producers;
};

/// A parallel execution plan: a dataflow graph of operators connected by
/// activator edges (Lera-par, Section 2). Nodes are added and wired by the
/// plan builders (src/dbs3) or directly by tests.
class Plan {
 public:
  Plan() = default;

  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  /// Adds a node and returns its id.
  size_t AddNode(std::string name, ActivationMode mode, size_t instances,
                 std::unique_ptr<OperatorLogic> logic);

  /// Wires `from`'s output to `to` with same-instance routing
  /// (producer instance i feeds consumer instance i).
  Status ConnectSameInstance(size_t from, size_t to);

  /// Wires `from`'s output to `to`, repartitioning: each emitted tuple goes
  /// to the consumer instance `partitioner.FragmentOf(tuple[column])`.
  /// `partitioner.degree()` must equal `to`'s instance count.
  Status ConnectByColumn(size_t from, size_t to, size_t column,
                         Partitioner partitioner);

  /// Scheduling knobs of a node.
  PlanNodeParams& params(size_t node) { return nodes_[node].params; }
  const PlanNodeParams& params(size_t node) const {
    return nodes_[node].params;
  }

  /// Observability knobs for executing this plan (filled from
  /// ScheduleOptions::trace by the scheduler, or set directly by
  /// tests/benches that bypass it).
  TraceOptions& trace_options() { return trace_options_; }
  const TraceOptions& trace_options() const { return trace_options_; }

  size_t num_nodes() const { return nodes_.size(); }
  const PlanNode& node(size_t i) const { return nodes_[i]; }
  PlanNode& node(size_t i) { return nodes_[i]; }

  /// Structural checks: modes vs producers, routing degrees, acyclicity,
  /// thread/instance counts.
  Status Validate() const;

  /// Node ids in topological (producer-before-consumer) order.
  Result<std::vector<size_t>> TopologicalOrder() const;

  /// Multi-line plan rendering for logs and examples.
  std::string ToString() const;

 private:
  std::vector<PlanNode> nodes_;
  TraceOptions trace_options_;
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_PLAN_H_

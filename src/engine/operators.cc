#include "engine/operators.h"

#include <algorithm>
#include <cassert>

#include "common/arena.h"
#include "engine/vector/column_batch.h"
#include "engine/vector/kernels.h"

namespace dbs3 {

namespace {

/// Data activations with at least this many tuples take the batch kernels;
/// smaller ones — chunk_size=1 in particular — stay on the row path, so the
/// paper-faithful per-tuple mode never pays batch setup.
constexpr size_t kMinBatchRows = 4;

/// Triggered operators process whole fragments; the batch path tiles them
/// so selection vectors, hash arrays, and column views stay cache-resident
/// regardless of fragment size.
constexpr size_t kFragmentTile = 1024;

/// Batched indexed join probe: hashes the probe-key column in one pass,
/// resolves every first match with the index's prefetching batch probe,
/// then walks each chain emitting probe⋈match concatenations. Probe rows
/// are processed in order and chains are ascending, so output order matches
/// the per-row loop exactly. Scratch lives in the per-thread arena.
void BatchProbeJoin(const TempIndex& index, std::span<const Tuple> probe,
                    size_t probe_column, const std::vector<Tuple>& inner,
                    size_t instance, Emitter* out) {
  Arena& arena = ThreadLocalKernelArena();
  for (size_t base = 0; base < probe.size(); base += kFragmentTile) {
    const size_t count = std::min(kFragmentTile, probe.size() - base);
    ScopedArena scope(&arena);
    ColumnBatch batch(probe.subspan(base, count), &arena);
    uint32_t* first = arena.AllocateArrayOf<uint32_t>(count);
    const int64_t* int_keys =
        index.int_keyed() ? batch.Ints(probe_column) : nullptr;
    if (int_keys != nullptr) {
      // Int keys both sides: the gathered column doubles as the probe
      // keys, bucket indexes are computed inside the probe (no hash
      // array), and every confirm is a flat compare against the index's
      // inline key cache.
      index.ProbeKeys(std::span<const int64_t>(int_keys, count), first);
      for (size_t i = 0; i < count; ++i) {
        for (uint32_t pos = first[i]; pos != TempIndex::kNone;
             pos = index.NextMatchAfter(pos, int_keys[i])) {
          out->EmitConcat(instance, probe[base + i], inner[pos]);
        }
      }
      continue;
    }
    const uint64_t* hashes = HashColumn(batch, probe_column, &arena);
    const Value* const* keys = batch.Values(probe_column);
    index.ProbeHashed(std::span<const uint64_t>(hashes, count), keys, first);
    for (size_t i = 0; i < count; ++i) {
      for (uint32_t pos = first[i]; pos != TempIndex::kNone;
           pos = index.NextMatchAfter(pos, hashes[i], *keys[i])) {
        out->EmitConcat(instance, probe[base + i], inner[pos]);
      }
    }
  }
}

}  // namespace

Predicate::Predicate(PredExpr e)
    : row([expr = e](const Tuple& t) { return expr.EvalRow(t); }),
      expr(std::move(e)) {}

Predicate ColumnEquals(size_t column, Value value) {
  const uint32_t col = static_cast<uint32_t>(column);
  if (value.is_int()) return PredExpr::IntEquals(col, value.AsInt());
  return PredExpr::StringEquals(col, value.AsString());
}

Predicate ColumnBetween(size_t column, int64_t lo, int64_t hi) {
  return PredExpr::IntBetween(static_cast<uint32_t>(column), lo, hi);
}

Predicate MatchAll() { return PredExpr::All(); }

const char* JoinAlgorithmName(JoinAlgorithm a) {
  switch (a) {
    case JoinAlgorithm::kNestedLoop:
      return "nested-loop";
    case JoinAlgorithm::kHash:
      return "hash";
    case JoinAlgorithm::kTempIndex:
      return "temp-index";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Filter

FilterLogic::FilterLogic(const Relation* input, Predicate predicate,
                         double selectivity, bool vectorize)
    : input_(input),
      predicate_(std::move(predicate)),
      selectivity_(selectivity),
      vectorize_(vectorize) {}

NodeEstimate FilterLogic::Estimate(const CostModel& cost_model,
                                   double input_tuples) const {
  (void)input_tuples;  // Triggered: no data activations.
  NodeEstimate e;
  const std::vector<uint64_t> cards = input_->FragmentCardinalities();
  e.per_instance_work.reserve(cards.size());
  for (uint64_t c : cards) {
    const double w = static_cast<double>(c) * cost_model.scan_tuple;
    e.per_instance_work.push_back(w);
    e.total_work += w;
  }
  e.activations = static_cast<double>(cards.size());
  e.output_tuples =
      static_cast<double>(input_->cardinality()) * selectivity_;
  return e;
}

Status FilterLogic::Prepare(size_t num_instances) {
  if (num_instances > input_->degree()) {
    return Status::InvalidArgument(
        "filter has " + std::to_string(num_instances) +
        " instances but input relation '" + input_->name() + "' has only " +
        std::to_string(input_->degree()) + " fragments");
  }
  return Status::OK();
}

void FilterLogic::OnTrigger(size_t instance, Emitter* out) {
  const std::vector<Tuple>& rows = input_->fragment(instance).tuples;
  if (vectorize_ && predicate_.expr.has_value() &&
      rows.size() >= kMinBatchRows) {
    // Batch kernel, one tile at a time: build the column view, evaluate the
    // lowered predicate into a selection vector, emit the survivors. All
    // scratch lives in the per-thread arena — zero steady-state heap
    // traffic. Tiles run in fragment order and selections are ascending, so
    // emission order matches the row loop exactly.
    const PredExpr& expr = *predicate_.expr;
    Arena& arena = ThreadLocalKernelArena();
    for (size_t base = 0; base < rows.size(); base += kFragmentTile) {
      const size_t count = std::min(kFragmentTile, rows.size() - base);
      ScopedArena scope(&arena);
      ColumnBatch batch(std::span<const Tuple>(rows.data() + base, count),
                        &arena);
      uint32_t* sel = arena.AllocateArrayOf<uint32_t>(count);
      const size_t kept = EvalPredAll(expr, batch, sel);
      for (size_t i = 0; i < kept; ++i) {
        out->EmitCopy(instance, rows[base + sel[i]]);
      }
    }
    return;
  }
  if (predicate_.expr.has_value()) {
    // Row path over a lowered predicate: switch-dispatched evaluation, no
    // std::function call per tuple.
    const PredExpr& expr = *predicate_.expr;
    for (const Tuple& t : rows) {
      if (expr.EvalRow(t)) out->EmitCopy(instance, t);
    }
    return;
  }
  const TuplePredicate& keep = predicate_.row;
  for (const Tuple& t : rows) {
    if (keep(t)) out->EmitCopy(instance, t);
  }
}

// -------------------------------------------------------------- Transmit

TransmitLogic::TransmitLogic(const Relation* input) : input_(input) {}

NodeEstimate TransmitLogic::Estimate(const CostModel& cost_model,
                                     double input_tuples) const {
  (void)input_tuples;  // Triggered: no data activations.
  NodeEstimate e;
  const std::vector<uint64_t> cards = input_->FragmentCardinalities();
  const double per_tuple = cost_model.scan_tuple + cost_model.transfer_tuple;
  e.per_instance_work.reserve(cards.size());
  for (uint64_t c : cards) {
    const double w = static_cast<double>(c) * per_tuple;
    e.per_instance_work.push_back(w);
    e.total_work += w;
  }
  e.activations = static_cast<double>(cards.size());
  e.output_tuples = static_cast<double>(input_->cardinality());
  return e;
}

Status TransmitLogic::Prepare(size_t num_instances) {
  if (num_instances > input_->degree()) {
    return Status::InvalidArgument(
        "transmit has " + std::to_string(num_instances) +
        " instances but input relation '" + input_->name() + "' has only " +
        std::to_string(input_->degree()) + " fragments");
  }
  return Status::OK();
}

void TransmitLogic::OnTrigger(size_t instance, Emitter* out) {
  const Fragment& frag = input_->fragment(instance);
  for (const Tuple& t : frag.tuples) out->EmitCopy(instance, t);
}

// -------------------------------------------------------- TriggeredJoin

TriggeredJoinLogic::TriggeredJoinLogic(const Relation* outer,
                                       size_t outer_column,
                                       const Relation* inner,
                                       size_t inner_column,
                                       JoinAlgorithm algorithm,
                                       bool vectorize)
    : outer_(outer),
      outer_column_(outer_column),
      inner_(inner),
      inner_column_(inner_column),
      algorithm_(algorithm),
      vectorize_(vectorize) {}

NodeEstimate TriggeredJoinLogic::Estimate(const CostModel& cost_model,
                                          double input_tuples) const {
  (void)input_tuples;  // Triggered: no data activations.
  NodeEstimate e;
  const std::vector<uint64_t> outer = outer_->FragmentCardinalities();
  const std::vector<uint64_t> inner = inner_->FragmentCardinalities();
  const size_t m = std::min(outer.size(), inner.size());
  e.per_instance_work.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    double w = 0.0;
    if (algorithm_ == JoinAlgorithm::kNestedLoop) {
      w = static_cast<double>(outer[i]) * static_cast<double>(inner[i]) *
          cost_model.nl_pair;
    } else {
      w = static_cast<double>(inner[i]) * cost_model.index_build_tuple +
          static_cast<double>(outer[i]) * cost_model.index_probe;
    }
    e.per_instance_work.push_back(w);
    e.total_work += w;
  }
  e.activations = static_cast<double>(m);
  // Join-cardinality estimate: one match per outer tuple (the foreign-key
  // shape of the experiment databases).
  e.output_tuples = static_cast<double>(outer_->cardinality());
  return e;
}

Status TriggeredJoinLogic::Prepare(size_t num_instances) {
  if (outer_->degree() != inner_->degree()) {
    return Status::FailedPrecondition(
        "IdealJoin requires co-partitioned operands: '" + outer_->name() +
        "' has " + std::to_string(outer_->degree()) + " fragments, '" +
        inner_->name() + "' has " + std::to_string(inner_->degree()));
  }
  if (num_instances != outer_->degree()) {
    return Status::InvalidArgument(
        "triggered join must have one instance per fragment (" +
        std::to_string(outer_->degree()) + "), got " +
        std::to_string(num_instances));
  }
  return Status::OK();
}

void TriggeredJoinLogic::OnTrigger(size_t instance, Emitter* out) {
  const Fragment& outer = outer_->fragment(instance);
  const Fragment& inner = inner_->fragment(instance);
  switch (algorithm_) {
    case JoinAlgorithm::kNestedLoop:
      for (const Tuple& r : outer.tuples) {
        const Value& key = r.at(outer_column_);
        for (const Tuple& s : inner.tuples) {
          if (s.at(inner_column_) == key) out->EmitConcat(instance, r, s);
        }
      }
      break;
    case JoinAlgorithm::kHash:
    case JoinAlgorithm::kTempIndex: {
      // Build on the fly over the inner fragment, probe with the outer.
      // Probe() walks the index's preallocated chains and EmitConcat writes
      // into a recycled output slot, so the match loop allocates nothing.
      const TempIndex index(inner, inner_column_);
      if (vectorize_ && outer.tuples.size() >= kMinBatchRows) {
        BatchProbeJoin(index, outer.tuples, outer_column_, inner.tuples,
                       instance, out);
        break;
      }
      for (const Tuple& r : outer.tuples) {
        for (uint32_t i : index.Probe(r.at(outer_column_))) {
          out->EmitConcat(instance, r, inner.tuples[i]);
        }
      }
      break;
    }
  }
}

// -------------------------------------------------------- PipelinedJoin

PipelinedJoinLogic::PipelinedJoinLogic(const Relation* inner,
                                       size_t inner_column,
                                       size_t probe_column,
                                       JoinAlgorithm algorithm,
                                       bool vectorize)
    : inner_(inner),
      inner_column_(inner_column),
      probe_column_(probe_column),
      algorithm_(algorithm),
      vectorize_(vectorize) {}

NodeEstimate PipelinedJoinLogic::Estimate(const CostModel& cost_model,
                                          double input_tuples) const {
  NodeEstimate e;
  const std::vector<uint64_t> inner = inner_->FragmentCardinalities();
  const size_t m = inner.size();
  const double probes_per_instance =
      m > 0 ? input_tuples / static_cast<double>(m) : 0.0;
  e.per_instance_work.reserve(m);
  for (uint64_t c : inner) {
    double w = 0.0;
    if (algorithm_ == JoinAlgorithm::kNestedLoop) {
      // Each probe scans the whole inner fragment.
      w = probes_per_instance * static_cast<double>(c) * cost_model.nl_pair;
    } else {
      // One-time build amortized into the instance, constant-ish probes.
      w = static_cast<double>(c) * cost_model.index_build_tuple +
          probes_per_instance * cost_model.index_probe;
    }
    e.per_instance_work.push_back(w);
    e.total_work += w;
  }
  e.activations = input_tuples;
  e.output_tuples = input_tuples;  // One match per probe (foreign-key shape).
  return e;
}

Status PipelinedJoinLogic::Prepare(size_t num_instances) {
  if (num_instances > inner_->degree()) {
    return Status::InvalidArgument(
        "pipelined join has " + std::to_string(num_instances) +
        " instances but inner relation '" + inner_->name() + "' has only " +
        std::to_string(inner_->degree()) + " fragments");
  }
  index_once_.clear();
  indexes_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    index_once_.push_back(std::make_unique<std::once_flag>());
    indexes_.push_back(nullptr);
  }
  return Status::OK();
}

const TempIndex* PipelinedJoinLogic::IndexFor(size_t instance) {
  std::call_once(*index_once_[instance], [&] {
    indexes_[instance] =
        std::make_unique<TempIndex>(inner_->fragment(instance),
                                    inner_column_);
  });
  return indexes_[instance].get();
}

void PipelinedJoinLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  OnDataBatch(instance, std::span<Tuple>(&tuple, 1), out);
}

void PipelinedJoinLogic::OnDataBatch(size_t instance,
                                     std::span<Tuple> tuples, Emitter* out) {
  // Per-activation setup hoisted out of the probe loop: the fragment
  // reference, the algorithm dispatch, and (for indexed joins) the
  // once-flag-guarded index resolution happen once per chunk.
  const Fragment& inner = inner_->fragment(instance);
  switch (algorithm_) {
    case JoinAlgorithm::kNestedLoop:
      for (const Tuple& probe : tuples) {
        const Value& key = probe.at(probe_column_);
        for (const Tuple& s : inner.tuples) {
          if (s.at(inner_column_) == key) out->EmitConcat(instance, probe, s);
        }
      }
      break;
    case JoinAlgorithm::kHash:
    case JoinAlgorithm::kTempIndex: {
      const TempIndex* index = IndexFor(instance);
      if (vectorize_ && tuples.size() >= kMinBatchRows) {
        BatchProbeJoin(*index,
                       std::span<const Tuple>(tuples.data(), tuples.size()),
                       probe_column_, inner.tuples, instance, out);
        break;
      }
      for (const Tuple& probe : tuples) {
        for (uint32_t i : index->Probe(probe.at(probe_column_))) {
          out->EmitConcat(instance, probe, inner.tuples[i]);
        }
      }
      break;
    }
  }
}

// ------------------------------------------------------------------ Store

StoreLogic::StoreLogic(Relation* result) : result_(result) {}

NodeEstimate StoreLogic::Estimate(const CostModel& cost_model,
                                  double input_tuples) const {
  NodeEstimate e;
  e.total_work = input_tuples * cost_model.store_tuple;
  e.activations = input_tuples;
  e.output_tuples = 0.0;
  return e;
}

Status StoreLogic::Prepare(size_t num_instances) {
  if (num_instances > result_->degree()) {
    return Status::InvalidArgument(
        "store has " + std::to_string(num_instances) +
        " instances but result relation '" + result_->name() + "' has only " +
        std::to_string(result_->degree()) + " fragments");
  }
  fragment_mu_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    fragment_mu_.push_back(std::make_unique<Mutex>("StoreLogic::fragment_mu"));
  }
  return Status::OK();
}

void StoreLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)out;
  MutexLock lock(fragment_mu_[instance].get());
  result_->AppendToFragment(instance, std::move(tuple));
}

void StoreLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                             Emitter* out) {
  (void)out;
  MutexLock lock(fragment_mu_[instance].get());
  for (Tuple& t : tuples) {
    result_->AppendToFragment(instance, std::move(t));
  }
}

// -------------------------------------------------------- PipelinedFilter

PipelinedFilterLogic::PipelinedFilterLogic(Predicate predicate,
                                           double selectivity, bool vectorize)
    : predicate_(std::move(predicate)),
      selectivity_(selectivity),
      vectorize_(vectorize) {}

void PipelinedFilterLogic::OnData(size_t instance, Tuple tuple,
                                  Emitter* out) {
  if (predicate_.row(tuple)) out->Emit(instance, std::move(tuple));
}

void PipelinedFilterLogic::OnDataBatch(size_t instance,
                                       std::span<Tuple> tuples,
                                       Emitter* out) {
  if (predicate_.expr.has_value()) {
    const PredExpr& expr = *predicate_.expr;
    if (vectorize_ && tuples.size() >= kMinBatchRows) {
      // Selection-vector kernel: evaluate the whole chunk column-wise, then
      // move out the survivors in order (identical to the row loop's output).
      Arena& arena = ThreadLocalKernelArena();
      ScopedArena scope(&arena);
      ColumnBatch batch(std::span<const Tuple>(tuples.data(), tuples.size()),
                        &arena);
      uint32_t* sel = arena.AllocateArrayOf<uint32_t>(tuples.size());
      const size_t kept = EvalPredAll(expr, batch, sel);
      for (size_t i = 0; i < kept; ++i) {
        out->Emit(instance, std::move(tuples[sel[i]]));
      }
      return;
    }
    for (Tuple& t : tuples) {
      if (expr.EvalRow(t)) out->Emit(instance, std::move(t));
    }
    return;
  }
  // Custom predicate: hoist the std::function binding out of the loop.
  const TuplePredicate& keep = predicate_.row;
  for (Tuple& t : tuples) {
    if (keep(t)) out->Emit(instance, std::move(t));
  }
}

NodeEstimate PipelinedFilterLogic::Estimate(const CostModel& cost_model,
                                            double input_tuples) const {
  NodeEstimate e;
  e.total_work = input_tuples * cost_model.scan_tuple;
  e.activations = input_tuples;
  e.output_tuples = input_tuples * selectivity_;
  return e;
}

// ---------------------------------------------------------------- Project

ProjectLogic::ProjectLogic(std::vector<size_t> columns)
    : columns_(std::move(columns)) {}

void ProjectLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  // EmitSelect writes the selected columns straight into a recycled output
  // slot; no output tuple is materialized here.
  out->EmitSelect(instance, tuple, columns_);
}

void ProjectLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                               Emitter* out) {
  const std::span<const size_t> columns(columns_);
  for (const Tuple& t : tuples) out->EmitSelect(instance, t, columns);
}

NodeEstimate ProjectLogic::Estimate(const CostModel& cost_model,
                                    double input_tuples) const {
  NodeEstimate e;
  e.total_work = input_tuples * cost_model.scan_tuple;
  e.activations = input_tuples;
  e.output_tuples = input_tuples;
  return e;
}

// -------------------------------------------------------------------- Map

MapLogic::MapLogic(std::function<Tuple(Tuple)> fn) : fn_(std::move(fn)) {}

MapLogic::MapLogic(std::function<void(const Tuple&, Tuple*)> fn)
    : in_place_(std::move(fn)) {}

void MapLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  if (in_place_) {
    // The scratch row keeps its value storage across calls (AssignFrom /
    // AssignConcat overwrite live slots), and EmitCopy assigns it into a
    // recycled chunk slot — steady state constructs no tuples.
    thread_local Tuple scratch;
    in_place_(tuple, &scratch);
    out->EmitCopy(instance, scratch);
    return;
  }
  out->Emit(instance, fn_(std::move(tuple)));
}

void MapLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                           Emitter* out) {
  if (in_place_) {
    thread_local Tuple scratch;
    for (const Tuple& t : tuples) {
      in_place_(t, &scratch);
      out->EmitCopy(instance, scratch);
    }
    return;
  }
  for (Tuple& t : tuples) out->Emit(instance, fn_(std::move(t)));
}

// -------------------------------------------------------------- Aggregate

AggregateLogic::AggregateLogic(std::optional<size_t> sum_column)
    : sum_column_(sum_column) {}

void AggregateLogic::OnData(size_t instance, Tuple tuple, Emitter* out) {
  (void)instance;
  (void)out;
  count_.fetch_add(1, std::memory_order_relaxed);
  if (sum_column_.has_value()) {
    const Value& v = tuple.at(*sum_column_);
    if (v.is_int()) sum_.fetch_add(v.AsInt(), std::memory_order_relaxed);
  }
}

void AggregateLogic::OnDataBatch(size_t instance, std::span<Tuple> tuples,
                                 Emitter* out) {
  (void)instance;
  (void)out;
  count_.fetch_add(tuples.size(), std::memory_order_relaxed);
  if (!sum_column_.has_value()) return;
  int64_t local = 0;
  for (const Tuple& t : tuples) {
    const Value& v = t.at(*sum_column_);
    if (v.is_int()) local += v.AsInt();
  }
  sum_.fetch_add(local, std::memory_order_relaxed);
}

}  // namespace dbs3

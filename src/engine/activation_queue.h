#ifndef DBS3_ENGINE_ACTIVATION_QUEUE_H_
#define DBS3_ENGINE_ACTIVATION_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/activation.h"

namespace dbs3 {

/// The FIFO activation queue of one operation instance (Figure 2/3 of the
/// paper; the `queue` struct of Figure 4: a buffer, a protection mutex, and
/// a NotFull condition to throttle producers).
///
/// Multiple producer threads may Push concurrently; multiple consumer
/// threads may PopBatch concurrently (the DBS3 thread pool lets *any* thread
/// of the operation consume from *any* instance queue — that is the dynamic
/// load-balancing mechanism). Consumers never block here: waiting for work
/// across all queues of the operation is the Operation's job.
///
/// Locking discipline is compiler-checked: every buffered field is
/// GUARDED_BY(mu_), so a clang `-Wthread-safety` build rejects any access
/// outside the lock.
class ActivationQueue {
 public:
  /// `capacity` bounds the buffer in *tuple units* (Activation::unit_count:
  /// a trigger is one unit, a data activation counts its tuples); 0 means
  /// unbounded. A bounded queue makes Push block while full (pipeline
  /// back-pressure). Denominating capacity in tuples keeps back-pressure
  /// meaningful under chunked data activations: a queue of 4 chunks of 64
  /// tuples holds 256 units, not 4.
  explicit ActivationQueue(size_t capacity = 0);

  ActivationQueue(const ActivationQueue&) = delete;
  ActivationQueue& operator=(const ActivationQueue&) = delete;

  /// Enqueues `a`, blocking while the queue is full. Returns false when the
  /// queue has been closed — this only happens on cancelled executions,
  /// never in a well-formed plan. On rejection `a` is left intact (only a
  /// successful push moves from it) so the caller can recycle its chunk
  /// buffer; every rejected unit is tallied (rejected_units) so the
  /// caller's drop accounting can be cross-checked by the verify layer.
  ///
  /// Oversized-chunk contract (bounded queues): an activation larger than
  /// the whole capacity is admitted once the queue is *empty* (transiently
  /// overshooting the bound) rather than deadlocking. Producers that respect
  /// the bound — the engine's emitter clamps its chunk size to the consumer
  /// capacity — never overshoot.
  bool Push(Activation&& a) EXCLUDES(mu_);

  /// Dequeues up to `max` *activations* into `out` (appended). Non-blocking;
  /// returns the number of activations dequeued. This batch dequeue is the
  /// "internal activation cache" of the paper: one mutex acquisition
  /// amortized over CacheSize activations reduces producer/consumer
  /// interference. `max` counts activations (not tuples) so the CacheSize
  /// knob keeps the paper's semantics under chunking.
  size_t PopBatch(size_t max, std::vector<Activation>* out) EXCLUDES(mu_);

  /// Marks the queue closed: pending Push calls wake and fail, future Push
  /// calls fail. Already-queued activations remain poppable.
  void Close() EXCLUDES(mu_);

  bool Empty() const EXCLUDES(mu_);
  /// Number of queued activations.
  size_t Size() const EXCLUDES(mu_);
  /// Number of queued tuple units (what `capacity` bounds).
  size_t SizeUnits() const EXCLUDES(mu_);
  /// Lock-free advisory copy of SizeUnits for hot-path scans: workers
  /// sweeping many queues skip the provably empty ones without paying a
  /// mutex acquisition each. May lag the locked counter by a concurrent
  /// push/pop; the operation's pending/work_cv protocol re-scans until the
  /// backlog drains, so a stale zero only delays a pop, never loses one.
  size_t ApproxUnits() const {
    return approx_units_.load(std::memory_order_acquire);
  }
  bool closed() const EXCLUDES(mu_);

  /// High-water mark of queued tuple units over the queue's lifetime (the
  /// buffering the pipeline actually needed, vs. the capacity configured).
  uint64_t peak_units() const EXCLUDES(mu_);

  /// Tuple units rejected by Push because the queue was closed. The pushing
  /// operation must count the same units as dropped; the verify ledger
  /// checks the two tallies against each other after every execution.
  uint64_t rejected_units() const EXCLUDES(mu_);

  /// Number of lock acquisitions that found the mutex already held
  /// (producer/consumer interference — what the main/secondary queue split
  /// and the internal activation cache exist to reduce).
  uint64_t contended_acquisitions() const { return contended_.load(); }
  /// Total lock acquisitions (Push + PopBatch attempts).
  uint64_t total_acquisitions() const { return acquisitions_.load(); }

 private:
  /// Debug-build state-machine assertions (DBS3_VERIFY): unit counter
  /// within peak, and — when `deep` — the unit counter equal to the sum
  /// over the buffered activations (O(n); only checked at Close).
  void CheckInvariants(bool deep) const REQUIRES(mu_);

  mutable Mutex mu_{"ActivationQueue::mu"};
  CondVar not_full_;
  std::deque<Activation> items_ GUARDED_BY(mu_);
  /// Sum of unit_count() over items_.
  size_t units_ GUARDED_BY(mu_) = 0;
  /// Mirror of units_, published for ApproxUnits (updated under mu_).
  std::atomic<size_t> approx_units_{0};
  /// Max value units_ ever reached.
  uint64_t peak_units_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_units_ GUARDED_BY(mu_) = 0;
  const size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
  mutable std::atomic<uint64_t> contended_{0};
  mutable std::atomic<uint64_t> acquisitions_{0};
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_ACTIVATION_QUEUE_H_

#include "engine/spill_join.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/memory_quota.h"
#include "common/metrics.h"

namespace dbs3 {

namespace {

/// Salt mixed into every spill-partition hash so the scheme is independent
/// of the plan's repartition edges (which route by the raw Value::Hash —
/// without the remix, every key one instance sees would share hash % degree
/// and partition placement would degenerate).
constexpr uint64_t kSpillSalt = 0x5b11f11e5a17u;

}  // namespace

SpillingHashJoinLogic::SpillingHashJoinLogic(const Relation* inner,
                                             size_t inner_column,
                                             size_t probe_column,
                                             SpillJoinOptions options)
    : inner_(inner),
      inner_column_(inner_column),
      probe_column_(probe_column),
      options_(options) {
  options_.fanout = std::max<size_t>(2, options_.fanout);
  options_.max_recursion = std::max<size_t>(1, options_.max_recursion);
}

SpillingHashJoinLogic::~SpillingHashJoinLogic() {
  // A cancelled run skips OnFinish; charges held by retained build rows are
  // returned here (the bound quota outlives the plan's logics by contract).
  if (resources_.quota == nullptr) return;
  for (const auto& state : instances_) {
    for (const Partition& part : state->parts) {
      resources_.quota->Release(part.charged);
    }
  }
}

void SpillingHashJoinLogic::BindExecution(const ExecResources& resources) {
  resources_ = resources;
}

Status SpillingHashJoinLogic::Prepare(size_t num_instances) {
  if (num_instances > inner_->degree()) {
    return Status::InvalidArgument(
        "spill-join has " + std::to_string(num_instances) +
        " instances but inner relation '" + inner_->name() + "' has only " +
        std::to_string(inner_->degree()) + " fragments");
  }
  if (resources_.quota != nullptr) {
    for (const auto& state : instances_) {
      for (const Partition& part : state->parts) {
        resources_.quota->Release(part.charged);
      }
    }
  }
  instances_.clear();
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.push_back(std::make_unique<InstanceState>());
  }
  return Status::OK();
}

size_t SpillingHashJoinLogic::PartitionOf(const Value& v,
                                          size_t level) const {
  const uint64_t salt =
      kSpillSalt + static_cast<uint64_t>(level) * 0x9e3779b97f4a7c15ull;
  return static_cast<size_t>(HashInt64(HashCombine(v.Hash(), salt)) %
                             options_.fanout);
}

void SpillingHashJoinLogic::RecordError(InstanceState& state, Status status) {
  if (status.ok()) return;
  MutexLock lock(&state.mu);
  if (state.error.ok()) state.error = std::move(status);
}

Status SpillingHashJoinLogic::error() const {
  for (const auto& state : instances_) {
    MutexLock lock(&state->mu);
    if (!state->error.ok()) return state->error;
  }
  return Status::OK();
}

Status SpillingHashJoinLogic::SpillPartition(Partition& part) {
  if (part.build_file == nullptr) {
    DBS3_ASSIGN_OR_RETURN(part.build_file, SpillFile::Create(&counters_));
  }
  for (const Tuple& t : part.build.tuples) {
    DBS3_RETURN_IF_ERROR(part.build_file->Append(t));
  }
  // Free the vector's capacity, not just its size — the whole point is
  // returning the memory.
  std::vector<Tuple>().swap(part.build.tuples);
  if (resources_.quota != nullptr) resources_.quota->Release(part.charged);
  part.charged = 0;
  part.spilled = true;
  partitions_spilled_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SpillingHashJoinLogic::SpillVictim(InstanceState& state,
                                          size_t current) {
  size_t victim = state.parts.size();
  size_t victim_rows = 0;
  for (size_t p = 0; p < state.parts.size(); ++p) {
    if (state.parts[p].spilled) continue;
    const size_t rows = state.parts[p].build.tuples.size();
    if (victim == state.parts.size() || rows > victim_rows) {
      victim = p;
      victim_rows = rows;
    }
  }
  // Nothing left to evict: the current partition goes straight to disk.
  if (victim == state.parts.size() || victim_rows == 0) victim = current;
  return SpillPartition(state.parts[victim]);
}

void SpillingHashJoinLogic::BuildPartitions(size_t instance) {
  InstanceState& state = *instances_[instance];
  const Fragment& fragment = inner_->fragment(instance);
  state.parts.resize(options_.fanout);
  MemoryQuota* quota = resources_.quota;
  for (const Tuple& t : fragment.tuples) {
    const size_t p = PartitionOf(t.at(inner_column_), 0);
    Partition& part = state.parts[p];
    if (!part.spilled && quota != nullptr) {
      while (!part.spilled && !quota->TryCharge(1)) {
        const Status spilled = SpillVictim(state, p);
        if (!spilled.ok()) {
          RecordError(state, spilled);
          return;
        }
      }
    }
    if (part.spilled) {
      const Status appended = part.build_file->Append(t);
      if (!appended.ok()) {
        RecordError(state, appended);
        return;
      }
    } else {
      part.build.tuples.push_back(t);
      if (quota != nullptr) ++part.charged;
    }
  }
  // Index what stayed resident. Partitions are append-complete here, so the
  // TempIndex's reference into the fragment's tuple vector is stable.
  for (Partition& part : state.parts) {
    if (!part.spilled && !part.build.tuples.empty()) {
      part.index = std::make_unique<TempIndex>(part.build, inner_column_);
    }
  }
}

void SpillingHashJoinLogic::EnsureBuilt(size_t instance) {
  InstanceState& state = *instances_[instance];
  std::call_once(state.built, [&] { BuildPartitions(instance); });
}

void SpillingHashJoinLogic::OnData(size_t instance, Tuple tuple,
                                   Emitter* out) {
  EnsureBuilt(instance);
  InstanceState& state = *instances_[instance];
  const Value& key = tuple.at(probe_column_);
  Partition& part = state.parts[PartitionOf(key, 0)];
  if (part.spilled) {
    // Deferred probe: several worker threads may drain one instance, so
    // the append takes the instance lock.
    MutexLock lock(&state.mu);
    if (part.probe_file == nullptr) {
      Result<std::unique_ptr<SpillFile>> file =
          SpillFile::Create(&counters_);
      if (!file.ok()) {
        if (state.error.ok()) state.error = file.status();
        return;
      }
      part.probe_file = std::move(file).value();
    }
    const Status appended = part.probe_file->Append(tuple);
    if (!appended.ok() && state.error.ok()) state.error = appended;
    return;
  }
  if (part.index == nullptr) return;  // Empty resident partition: no match.
  for (uint32_t i : part.index->Probe(key)) {
    out->EmitConcat(instance, tuple, part.build.tuples[i]);
  }
}

void SpillingHashJoinLogic::OnDataBatch(size_t instance,
                                        std::span<Tuple> tuples,
                                        Emitter* out) {
  EnsureBuilt(instance);
  for (Tuple& t : tuples) OnData(instance, std::move(t), out);
}

Status SpillingHashJoinLogic::StreamProbeFile(size_t instance,
                                              SpillFile* probe_file,
                                              const Fragment& build,
                                              const TempIndex& index,
                                              Emitter* out) {
  DBS3_RETURN_IF_ERROR(probe_file->Rewind());
  std::vector<Tuple> chunk;
  while (true) {
    // Per-chunk, not per-pass: a deferred probe file can hold most of the
    // relation, and cancellation latency must not scale with spill size
    // (dbs3-cancel-check-in-consume-loop).
    if (resources_.cancel.ShouldStop()) return Status::OK();
    DBS3_ASSIGN_OR_RETURN(const bool more, probe_file->ReadChunk(&chunk));
    if (!more) return Status::OK();
    for (const Tuple& probe : chunk) {
      for (uint32_t i : index.Probe(probe.at(probe_column_))) {
        out->EmitConcat(instance, probe, build.tuples[i]);
      }
    }
  }
}

Status SpillingHashJoinLogic::ProcessSpilledPair(size_t instance,
                                                 SpillFile* build_file,
                                                 SpillFile* probe_file,
                                                 size_t level, Emitter* out) {
  if (resources_.cancel.ShouldStop()) return Status::OK();
  // No deferred probes: the partition produces nothing, skip its IO.
  if (probe_file == nullptr || probe_file->tuple_count() == 0) {
    return Status::OK();
  }
  MemoryQuota* quota = resources_.quota;

  // Optimistically reload the build side — by flush time other partitions
  // have released their charges, so a partition that overflowed during the
  // build often fits now (the hybrid part).
  DBS3_RETURN_IF_ERROR(build_file->Rewind());
  Fragment build;
  // The guard owns the reload's units: the previous hand-rolled ledger
  // leaked them when a ReadChunk error returned out of the loop before the
  // manual Release (found by dbs3-quota-pairing).
  ChargeGuard reload(quota);
  bool fits = true;
  std::vector<Tuple> chunk;
  while (fits) {
    // The guard returns the partial reload's units on this early exit.
    if (resources_.cancel.ShouldStop()) return Status::OK();
    DBS3_ASSIGN_OR_RETURN(const bool more, build_file->ReadChunk(&chunk));
    if (!more) break;
    for (Tuple& t : chunk) {
      if (!reload.TryAdd(1)) {
        fits = false;
        break;
      }
      build.tuples.push_back(std::move(t));
    }
  }
  Status result = Status::OK();
  if (fits) {
    TempIndex index(build, inner_column_);
    result = StreamProbeFile(instance, probe_file, build, index, out);
  }
  // Return the budget before recursing: the repartition/nested-loop passes
  // below need the units this optimistic reload was holding.
  reload.ReleaseNow();
  if (fits || !result.ok()) return result;

  build.tuples.clear();
  if (level >= options_.max_recursion) {
    return BlockNestedLoop(instance, build_file, probe_file, out);
  }
  return Repartition(instance, build_file, probe_file, level, out);
}

Status SpillingHashJoinLogic::Repartition(size_t instance,
                                          SpillFile* build_file,
                                          SpillFile* probe_file, size_t level,
                                          Emitter* out) {
  recursions_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::unique_ptr<SpillFile>> sub_build(options_.fanout);
  std::vector<std::unique_ptr<SpillFile>> sub_probe(options_.fanout);

  auto split = [&](SpillFile* src, size_t column,
                   std::vector<std::unique_ptr<SpillFile>>& dst) -> Status {
    DBS3_RETURN_IF_ERROR(src->Rewind());
    std::vector<Tuple> chunk;
    while (true) {
      // A split pass rereads a whole overflow partition; stay cancellable
      // per chunk rather than per level.
      if (resources_.cancel.ShouldStop()) return Status::OK();
      DBS3_ASSIGN_OR_RETURN(const bool more, src->ReadChunk(&chunk));
      if (!more) return Status::OK();
      for (const Tuple& t : chunk) {
        const size_t p = PartitionOf(t.at(column), level);
        if (dst[p] == nullptr) {
          DBS3_ASSIGN_OR_RETURN(dst[p], SpillFile::Create(&counters_));
        }
        DBS3_RETURN_IF_ERROR(dst[p]->Append(t));
      }
    }
  };
  DBS3_RETURN_IF_ERROR(split(build_file, inner_column_, sub_build));
  DBS3_RETURN_IF_ERROR(split(probe_file, probe_column_, sub_probe));

  for (size_t p = 0; p < options_.fanout; ++p) {
    if (sub_build[p] == nullptr || sub_probe[p] == nullptr) continue;
    // A level that failed to split (one hot key captured everything) will
    // fail to split forever; stop rehashing and nested-loop it now.
    if (sub_build[p]->tuple_count() == build_file->tuple_count()) {
      DBS3_RETURN_IF_ERROR(BlockNestedLoop(instance, sub_build[p].get(),
                                           sub_probe[p].get(), out));
      continue;
    }
    DBS3_RETURN_IF_ERROR(ProcessSpilledPair(
        instance, sub_build[p].get(), sub_probe[p].get(), level + 1, out));
  }
  return Status::OK();
}

Status SpillingHashJoinLogic::BlockNestedLoop(size_t instance,
                                              SpillFile* build_file,
                                              SpillFile* probe_file,
                                              Emitter* out) {
  MemoryQuota* quota = resources_.quota;
  DBS3_RETURN_IF_ERROR(build_file->Rewind());
  std::vector<Tuple> pending;
  size_t pending_pos = 0;
  bool exhausted = false;
  while (!exhausted || pending_pos < pending.size()) {
    if (resources_.cancel.ShouldStop()) return Status::OK();
    // Fill one quota-sized build batch. The first tuple of a batch is
    // force-charged when even one unit is unavailable — a batch of at
    // least one row guarantees the pass terminates (bounded overshoot:
    // one unit per instance at a time).
    Fragment batch;
    // The guard owns the batch's units and releases them at the end of
    // each pass — including the ReadChunk error return inside the fill
    // loop, which the previous hand-rolled ledger leaked across
    // (found by dbs3-quota-pairing).
    ChargeGuard charge(quota);
    while (true) {
      // The outer pass loop also checks, but one batch spans many chunks
      // when the budget is generous; the guard releases the partial batch.
      if (resources_.cancel.ShouldStop()) return Status::OK();
      if (pending_pos >= pending.size()) {
        pending.clear();
        pending_pos = 0;
        DBS3_ASSIGN_OR_RETURN(const bool more,
                              build_file->ReadChunk(&pending));
        if (!more) {
          exhausted = true;
          break;
        }
      }
      if (!charge.TryAdd(1)) {
        if (batch.tuples.empty()) {
          charge.ForceAdd(1);
        } else {
          break;
        }
      }
      batch.tuples.push_back(std::move(pending[pending_pos++]));
    }
    if (batch.tuples.empty()) break;
    TempIndex index(batch, inner_column_);
    DBS3_RETURN_IF_ERROR(
        StreamProbeFile(instance, probe_file, batch, index, out));
  }
  return Status::OK();
}

void SpillingHashJoinLogic::OnFinish(size_t instance, Emitter* out) {
  InstanceState& state = *instances_[instance];
  // An instance that received no probe activations never built; its output
  // is empty either way (inner join), so skip the build entirely.
  for (Partition& part : state.parts) {
    if (!part.spilled) continue;
    const Status processed = ProcessSpilledPair(
        instance, part.build_file.get(), part.probe_file.get(), 1, out);
    RecordError(state, processed);
    part.build_file.reset();
    part.probe_file.reset();
  }
  // Drop the resident build side and return its charges: downstream of
  // OnFinish nothing probes this instance again.
  if (resources_.quota != nullptr) {
    for (Partition& part : state.parts) {
      resources_.quota->Release(part.charged);
      part.charged = 0;
    }
  }
  for (Partition& part : state.parts) {
    part.index.reset();
    std::vector<Tuple>().swap(part.build.tuples);
  }
  PublishMetrics();
}

void SpillingHashJoinLogic::PublishMetrics() {
  if (resources_.metrics == nullptr) return;
  // OnFinish runs sequentially, so delta publishing needs no lock.
  const uint64_t bw = counters_.bytes_written.load(std::memory_order_relaxed);
  const uint64_t br = counters_.bytes_read.load(std::memory_order_relaxed);
  const uint64_t parts =
      partitions_spilled_.load(std::memory_order_relaxed);
  const uint64_t recs = recursions_.load(std::memory_order_relaxed);
  resources_.metrics->counter("spill.bytes_written")
      ->Add(bw - published_bytes_written_);
  resources_.metrics->counter("spill.bytes_read")
      ->Add(br - published_bytes_read_);
  resources_.metrics->counter("spill.partitions")
      ->Add(parts - published_partitions_);
  resources_.metrics->counter("spill.recursions")
      ->Add(recs - published_recursions_);
  published_bytes_written_ = bw;
  published_bytes_read_ = br;
  published_partitions_ = parts;
  published_recursions_ = recs;
}

NodeEstimate SpillingHashJoinLogic::Estimate(const CostModel& cost_model,
                                             double input_tuples) const {
  // Mirror the in-memory pipelined join's index estimate: when everything
  // fits the paths are identical, and the scheduler has no spill statistics
  // to do better with.
  NodeEstimate e;
  const std::vector<uint64_t> inner = inner_->FragmentCardinalities();
  const size_t m = inner.size();
  const double probes_per_instance =
      m > 0 ? input_tuples / static_cast<double>(m) : 0.0;
  e.per_instance_work.reserve(m);
  for (uint64_t c : inner) {
    const double w =
        static_cast<double>(c) * cost_model.index_build_tuple +
        probes_per_instance * cost_model.index_probe;
    e.per_instance_work.push_back(w);
    e.total_work += w;
  }
  e.activations = input_tuples;
  e.output_tuples = input_tuples;
  return e;
}

}  // namespace dbs3

#ifndef DBS3_ENGINE_ACTIVATION_H_
#define DBS3_ENGINE_ACTIVATION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace dbs3 {

/// A batch of tuples carried by one data activation. Chunking amortizes the
/// queue-mutex acquisition, the condition-variable notify, and the activation
/// move over `chunk_size` tuples on the *producer* side, symmetric to the
/// consumer-side internal activation cache (CacheSize) of the paper.
using TupleChunk = std::vector<Tuple>;

/// The sequential unit of work of the Lera-par execution model (Section 2).
///
/// A *control activation* (trigger) starts a triggered operation instance,
/// which then processes its whole fragment. A *data activation* conveys a
/// chunk of tuples to a pipelined operation instance (one tuple in the
/// paper-faithful chunk_size=1 mode). Either way, one activation is executed
/// by exactly one thread, sequentially.
struct Activation {
  enum class Kind : uint8_t { kTrigger, kData };

  Kind kind = Kind::kTrigger;
  /// Payload tuples; meaningful only when kind == kData.
  TupleChunk tuples;

  static Activation Trigger() { return Activation{Kind::kTrigger, {}}; }
  static Activation Data(Tuple t) {
    TupleChunk chunk;
    // Exactly one element ever lands here; reserving skips the growth
    // policy's larger first allocation on the per-tuple path.
    chunk.reserve(1);
    chunk.push_back(std::move(t));
    return Activation{Kind::kData, std::move(chunk)};
  }
  static Activation DataChunk(TupleChunk chunk) {
    return Activation{Kind::kData, std::move(chunk)};
  }

  bool is_trigger() const { return kind == Kind::kTrigger; }

  /// Queue-accounting units: a trigger is one unit of work, a data
  /// activation counts its tuples. Bounded-queue capacity and the
  /// operation's pending counter are denominated in these units so
  /// back-pressure keeps its meaning under chunking.
  size_t unit_count() const {
    return is_trigger() ? 1 : tuples.size();
  }
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_ACTIVATION_H_

#ifndef DBS3_ENGINE_ACTIVATION_H_
#define DBS3_ENGINE_ACTIVATION_H_

#include <cstdint>
#include <utility>

#include "storage/tuple.h"

namespace dbs3 {

/// The sequential unit of work of the Lera-par execution model (Section 2).
///
/// A *control activation* (trigger) starts a triggered operation instance,
/// which then processes its whole fragment. A *data activation* conveys one
/// tuple to a pipelined operation instance. Either way, one activation is
/// executed by exactly one thread, sequentially.
struct Activation {
  enum class Kind : uint8_t { kTrigger, kData };

  Kind kind = Kind::kTrigger;
  /// Payload tuple; meaningful only when kind == kData.
  Tuple tuple;

  static Activation Trigger() { return Activation{Kind::kTrigger, Tuple()}; }
  static Activation Data(Tuple t) {
    return Activation{Kind::kData, std::move(t)};
  }

  bool is_trigger() const { return kind == Kind::kTrigger; }
};

}  // namespace dbs3

#endif  // DBS3_ENGINE_ACTIVATION_H_

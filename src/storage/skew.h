#ifndef DBS3_STORAGE_SKEW_H_
#define DBS3_STORAGE_SKEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace dbs3 {

/// Specification of one skewed experiment database (Section 5.4): a pair of
/// relations A and B' partitioned on the join attribute in the same number
/// of fragments, with A's fragment cardinalities following Zipf(theta).
///
/// The paper verified experimentally that skewing one relation and leaving
/// the other unskewed is equivalent to skewing both, so only A is skewed.
struct SkewSpec {
  uint64_t a_cardinality = 100'000;
  uint64_t b_cardinality = 10'000;
  /// Degree of partitioning of both relations.
  size_t degree = 200;
  /// Zipf skew factor in [0, 1]: 0 = no skew, 1 = high skew.
  double theta = 0.0;
  uint64_t seed = 42;
};

/// A skewed database: co-partitioned A (skewed) and B' (unskewed).
struct SkewedDatabase {
  std::unique_ptr<Relation> a;
  std::unique_ptr<Relation> b;
};

/// Builds the database per `spec`.
///
/// Schema of both relations: (key:int64, payload:int64). Both are
/// modulo-partitioned on `key` with `spec.degree` fragments, so fragment i
/// holds keys congruent to i — A_i joins exactly B'_i (the IdealJoin
/// precondition). Fragment i of A holds ZipfCounts(a_cardinality, degree,
/// theta)[i] tuples (tuple placement skew, TPS); each A key is drawn
/// uniformly from B's key domain within the fragment, so every A tuple
/// matches exactly one B' tuple and the join product mirrors A's skew.
/// B' spreads its tuples evenly: fragment i holds keys {i + degree * j}.
Result<SkewedDatabase> BuildSkewedDatabase(const SkewSpec& spec);

/// The schema used by BuildSkewedDatabase: (key:int64, payload:int64).
Schema SkewSchema();

}  // namespace dbs3

#endif  // DBS3_STORAGE_SKEW_H_

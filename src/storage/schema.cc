#include "storage/schema.h"

namespace dbs3 {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in schema " +
                          ToString());
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& prefix) {
  std::vector<Column> cols = left.columns_;
  cols.reserve(left.num_columns() + right.num_columns());
  for (const Column& c : right.columns_) {
    Column out = c;
    if (left.IndexOf(c.name).ok()) out.name = prefix + c.name;
    cols.push_back(std::move(out));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  return columns_ == other.columns_;
}

}  // namespace dbs3
